"""Tests for optimizer rules, interval parsing, and expression codegen."""

import pytest

from repro.common import PlannerError, SqlParseError
from repro.sql import QueryPlanner
from repro.sql.codegen import (
    compile_join_predicate,
    compile_predicate,
    compile_projection,
    compile_scalar,
    render,
)
from repro.sql.converter import Converter
from repro.sql.interval import parse_interval, parse_time_literal
from repro.sql.parser import parse_query
from repro.sql.rel.nodes import (
    LogicalAggregate,
    LogicalDelta,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
)
from repro.sql.rel.optimizer import Optimizer
from repro.sql.rex import RexCall, RexInputRef, RexLiteral
from repro.sql.types import SqlType

from tests.sql_fixtures import paper_catalog


@pytest.fixture
def planner():
    return QueryPlanner(paper_catalog())


class TestIntervals:
    @pytest.mark.parametrize("value,unit,expected_ms", [
        ("2", "SECOND", 2000),
        ("5", "MINUTE", 300_000),
        ("1", "HOUR", 3_600_000),
        ("1", "DAY", 86_400_000),
        ("500", "MILLISECOND", 500),
        ("1.5", "SECOND", 1500),
    ])
    def test_single_unit(self, value, unit, expected_ms):
        assert parse_interval(value, unit) == expected_ms

    def test_compound_hour_to_minute(self):
        assert parse_interval("1:30", "HOUR", "MINUTE") == 90 * 60 * 1000

    def test_compound_day_to_second(self):
        assert parse_interval("1:2:3:4", "DAY", "SECOND") == (
            86_400_000 + 2 * 3_600_000 + 3 * 60_000 + 4000)

    def test_compound_wrong_field_count(self):
        with pytest.raises(SqlParseError):
            parse_interval("1:2:3", "HOUR", "MINUTE")

    def test_invalid_qualifier_order(self):
        with pytest.raises(SqlParseError):
            parse_interval("1:2", "MINUTE", "HOUR")

    def test_time_literal(self):
        assert parse_time_literal("0:30") == 30 * 60 * 1000
        assert parse_time_literal("1:05:30") == 3_600_000 + 5 * 60_000 + 30_000

    def test_time_literal_out_of_range(self):
        with pytest.raises(SqlParseError):
            parse_time_literal("1:99")


class TestOptimizerRules:
    def test_delta_absorbed_by_stream_scan(self, planner):
        plan = planner.plan_query("SELECT STREAM * FROM Orders")
        assert isinstance(plan, LogicalScan)

    def test_delta_pushed_below_filter_project(self, planner):
        plan = planner.plan_query(
            "SELECT STREAM rowtime, units FROM Orders WHERE units > 25")
        assert "LogicalDelta" not in plan.explain()
        assert isinstance(plan, LogicalProject)
        assert isinstance(plan.input, LogicalFilter)

    def test_stream_of_table_rejected(self, planner):
        with pytest.raises(PlannerError, match="stream"):
            planner.plan_query("SELECT STREAM * FROM Products")

    def test_delta_into_join_stream_side_only(self, planner):
        plan = planner.plan_query(
            "SELECT STREAM Orders.units, Products.supplierId FROM Orders "
            "JOIN Products ON Orders.productId = Products.productId")
        join = plan.input
        assert isinstance(join, LogicalJoin)
        assert isinstance(join.left, LogicalScan) and join.left.is_stream
        assert isinstance(join.right, LogicalScan) and not join.right.is_stream

    def test_filters_merge(self, planner):
        plan = planner.plan_query(
            "SELECT * FROM (SELECT * FROM Orders WHERE units > 10) WHERE units < 90")
        assert isinstance(plan, LogicalFilter)
        assert isinstance(plan.input, LogicalScan)
        assert plan.condition.op == "AND"

    def test_projects_merge(self, planner):
        plan = planner.plan_query(
            "SELECT u * 2 FROM (SELECT units AS u FROM Orders)")
        assert isinstance(plan, LogicalProject)
        assert isinstance(plan.input, LogicalScan)

    def test_identity_project_removed(self, planner):
        plan = planner.plan_query(
            "SELECT rowtime, productId, orderId, units FROM Orders")
        assert isinstance(plan, LogicalScan)

    def test_filter_pushed_through_project(self, planner):
        plan = planner.plan_query(
            "SELECT u FROM (SELECT units AS u FROM Orders) WHERE u > 5")
        # filter should sit below the projection, directly on the scan
        assert isinstance(plan, LogicalProject)
        assert isinstance(plan.input, LogicalFilter)
        assert isinstance(plan.input.input, LogicalScan)

    def test_filter_pushed_into_join_side(self, planner):
        plan = planner.plan_query(
            "SELECT Orders.units, Products.supplierId FROM Orders "
            "JOIN Products ON Orders.productId = Products.productId "
            "WHERE Orders.units > 50 AND Products.supplierId = 3")
        join = plan.input
        assert isinstance(join, LogicalJoin)
        assert isinstance(join.left, LogicalFilter)   # units > 50 on Orders
        assert isinstance(join.right, LogicalFilter)  # supplierId = 3 on Products

    def test_constant_folding(self, planner):
        plan = planner.plan_query("SELECT units FROM Orders WHERE units > 10 + 20")
        condition = plan.input.condition
        assert condition == RexCall(
            ">", (RexInputRef(3, SqlType.INTEGER), RexLiteral(30, SqlType.INTEGER)),
            SqlType.BOOLEAN)

    def test_true_filter_removed(self, planner):
        plan = planner.plan_query("SELECT units FROM Orders WHERE 1 < 2")
        assert "LogicalFilter" not in plan.explain()

    def test_distinct_becomes_aggregate(self, planner):
        plan = planner.plan_query("SELECT DISTINCT productId FROM Orders")
        assert isinstance(plan, LogicalAggregate)
        assert plan.agg_calls == ()

    def test_optimizer_fixed_point_guard(self):
        class PingPong:
            name = "pingpong"
            flip = False
            def apply(self, node):
                if isinstance(node, LogicalFilter):
                    # alternates two equivalent-but-different conditions forever
                    lit = node.condition
                    other = RexLiteral(not lit.value, SqlType.BOOLEAN)
                    return LogicalFilter(node.input, other)
                return None

        catalog = paper_catalog()
        converter = Converter(catalog)
        plan = converter.convert_query(parse_query("SELECT * FROM Products"))
        plan = LogicalFilter(plan, RexLiteral(True, SqlType.BOOLEAN))
        with pytest.raises(PlannerError, match="fixed point"):
            Optimizer(rules=[PingPong()], max_passes=5).optimize(plan)


def _rex(planner, sql):
    """Compile the WHERE condition of a query over Orders."""
    plan = planner.plan_query(f"SELECT * FROM Orders WHERE {sql}")
    assert isinstance(plan, LogicalFilter)
    return plan.condition


ORDER = [1_000_000, 7, 99, 60]  # rowtime, productId, orderId, units


class TestCodegen:
    def test_comparison(self, planner):
        predicate = compile_predicate(_rex(planner, "units > 50"))
        assert predicate(ORDER) is True
        assert predicate([0, 0, 0, 50]) is False

    def test_boolean_connectives(self, planner):
        predicate = compile_predicate(
            _rex(planner, "units > 50 AND NOT (productId = 3 OR orderId < 10)"))
        assert predicate(ORDER) is True
        assert predicate([0, 3, 99, 60]) is False

    def test_between(self, planner):
        predicate = compile_predicate(_rex(planner, "units BETWEEN 50 AND 70"))
        assert predicate(ORDER) is True
        assert predicate([0, 0, 0, 71]) is False

    def test_in_list(self, planner):
        predicate = compile_predicate(_rex(planner, "productId IN (1, 7, 9)"))
        assert predicate(ORDER) is True

    def test_arithmetic(self, planner):
        plan = planner.plan_query(
            "SELECT units * 2 + 1, units / 7, units / 8.0 FROM Orders")
        project = compile_projection(list(plan.exprs))
        out = project(ORDER)
        assert out == [121, 8, 7.5]  # integer division truncates

    def test_integer_division_truncates_negative(self, planner):
        plan = planner.plan_query("SELECT (0 - units) / 7 FROM Orders")
        assert compile_projection(list(plan.exprs))(ORDER) == [-8]

    def test_case(self, planner):
        plan = planner.plan_query(
            "SELECT CASE WHEN units > 50 THEN 'big' WHEN units > 10 THEN 'mid' "
            "ELSE 'small' END FROM Orders")
        scalar = compile_scalar(plan.exprs[0])
        assert scalar(ORDER) == "big"
        assert scalar([0, 0, 0, 20]) == "mid"
        assert scalar([0, 0, 0, 1]) == "small"

    def test_floor_time(self, planner):
        plan = planner.plan_query("SELECT FLOOR(rowtime TO HOUR) FROM Orders")
        scalar = compile_scalar(plan.exprs[0])
        assert scalar([7_200_123, 0, 0, 0]) == 7_200_000

    def test_greatest_least(self, planner):
        plan = planner.plan_query("SELECT GREATEST(units, 80), LEAST(units, 10) FROM Orders")
        assert compile_projection(list(plan.exprs))(ORDER) == [80, 10]

    def test_string_functions(self):
        catalog = paper_catalog()
        planner = QueryPlanner(catalog)
        plan = planner.plan_query(
            "SELECT UPPER(name), CHAR_LENGTH(name), SUBSTRING(name, 2, 3) FROM Products")
        project = compile_projection(list(plan.exprs))
        assert project([1, "widget", 2]) == ["WIDGET", 6, "idg"]

    def test_like(self, planner):
        catalog = paper_catalog()
        p = QueryPlanner(catalog)
        plan = p.plan_query("SELECT * FROM Products WHERE name LIKE 'wid%'")
        predicate = compile_predicate(plan.condition)
        assert predicate([1, "widget", 2]) is True
        assert predicate([1, "gadget", 2]) is False

    def test_is_null_coalesce(self, planner):
        plan = planner.plan_query(
            "SELECT COALESCE(units, 0), units IS NULL FROM Orders")
        project = compile_projection(list(plan.exprs))
        assert project([0, 0, 0, None]) == [0, True]
        assert project(ORDER) == [60, False]

    def test_cast(self, planner):
        plan = planner.plan_query(
            "SELECT CAST(units AS DOUBLE), CAST(units AS VARCHAR) FROM Orders")
        assert compile_projection(list(plan.exprs))(ORDER) == [60.0, "60"]

    def test_join_predicate_two_rows(self, planner):
        plan = planner.plan_query(
            "SELECT Orders.units FROM Orders JOIN Products "
            "ON Orders.productId = Products.productId AND Products.supplierId > 1")
        join = plan.input
        predicate = compile_join_predicate(join.condition, left_width=4)
        assert predicate(ORDER, [7, "x", 5]) is True
        assert predicate(ORDER, [8, "x", 5]) is False
        assert predicate(ORDER, [7, "x", 1]) is False

    def test_render_is_plain_source(self, planner):
        source = render(_rex(planner, "units > 50"))
        assert source == "(r[3] > 50)"
