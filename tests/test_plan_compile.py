"""Whole-plan compilation: plan analysis, byte equivalence, ExecutionConfig
mapping, EXPLAIN reporting, and the QueryHandle stopped-query contract.

The integration suite already drives every end-to-end scenario through
all four batch × compile modes; this module pins the *seams* — which
plans compile and why others don't, that the compiled path's rows AND
per-operator counters match the interpreted path's exactly, that the
canonical/legacy config key mapping stays stable, and that EXPLAIN
reports the per-task decision the runtime actually makes.
"""

import pytest

from repro.common import VirtualClock
from repro.common.config import Config
from repro.common.errors import ConfigError
from repro.common.execution import KEY_MAP, ExecutionConfig
from repro.samzasql.compile import analyze_plan, compile_chain
from repro.serving.errors import ErrorCode, PipelineError

from tests.samzasql_fixtures import Deployment

FILTER_SQL = ("SELECT STREAM rowtime, productId, orderId, units "
              "FROM Orders WHERE units > 50")
WINDOW_SQL = (
    "SELECT STREAM rowtime, productId, units, "
    "SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
    "RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes "
    "FROM Orders")


def sql_tasks(handle):
    """Every SamzaSqlTask behind a handle (one per partition group)."""
    return [instance.task
            for container in handle.master.samza_containers.values()
            for instance in container.tasks.values()]


def operator_counters(handle):
    """{op_id: (processed, emitted)} summed across the handle's tasks."""
    totals = {}
    for task in sql_tasks(handle):
        for op in task.router.operators:
            processed, emitted = totals.get(op.op_id, (0, 0))
            totals[op.op_id] = (processed + op.processed,
                                emitted + op.emitted)
    return totals


def run_modes(sql, count=40, **kwargs):
    """The same query compiled and interpreted, over identical input."""
    handles = {}
    for mode, flag in (("compiled", "true"), ("interpreted", "false")):
        dep = Deployment().with_orders(count)
        handles[mode] = dep.run(
            sql, config_overrides={"task.compile.execution": flag}, **kwargs)
    return handles


class TestCompileDecision:
    def test_filter_chain_compiles(self):
        dep = Deployment().with_orders(5)
        handle = dep.run(FILTER_SQL)
        for task in sql_tasks(handle):
            assert task.compiled
            assert task.compile_decision.supported
            assert task.compile_decision.status == "compiled"

    def test_projection_chain_compiles(self):
        dep = Deployment().with_orders(5)
        handle = dep.run("SELECT STREAM rowtime, orderId, units * 2 AS twice "
                         "FROM Orders")
        assert all(task.compiled for task in sql_tasks(handle))

    def test_window_falls_back_with_reason(self):
        dep = Deployment().with_orders(5)
        handle = dep.run(WINDOW_SQL)
        for task in sql_tasks(handle):
            assert not task.compiled
            decision = task.compile_decision
            assert not decision.supported
            assert decision.reason == "stateful operator: sliding_window"
            assert decision.status == (
                "interpreted (fallback: stateful operator: sliding_window)")

    def test_join_falls_back_with_reason(self):
        dep = Deployment().with_orders(5).with_products()
        handle = dep.run(
            "SELECT STREAM o.rowtime, o.orderId, p.name "
            "FROM Orders o JOIN Products p ON o.productId = p.productId")
        for task in sql_tasks(handle):
            assert not task.compiled
            assert "join operator" in task.compile_decision.reason

    def test_udf_falls_back_with_reason(self):
        from repro.sql.udf import UDF_REGISTRY, register_scalar_udf

        UDF_REGISTRY.clear()
        register_scalar_udf("PLAN_COMPILE_T", lambda x: x)
        try:
            dep = Deployment().with_orders(5)
            handle = dep.run("SELECT STREAM orderId, "
                             "PLAN_COMPILE_T(units) AS u FROM Orders")
            for task in sql_tasks(handle):
                assert not task.compiled
                assert "UDF" in task.compile_decision.reason
        finally:
            UDF_REGISTRY.clear()

    def test_compile_flag_off_keeps_interpreted_router(self):
        dep = Deployment().with_orders(5)
        handle = dep.run(FILTER_SQL,
                         config_overrides={"task.compile.execution": "false"})
        for task in sql_tasks(handle):
            # the plan is compilable, but the knob vetoes it per task
            assert task.compile_decision.supported
            assert not task.compiled
            assert task.executor is None

    def test_analyze_plan_on_built_physical_plan(self):
        dep = Deployment().with_orders(1)
        decisions = {}
        for sql in (FILTER_SQL, WINDOW_SQL):
            handle = dep.shell.execute(sql)
            decisions[sql] = analyze_plan(handle.plan)
            handle.stop()
        assert decisions[FILTER_SQL].supported
        assert not decisions[WINDOW_SQL].supported


class TestByteEquivalence:
    def test_filter_rows_and_counters_identical(self):
        handles = run_modes(FILTER_SQL)
        rows = {mode: sorted((r["orderId"], r["units"])
                             for r in handle.results())
                for mode, handle in handles.items()}
        assert rows["compiled"] == rows["interpreted"]
        assert len(rows["compiled"]) == sum(
            1 for i in range(40) if (i * 7) % 100 > 50)
        # metric parity: every operator's processed/emitted counts match,
        # so snapshots are indistinguishable between the two paths
        counters = {mode: operator_counters(handle)
                    for mode, handle in handles.items()}
        assert counters["compiled"] == counters["interpreted"]
        assert any(op.startswith("filter") for op in counters["compiled"])

    def test_projection_rows_identical(self):
        handles = run_modes("SELECT STREAM rowtime, orderId, "
                            "units * units + 1 AS poly FROM Orders")
        rows = {mode: sorted((r["orderId"], r["poly"])
                             for r in handle.results())
                for mode, handle in handles.items()}
        assert rows["compiled"] == rows["interpreted"]
        assert rows["compiled"][3] == (3, ((3 * 7) % 100) ** 2 + 1)

    def test_multi_filter_staged_counters_identical(self):
        # two filter stages force the compiler's counting-loop shape;
        # per-stage emitted counts must still match the interpreted chain
        sql = ("SELECT STREAM orderId, units FROM "
               "(SELECT STREAM orderId, units FROM Orders WHERE units > 20) "
               "WHERE units < 80")
        handles = run_modes(sql)
        rows = {mode: sorted(r["orderId"] for r in handle.results())
                for mode, handle in handles.items()}
        assert rows["compiled"] == rows["interpreted"]
        counters = {mode: operator_counters(handle)
                    for mode, handle in handles.items()}
        assert counters["compiled"] == counters["interpreted"]

    def test_generated_source_is_one_function(self):
        dep = Deployment().with_orders(5)
        handle = dep.run(FILTER_SQL)
        [task] = [t for t in sql_tasks(handle) if t.executor is not None][:1]
        source = task.executor.source
        assert source.count("def ") == 1
        assert "process_batch" not in source
        # and it is the same source compile_chain produces from the plan —
        # the task rebuilt it from the plan JSON the shell wrote to ZK
        assert compile_chain(handle.plan).source == source


class TestExecutionConfigMapping:
    def test_defaults(self):
        config = ExecutionConfig.from_config(Config({}))
        assert config == ExecutionConfig(batch=True, write_behind=True,
                                         parallel=False, compile=True)

    def test_legacy_keys_still_work(self):
        config = ExecutionConfig.from_config(Config({
            "task.batch.execution": "false",
            "stores.write.behind": "false",
            "cluster.parallel.execution": "true",
            "task.compile.execution": "false",
        }))
        assert config == ExecutionConfig(batch=False, write_behind=False,
                                         parallel=True, compile=False)

    def test_canonical_keys_win_over_legacy(self):
        config = ExecutionConfig.from_config(Config({
            "execution.batch": "false",
            "task.batch.execution": "true",
            "execution.compile": "false",
            "task.compile.execution": "true",
        }))
        assert config.batch is False
        assert config.compile is False

    def test_key_map_pin(self):
        # the deprecation shim's exact mapping, pinned in both directions
        assert KEY_MAP == {
            "execution.batch": ("task.batch.execution", True),
            "execution.write.behind": ("stores.write.behind", True),
            "execution.parallel": ("cluster.parallel.execution", False),
            "execution.compile": ("task.compile.execution", True),
            "execution.multiway.join": ("plan.multiway.join", True),
            "execution.serde.fusion": ("task.serde.fusion", True),
        }
        overrides = ExecutionConfig(batch=False, write_behind=True,
                                    parallel=True, compile=False).to_overrides()
        assert overrides == {
            "task.batch.execution": "false",
            "stores.write.behind": "true",
            "cluster.parallel.execution": "true",
            "task.compile.execution": "false",
            "plan.multiway.join": "true",
            "task.serde.fusion": "true",
        }
        # round trip: overrides reconstruct the same value
        assert ExecutionConfig.from_config(Config(overrides)) == \
            ExecutionConfig(batch=False, write_behind=True,
                            parallel=True, compile=False)

    def test_parallel_with_virtual_clock_rejected(self):
        config = ExecutionConfig(parallel=True)
        with pytest.raises(ConfigError, match="VirtualClock"):
            config.validate(VirtualClock(0))
        assert config.validate(None) is config

    def test_describe(self):
        assert ExecutionConfig().describe() == \
            "batch=on write_behind=on parallel=off compile=on multiway_join=on serde_fusion=on"


class TestExplain:
    def test_streaming_filter_reports_compiled(self):
        dep = Deployment().with_orders(5)
        report = dep.shell.execute(f"EXPLAIN {FILTER_SQL}")
        assert isinstance(report, str)
        assert "logical plan:" in report
        assert "physical plan:" in report
        assert ("execution: batch=on write_behind=on parallel=off compile=on"
                in report)
        assert "tasks: 4 × compiled" in report  # one per Orders partition

    def test_window_reports_fallback_reason(self):
        dep = Deployment().with_orders(5)
        report = dep.shell.execute(f"EXPLAIN {WINDOW_SQL}")
        assert ("interpreted (fallback: stateful operator: sliding_window)"
                in report)

    def test_compile_disabled_reports_why(self):
        dep = Deployment().with_orders(5)
        report = dep.shell.execute(
            f"EXPLAIN {FILTER_SQL}",
            config_overrides={"task.compile.execution": "false"})
        assert "compile=off" in report
        assert ("interpreted (fallback: disabled by execution.compile=false)"
                in report)

    def test_batch_query_reports_no_job(self):
        dep = Deployment().with_orders(5)
        report = dep.shell.execute(
            "EXPLAIN SELECT productId, SUM(units) AS total FROM Orders "
            "GROUP BY productId")
        assert "batch query over retained history (no job submitted)" in report
        assert "physical plan:" not in report

    def test_explain_submits_nothing(self):
        dep = Deployment().with_orders(5)
        dep.shell.execute(f"EXPLAIN {FILTER_SQL}")
        assert dep.shell._masters == []  # no job was submitted

    def test_explain_through_front_door_applies_policy(self):
        from repro.samzasql.environment import SamzaSqlEnvironment
        from repro.serving import TenantPolicy

        from tests.samzasql_fixtures import ORDERS_SCHEMA

        env = SamzaSqlEnvironment(metrics_interval_ms=0)
        try:
            env.shell.register_stream("Orders", ORDERS_SCHEMA)
            door = env.front_door()
            door.register_tenant("analyst", TenantPolicy(
                tenant="analyst", allowed_tables=frozenset({"default.*"}),
                read_only=True))
            session = door.connect("analyst")
            report = door.execute(session, f"EXPLAIN {FILTER_SQL}")
            assert "tasks:" in report
            # EXPLAIN is validated like the statement it wraps: explaining
            # a write a read-only tenant could not run is denied too
            with pytest.raises(PipelineError) as excinfo:
                door.execute(
                    session,
                    f"EXPLAIN INSERT INTO Elsewhere {FILTER_SQL}")
            assert excinfo.value.code is ErrorCode.READ_ONLY_VIOLATION
        finally:
            env.close()


class TestStoppedQueryHandle:
    def test_iter_results_and_snapshots_raise_after_stop(self):
        dep = Deployment().with_orders(5)
        handle = dep.run(FILTER_SQL)
        handle.stop()
        for method in (handle.iter_results, handle.snapshots):
            with pytest.raises(PipelineError) as excinfo:
                method()
            assert excinfo.value.code is ErrorCode.QUERY_STOPPED
            assert excinfo.value.details["query_id"] == handle.query_id
        # results() still reads the surviving output topic
        assert len(handle.results()) == sum(
            1 for i in range(5) if (i * 7) % 100 > 50)

    def test_raising_stop_listener_does_not_mask_stop(self):
        dep = Deployment().with_orders(5)
        handle = dep.run(FILTER_SQL)
        fired = []
        handle.add_stop_listener(lambda h: fired.append("a"))

        def boom(h):
            fired.append("boom")
            raise RuntimeError("listener exploded")

        handle.add_stop_listener(boom)
        handle.add_stop_listener(lambda h: fired.append("b"))
        with pytest.raises(RuntimeError, match="listener exploded"):
            handle.stop()
        # the stop itself took effect and every listener fired
        assert handle.stopped
        assert fired == ["a", "boom", "b"]
        # idempotent: a second stop neither raises nor re-fires listeners
        handle.stop()
        assert fired == ["a", "boom", "b"]
