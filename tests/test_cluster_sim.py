"""Tests for the discrete-event engine and the scaling model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterParameters, EventQueue, ScalingModel


class TestEventQueue:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule(30, lambda: seen.append("c"))
        queue.schedule(10, lambda: seen.append("a"))
        queue.schedule(20, lambda: seen.append("b"))
        queue.run()
        assert seen == ["a", "b", "c"]
        assert queue.now == 30

    def test_ties_are_fifo(self):
        queue = EventQueue()
        seen = []
        for label in "abc":
            queue.schedule(5, lambda l=label: seen.append(l))
        queue.run()
        assert seen == ["a", "b", "c"]

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        seen = []

        def first():
            seen.append(queue.now)
            queue.schedule(5, lambda: seen.append(queue.now))

        queue.schedule(10, first)
        queue.run()
        assert seen == [10, 15]

    def test_run_until_bound(self):
        queue = EventQueue()
        seen = []
        queue.schedule(10, lambda: seen.append(1))
        queue.schedule(100, lambda: seen.append(2))
        queue.run(until_ms=50)
        assert seen == [1]
        assert len(queue) == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        queue = EventQueue(start_ms=100)
        with pytest.raises(ValueError):
            queue.schedule_at(50, lambda: None)

    def test_runaway_guard(self):
        queue = EventQueue()

        def forever():
            queue.schedule(1, forever)

        queue.schedule(0, forever)
        with pytest.raises(RuntimeError):
            queue.run(max_events=100)


class TestClusterParameters:
    def test_defaults_match_paper(self):
        params = ClusterParameters()
        assert params.partitions == 32
        assert params.brokers == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterParameters(partitions=0)
        with pytest.raises(ValueError):
            ClusterParameters(fetch_max_records=0)


class TestScalingModel:
    def test_partition_assignment_balanced(self):
        model = ScalingModel(ClusterParameters(partitions=32))
        held = model.partitions_per_container(5)
        assert sum(held) == 32
        assert max(held) - min(held) <= 1

    def test_closed_form_monotone_in_containers(self):
        model = ScalingModel()
        series = [model.closed_form_throughput(c, 0.02) for c in (1, 2, 4, 8, 16)]
        assert all(b > a for a, b in zip(series, series[1:]))

    def test_closed_form_sublinear(self):
        model = ScalingModel()
        one = model.closed_form_throughput(1, 0.02)
        eight = model.closed_form_throughput(8, 0.02)
        assert eight < 8 * one
        assert eight > 2 * one

    def test_higher_cpu_cost_lowers_throughput(self):
        model = ScalingModel()
        assert (model.closed_form_throughput(4, 0.01)
                > model.closed_form_throughput(4, 0.1))

    def test_simulation_conserves_messages(self):
        model = ScalingModel()
        result = model.simulate(4, 0.02, messages_per_partition=100)
        assert result.total_messages == 32 * 100
        assert result.elapsed_ms > 0

    def test_simulation_matches_closed_form_roughly(self):
        """DES adds queueing, but within 2x of the closed form."""
        model = ScalingModel()
        for containers in (1, 4, 8):
            sim = model.simulate(containers, 0.02,
                                 messages_per_partition=2000)
            closed = model.closed_form_throughput(containers, 0.02)
            assert 0.5 < sim.throughput_msgs_per_s / closed < 2.0

    def test_simulation_sublinear(self):
        model = ScalingModel()
        one = model.simulate(1, 0.02, messages_per_partition=1000)
        eight = model.simulate(8, 0.02, messages_per_partition=1000)
        ratio = eight.throughput_msgs_per_s / one.throughput_msgs_per_s
        assert 1.5 < ratio < 8.0

    def test_sweep_shapes(self):
        model = ScalingModel()
        series = model.sweep([1, 2, 4], 0.05, messages_per_partition=200)
        assert [c for c, _ in series] == [1, 2, 4]
        assert all(t > 0 for _, t in series)

    def test_more_containers_than_partitions(self):
        """Extra containers idle (0 partitions) without crashing."""
        model = ScalingModel(ClusterParameters(partitions=4))
        result = model.simulate(8, 0.02, messages_per_partition=50)
        assert result.total_messages == 200

    @given(st.integers(min_value=1, max_value=16),
           st.floats(min_value=0.001, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_closed_form_positive_property(self, containers, cpu):
        assert ScalingModel().closed_form_throughput(containers, cpu) > 0
