"""Every example must run to completion (they assert their own claims)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    assert proc.stdout.strip(), f"{name} produced no output"
