"""Tests for clocks and the metrics registry."""

import pytest

from repro.common import MetricsRegistry, SystemClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_given_time(self):
        assert VirtualClock(100).now_ms() == 100

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(250)
        assert clock.now_ms() == 250

    def test_sleep_advances(self):
        clock = VirtualClock(10)
        clock.sleep_ms(15)
        assert clock.now_ms() == 25

    def test_set_time_forward_only(self):
        clock = VirtualClock(100)
        clock.set_time(200)
        assert clock.now_ms() == 200
        with pytest.raises(ValueError):
            clock.set_time(50)

    def test_advance_negative_raises(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestSystemClock:
    def test_now_is_monotonic_enough(self):
        clock = SystemClock()
        a = clock.now_ms()
        b = clock.now_ms()
        assert b >= a

    def test_sleep_zero_is_noop(self):
        SystemClock().sleep_ms(0)  # must not raise


class TestMetrics:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("grp", "msgs")
        c.inc()
        c.inc(4)
        assert c.count == 5

    def test_counter_identity_per_group_name(self):
        reg = MetricsRegistry()
        assert reg.counter("g", "n") is reg.counter("g", "n")
        assert reg.counter("g", "n") is not reg.counter("g2", "n")

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", "lag")
        g.set(12.5)
        assert g.value == 12.5

    def test_timer_statistics(self):
        reg = MetricsRegistry()
        t = reg.timer("g", "latency")
        for d in (1.0, 2.0, 3.0):
            t.update(d)
        assert t.count == 3
        assert t.total == 6.0
        assert t.mean == 2.0
        assert t.max == 3.0
        assert t.stdev == pytest.approx(0.8165, abs=1e-3)

    def test_timer_empty_stats(self):
        t = MetricsRegistry().timer("g", "t")
        assert t.mean == 0.0
        assert t.stdev == 0.0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", "n").inc(3)
        reg.gauge("c", "g").set(1.5)
        reg.timer("c", "t").update(2.0)
        snap = reg.snapshot()
        assert snap["c"]["n"] == 3
        assert snap["c"]["g"] == 1.5
        assert snap["c"]["t.mean"] == 2.0
        assert snap["c"]["t.count"] == 1
