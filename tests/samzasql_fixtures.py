"""Shared end-to-end fixture: a full SamzaSQL deployment in-process."""

from __future__ import annotations

from repro.common import SystemClock, VirtualClock
from repro.kafka import KafkaCluster, Producer
from repro.samza import JobRunner
from repro.samzasql import SamzaSQLShell
from repro.serde import AvroSchema, AvroSerde
from repro.yarn import NodeManager, Resource, ResourceManager

ORDERS_SCHEMA = AvroSchema.record(
    "Orders",
    [("rowtime", "long"), ("productId", "int"), ("orderId", "long"), ("units", "int")],
)
PRODUCTS_SCHEMA = AvroSchema.record(
    "Products",
    [("productId", "int"), ("name", "string"), ("supplierId", "int")],
)
PACKETS_SCHEMA = AvroSchema.record(
    "Packets",
    [("rowtime", "long"), ("sourcetime", "long"), ("packetId", "long")],
)


class Deployment:
    """Cluster + YARN + shell, with helpers to feed the paper's workloads."""

    #: Merged under every ``run``'s ``config_overrides``.  Test modules
    #: parametrize this (e.g. over ``task.batch.execution``) to drive the
    #: same end-to-end scenarios down both execution paths.
    default_overrides: dict[str, str] = {}

    def __init__(self, partitions: int = 4, nodes: int = 2):
        if self.default_overrides.get("cluster.parallel.execution") == "true":
            # Virtual time cannot advance across forked worker processes.
            self.clock = SystemClock()
        else:
            self.clock = VirtualClock(0)
        self.cluster = KafkaCluster(broker_count=3, clock=self.clock)
        self.rm = ResourceManager()
        for i in range(nodes):
            self.rm.add_node(NodeManager(f"node-{i}", Resource(61_000, 8)))
        self.runner = JobRunner(self.cluster, self.rm, self.clock)
        self.shell = SamzaSQLShell(self.cluster, self.runner)
        self.partitions = partitions
        self.producer = Producer(self.cluster)

    # -- catalog + data helpers --------------------------------------------------

    def with_orders(self, count: int = 0, start_ts: int = 1_000_000,
                    step_ms: int = 1000):
        self.shell.register_stream("Orders", ORDERS_SCHEMA, partitions=self.partitions)
        if count:
            self.feed_orders(count, start_ts, step_ms)
        return self

    def feed_orders(self, count: int, start_ts: int = 1_000_000,
                    step_ms: int = 1000, start_id: int = 0) -> list[dict]:
        serde = AvroSerde(ORDERS_SCHEMA)
        written = []
        for i in range(start_id, start_id + count):
            record = {"rowtime": start_ts + (i - start_id) * step_ms,
                      "productId": i % 10, "orderId": i, "units": (i * 7) % 100}
            self.producer.send("Orders", serde.to_bytes(record),
                               key=str(record["productId"]).encode(),
                               timestamp_ms=record["rowtime"])
            written.append(record)
        return written

    def with_products(self, count: int = 10):
        self.shell.register_table("Products", PRODUCTS_SCHEMA,
                                  key_field="productId", partitions=self.partitions)
        serde = AvroSerde(PRODUCTS_SCHEMA)
        for pid in range(count):
            record = {"productId": pid, "name": f"product-{pid}",
                      "supplierId": pid % 3}
            self.producer.send("Products-changelog", serde.to_bytes(record),
                               key=str(pid).encode())
        return self

    def with_packets(self, routers: int = 2,
                     rates: dict[str, float] | None = None):
        for i in range(1, routers + 1):
            name = f"PacketsR{i}"
            self.shell.register_stream(
                name, PACKETS_SCHEMA, partitions=self.partitions,
                rate_per_sec=(rates or {}).get(name))
        return self

    def feed_packet(self, stream: str, packet_id: int, rowtime: int,
                    sourcetime: int | None = None) -> None:
        serde = AvroSerde(PACKETS_SCHEMA)
        record = {"rowtime": rowtime,
                  "sourcetime": sourcetime if sourcetime is not None else rowtime,
                  "packetId": packet_id}
        self.producer.send(stream, serde.to_bytes(record),
                           key=str(packet_id).encode(), timestamp_ms=rowtime)

    def run(self, sql: str, containers: int = 1, **kwargs):
        if self.default_overrides:
            overrides = dict(self.default_overrides)
            overrides.update(kwargs.pop("config_overrides", None) or {})
            kwargs["config_overrides"] = overrides
        handle = self.shell.execute(sql, containers=containers, **kwargs)
        self.runner.run_until_quiescent()
        return handle
