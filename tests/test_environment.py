"""SamzaSqlEnvironment wiring: parity with the hand-assembled stack,
result cursors, metrics plumbing, and config overrides."""

from __future__ import annotations

from repro.common.clock import VirtualClock
from repro.kafka.cluster import KafkaCluster
from repro.metrics import METRICS_STREAM
from repro.samza.job import JobRunner
from repro.samzasql import SamzaSqlEnvironment
from repro.samzasql.shell import SamzaSQLShell
from repro.yarn import NodeManager, Resource, ResourceManager
from repro.zk.server import ZkServer

from tests.helpers import ORDERS_SCHEMA, produce_orders

FILTER_SQL = "SELECT STREAM * FROM Orders WHERE units > 50"


def run_filter(env, orders=80, partitions=4):
    env.shell.register_stream("Orders", ORDERS_SCHEMA, partitions=partitions)
    produce_orders(env.cluster, orders, partitions=partitions)
    handle = env.shell.execute(FILTER_SQL)
    env.run_until_quiescent()
    return handle


def test_environment_matches_hand_wired_stack():
    # hand-assembled substrate, the way callers wired it pre-environment
    clock = VirtualClock(1_000_000)
    cluster = KafkaCluster(broker_count=3, clock=clock)
    rm = ResourceManager()
    for i in range(2):
        rm.add_node(NodeManager(f"node-{i}", Resource(16_384, 8)))
    runner = JobRunner(cluster, rm, clock)
    shell = SamzaSQLShell(cluster, runner, zk=ZkServer())
    shell.register_stream("Orders", ORDERS_SCHEMA, partitions=4)
    produce_orders(cluster, 80, partitions=4)
    manual = shell.execute(FILTER_SQL)
    runner.run_until_quiescent()

    env = SamzaSqlEnvironment(broker_count=3, node_count=2,
                              metrics_interval_ms=0)
    wired = run_filter(env)

    key = lambda r: r["orderId"]
    assert sorted(wired.results(), key=key) == sorted(manual.results(), key=key)


def test_iter_results_polls_only_new_records():
    env = SamzaSqlEnvironment(broker_count=1)
    handle = run_filter(env, orders=60)
    cursor = handle.iter_results()
    first = cursor.poll()
    assert first
    assert cursor.poll() == []

    produce_orders(env.cluster, 60, partitions=4, start_ts=2_000_000)
    env.run_until_quiescent()
    second = cursor.poll()
    assert second
    # the second batch lives at start_ts=2_000_000; the cursor must not
    # re-deliver anything from the first batch
    assert all(r["rowtime"] >= 2_000_000 for r in second)
    assert len(handle.results()) == len(first) + len(second)


def test_environment_metrics_returns_operator_records():
    env = SamzaSqlEnvironment(broker_count=1)
    handle = run_filter(env)
    records = env.metrics(job=handle.query_id, force=True)
    assert records
    assert {r["job"] for r in records} == {handle.query_id}
    assert "filter-1" in {r["operator"] for r in records}


def test_metrics_disabled_environment_has_no_metrics_stream():
    env = SamzaSqlEnvironment(broker_count=1, metrics_interval_ms=0)
    handle = run_filter(env)
    assert env.catalog.stream(METRICS_STREAM) is None
    assert not env.cluster.has_topic(METRICS_STREAM)
    assert handle.snapshots() == []
    containers = list(handle.master.samza_containers.values())
    assert all(c.metrics_reporter is None for c in containers)


def test_config_overrides_flow_into_jobs():
    # a per-environment override beats the environment's own metrics default
    env = SamzaSqlEnvironment(
        broker_count=1, metrics_interval_ms=1_000,
        config={"metrics.reporter.interval.ms": 0})
    handle = run_filter(env)
    containers = list(handle.master.samza_containers.values())
    assert containers
    assert all(c.metrics_reporter is None for c in containers)


def test_query_handle_stop_halts_consumption():
    env = SamzaSqlEnvironment(broker_count=1)
    handle = run_filter(env, orders=40)
    before = len(handle.results())
    handle.stop()
    produce_orders(env.cluster, 40, partitions=4, start_ts=3_000_000)
    env.run_until_quiescent()
    assert len(handle.results()) == before


def test_advance_moves_virtual_clock():
    env = SamzaSqlEnvironment(start_ms=500)
    env.advance(1_500)
    assert env.clock.now_ms() == 2_000


def test_environment_accepts_external_clock():
    clock = VirtualClock(42)
    env = SamzaSqlEnvironment(broker_count=1, clock=clock)
    assert env.clock is clock
    assert env.cluster.clock is clock
