"""Tests for repro.common.config.Config."""

import pytest

from repro.common import Config, ConfigError


class TestBasics:
    def test_construct_from_dict_and_kwargs(self):
        cfg = Config({"a": 1}, b="two")
        assert cfg["a"] == "1"
        assert cfg["b"] == "two"

    def test_booleans_stringified_like_java_properties(self):
        cfg = Config(flag=True, off=False)
        assert cfg["flag"] == "true"
        assert cfg["off"] == "false"

    def test_mapping_protocol(self):
        cfg = Config(a=1, b=2)
        assert len(cfg) == 2
        assert set(cfg) == {"a", "b"}
        assert dict(cfg) == {"a": "1", "b": "2"}

    def test_to_dict_returns_copy(self):
        cfg = Config(a=1)
        d = cfg.to_dict()
        d["a"] = "mutated"
        assert cfg["a"] == "1"


class TestTypedAccessors:
    def test_get_int(self):
        assert Config(n="42").get_int("n") == 42

    def test_get_int_default(self):
        assert Config().get_int("n", 7) == 7

    def test_get_int_missing_raises(self):
        with pytest.raises(ConfigError):
            Config().get_int("n")

    def test_get_int_bad_value_raises(self):
        with pytest.raises(ConfigError):
            Config(n="abc").get_int("n")

    def test_get_float(self):
        assert Config(x="2.5").get_float("x") == 2.5

    def test_get_float_bad_value_raises(self):
        with pytest.raises(ConfigError):
            Config(x="nope").get_float("x")

    @pytest.mark.parametrize("raw,expected", [
        ("true", True), ("TRUE", True), ("1", True), ("yes", True),
        ("false", False), ("0", False), ("no", False),
    ])
    def test_get_bool_values(self, raw, expected):
        assert Config(b=raw).get_bool("b") is expected

    def test_get_bool_invalid_raises(self):
        with pytest.raises(ConfigError):
            Config(b="maybe").get_bool("b")

    def test_get_str_missing_raises(self):
        with pytest.raises(ConfigError):
            Config().get_str("k")

    def test_get_list(self):
        assert Config(xs="a, b ,c").get_list("xs") == ["a", "b", "c"]

    def test_get_list_empty_string(self):
        assert Config(xs="").get_list("xs") == []

    def test_get_list_default_copied(self):
        default = ["x"]
        got = Config().get_list("xs", default)
        got.append("y")
        assert default == ["x"]


class TestStructural:
    def test_subset_strips_prefix(self):
        cfg = Config({"systems.kafka.host": "h", "systems.kafka.port": "9", "task.class": "T"})
        sub = cfg.subset("systems.kafka.")
        assert dict(sub) == {"host": "h", "port": "9"}

    def test_subset_keep_prefix(self):
        cfg = Config({"a.b": "1"})
        assert dict(cfg.subset("a.", strip_prefix=False)) == {"a.b": "1"}

    def test_merge_overrides(self):
        merged = Config(a=1, b=2).merge({"b": 3, "c": 4})
        assert merged.get_int("a") == 1
        assert merged.get_int("b") == 3
        assert merged.get_int("c") == 4
