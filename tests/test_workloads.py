"""Tests for the synthetic workload generators."""

import pytest

from repro.kafka import KafkaCluster
from repro.serde import AvroSerde
from repro.workloads import (
    MarketGenerator,
    OrdersGenerator,
    PacketsGenerator,
    ProductsGenerator,
    padded_orders_schema,
)


class TestOrdersGenerator:
    def test_deterministic_with_seed(self):
        a = list(OrdersGenerator(seed=1).records(10))
        b = list(OrdersGenerator(seed=1).records(10))
        assert a == b

    def test_different_seeds_differ(self):
        a = list(OrdersGenerator(seed=1).records(10))
        b = list(OrdersGenerator(seed=2).records(10))
        assert a != b

    def test_message_size_near_100_bytes(self):
        """§5.1: the benchmark uses ~100-byte messages."""
        generator = OrdersGenerator()
        sizes = [len(value) for _, value, _ in generator.encoded(100)]
        mean = sum(sizes) / len(sizes)
        assert 90 <= mean <= 110

    def test_unpadded_schema(self):
        generator = OrdersGenerator(target_message_bytes=0)
        record = next(iter(generator.records(1)))
        assert "padding" not in record

    def test_timestamps_monotonic(self):
        records = list(OrdersGenerator(interarrival_ms=5).records(20))
        times = [r["rowtime"] for r in records]
        assert times == sorted(times)
        assert times[1] - times[0] == 5

    def test_produce_creates_topic_and_partitions(self):
        cluster = KafkaCluster()
        written = OrdersGenerator().produce(cluster, "Orders", 64, partitions=32)
        assert written == 64
        topic = cluster.topic("Orders")
        assert topic.partition_count == 32
        assert topic.total_messages() == 64

    def test_keyed_by_product(self):
        """Same product lands in the same partition (join co-partitioning)."""
        cluster = KafkaCluster()
        OrdersGenerator(product_count=5).produce(cluster, "Orders", 100,
                                                 partitions=8)
        serde = AvroSerde(padded_orders_schema())
        partition_of = {}
        for tp in cluster.partitions_for("Orders"):
            for msg in cluster.fetch(tp, 0):
                pid = serde.from_bytes(msg.value)["productId"]
                partition_of.setdefault(pid, set()).add(tp.partition)
        assert all(len(parts) == 1 for parts in partition_of.values())

    def test_decodable(self):
        generator = OrdersGenerator()
        serde = generator.serde
        for _, value, _ in generator.encoded(10):
            record = serde.from_bytes(value)
            assert 0 <= record["units"] < 100


class TestProductsGenerator:
    def test_covers_all_product_ids(self):
        records = list(ProductsGenerator(product_count=20).records())
        assert [r["productId"] for r in records] == list(range(20))

    def test_supplier_range(self):
        records = list(ProductsGenerator(supplier_count=3).records())
        assert all(0 <= r["supplierId"] < 3 for r in records)

    def test_produce_compacted_topic(self):
        cluster = KafkaCluster()
        ProductsGenerator(product_count=10).produce(cluster, "Products-changelog")
        assert cluster.topic("Products-changelog").config.cleanup_policy == "compact"


class TestPacketsGenerator:
    def test_pair_ordering(self):
        for r1, r2 in PacketsGenerator().pairs(50):
            if r2 is not None:
                assert r2["rowtime"] > r1["rowtime"]
                assert r2["packetId"] == r1["packetId"]

    def test_loss_rate(self):
        pairs = list(PacketsGenerator(loss_rate=0.5, seed=1).pairs(400))
        lost = sum(1 for _, r2 in pairs if r2 is None)
        assert 120 < lost < 280

    def test_no_loss_by_default(self):
        assert all(r2 is not None for _, r2 in PacketsGenerator().pairs(50))

    def test_produce_counts(self):
        cluster = KafkaCluster()
        sent_r1, sent_r2 = PacketsGenerator(loss_rate=0.2, seed=3).produce(
            cluster, "R1", "R2", 100, partitions=4)
        assert sent_r1 == 100
        assert sent_r2 < 100
        assert cluster.topic("R2").total_messages() == sent_r2


class TestMarketGenerator:
    def test_event_mix(self):
        events = list(MarketGenerator(seed=9).events(400))
        bids = sum(1 for side, _ in events if side == "bid")
        assert 120 < bids < 280

    def test_record_fields(self):
        for side, record in MarketGenerator().events(20):
            id_field = "bidId" if side == "bid" else "askId"
            assert id_field in record
            assert record["price"] > 0
            assert record["shares"] in (100, 200, 500, 1000)

    def test_produce_roundtrip(self):
        cluster = KafkaCluster()
        bids, asks = MarketGenerator().produce(cluster, "Bids", "Asks", 100)
        assert bids + asks == 100
        assert cluster.topic("Bids").total_messages() == bids
