"""Shared test fixtures: sample tasks and job-building helpers."""

from __future__ import annotations

from repro.common import Config
from repro.kafka import Producer
from repro.samza import (
    IncomingMessageEnvelope,
    OutgoingMessageEnvelope,
    SamzaJob,
)
from repro.samza.serdes import SerdeRegistry
from repro.samza.system import SystemStream
from repro.samza.task import InitableTask, StreamTask, WindowableTask
from repro.samzasql import SamzaSqlEnvironment
from repro.serde import AvroSchema, AvroSerde

ORDERS_SCHEMA = AvroSchema.record(
    "Orders",
    [("rowtime", "long"), ("productId", "int"), ("orderId", "long"), ("units", "int")],
)

PRODUCTS_SCHEMA = AvroSchema.record(
    "Products",
    [("productId", "int"), ("name", "string"), ("supplierId", "int")],
)


class FilterTask(StreamTask):
    """Forward orders with units > threshold to OrdersOut."""

    def __init__(self, threshold=50):
        self.threshold = threshold

    def process(self, envelope, collector, coordinator):
        if envelope.message["units"] > self.threshold:
            collector.send(OutgoingMessageEnvelope(
                system_stream=SystemStream("kafka", "OrdersOut"),
                message=envelope.message,
                key=envelope.key,
                timestamp_ms=envelope.timestamp_ms,
            ))


class CountingTask(StreamTask, InitableTask):
    """Counts messages per productId in a changelog-backed store."""

    def __init__(self):
        self.store = None

    def init(self, config, context):
        self.store = context.get_store("counts")

    def process(self, envelope, collector, coordinator):
        key = str(envelope.message["productId"])
        current = self.store.get(key) or 0
        self.store.put(key, current + 1)


class WindowEmitTask(StreamTask, WindowableTask):
    """Buffers messages, emits a count on each window() call."""

    def __init__(self):
        self.buffered = 0
        self.window_calls = 0

    def process(self, envelope, collector, coordinator):
        self.buffered += 1

    def window(self, collector, coordinator):
        self.window_calls += 1
        collector.send(OutgoingMessageEnvelope(
            system_stream=SystemStream("kafka", "Counts"),
            message={"count": self.buffered},
        ))
        self.buffered = 0


def make_runtime(broker_count=1, nodes=2, node_mem=16_384, node_cores=8):
    """(cluster, rm, runner, clock) wired together on a virtual clock."""
    env = SamzaSqlEnvironment(
        broker_count=broker_count, node_count=nodes, node_mem_mb=node_mem,
        node_cores=node_cores, metrics_interval_ms=0)
    return env.cluster, env.rm, env.runner, env.clock


def orders_serdes() -> SerdeRegistry:
    serdes = SerdeRegistry()
    serdes.register("avro-orders", AvroSerde(ORDERS_SCHEMA))
    serdes.register("avro-products", AvroSerde(PRODUCTS_SCHEMA))
    return serdes


def base_config(name="test-job", containers=1, **extra):
    cfg = {
        "job.name": name,
        "job.container.count": containers,
        "task.inputs": "kafka.Orders",
        "systems.kafka.streams.Orders.samza.msg.serde": "avro-orders",
        "systems.kafka.streams.Orders.samza.key.serde": "string",
        "systems.kafka.streams.OrdersOut.samza.msg.serde": "avro-orders",
        "systems.kafka.streams.OrdersOut.samza.key.serde": "string",
    }
    cfg.update(extra)
    return Config(cfg)


def produce_orders(cluster, count, partitions=4, units=None, start_ts=1_000_000,
                   topic="Orders"):
    """Write synthetic Orders records; returns the list of dicts produced."""
    cluster.create_topic(topic, partitions=partitions, if_not_exists=True)
    producer = Producer(cluster)
    serde = AvroSerde(ORDERS_SCHEMA)
    written = []
    for i in range(count):
        record = {
            "rowtime": start_ts + i,
            "productId": i % 10,
            "orderId": i,
            "units": units if units is not None else (i * 7) % 100,
        }
        producer.send(
            topic, serde.to_bytes(record),
            key=str(record["productId"]).encode(),
            timestamp_ms=record["rowtime"],
        )
        written.append(record)
    return written


def read_topic(cluster, topic, serde=None):
    """Read every record currently in a topic, across partitions."""
    out = []
    for tp in cluster.partitions_for(topic):
        start = cluster.earliest_offset(tp)
        for message in cluster.fetch(tp, start):
            if serde is not None and message.value is not None:
                out.append(serde.from_bytes(message.value))
            else:
                out.append(message.value)
    return out
