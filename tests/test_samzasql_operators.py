"""Unit tests for the SamzaSQL operator layer, operator by operator."""

import pytest

from repro.samza.storage import InMemoryKeyValueStore, SerializedKeyValueStore
from repro.samzasql.operators import (
    FilterOperator,
    GroupWindowAggOperator,
    InsertOperator,
    MultiWayStreamJoinOperator,
    ProjectOperator,
    ScanOperator,
    SlidingWindowOperator,
    StreamRelationJoinOperator,
    StreamStreamJoinOperator,
)
from repro.samzasql.operators.base import Operator, OperatorContext
from repro.samzasql.operators.fused_scan import FusedScanOperator
from repro.samzasql.operators.stream_relation_join import RELATION_PORT, STREAM_PORT
from repro.samzasql.operators.stream_stream_join import LEFT_PORT, RIGHT_PORT
from repro.samzasql.physical import AggSpec
from repro.serde import ObjectSerde


class Sink(Operator):
    """Collects (row, timestamp) pairs."""

    def __init__(self):
        super().__init__()
        self.rows = []

    def process(self, port, row, timestamp_ms):
        self.rows.append((row, timestamp_ms))


def make_context(store_names=()):
    stores = {
        name: SerializedKeyValueStore(InMemoryKeyValueStore(),
                                      ObjectSerde(), ObjectSerde())
        for name in store_names
    }
    sent = []
    context = OperatorContext(
        stores, send=lambda msg, ts, key=None: sent.append((msg, ts)))
    return context, sent


def wire(operator, store_names=()):
    context, sent = make_context(store_names)
    operator.setup(context)
    sink = Sink()
    operator.downstream = sink
    return sink, sent


class TestScanOperator:
    def test_avro_to_array_conversion(self):
        scan = ScanOperator("Orders", ["rowtime", "productId", "units"], 0)
        sink, _ = wire(scan)
        scan.process(0, {"rowtime": 99, "productId": 1, "units": 5}, 0)
        assert sink.rows == [([99, 1, 5], 99)]

    def test_envelope_timestamp_used_without_rowtime(self):
        scan = ScanOperator("S", ["a"], None)
        sink, _ = wire(scan)
        scan.process(0, {"a": 1}, 777)
        assert sink.rows == [([1], 777)]


class TestFilterProjectInsert:
    def test_filter_drops(self):
        op = FilterOperator("(r[0] > 10)")
        sink, _ = wire(op)
        op.process(0, [5], 0)
        op.process(0, [15], 0)
        assert [row for row, _ in sink.rows] == [[15]]
        assert op.processed == 2
        assert op.emitted == 1

    def test_project_rewrites(self):
        op = ProjectOperator("[r[1], r[0] * 2]", ["b", "double_a"])
        sink, _ = wire(op)
        op.process(0, [3, "x"], 1)
        assert sink.rows == [(["x", 6], 1)]

    def test_insert_array_to_record(self):
        op = InsertOperator("Out", ["rowtime", "units"], rowtime_index=0)
        context, sent = make_context()
        op.setup(context)
        op.process(0, [123, 9], 0)
        assert sent == [({"rowtime": 123, "units": 9}, 123)]

    def test_fused_scan_filter_project(self):
        op = FusedScanOperator(
            "Orders", ["rowtime", "units"], rowtime_index=0,
            predicate_source="(r['units'] > 10)",
            projection_source="[r['rowtime'], r['units'] * 2]",
            output_field_names=["rowtime", "doubled"])
        sink, _ = wire(op)
        op.process(0, {"rowtime": 5, "units": 3}, 0)
        op.process(0, {"rowtime": 6, "units": 20}, 0)
        assert sink.rows == [([6, 40], 6)]


class TestSlidingWindowOperator:
    def _operator(self, preceding_ms=10_000, frame="RANGE", preceding_rows=None,
                  aggs=None):
        operator = SlidingWindowOperator(
            partition_key_source="[r[1]]", order_source="r[0]",
            frame_mode=frame, preceding_ms=preceding_ms,
            preceding_rows=preceding_rows,
            aggs=aggs or [AggSpec(func="SUM", arg_source="r[2]")],
            field_names=["rowtime", "key", "value", "agg"])
        sink, _ = wire(operator, ("sql-window-messages", "sql-window-state"))
        return operator, sink

    def test_running_sum_within_range(self):
        operator, sink = self._operator(preceding_ms=10_000)
        for ts, value in [(1000, 5), (2000, 7), (20_000, 1)]:
            operator.process(0, [ts, "k", value], ts)
        sums = [row[-1] for row, _ in sink.rows]
        assert sums == [5, 12, 1]  # third tuple: first two expired

    def test_partitions_isolated(self):
        operator, sink = self._operator()
        operator.process(0, [1000, "a", 5], 1000)
        operator.process(0, [1001, "b", 7], 1001)
        assert [row[-1] for row, _ in sink.rows] == [5, 7]

    def test_rows_frame(self):
        operator, sink = self._operator(preceding_ms=None, frame="ROWS",
                                        preceding_rows=1)
        for ts, value in [(1, 10), (2, 20), (3, 30)]:
            operator.process(0, [ts, "k", value], ts)
        assert [row[-1] for row, _ in sink.rows] == [10, 30, 50]

    def test_multiple_aggregates(self):
        operator, sink = self._operator(aggs=[
            AggSpec(func="SUM", arg_source="r[2]"),
            AggSpec(func="COUNT", arg_source=None),
            AggSpec(func="MIN", arg_source="r[2]"),
            AggSpec(func="MAX", arg_source="r[2]"),
            AggSpec(func="AVG", arg_source="r[2]"),
        ])
        operator.field_names = ["rowtime", "key", "value",
                                "s", "c", "mn", "mx", "avg"]
        operator.process(0, [1, "k", 4], 1)
        operator.process(0, [2, "k", 8], 2)
        [_, (row, _ts)] = sink.rows
        assert row[-5:] == [12, 2, 4, 8, 6.0]

    def test_min_recomputed_after_purge(self):
        operator, sink = self._operator(
            preceding_ms=5, aggs=[AggSpec(func="MIN", arg_source="r[2]")])
        operator.process(0, [1, "k", 1], 1)
        operator.process(0, [2, "k", 9], 2)
        operator.process(0, [100, "k", 5], 100)  # min=1 purged
        assert [row[-1] for row, _ in sink.rows] == [1, 1, 5]

    def test_reprocessing_is_deterministic(self):
        """Replaying the same inputs over restored state yields the same
        final aggregates (the paper's exactly-once window claim)."""
        inputs = [(1000, 5), (2000, 7), (3000, 2)]
        operator, sink = self._operator()
        for ts, value in inputs:
            operator.process(0, [ts, "k", value], ts)
        first_final = sink.rows[-1][0][-1]
        # replay the last message (re-delivery after a failure)
        operator.process(0, [3000, 2, 2], 3000)  # note: same ts, same seq? no
        # a true replay re-runs with the same content:
        operator2, sink2 = self._operator()
        for ts, value in inputs + [(3000, 2)]:
            operator2.process(0, [ts, "k", value], ts)
        assert sink2.rows[2][0][-1] == first_final

    AGGS = [AggSpec(func="SUM", arg_source="r[2]"),
            AggSpec(func="COUNT", arg_source=None),
            AggSpec(func="MIN", arg_source="r[2]"),
            AggSpec(func="MAX", arg_source="r[2]"),
            AggSpec(func="AVG", arg_source="r[2]")]

    def _fresh(self, context):
        operator = SlidingWindowOperator(
            partition_key_source="[r[1]]", order_source="r[0]",
            frame_mode="RANGE", preceding_ms=50, preceding_rows=None,
            aggs=self.AGGS,
            field_names=["rowtime", "key", "value", "s", "c", "mn", "mx", "a"])
        operator.setup(context)
        sink = Sink()
        operator.downstream = sink
        return operator, sink

    def test_restore_rebuilds_live_window(self):
        """A new operator instance over the same stores (changelog-restore
        stand-in) continues producing exactly what an uninterrupted one
        would — accumulators, monotonic MIN/MAX deques and seq counters are
        all rebuilt from the retained rows and the bounds record."""
        inputs = [[i * 7 % 120, f"k{i % 3}", (i * 31) % 17] for i in range(40)]
        stores = ("sql-window-messages", "sql-window-state")
        context, _ = make_context(stores)
        first, sink1 = self._fresh(context)
        for row in inputs[:25]:
            first.process(0, list(row), row[0])
        # "crash": fresh operator, same (already flushed-through) stores
        restored, sink2 = self._fresh(context)
        assert restored.state_size() == first.state_size()
        for row in inputs[25:]:
            restored.process(0, list(row), row[0])
        # reference: one uninterrupted run on fresh stores
        ref_context, _ = make_context(stores)
        reference, ref_sink = self._fresh(ref_context)
        for row in inputs:
            reference.process(0, list(row), row[0])
        assert sink1.rows + sink2.rows == ref_sink.rows
        assert restored.state_size() == reference.state_size()

    def test_state_size_counter_matches_store(self):
        """The O(1) retained-row counter tracks the messages store exactly."""
        stores = ("sql-window-messages", "sql-window-state")
        context, _ = make_context(stores)
        operator, _sink = self._fresh(context)
        messages = context.get_store("sql-window-messages")
        for i in range(60):
            operator.process(0, [i * 11 % 200, f"k{i % 4}", i], i)
            assert operator.state_size() == sum(1 for _ in messages.all())


class TestGroupWindowOperator:
    def _operator(self, kind="TUMBLE", emit=100, retain=100, align=0):
        operator = GroupWindowAggOperator(
            window_kind=kind, time_source="r[0]", emit_ms=emit,
            retain_ms=retain, align_ms=align, group_key_source="[r[1]]",
            aggs=[AggSpec(func="COUNT", arg_source=None),
                  AggSpec(func="SUM", arg_source="r[2]")],
            field_names=["wstart", "wend", "key", "c", "s"])
        sink, _ = wire(operator, ("sql-group-windows",))
        return operator, sink

    def test_tumble_emits_on_watermark(self):
        operator, sink = self._operator()
        operator.process(0, [10, "k", 1], 10)
        operator.process(0, [20, "k", 2], 20)
        assert sink.rows == []  # window [0,100) still open
        operator.process(0, [150, "k", 4], 150)  # watermark passes 100
        [(row, ts)] = sink.rows
        assert row == [0, 100, "k", 2, 3]
        assert ts == 100

    def test_window_assignment_tumble(self):
        operator, _ = self._operator()
        assert operator.windows_for(10) == [0]
        assert operator.windows_for(100) == [100]

    def test_window_assignment_hop(self):
        operator, _ = self._operator(kind="HOP", emit=100, retain=250)
        # windows [ws, ws+250) containing t=120 start at -100, 0 and 100
        assert sorted(operator.windows_for(120)) == [-100, 0, 100]
        # retain not a multiple of emit is allowed (§3.6)
        assert sorted(operator.windows_for(260)) == [100, 200]

    def test_window_assignment_with_align(self):
        operator, _ = self._operator(align=30)
        assert operator.windows_for(25) == [-70]
        assert operator.windows_for(35) == [30]

    def test_late_tuple_dropped(self):
        operator, sink = self._operator()
        operator.process(0, [10, "k", 1], 10)
        operator.process(0, [150, "k", 1], 150)  # closes [0,100)
        operator.process(0, [20, "k", 9], 20)    # late for a closed window
        assert operator.late_dropped == 1
        # re-close never happens for that window
        assert len(sink.rows) == 1

    def test_flush_emits_open_windows(self):
        operator, sink = self._operator()
        operator.process(0, [10, "k", 1], 10)
        operator.flush()
        [(row, _)] = sink.rows
        assert row == [0, 100, "k", 1, 1]

    def test_emit_partials_keeps_windows_open(self):
        operator, sink = self._operator()
        operator.process(0, [10, "k", 1], 10)
        operator.emit_partials()
        operator.process(0, [20, "k", 2], 20)
        operator.process(0, [150, "k", 0], 150)
        # partial emit + final emit for the same window (early results, §3)
        window_rows = [row for row, _ in sink.rows if row[0] == 0]
        assert len(window_rows) == 2
        assert window_rows[0][3] == 1  # partial count
        assert window_rows[1][3] == 2  # final count

    def test_keys_isolated(self):
        operator, sink = self._operator()
        operator.process(0, [10, "a", 1], 10)
        operator.process(0, [20, "b", 2], 20)
        operator.process(0, [150, "a", 0], 150)
        rows = sorted((row for row, _ in sink.rows), key=lambda r: r[2])
        assert [r[2] for r in rows] == ["a", "b"]

    def test_invalid_window_params(self):
        with pytest.raises(ValueError):
            GroupWindowAggOperator("TUMBLE", "r[0]", 0, 100, 0, "[]", [], [])


class TestStreamRelationJoinOperator:
    def _operator(self, kind="INNER", with_keys=True):
        operator = StreamRelationJoinOperator(
            relation="Products",
            relation_field_names=["productId", "supplierId"],
            relation_key_index=0, stream_is_left=True,
            stream_width=2, relation_width=2,
            condition_source="(l[1] == r[0])",
            stream_key_source="r[1]" if with_keys else None,
            relation_key_source="r[0]" if with_keys else None,
            join_kind=kind,
            field_names=["rowtime", "productId", "productId0", "supplierId"])
        sink, _ = wire(operator, (operator.store_name,))
        return operator, sink

    def test_inner_join_matches(self):
        operator, sink = self._operator()
        operator.process(RELATION_PORT, [7, 70], 0)
        operator.process(STREAM_PORT, [1000, 7], 1000)
        assert sink.rows == [([1000, 7, 7, 70], 1000)]

    def test_inner_join_no_match_drops(self):
        operator, sink = self._operator()
        operator.process(STREAM_PORT, [1000, 9], 1000)
        assert sink.rows == []

    def test_left_join_pads_nulls(self):
        operator, sink = self._operator(kind="LEFT")
        operator.process(STREAM_PORT, [1000, 9], 1000)
        assert sink.rows == [([1000, 9, None, None], 1000)]

    def test_relation_update_upserts(self):
        operator, sink = self._operator()
        operator.process(RELATION_PORT, [7, 70], 0)
        operator.process(RELATION_PORT, [7, 71], 0)
        operator.process(STREAM_PORT, [1000, 7], 1000)
        assert sink.rows[-1][0][-1] == 71

    def test_without_equi_key_scans_relation(self):
        operator, sink = self._operator(with_keys=False)
        operator.process(RELATION_PORT, [7, 70], 0)
        operator.process(RELATION_PORT, [8, 80], 0)
        operator.process(STREAM_PORT, [1000, 8], 1000)
        assert [row for row, _ in sink.rows] == [[1000, 8, 8, 80]]


class TestStreamStreamJoinOperator:
    def _operator(self, lower=2000, upper=2000):
        operator = StreamStreamJoinOperator(
            left_width=2, right_width=2,
            condition_source="(l[1] == r[1])",
            left_time_index=0, right_time_index=0,
            lower_bound_ms=lower, upper_bound_ms=upper,
            left_key_source="r[1]", right_key_source="r[1]",
            field_names=["lt", "lid", "rt", "rid"])
        sink, _ = wire(operator, ("sql-join-left", "sql-join-right"))
        return operator, sink

    def test_match_within_window(self):
        operator, sink = self._operator()
        operator.process(LEFT_PORT, [1000, "p"], 1000)
        operator.process(RIGHT_PORT, [1500, "p"], 1500)
        assert sink.rows == [([1000, "p", 1500, "p"], 1500)]

    def test_no_match_outside_window(self):
        operator, sink = self._operator(lower=100, upper=100)
        operator.process(LEFT_PORT, [1000, "p"], 1000)
        operator.process(RIGHT_PORT, [2000, "p"], 2000)
        assert sink.rows == []

    def test_asymmetric_window(self):
        # left may lag right by up to 1s but lead by at most 0
        operator, sink = self._operator(lower=1000, upper=0)
        operator.process(LEFT_PORT, [1000, "p"], 1000)
        operator.process(RIGHT_PORT, [1500, "p"], 1500)   # l - r = -500 ok
        operator.process(LEFT_PORT, [2000, "q"], 2000)
        operator.process(RIGHT_PORT, [1500, "q"], 1500)   # l - r = +500 > 0
        assert [row for row, _ in sink.rows] == [[1000, "p", 1500, "p"]]

    def test_key_mismatch(self):
        operator, sink = self._operator()
        operator.process(LEFT_PORT, [1000, "p"], 1000)
        operator.process(RIGHT_PORT, [1000, "q"], 1000)
        assert sink.rows == []

    def test_multiple_matches(self):
        operator, sink = self._operator()
        operator.process(LEFT_PORT, [1000, "p"], 1000)
        operator.process(LEFT_PORT, [1200, "p"], 1200)
        operator.process(RIGHT_PORT, [1500, "p"], 1500)
        assert len(sink.rows) == 2

    def test_expired_rows_purged(self):
        operator, sink = self._operator(lower=100, upper=100)
        operator.process(LEFT_PORT, [1000, "p"], 1000)
        operator.process(LEFT_PORT, [5000, "p"], 5000)  # purges the first
        operator.process(RIGHT_PORT, [1050, "p"], 1050)
        # 1000 was purged by the 5000 arrival, so only in-window candidates
        # remain; 5000 is out of window for 1050
        assert sink.rows == []

    def test_state_size_counter_tracks_buffer_and_purge(self):
        operator, _ = self._operator(lower=100, upper=100)
        operator.process(LEFT_PORT, [1000, "p"], 1000)
        operator.process(RIGHT_PORT, [1050, "p"], 1050)
        assert operator.state_size() == 2
        operator.process(LEFT_PORT, [5000, "p"], 5000)  # purges left@1000
        assert operator.state_size() == 2

    def test_state_size_restored_after_restart(self):
        stores = ("sql-join-left", "sql-join-right")
        context, _ = make_context(stores)

        def fresh():
            operator = StreamStreamJoinOperator(
                left_width=2, right_width=2,
                condition_source="(l[1] == r[1])",
                left_time_index=0, right_time_index=0,
                lower_bound_ms=2000, upper_bound_ms=2000,
                left_key_source="r[1]", right_key_source="r[1]",
                field_names=["lt", "lid", "rt", "rid"])
            operator.downstream = Sink()
            operator.setup(context)
            return operator

        first = fresh()
        first.process(LEFT_PORT, [1000, "p"], 1000)
        first.process(LEFT_PORT, [1100, "q"], 1100)
        first.process(RIGHT_PORT, [1200, "p"], 1200)
        assert first.state_size() == 3
        # a restart re-reads the same stores
        assert fresh().state_size() == 3


class TestMultiWayStreamJoinOperator:
    STORES = ("sql-mjoin-0", "sql-mjoin-1", "sql-mjoin-2")

    def _make(self, bound=2000, bucket_ms=500):
        k = 3
        upper = [[0 if i == j else bound for j in range(k)] for i in range(k)]
        return MultiWayStreamJoinOperator(
            widths=[2, 2, 2], time_indexes=[0, 0, 0],
            key_sources=["r[1]", "r[1]", "r[1]"],
            upper_bounds_ms=upper,
            probe_orders=[[1, 2], [0, 2], [0, 1]],
            condition_source="((p0[1] == p1[1]) and (p1[1] == p2[1]))",
            bucket_ms=bucket_ms,
            field_names=["t0", "k0", "t1", "k1", "t2", "k2"])

    def _operator(self, **kwargs):
        operator = self._make(**kwargs)
        sink, _ = wire(operator, self.STORES)
        return operator, sink

    def test_emits_when_last_side_arrives(self):
        operator, sink = self._operator()
        operator.process(0, [1000, "p"], 1000)
        operator.process(1, [1400, "p"], 1400)
        assert sink.rows == []  # inner join: no output until all sides match
        operator.process(2, [1800, "p"], 1800)
        assert sink.rows == [([1000, "p", 1400, "p", 1800, "p"], 1800)]

    def test_any_arrival_order_completes_the_match(self):
        operator, sink = self._operator()
        operator.process(2, [1800, "p"], 1800)
        operator.process(0, [1000, "p"], 1000)
        operator.process(1, [1400, "p"], 1400)
        assert [row for row, _ in sink.rows] == [[1000, "p", 1400, "p",
                                                  1800, "p"]]

    def test_fan_out_emits_all_combinations(self):
        operator, sink = self._operator()
        operator.process(0, [1000, "p"], 1000)
        operator.process(0, [1100, "p"], 1100)
        operator.process(1, [1400, "p"], 1400)
        operator.process(2, [1800, "p"], 1800)
        assert len(sink.rows) == 2

    def test_key_mismatch_blocks_match(self):
        operator, sink = self._operator()
        operator.process(0, [1000, "p"], 1000)
        operator.process(1, [1400, "q"], 1400)
        operator.process(2, [1800, "p"], 1800)
        assert sink.rows == []

    def test_out_of_window_side_blocks_match(self):
        operator, sink = self._operator(bound=500)
        operator.process(0, [1000, "p"], 1000)
        operator.process(1, [1400, "p"], 1400)
        operator.process(2, [5000, "p"], 5000)
        assert sink.rows == []

    def test_purge_waits_for_all_other_watermarks(self):
        """A side whose consumers lag must not lose rows: port 0's buffer
        only drains once BOTH other ports' watermarks pass the horizon."""
        operator, sink = self._operator(bound=500, bucket_ms=100)
        operator.process(0, [1000, "p"], 1000)
        # port 1 races far ahead: still no purge (port 2 unseen)
        operator.process(1, [50_000, "x"], 50_000)
        assert operator.state_size() == 2
        operator.process(2, [50_000, "y"], 50_000)  # now both passed
        assert operator.state_size() == 2  # port 0's old row dropped
        stored = [key for key, _ in operator._stores[0].all()]
        assert stored == []  # store entries deleted with the bucket

    def test_late_match_found_despite_own_side_racing_ahead(self):
        """The failure mode of per-side purge: port 0 buffers a row, port
        0's own stream races ahead, and the matching rows arrive later on
        the other ports.  Watermark-based purge keeps the row alive."""
        operator, sink = self._operator()
        operator.process(0, [1000, "p"], 1000)
        operator.process(0, [60_000, "z"], 60_000)  # own side far ahead
        operator.process(1, [1400, "p"], 1400)
        operator.process(2, [1800, "p"], 1800)
        assert [row for row, _ in sink.rows] == [[1000, "p", 1400, "p",
                                                  1800, "p"]]

    def test_state_restored_after_restart(self):
        context, _ = make_context(self.STORES)
        first = self._make()
        first.downstream = Sink()
        first.setup(context)
        first.process(0, [1000, "p"], 1000)
        first.process(1, [1400, "p"], 1400)

        second = self._make()
        sink = Sink()
        second.downstream = sink
        second.setup(context)
        assert second.state_size() == 2
        second.process(2, [1800, "p"], 1800)  # matches pre-restart rows
        assert [row for row, _ in sink.rows] == [[1000, "p", 1400, "p",
                                                  1800, "p"]]

    def test_partial_flush_guard_on_restore(self):
        """A row entry flushed ahead of its bucket's index record (crash
        mid-commit) is ignored on restore; replay regenerates it."""
        context, _ = make_context(self.STORES)
        first = self._make()
        first.downstream = Sink()
        first.setup(context)
        first.process(0, [1000, "p"], 1000)
        # simulate an orphan row entry past the index record's seq fence
        bucket_id = 1000 // first.bucket_ms
        context.get_store("sql-mjoin-0").put(
            ("r", bucket_id, 999), ["p", 1010, [1010, "p"]])

        second = self._make()
        second.downstream = Sink()
        second.setup(context)
        assert second.state_size() == 1

    def test_batch_path_equivalent_to_single(self):
        arrivals = []
        for pid in ("a", "b"):
            base = 1000 if pid == "a" else 3000
            arrivals += [(0, [base, pid]), (0, [base + 100, pid]),
                         (1, [base + 400, pid]), (2, [base + 800, pid])]

        single = self._make()
        single_sink, _ = wire(single, self.STORES)
        for port, row in arrivals:
            single.process(port, row, row[0])

        batched = self._make()
        batch_sink, _ = wire(batched, self.STORES)
        index = 0
        while index < len(arrivals):  # one batch per run of same-port rows
            port = arrivals[index][0]
            run = []
            while index < len(arrivals) and arrivals[index][0] == port:
                run.append(arrivals[index][1])
                index += 1
            batched.process_batch(port, run, [row[0] for row in run])

        assert batch_sink.rows == single_sink.rows
        assert batched.state_size() == single.state_size()
        assert batched.emitted == single.emitted


class TestBatchEquivalence:
    """``process_batch`` must be observationally identical to looping
    ``process`` — same downstream rows, timestamps, and counters — for
    every vectorized override and for the base-class default."""

    ORDERS = [{"rowtime": 1000 + i, "productId": i % 10,
               "orderId": i, "units": (i * 7) % 100} for i in range(50)]

    @staticmethod
    def _drain(make_operator, feed_single, feed_batch, store_names=()):
        single_op = make_operator()
        single_sink, single_sent = wire(single_op, store_names)
        feed_single(single_op)
        batch_op = make_operator()
        batch_sink, batch_sent = wire(batch_op, store_names)
        feed_batch(batch_op)
        assert batch_sink.rows == single_sink.rows
        assert batch_sent == single_sent
        assert batch_op.processed == single_op.processed
        assert batch_op.emitted == single_op.emitted

    def _check(self, make_operator, rows, timestamps, store_names=()):
        def feed_single(op):
            for row, ts in zip(rows, timestamps):
                op.process(0, row, ts)

        def feed_batch(op):
            op.process_batch(0, list(rows), list(timestamps))

        self._drain(make_operator, feed_single, feed_batch, store_names)

    def test_scan(self):
        self._check(
            lambda: ScanOperator("Orders",
                                 ["rowtime", "productId", "orderId", "units"], 0),
            self.ORDERS, [0] * len(self.ORDERS))

    def test_scan_without_rowtime(self):
        self._check(lambda: ScanOperator("Orders", ["units"], None),
                    self.ORDERS, [7000 + i for i in range(len(self.ORDERS))])

    def test_filter(self):
        rows = [[o["rowtime"], o["units"]] for o in self.ORDERS]
        self._check(lambda: FilterOperator("(r[1] > 50)"),
                    rows, [o["rowtime"] for o in self.ORDERS])

    def test_project(self):
        rows = [[o["rowtime"], o["units"]] for o in self.ORDERS]
        self._check(lambda: ProjectOperator("[r[0], r[1] * 2]",
                                            ["rowtime", "doubled"]),
                    rows, [o["rowtime"] for o in self.ORDERS])

    def test_fused_scan(self):
        self._check(
            lambda: FusedScanOperator(
                "Orders", ["rowtime", "units"], rowtime_index=0,
                predicate_source="(r['units'] > 50)",
                projection_source="[r['rowtime'], r['units'] * 2]",
                output_field_names=["rowtime", "doubled"]),
            self.ORDERS, [0] * len(self.ORDERS))

    def test_insert(self):
        rows = [[o["rowtime"], o["orderId"], o["units"]] for o in self.ORDERS]
        self._check(
            lambda: InsertOperator("Out", ["rowtime", "orderId", "units"],
                                   rowtime_index=0, key_field_indexes=[1]),
            rows, [0] * len(rows))

    def test_insert_buffered_flush(self):
        """Buffered mode sends nothing until flush, then exactly the same
        records the unbuffered operator sent immediately."""
        rows = [[o["rowtime"], o["units"]] for o in self.ORDERS]
        timestamps = [0] * len(rows)

        plain = InsertOperator("Out", ["rowtime", "units"], rowtime_index=0)
        context, sent_plain = make_context()
        plain.setup(context)
        plain.process_batch(0, rows, timestamps)

        buffered = InsertOperator("Out", ["rowtime", "units"], rowtime_index=0)
        context, sent_buffered = make_context()
        buffered.setup(context)
        buffered.set_buffering(True)
        buffered.process_batch(0, rows, timestamps)
        assert sent_buffered == []          # held until the task flushes
        buffered.flush()
        assert sent_buffered == sent_plain

    def test_sliding_window_range_frame(self):
        """The stateful batch override must match the per-message path row
        for row, including the incremental MIN/MAX deque results across
        purges."""
        rows = [[o["rowtime"], o["productId"], o["units"]] for o in self.ORDERS]
        self._check(
            lambda: SlidingWindowOperator(
                partition_key_source="[r[1]]", order_source="r[0]",
                frame_mode="RANGE", preceding_ms=20,
                preceding_rows=None,
                aggs=[AggSpec(func="SUM", arg_source="r[2]"),
                      AggSpec(func="COUNT", arg_source=None),
                      AggSpec(func="MIN", arg_source="r[2]"),
                      AggSpec(func="MAX", arg_source="r[2]"),
                      AggSpec(func="AVG", arg_source="r[2]")],
                field_names=["rowtime", "productId", "units",
                             "s", "c", "mn", "mx", "a"]),
            rows, [o["rowtime"] for o in self.ORDERS],
            store_names=("sql-window-messages", "sql-window-state"))

    def test_sliding_window_rows_frame(self):
        rows = [[o["rowtime"], o["productId"], o["units"]] for o in self.ORDERS]
        self._check(
            lambda: SlidingWindowOperator(
                partition_key_source="[r[1]]", order_source="r[0]",
                frame_mode="ROWS", preceding_ms=None, preceding_rows=2,
                aggs=[AggSpec(func="SUM", arg_source="r[2]"),
                      AggSpec(func="MIN", arg_source="r[2]")],
                field_names=["rowtime", "productId", "units", "s", "mn"]),
            rows, [o["rowtime"] for o in self.ORDERS],
            store_names=("sql-window-messages", "sql-window-state"))

    def test_stream_stream_join(self):
        """Per-port batches in the same port order as the single feed must
        match — including matches against rows buffered earlier in the
        same batch."""
        left = [[1000 + i * 10, f"p{i % 3}"] for i in range(20)]
        right = [[1005 + i * 10, f"p{i % 3}"] for i in range(20)]

        def make_operator():
            return StreamStreamJoinOperator(
                left_width=2, right_width=2,
                condition_source="(l[1] == r[1])",
                left_time_index=0, right_time_index=0,
                lower_bound_ms=40, upper_bound_ms=40,
                left_key_source="r[1]", right_key_source="r[1]",
                field_names=["lt", "lid", "rt", "rid"])

        def feed_single(op):
            for row in left:
                op.process(LEFT_PORT, row, row[0])
            for row in right:
                op.process(RIGHT_PORT, row, row[0])

        def feed_batch(op):
            op.process_batch(LEFT_PORT, list(left), [r[0] for r in left])
            op.process_batch(RIGHT_PORT, list(right), [r[0] for r in right])

        self._drain(make_operator, feed_single, feed_batch,
                    ("sql-join-left", "sql-join-right"))

    def test_group_window(self):
        """Watermark advancement and closed-window emission inside a batch
        must match the per-message sequence exactly (lateness decisions
        included)."""
        rows = [[(i * 37) % 500, f"k{i % 4}", i] for i in range(60)]
        self._check(
            lambda: GroupWindowAggOperator(
                window_kind="TUMBLE", time_source="r[0]", emit_ms=100,
                retain_ms=100, align_ms=0, group_key_source="[r[1]]",
                aggs=[AggSpec(func="COUNT", arg_source=None),
                      AggSpec(func="SUM", arg_source="r[2]"),
                      AggSpec(func="MIN", arg_source="r[2]"),
                      AggSpec(func="MAX", arg_source="r[2]")],
                field_names=["wstart", "wend", "key", "c", "s", "mn", "mx"]),
            rows, [r[0] for r in rows],
            store_names=("sql-group-windows",))

    def test_group_window_late_dropped_matches(self):
        rows = [[(i * 37) % 500, f"k{i % 4}", i] for i in range(60)]

        def make_operator():
            return GroupWindowAggOperator(
                window_kind="HOP", time_source="r[0]", emit_ms=50,
                retain_ms=120, align_ms=0, group_key_source="[r[1]]",
                aggs=[AggSpec(func="COUNT", arg_source=None)],
                field_names=["wstart", "wend", "key", "c"])

        single = make_operator()
        wire(single, ("sql-group-windows",))
        for row in rows:
            single.process(0, row, row[0])
        batched = make_operator()
        wire(batched, ("sql-group-windows",))
        batched.process_batch(0, list(rows), [r[0] for r in rows])
        assert batched.late_dropped == single.late_dropped
