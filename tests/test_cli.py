"""Tests for the interactive shell (driven programmatically)."""

import io

import pytest

from repro.samzasql.cli import SamzaSQLCli, build_default_shell


@pytest.fixture
def cli():
    out = io.StringIO()
    shell, runner = build_default_shell()
    cli = SamzaSQLCli(shell, runner, out=out)
    cli.out_buffer = out
    return cli


def output_of(cli) -> str:
    return cli.out_buffer.getvalue()


class TestReplMechanics:
    def test_multiline_statement_buffering(self, cli):
        cli.process_line("!demo")
        cli.process_line("SELECT productId, COUNT(*) AS c")
        assert cli.prompt == cli.CONTINUATION
        cli.process_line("FROM Orders GROUP BY productId;")
        assert cli.prompt == cli.PROMPT
        assert "row(s)" in output_of(cli)

    def test_blank_lines_ignored(self, cli):
        cli.process_line("")
        cli.process_line("   ")
        assert cli.prompt == cli.PROMPT

    def test_quit(self, cli):
        cli.process_line("!quit")
        assert cli.done

    def test_unknown_command(self, cli):
        cli.process_line("!frobnicate")
        assert "unknown command" in output_of(cli)

    def test_error_reported_not_raised(self, cli):
        cli.process_line("SELECT * FROM Missing;")
        assert "ERROR" in output_of(cli)

    def test_parse_error_reported(self, cli):
        cli.process_line("SELEC oops;")
        assert "ERROR" in output_of(cli)


class TestCommands:
    def test_demo_then_tables(self, cli):
        cli.process_line("!demo")
        cli.process_line("!tables")
        text = output_of(cli)
        assert "orders" in text
        assert "products" in text

    def test_demo_idempotent(self, cli):
        cli.process_line("!demo")
        cli.process_line("!demo")
        assert "already loaded" in output_of(cli)

    def test_explain(self, cli):
        cli.process_line("!demo")
        cli.process_line("!explain SELECT STREAM * FROM Orders WHERE units > 50")
        assert "LogicalFilter" in output_of(cli)

    def test_batch_query_prints_table(self, cli):
        cli.process_line("!demo")
        cli.process_line("SELECT productId, COUNT(*) AS c FROM Orders "
                         "GROUP BY productId;")
        text = output_of(cli)
        assert "productId" in text
        assert "20 row(s)" in text

    def test_streaming_query_lifecycle(self, cli):
        cli.process_line("!demo")
        cli.process_line("SELECT STREAM * FROM Orders WHERE units > 50;")
        assert "started streaming query #1" in output_of(cli)
        cli.process_line("!run")
        assert "cluster idle" in output_of(cli)
        cli.process_line("!results 1")
        assert "row(s)" in output_of(cli)
        cli.process_line("!queries")
        assert "#1" in output_of(cli)

    def test_results_bad_index(self, cli):
        cli.process_line("!results 7")
        assert "usage" in output_of(cli)

    def test_view_creation(self, cli):
        cli.process_line("!demo")
        cli.process_line("CREATE VIEW Big AS SELECT * FROM Orders WHERE units > 50;")
        assert "view created" in output_of(cli)
        cli.process_line("SELECT COUNT(*) AS c FROM Big;")
        assert "c" in output_of(cli)

    def test_warning_surfaced(self, cli):
        cli.process_line("!demo")
        cli.process_line("SELECT STREAM orderId FROM Orders;")
        assert "WARNING" in output_of(cli)
        assert "rowtime" in output_of(cli)


class TestServingCommands:
    """The front-door surface: sessions, virtual tables, structured errors."""

    def test_errors_carry_code_and_position(self, cli):
        cli.process_line("SELECT * FROM Missing;")
        text = output_of(cli)
        assert "[TABLE_NOT_FOUND]" in text
        assert "line 1" in text

    def test_parse_error_structured(self, cli):
        cli.process_line("SELEC oops;")
        text = output_of(cli)
        assert "[PARSE_ERROR]" in text
        assert "column 1" in text

    def test_vt_create_list_drop(self, cli):
        cli.process_line("!vt source retail")
        cli.process_line("!vt create retail Clicks orders")
        cli.process_line("!vt list")
        text = output_of(cli)
        assert "created retail.Clicks" in text
        assert "retail.Clicks: stream over topic 'Clicks'" in text
        cli.process_line("!vt drop Clicks")
        assert "dropped retail.Clicks" in output_of(cli)

    def test_vt_create_table_kind_with_key(self, cli):
        cli.process_line("!vt source retail")
        cli.process_line("!vt create retail Prods products table productId")
        assert "created retail.Prods (table)" in output_of(cli)

    def test_vt_duplicate_reports_structured_error(self, cli):
        cli.process_line("!vt source retail")
        cli.process_line("!vt create retail Clicks orders")
        cli.process_line("!vt create retail Clicks orders")
        assert "[DUPLICATE_TABLE]" in output_of(cli)

    def test_vt_unknown_source_reports_structured_error(self, cli):
        cli.process_line("!vt create nowhere Clicks orders")
        assert "[DATASOURCE_NOT_FOUND]" in output_of(cli)

    def test_vt_drop_while_query_running_refused(self, cli):
        cli.process_line("!vt source retail")
        cli.process_line("!vt create retail Clicks orders")
        cli.process_line("SELECT STREAM rowtime FROM Clicks;")
        cli.process_line("!vt drop Clicks")
        assert "[TABLE_IN_USE]" in output_of(cli)

    def test_connect_switches_session_and_set_persists(self, cli):
        cli.process_line("!connect alice etl")
        assert "connected: session alice/etl" in output_of(cli)
        cli.process_line("!set region emea")
        cli.process_line("!connect bob")
        cli.process_line("!connect alice etl")  # reconnect: same session
        cli.process_line("!session")
        text = output_of(cli)
        assert "region = emea" in text

    def test_sessions_listing(self, cli):
        cli.process_line("!connect alice one")
        cli.process_line("!connect bob two")
        cli.process_line("!sessions")
        text = output_of(cli)
        assert "alice/one" in text
        assert "bob/two" in text
        assert "local/main" in text

    def test_queries_still_run_through_front_door(self, cli):
        cli.process_line("!demo")
        cli.process_line("SELECT STREAM * FROM Orders WHERE units > 50;")
        assert "started streaming query #1" in output_of(cli)
