"""Decentralized data plane: worker↔worker routing, backpressure, rebalance.

The tentpole contract under test: in a Kappa-style pipeline (query 2
consumes query 1's output topic), the intermediate topic is
*owner-sequenced* — keyed traffic flows shard-to-shard over peer links
and the parent process moves **zero** routed-data bytes in steady state.
Credit-based backpressure bounds every link's memory, and a SIGKILLed
owner's partitions reassign to a replacement incarnation without
restarting the surviving workers (elastic rebalance).

Unit coverage for the peer protocol itself (credit plateau, retention,
dedup by restored watermark, epoch fencing) lives alongside, driven
in-process against a real AF_UNIX listener.
"""

import json

import pytest

from repro.kafka.routing import RouteEntry, RouteTable
from repro.parallel.frames import (
    decode_data_payload,
    decode_frame,
    encode_data_payload,
    encode_frame,
    pack_msgs,
    unpack_msgs,
)
from repro.parallel.peer import (
    DEFAULT_CREDIT_BYTES,
    MIN_CREDIT_BYTES,
    PeerEndpoint,
    PeerLink,
    wait_for,
)

from tests.samzasql_fixtures import Deployment

PARALLEL = {"cluster.parallel.execution": "true"}


@pytest.fixture(autouse=True)
def parallel_mode(monkeypatch):
    """Parallel-clock Deployments, with forked workers reaped per test."""
    instances = []
    original_init = Deployment.__init__

    def tracking_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        instances.append(self)

    monkeypatch.setattr(Deployment, "default_overrides", dict(PARALLEL))
    monkeypatch.setattr(Deployment, "__init__", tracking_init)
    yield
    for deployment in instances:
        for master in deployment.runner.masters():
            if not master.finished:
                master.finish()


def execute(deployment, sql, containers=2, overrides=None):
    """Submit without quiescing — workers must not fork before the whole
    pipeline is registered, or the intermediate topic could not flip to
    owner-sequenced."""
    merged = dict(PARALLEL)
    merged.update(overrides or {})
    return deployment.shell.execute(sql, containers=containers,
                                    config_overrides=merged)


Q1 = ("SELECT STREAM rowtime, productId, orderId, units FROM Orders "
      "WHERE units > 50")
Q2 = ("SELECT STREAM rowtime, productId, orderId, units FROM BigOrders "
      "WHERE units < 90")


def build_pipeline(deployment, q1_overrides=None, q2_overrides=None):
    q1 = execute(deployment, Q1, overrides=q1_overrides)
    deployment.shell.register_derived_stream("BigOrders", q1)
    q2 = execute(deployment, Q2, overrides=q2_overrides)
    return q1, q2


def expected_ids(ids):
    return {i for i in ids if 50 < (i * 7) % 100 < 90}


def all_links(coordinator):
    return [link
            for worker in coordinator.peer_link_stats().values()
            for link in worker.get("links", {}).values()]


# -- tentpole: zero routed-data bytes through the parent ----------------------


class TestPeerRoutedPipeline:
    def test_steady_state_moves_no_routed_bytes_through_parent(self):
        deployment = Deployment(partitions=4).with_orders(0)
        q1, q2 = build_pipeline(deployment)
        c1 = q1.master.parallel_coordinator
        mesh = c1.mesh
        # Registration alone flips the intermediate topic to
        # owner-sequenced: both coordinators exist, neither has forked.
        assert q1.output_stream in mesh.owner_sequenced

        # Two waves: the first is inherited by the fork baseline, the
        # second exercises live input forwarding into running workers.
        deployment.feed_orders(150)
        deployment.runner.run_until_quiescent(max_iterations=1_000_000)
        deployment.feed_orders(150, start_ts=2_000_000, start_id=150)
        deployment.runner.run_until_quiescent(max_iterations=1_000_000)

        # The parent sequenced no worker-produced routed traffic: every
        # intermediate byte went worker->worker over peer links.
        assert mesh.routed_data_bytes == 0
        assert mesh.forwarded_input_bytes > 0   # source topic, parent-fed
        assert mesh.mirror_data_bytes > 0       # durability still flows
        links = all_links(c1)
        assert links
        assert sum(link["sent_bytes"] for link in links) > 0
        assert all(link["outstanding"] == 0 for link in links)

        results = q2.results()
        assert {r["orderId"] for r in results} == expected_ids(range(300))
        assert all(50 < r["units"] < 90 for r in results)

    def test_route_table_covers_every_intermediate_partition(self):
        deployment = Deployment(partitions=4).with_orders(0)
        q1, q2 = build_pipeline(deployment)
        mesh = q1.master.parallel_coordinator.mesh
        topic = q1.output_stream
        owners = set()
        for partition in range(4):
            entry = mesh.routes.owner(topic, partition)
            assert entry is not None
            assert entry.gid.startswith(q2.master.job.name)
            owners.add(entry.gid)
        assert len(owners) == 2  # two containers, two shard-owner groups
        deployment.feed_orders(40)
        deployment.runner.run_until_quiescent(max_iterations=1_000_000)
        assert {r["orderId"] for r in q2.results()} == expected_ids(range(40))


# -- backpressure -------------------------------------------------------------


class TestBackpressure:
    def test_small_credit_window_bounds_memory_without_deadlock(self):
        """A tiny credit window forces the producers to plateau instead of
        buffering without bound, while mid-run commit barriers exercise
        the drain gate — the run must still quiesce (no deadlock) and
        produce exact results."""
        credit = 2048
        deployment = Deployment(partitions=4).with_orders(0)
        q1, q2 = build_pipeline(deployment, q1_overrides={
            "cluster.parallel.link.credit.bytes": credit,
            "task.checkpoint.interval.messages": 50,
        })
        deployment.feed_orders(600)
        deployment.runner.run_until_quiescent(max_iterations=1_000_000)

        sender_links = all_links(q1.master.parallel_coordinator)
        assert sender_links
        # Frames are capped at the window, so in-flight bytes can never
        # exceed it — the per-link memory bound.
        assert all(link["max_inflight_bytes"] <= credit
                   for link in sender_links)
        assert all(link["outstanding"] == 0 for link in sender_links)
        assert sum(link["sent_frames"] for link in sender_links) > len(
            sender_links)  # the window actually split the traffic

        # Receiver inbound queues are bounded by the senders' windows.
        sender_groups = len(q1.master.parallel_coordinator.peer_link_stats())
        assert sender_groups == 2
        for worker in (
                q2.master.parallel_coordinator.peer_link_stats().values()):
            inbound = worker.get("inbound", {})
            assert inbound.get("max_queued_bytes", 0) <= sender_groups * credit

        results = q2.results()
        assert {r["orderId"] for r in results} == expected_ids(range(600))


# -- elastic rebalance --------------------------------------------------------


class TestElasticRebalance:
    def test_owner_kill_reassigns_without_restarting_survivors(self):
        deployment = Deployment(partitions=4).with_orders(0)
        q1, q2 = build_pipeline(deployment)
        c1 = q1.master.parallel_coordinator
        c2 = q2.master.parallel_coordinator
        mesh = c1.mesh

        deployment.feed_orders(200)
        deployment.runner.run_until_quiescent(max_iterations=1_000_000)
        survivor_pids = {h.process.pid for h in c1.handles.values()}
        assert len(survivor_pids) == 2
        incarnations_before = dict(mesh.gid_incarnation)

        # SIGKILL a shard owner mid-pipeline, then feed a second wave so
        # the replacement (and the retargeted senders) have real work.
        victim = c2.kill_worker()
        assert victim is not None
        deployment.feed_orders(150, start_ts=2_000_000, start_id=500)
        deployment.runner.run_until_quiescent(max_iterations=1_000_000)

        # The consumer job rebalanced; the producer job never restarted.
        assert c2.relaunches >= 1
        assert c1.relaunches == 0
        assert {h.process.pid for h in c1.handles.values()} == survivor_pids
        # The replacement runs under a bumped incarnation (epoch fencing).
        assert any(
            incarnation > incarnations_before.get(gid, 0)
            for gid, incarnation in mesh.gid_incarnation.items()
            if gid.startswith(q2.master.job.name))
        # Rebalance kept the data plane decentralized throughout.
        assert mesh.routed_data_bytes == 0

        results = q2.results()
        ids = {r["orderId"] for r in results}
        assert expected_ids(range(200)) <= ids
        assert expected_ids(range(500, 650)) <= ids
        assert ids <= expected_ids(range(200)) | expected_ids(range(500, 650))
        # At-least-once: duplicates allowed, inconsistencies are not.
        by_id = {}
        for r in results:
            previous = by_id.setdefault(r["orderId"], r)
            assert previous == r

    def test_kill_burst_during_rebalance_stays_at_least_once(self):
        """A burst of SIGKILLs via the chaos supervisor: the second kill
        lands while the mesh is still settling from the first.  Epoch
        fencing + checkpoint replay must keep the pipeline at-least-once
        with the parent still moving zero routed-data bytes."""
        from repro.chaos.faults import FaultInjector, FaultSchedule
        from repro.chaos.supervisor import ChaosSupervisor

        deployment = Deployment(partitions=4).with_orders(0)
        q1, q2 = build_pipeline(deployment)
        schedule = FaultSchedule.script().add_worker_kill_burst(
            3, count=2, spacing=2)
        assert schedule.worker_kills == (3, 5)
        injector = FaultInjector(schedule, clock=deployment.clock)
        supervisor = ChaosSupervisor(deployment.runner, injector)

        deployment.feed_orders(200)
        supervisor.run_until_quiescent(max_iterations=1_000_000)

        assert supervisor.worker_kills == 2
        assert q1.master.parallel_coordinator.mesh.routed_data_bytes == 0
        results = q2.results()
        ids = {r["orderId"] for r in results}
        assert expected_ids(range(200)) <= ids
        by_id = {}
        for r in results:
            previous = by_id.setdefault(r["orderId"], r)
            assert previous == r


# -- peer protocol unit tests -------------------------------------------------


class TestPeerLinkProtocol:
    def _pump(self, endpoint, link):
        def step():
            endpoint.service()
            endpoint.publish_mirrored()
            link.service_acks()
            link.flush(encode_frame)
        return step

    def test_credit_plateau_then_drain(self, tmp_path):
        """A consumer that never services: in-flight bytes plateau at the
        window and flushes wait instead of buffering at the receiver."""
        credit = 256
        applied = []
        endpoint = PeerEndpoint("b:g0", 1, str(tmp_path / "b.1"),
                                applied.append)
        link = PeerLink("a:g0", 1, "b:g0", endpoint.address, 1,
                        credit_bytes=credit)
        for i in range(100):
            link.produce("t", i % 4, 4, (0, i, b"key", b"v" * 16))
        for _ in range(20):
            link.flush(encode_frame)
            link.service_acks()
        assert link.inflight_bytes <= credit
        assert link.max_inflight_bytes <= credit
        assert link.credit_waits > 0
        assert link.outstanding_records == 100   # nothing applied yet
        assert not link.drained

        # Now the consumer wakes up: everything drains and is mirrored.
        assert wait_for(lambda: link.drained, self._pump(endpoint, link),
                        timeout_s=10)
        assert endpoint.stats()["max_queued_bytes"] <= credit
        assert endpoint.stats()["applied_records"] == 100
        total = sum(len(group[3])
                    for frame in applied
                    for group in decode_frame(frame))
        assert total == 100
        assert link.outstanding_records == 0
        endpoint.close()
        link.close()

    def test_receiver_restart_resends_unmirrored_frames(self, tmp_path):
        """Applied-but-unmirrored frames die with the receiver; retention
        makes the sender replay them to the replacement incarnation."""
        applied_old, applied_new = [], []
        old = PeerEndpoint("b:g0", 1, str(tmp_path / "b.1"),
                           applied_old.append)
        link = PeerLink("a:g0", 1, "b:g0", old.address, 1)
        for i in range(10):
            link.produce("t", 0, 1, (0, i, b"k", b"v%d" % i))
        link.flush(encode_frame)

        def pump_no_mirror():
            old.service()
            link.service_acks()
            link.flush(encode_frame)
        assert wait_for(lambda: link.outstanding_records == 0,
                        pump_no_mirror, timeout_s=10)
        # Applied everywhere, mirrored nowhere: retention must hold.
        assert link.retained_frames > 0
        old.close()

        # Replacement with NO restored watermark (nothing was durable):
        # the resent frames are fresh and get re-applied.
        new = PeerEndpoint("b:g0", 2, str(tmp_path / "b.2"),
                           applied_new.append)
        link.retarget(new.address, 2)
        assert wait_for(lambda: link.drained, self._pump(new, link),
                        timeout_s=10)
        records = [r for frame in applied_new
                   for group in decode_frame(frame) for r in group[3]]
        assert len(records) == 10
        new.close()
        link.close()

    def test_restored_watermark_dedups_resend(self, tmp_path):
        """A replacement that restored the mirrored watermark drops the
        whole resend — at-least-once without double-apply."""
        applied_old, applied_new = [], []
        old = PeerEndpoint("b:g0", 1, str(tmp_path / "b.1"),
                           applied_old.append)
        link = PeerLink("a:g0", 1, "b:g0", old.address, 1)
        for i in range(10):
            link.produce("t", 0, 1, (0, i, b"k", b"v%d" % i))
        link.flush(encode_frame)

        def pump_no_mirror():
            old.service()
            link.service_acks()
            link.flush(encode_frame)
        assert wait_for(lambda: link.outstanding_records == 0,
                        pump_no_mirror, timeout_s=10)
        watermark = old.applied_watermarks()
        assert watermark["a:g0"][0] == 1
        old.close()

        new = PeerEndpoint("b:g0", 2, str(tmp_path / "b.2"),
                           applied_new.append, watermarks=watermark)
        link.retarget(new.address, 2)
        assert wait_for(lambda: link.drained, self._pump(new, link),
                        timeout_s=10)
        assert applied_new == []
        assert new.stats()["applied_records"] == 0
        new.close()
        link.close()

    def test_stale_sender_epoch_is_fenced(self, tmp_path):
        """Frames from an epoch older than the receiver's watermark are
        dropped (the replacement sender replays them itself) — but still
        credited, so the stale sender cannot wedge either side."""
        applied = []
        endpoint = PeerEndpoint("b:g0", 1, str(tmp_path / "b.1"),
                                applied.append,
                                watermarks={"a:g0": [2, 5]})
        stale = PeerLink("a:g0", 1, "b:g0", endpoint.address, 1)
        for i in range(5):
            stale.produce("t", 0, 1, (0, i, b"k", b"v"))
        stale.flush(encode_frame)
        assert wait_for(lambda: stale.outstanding_records == 0,
                        self._pump(endpoint, stale), timeout_s=10)
        assert applied == []
        assert endpoint.stats()["applied_records"] == 0
        endpoint.close()
        stale.close()


# -- route table + frame codec additions --------------------------------------


class TestAdaptiveCredit:
    """tune_windows(): per-status-round EWMA sizing of the credit window."""

    def test_window_retunes_from_applied_ewma(self, tmp_path):
        applied = []
        endpoint = PeerEndpoint("b:g0", 1, str(tmp_path / "b.1"),
                                applied.append)
        link = PeerLink("a:g0", 1, "b:g0", endpoint.address, 1)
        assert link.credit_bytes == DEFAULT_CREDIT_BYTES

        # One busy round (~100 KiB applied), then a tune: the window
        # becomes 2× the EWMA — far below the 4 MiB default, above the
        # 64 KiB floor — and the sender learns it via the CREDIT message.
        for i in range(50):
            link.produce("t", i % 4, 4, (0, i, b"key", b"v" * 2048))
        link.flush(encode_frame)
        assert wait_for(lambda: endpoint.stats()["applied_records"] == 50,
                        endpoint.service, timeout_s=10)
        round_bytes = endpoint.stats()["applied_bytes"]
        endpoint.tune_windows()
        link.service_acks()
        assert link.credit_bytes == 2 * round_bytes
        assert MIN_CREDIT_BYTES < link.credit_bytes < DEFAULT_CREDIT_BYTES
        assert endpoint.credit_window("a:g0") == link.credit_bytes
        assert endpoint.stats()["credit_windows"]["a:g0"] == link.credit_bytes

        # Idle rounds decay the EWMA; the clamp holds at the floor.
        first_window = link.credit_bytes
        endpoint.tune_windows()
        link.service_acks()
        assert link.credit_bytes < first_window
        for _ in range(20):
            endpoint.tune_windows()
        link.service_acks()
        assert link.credit_bytes == MIN_CREDIT_BYTES
        endpoint.close()
        link.close()

    def test_shrunk_window_still_drains(self, tmp_path):
        """A retune mid-stream shrinks the window under the bytes already
        in flight; the sender's balance clamps at zero (never negative)
        and the link keeps draining on returned grants."""
        applied = []
        endpoint = PeerEndpoint("b:g0", 1, str(tmp_path / "b.1"),
                                applied.append)
        link = PeerLink("a:g0", 1, "b:g0", endpoint.address, 1)
        for i in range(200):
            link.produce("t", i % 4, 4, (0, i, b"key", b"v" * 512))
        link.flush(encode_frame)   # all in flight under the 4 MiB default
        assert link.inflight_bytes > MIN_CREDIT_BYTES
        # Frames queued (not applied) ⇒ the reader thread has registered
        # the connection, so the tune below can reach this sender.
        assert wait_for(lambda: endpoint.inbound_records == 200,
                        lambda: None, timeout_s=10)

        # Receiver has applied nothing yet → EWMA 0 → floor window.
        endpoint.tune_windows()
        link.service_acks()
        assert link.credit_bytes == MIN_CREDIT_BYTES
        assert link.credit_avail >= 0

        def pump():
            endpoint.service()
            endpoint.publish_mirrored()
            link.service_acks()
            link.flush(encode_frame)

        assert wait_for(lambda: link.drained, pump, timeout_s=10)
        assert endpoint.stats()["applied_records"] == 200
        assert link.credit_avail <= link.credit_bytes
        endpoint.close()
        link.close()


class TestRouteTable:
    def test_payload_round_trip(self):
        table = RouteTable(epoch=3)
        table.set_owner("t", 0, RouteEntry("j:g0", "/mesh/j-g0.1", 1))
        table.set_owner("t", 1, RouteEntry("j:g2", "/mesh/j-g2.2", 2))
        clone = RouteTable.from_payload(
            json.loads(json.dumps(table.to_payload())))
        assert clone.epoch == 3
        assert clone.owned_topics() == {"t"}
        assert clone.owner("t", 0) == RouteEntry("j:g0", "/mesh/j-g0.1", 1)
        assert clone.owner("t", 1).incarnation == 2
        assert clone.owner("t", 9) is None
        assert clone.owner("other", 0) is None
        assert clone.entries_for_gid("j:g2").address == "/mesh/j-g2.2"
        assert clone.entries_for_gid("missing") is None


class TestFrameCodecAdditions:
    def test_data_payload_round_trip_with_header(self):
        frame = encode_frame([("t", 0, 1, [(0, 5, b"k", b"v")])])
        header = {"ia": 7, "pa": {"j:g0": [1, 42]}}
        decoded_header, decoded_frame = decode_data_payload(
            encode_data_payload(header, frame))
        assert decoded_header == header
        assert decoded_frame == frame

    def test_data_payload_round_trip_without_header(self):
        frame = encode_frame([])
        decoded_header, decoded_frame = decode_data_payload(
            encode_data_payload(None, frame))
        assert decoded_header == {}
        assert decoded_frame == frame

    def test_pack_msgs_round_trip(self):
        msgs = [b"G" + b"\x01" + b"payload", b"s", b"", b"B" * 300]
        assert unpack_msgs(pack_msgs(msgs)) == msgs
