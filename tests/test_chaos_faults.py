"""Unit tests for the chaos subsystem: retry policy, fault schedules,
injector hook points, and the client-side resilience they exercise."""

import pytest

from repro.chaos import FaultInjector, FaultSchedule, RetryPolicy
from repro.chaos.faults import (
    CONTAINER_CRASH,
    FETCH_ERROR,
    LATENCY,
    PARTITION_UNAVAILABLE,
    PRODUCE_ERROR,
)
from repro.common import (
    Config,
    ConfigError,
    ContainerCrashError,
    RetryExhaustedError,
    TransientKafkaError,
    VirtualClock,
    ZkSessionExpiredError,
)
from repro.kafka import Consumer, KafkaCluster, Producer
from repro.kafka.message import TopicPartition
from repro.zk.client import ZkClient
from repro.zk.server import ZkServer


class TestRetryPolicy:
    def test_success_passes_through(self):
        policy = RetryPolicy(clock=VirtualClock(0))
        assert policy.call(lambda: 42) == 42
        assert policy.retry_count == 0

    def test_transient_errors_retried_until_success(self):
        clock = VirtualClock(0)
        policy = RetryPolicy(max_attempts=5, clock=clock)
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientKafkaError("hiccup")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(attempts) == 3
        assert policy.retry_count == 2
        assert policy.total_backoff_ms > 0
        assert clock.now_ms() > 0  # backoff slept through the injected clock

    def test_exhaustion_wraps_last_error(self):
        policy = RetryPolicy(max_attempts=3, clock=VirtualClock(0))
        calls = []

        def always_fails():
            calls.append(1)
            raise TransientKafkaError("still down")

        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(always_fails)
        assert len(calls) == 3
        assert isinstance(excinfo.value.__cause__, TransientKafkaError)
        assert policy.exhausted_count == 1

    def test_non_retryable_propagates_immediately(self):
        policy = RetryPolicy(clock=VirtualClock(0))

        def bad():
            raise ValueError("permanent")

        with pytest.raises(ValueError):
            policy.call(bad)
        assert policy.retry_count == 0

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_backoff_ms=10, multiplier=2.0,
                             max_backoff_ms=80, jitter=0.0,
                             clock=VirtualClock(0))
        assert [policy.backoff_ms(a) for a in range(1, 6)] == [10, 20, 40, 80, 80]

    def test_jitter_is_deterministic_per_seed(self):
        mk = lambda: RetryPolicy(base_backoff_ms=100, jitter=0.2, seed=7,
                                 clock=VirtualClock(0))
        a, b = mk(), mk()
        seq_a = [a.backoff_ms(1) for _ in range(5)]
        seq_b = [b.backoff_ms(1) for _ in range(5)]
        assert seq_a == seq_b
        assert all(80 <= d <= 120 for d in seq_a)

    def test_from_config_reads_task_retry_keys(self):
        config = Config({
            "task.retry.max.attempts": 4,
            "task.retry.backoff.ms": 5,
            "task.retry.max.backoff.ms": 50,
            "task.retry.backoff.multiplier": 3.0,
            "task.retry.backoff.jitter": 0.0,
        })
        policy = RetryPolicy.from_config(config, clock=VirtualClock(0))
        assert policy.max_attempts == 4
        assert [policy.backoff_ms(a) for a in range(1, 4)] == [5, 15, 45]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigError):
            RetryPolicy(base_backoff_ms=-1)


class TestFaultSchedule:
    def test_from_seed_is_deterministic(self):
        assert (FaultSchedule.from_seed(42).to_dict()
                == FaultSchedule.from_seed(42).to_dict())
        assert (FaultSchedule.from_seed(1).to_dict()
                != FaultSchedule.from_seed(2).to_dict())

    def test_from_seed_honours_counts(self):
        schedule = FaultSchedule.from_seed(
            7, transient_faults=6, latency_faults=2, crashes=2, zk_expiries=1)
        assert schedule.planned_transient_faults() == 6
        assert len(schedule.latency_ms) == 2
        assert len(schedule.crash_points) == 2
        assert len(schedule.zk_expiries) == 1

    def test_script_builder(self):
        schedule = (FaultSchedule.script()
                    .add_fetch_fault(3, 5)
                    .add_produce_fault(2)
                    .add_latency(4, 30)
                    .add_crash(10)
                    .add_zk_expiry(2)
                    .add_unavailability(6, 8, partition=1))
        assert schedule.fetch_faults == frozenset({3, 5})
        assert schedule.produce_faults == frozenset({2})
        assert schedule.latency_ms == {4: 30}
        assert schedule.crash_points == (10,)
        assert schedule.zk_expiries == (2,)
        assert schedule.planned_transient_faults() == 3

    def test_worker_kill_burst(self):
        schedule = (FaultSchedule.script()
                    .add_worker_kill(1)
                    .add_worker_kill_burst(4, count=3, spacing=2))
        assert schedule.worker_kills == (1, 4, 6, 8)
        assert schedule.to_dict()["worker_kills"] == [1, 4, 6, 8]

    def test_worker_kill_burst_rejects_bad_shape(self):
        with pytest.raises(ConfigError):
            FaultSchedule.script().add_worker_kill_burst(2, count=0)
        with pytest.raises(ConfigError):
            FaultSchedule.script().add_worker_kill_burst(2, spacing=0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ConfigError):
            FaultSchedule.from_seed(1, transient_faults=-1)


def make_cluster_with_orders(count=6, partitions=2):
    clock = VirtualClock(0)
    cluster = KafkaCluster(broker_count=2, clock=clock)
    cluster.create_topic("Orders", partitions=partitions)
    producer = Producer(cluster)
    for i in range(count):
        producer.send("Orders", f"v{i}".encode(), key=str(i % partitions).encode())
    return cluster, clock


class TestFaultInjectorHooks:
    def test_scheduled_fetch_fault_raises_from_broker(self):
        cluster, clock = make_cluster_with_orders()
        schedule = FaultSchedule.script().add_fetch_fault(1)
        cluster.install_fault_injector(FaultInjector(schedule, clock=clock))
        tp = TopicPartition("Orders", 0)
        with pytest.raises(TransientKafkaError):
            cluster.fetch(tp, 0)
        # the fault was one-shot: the next fetch (op 2) succeeds
        assert cluster.fetch(tp, 0)

    def test_scheduled_produce_fault_raises_from_broker(self):
        cluster, clock = make_cluster_with_orders()
        schedule = FaultSchedule.script().add_produce_fault(1)
        cluster.install_fault_injector(FaultInjector(schedule, clock=clock))
        tp = TopicPartition("Orders", 0)
        with pytest.raises(TransientKafkaError):
            cluster.produce(tp, b"k", b"v")
        assert cluster.produce(tp, b"k", b"v") >= 0

    def test_latency_fault_advances_the_clock(self):
        cluster, clock = make_cluster_with_orders()
        schedule = FaultSchedule.script().add_latency(1, 25)
        cluster.install_fault_injector(FaultInjector(schedule, clock=clock))
        before = clock.now_ms()
        cluster.fetch(TopicPartition("Orders", 0), 0)
        assert clock.now_ms() == before + 25

    def test_unavailability_window_blocks_only_target_partition(self):
        cluster, clock = make_cluster_with_orders()
        schedule = FaultSchedule.script().add_unavailability(1, 10, partition=0)
        injector = FaultInjector(schedule, clock=clock)
        cluster.install_fault_injector(injector)
        assert cluster.fetch(TopicPartition("Orders", 1), 0)  # unaffected
        with pytest.raises(TransientKafkaError):
            cluster.fetch(TopicPartition("Orders", 0), 0)
        counts = injector.fault_counts()
        assert counts == {PARTITION_UNAVAILABLE: 1}

    def test_suspended_freezes_injection_and_counters(self):
        cluster, clock = make_cluster_with_orders()
        schedule = FaultSchedule.script().add_fetch_fault(1, 2, 3)
        injector = FaultInjector(schedule, clock=clock)
        cluster.install_fault_injector(injector)
        with injector.suspended():
            cluster.fetch(TopicPartition("Orders", 0), 0)
            assert injector.fetch_ops == 0
        with pytest.raises(TransientKafkaError):
            cluster.fetch(TopicPartition("Orders", 0), 0)

    def test_container_crash_hook(self):
        injector = FaultInjector(FaultSchedule.script().add_crash(3))
        injector.on_processed("c-0")
        injector.on_processed("c-0")
        with pytest.raises(ContainerCrashError):
            injector.on_processed("c-0")
        # one-shot: processing continues after the scheduled point
        injector.on_processed("c-0")
        assert injector.fault_counts() == {CONTAINER_CRASH: 1}

    def test_events_blob_is_replay_identical(self):
        def run_once():
            cluster, clock = make_cluster_with_orders()
            schedule = (FaultSchedule.script()
                        .add_fetch_fault(2).add_produce_fault(1).add_latency(1, 10))
            injector = FaultInjector(schedule, clock=clock)
            cluster.install_fault_injector(injector)
            tp = TopicPartition("Orders", 0)
            with pytest.raises(TransientKafkaError):
                cluster.produce(tp, b"k", b"v")
            cluster.fetch(tp, 0)
            with pytest.raises(TransientKafkaError):
                cluster.fetch(tp, 0)
            return injector

        first, second = run_once(), run_once()
        assert first.events_blob() == second.events_blob()
        assert first.fingerprint() == second.fingerprint()
        kinds = [e.kind for e in first.events]
        assert kinds == [PRODUCE_ERROR, LATENCY, FETCH_ERROR]


class TestClientRetryIntegration:
    def test_consumer_poll_rides_through_fetch_faults(self):
        cluster, clock = make_cluster_with_orders(count=4, partitions=1)
        schedule = FaultSchedule.script().add_fetch_fault(1, 2)
        cluster.install_fault_injector(FaultInjector(schedule, clock=clock))
        consumer = Consumer(cluster, retry_policy=RetryPolicy(clock=clock))
        consumer.assign([TopicPartition("Orders", 0)])
        records = consumer.poll()
        assert len(records) == 4

    def test_consumer_without_policy_surfaces_fault(self):
        cluster, clock = make_cluster_with_orders(count=4, partitions=1)
        schedule = FaultSchedule.script().add_fetch_fault(1)
        cluster.install_fault_injector(FaultInjector(schedule, clock=clock))
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("Orders", 0)])
        with pytest.raises(TransientKafkaError):
            consumer.poll()

    def test_producer_send_rides_through_produce_faults(self):
        cluster, clock = make_cluster_with_orders(count=0, partitions=1)
        schedule = FaultSchedule.script().add_produce_fault(1, 2)
        cluster.install_fault_injector(FaultInjector(schedule, clock=clock))
        producer = Producer(cluster, retry_policy=RetryPolicy(clock=clock))
        partition, offset = producer.send("Orders", b"v", key=b"k")
        assert (partition, offset) == (0, 0)

    def test_retry_exhaustion_surfaces_to_caller(self):
        cluster, clock = make_cluster_with_orders(count=2, partitions=1)
        schedule = FaultSchedule.script().add_fetch_fault(*range(1, 20))
        cluster.install_fault_injector(FaultInjector(schedule, clock=clock))
        consumer = Consumer(
            cluster, retry_policy=RetryPolicy(max_attempts=3, clock=clock))
        consumer.assign([TopicPartition("Orders", 0)])
        with pytest.raises(RetryExhaustedError):
            consumer.poll()


class TestConsumerReassignment:
    """Regression tests: reassignment must discard flow-control state."""

    def test_reassign_clears_paused_partitions(self):
        cluster, _ = make_cluster_with_orders(count=4, partitions=2)
        consumer = Consumer(cluster)
        tp0, tp1 = TopicPartition("Orders", 0), TopicPartition("Orders", 1)
        consumer.assign([tp0, tp1])
        consumer.pause(tp0)
        assert consumer.poll() == [] or all(r.partition == 1 for r in consumer.poll())
        consumer.assign([tp0])
        assert consumer.paused() == set()
        # a stale pause flag would starve tp0 here forever
        assert all(r.partition == 0 for r in consumer.poll())
        assert len(consumer.paused()) == 0

    def test_reassign_resets_round_robin_cursor(self):
        cluster, _ = make_cluster_with_orders(count=6, partitions=2)
        consumer = Consumer(cluster, fetch_max_records_per_partition=1)
        tps = [TopicPartition("Orders", 0), TopicPartition("Orders", 1)]
        consumer.assign(tps)
        consumer.poll(max_records=1)
        assert consumer._rr_cursor == 1
        consumer.assign(tps)
        assert consumer._rr_cursor == 0

    def test_reassign_restarts_from_committed_or_earliest(self):
        cluster, _ = make_cluster_with_orders(count=4, partitions=1)
        tp = TopicPartition("Orders", 0)
        consumer = Consumer(cluster, group_id="g1")
        consumer.assign([tp])
        consumer.poll()
        consumer.commit()
        consumer.assign([tp])
        assert consumer.position(tp) == 4  # resumes at the committed offset


class TestZkSessionExpiry:
    def test_expiry_drops_ephemerals_and_raises_typed_error(self):
        server = ZkServer()
        client = ZkClient(server)
        client.ensure_path("/live")
        client.create("/live/c-0", b"up", ephemeral=True)
        server.expire_session(client.session_id)
        assert server.exists("/live/c-0") is None
        with pytest.raises(ZkSessionExpiredError):
            client.get("/live/c-0")

    def test_reconnect_opens_a_fresh_session(self):
        server = ZkServer()
        client = ZkClient(server)
        client.ensure_path("/plans")
        client.write_json("/plans/q1", {"sql": "SELECT 1"})
        old_session = client.session_id
        server.expire_session(old_session)
        client.reconnect()
        assert client.session_id != old_session
        assert client.reconnect_count == 1
        # persistent data survived the expiry; the new session can read it
        assert client.read_json("/plans/q1") == {"sql": "SELECT 1"}

    def test_expire_unknown_session_is_noop(self):
        server = ZkServer()
        server.expire_session(999)
        assert server.live_sessions() == []
