"""The validation/policy node: structured pre-plan rejection."""

import pytest

from repro.samzasql.environment import SamzaSqlEnvironment
from repro.serving import PipelineError, TenantPolicy
from repro.serving.errors import ErrorCode, position_of

from tests.samzasql_fixtures import ORDERS_SCHEMA, PRODUCTS_SCHEMA


@pytest.fixture
def front_door():
    with SamzaSqlEnvironment(metrics_interval_ms=0) as env:
        fd = env.front_door()
        fd.catalog.add_data_source("retail")
        fd.catalog.add_data_source("iot")
        fd.catalog.create("Orders", "retail", ORDERS_SCHEMA)
        fd.catalog.create("Products", "retail", PRODUCTS_SCHEMA,
                          kind="table", key_field="productId")
        fd.register_tenant(
            "orders-only",
            TenantPolicy("orders-only", frozenset({"retail.Orders"})))
        fd.register_tenant(
            "retail-all",
            TenantPolicy("retail-all", frozenset({"retail.*"}),
                         read_only=False))
        yield fd


def reject(front_door, tenant, sql) -> PipelineError:
    session = front_door.connect(tenant)
    with pytest.raises(PipelineError) as err:
        front_door.execute(session, sql)
    return err.value


class TestPolicyShape:
    def test_unqualified_acl_entry_rejected_at_construction(self):
        with pytest.raises(PipelineError) as err:
            TenantPolicy("t", frozenset({"Orders"}))
        assert err.value.code is ErrorCode.SECURITY_VIOLATION

    def test_wildcard_matches_namespace(self):
        policy = TenantPolicy("t", frozenset({"retail.*"}))
        assert policy.may_read("retail.Orders")
        assert not policy.may_read("iot.Sensors")

    def test_exact_entry_is_case_insensitive(self):
        policy = TenantPolicy("t", frozenset({"Retail.Orders"}))
        assert policy.may_read("retail.orders")


class TestTableValidation:
    def test_unknown_table(self, front_door):
        err = reject(front_door, "retail-all", "SELECT STREAM x FROM Ghost")
        assert err.code is ErrorCode.TABLE_NOT_FOUND
        assert (err.line, err.column) == position_of(
            "SELECT STREAM x FROM Ghost", "Ghost")

    def test_acl_denied_table(self, front_door):
        err = reject(front_door, "orders-only", "SELECT name FROM Products")
        assert err.code is ErrorCode.SECURITY_VIOLATION
        assert err.details["table"] == "retail.Products"
        assert err.line == 1 and err.column is not None

    def test_acl_denied_inside_join(self, front_door):
        err = reject(front_door, "orders-only",
                     "SELECT STREAM o.rowtime FROM Orders AS o "
                     "JOIN Products AS p ON o.productId = p.productId")
        assert err.code is ErrorCode.SECURITY_VIOLATION

    def test_allowed_table_passes_and_runs(self, front_door):
        session = front_door.connect("orders-only")
        handle = front_door.execute(
            session, "SELECT STREAM rowtime, units FROM Orders")
        assert handle.query_id
        handle.stop()


class TestColumnValidation:
    def test_unknown_column(self, front_door):
        err = reject(front_door, "retail-all", "SELECT STREAM bogus FROM Orders")
        assert err.code is ErrorCode.COLUMN_NOT_FOUND
        assert err.column == len("SELECT STREAM ") + 1

    def test_unknown_qualified_column(self, front_door):
        err = reject(front_door, "retail-all",
                     "SELECT STREAM o.bogus FROM Orders AS o")
        assert err.code is ErrorCode.COLUMN_NOT_FOUND

    def test_out_of_scope_qualifier_in_join_condition(self, front_door):
        err = reject(front_door, "retail-all",
                     "SELECT STREAM o.rowtime FROM Orders AS o "
                     "JOIN Products AS p ON o.productId = x.productId")
        assert err.code is ErrorCode.JOIN_TABLE_NOT_IN_SCOPE
        assert err.details["in_scope"] == ["o", "p"]

    def test_ambiguous_column_must_be_qualified(self, front_door):
        err = reject(front_door, "retail-all",
                     "SELECT STREAM productId FROM Orders AS o "
                     "JOIN Products AS p ON o.productId = p.productId")
        assert err.code is ErrorCode.AMBIGUOUS_COLUMN

    def test_output_alias_allowed_in_order_by(self, front_door):
        session = front_door.connect("retail-all")
        rows = front_door.execute(
            session, "SELECT productId, COUNT(*) AS c FROM Orders "
                     "GROUP BY productId ORDER BY c DESC")
        assert rows == []  # no data fed; validation is what's under test


class TestReadOnly:
    def test_read_only_tenant_cannot_insert(self, front_door):
        err = reject(front_door, "orders-only",
                     "INSERT INTO out1 SELECT STREAM rowtime, units FROM Orders")
        assert err.code is ErrorCode.READ_ONLY_VIOLATION

    def test_writer_tenant_can_insert(self, front_door):
        session = front_door.connect("retail-all")
        handle = front_door.execute(
            session, "INSERT INTO out1 SELECT STREAM rowtime, units FROM Orders")
        assert handle.output_stream == "out1"
        handle.stop()


class TestStructuredErrors:
    def test_parse_error_carries_position_and_code(self, front_door):
        err = reject(front_door, "retail-all", "SELECT STREAM FROM WHERE")
        assert err.code is ErrorCode.PARSE_ERROR
        assert err.line == 1 and err.column is not None
        assert "[PARSE_ERROR]" in str(err)
        assert str(err).count("at line") == 1

    def test_to_dict_is_flat_and_jsonable(self, front_door):
        import json

        err = reject(front_door, "orders-only", "SELECT name FROM Products")
        payload = err.to_dict()
        assert payload["code"] == "SECURITY_VIOLATION"
        json.dumps(payload)

    def test_unregistered_tenant(self, front_door):
        with pytest.raises(PipelineError) as err:
            front_door.connect("ghost-tenant")
        assert err.value.code is ErrorCode.TENANT_NOT_FOUND

    def test_error_counts_accumulate(self, front_door):
        reject(front_door, "orders-only", "SELECT name FROM Products")
        reject(front_door, "orders-only", "SELECT name FROM Products")
        assert front_door.error_counts["SECURITY_VIOLATION"] >= 2
