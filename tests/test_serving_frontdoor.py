"""The scripted multi-tenant acceptance scenario, end to end.

Two tenants with disjoint ACLs share one environment; tenant A's query
over a denied table is rejected with SECURITY_VIOLATION *before
planning*, tenant B's admitted queries produce byte-identical results
to the same queries run through the legacy single-user shell, and a
third over-quota tenant is rejected with QUOTA_EXCEEDED while existing
queries keep running.
"""

import pytest

from repro.kafka.producer import Producer
from repro.samzasql.environment import SamzaSqlEnvironment
from repro.serde.avro import AvroSerde
from repro.serving import PipelineError, TenantPolicy, TenantQuota
from repro.serving.errors import ErrorCode

from tests.samzasql_fixtures import ORDERS_SCHEMA, PRODUCTS_SCHEMA

QUERIES = (
    "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > 40",
    "SELECT STREAM rowtime, orderId, units * 2 AS twice FROM Orders",
)


def feed_orders(env, count=60):
    serde = AvroSerde(ORDERS_SCHEMA)
    producer = Producer(env.cluster)
    for i in range(count):
        producer.send("Orders", key=str(i % 4).encode(),
                      value=serde.to_bytes({
                          "rowtime": 1_000_000 + i * 1_000,
                          "productId": i % 7, "orderId": i,
                          "units": (i * 13) % 100}))


def output_bytes(env, topic):
    """Raw output bytes per partition, in offset order."""
    out = {}
    for tp in sorted(env.cluster.partitions_for(topic),
                     key=lambda tp: tp.partition):
        out[tp.partition] = [
            (message.key, message.value)
            for message in env.cluster.fetch(tp, env.cluster.earliest_offset(tp))
        ]
    return out


def test_multi_tenant_scenario_end_to_end():
    # -- the legacy single-user baseline --------------------------------------
    legacy = SamzaSqlEnvironment(metrics_interval_ms=0)
    legacy.shell.register_stream("Orders", ORDERS_SCHEMA)
    feed_orders(legacy)
    legacy_handles = [legacy.shell.execute(q) for q in QUERIES]
    legacy.run_until_quiescent()
    legacy_outputs = [output_bytes(legacy, h.output_stream)
                      for h in legacy_handles]
    legacy.close()

    # -- the shared multi-tenant environment ----------------------------------
    env = SamzaSqlEnvironment(metrics_interval_ms=0)
    front_door = env.front_door()
    front_door.catalog.add_data_source("retail")
    front_door.catalog.create("Orders", "retail", ORDERS_SCHEMA)
    front_door.catalog.create("Products", "retail", PRODUCTS_SCHEMA,
                              kind="table", key_field="productId")
    feed_orders(env)

    front_door.register_tenant(
        "tenant-a", TenantPolicy("tenant-a", frozenset({"retail.Orders"})))
    front_door.register_tenant(
        "tenant-b", TenantPolicy("tenant-b", frozenset({"retail.*"})))
    front_door.register_tenant(
        "tenant-c", TenantPolicy("tenant-c", frozenset({"retail.*"})),
        quota=TenantQuota(max_concurrent_queries=1, max_queue_depth=0))

    # Tenant A: denied table rejected before planning (no query started).
    session_a = front_door.connect("tenant-a")
    with pytest.raises(PipelineError) as err:
        front_door.execute(session_a, "SELECT name FROM Products")
    assert err.value.code is ErrorCode.SECURITY_VIOLATION
    assert front_door.admission.stats.admitted == 0

    # Tenant B: admitted queries, byte-identical to the legacy shell.
    session_b = front_door.connect("tenant-b")
    b_handles = [front_door.execute(session_b, q) for q in QUERIES]

    # Tenant C: first query takes its only slot, second is rejected with
    # QUOTA_EXCEEDED — while A's and B's (and C's first) keep running.
    session_c = front_door.connect("tenant-c")
    c_handle = front_door.execute(
        session_c, "SELECT STREAM rowtime, units FROM Orders")
    with pytest.raises(PipelineError) as err:
        front_door.execute(session_c, "SELECT STREAM orderId FROM Orders")
    assert err.value.code is ErrorCode.QUOTA_EXCEEDED
    assert not c_handle.stopped
    assert all(not h.stopped for h in b_handles)

    env.run_until_quiescent()
    for legacy_output, handle in zip(legacy_outputs, b_handles):
        assert output_bytes(env, handle.output_stream) == legacy_output

    assert len(c_handle.results()) == 60  # C's admitted query ran to completion
    env.close()


def test_front_door_results_match_legacy_values():
    """Same environment, same query, front door vs direct shell call."""
    env = SamzaSqlEnvironment(metrics_interval_ms=0)
    front_door = env.front_door()
    front_door.catalog.add_data_source("retail")
    front_door.catalog.create("Orders", "retail", ORDERS_SCHEMA)
    feed_orders(env, count=30)
    front_door.register_tenant("t", TenantPolicy("t", frozenset({"retail.*"})))
    session = front_door.connect("t")

    via_front_door = front_door.execute(
        session, "SELECT productId, COUNT(*) AS c FROM Orders GROUP BY productId")
    via_shell = env.shell.execute(
        "SELECT productId, COUNT(*) AS c FROM Orders GROUP BY productId")
    assert via_front_door == via_shell
    env.close()
