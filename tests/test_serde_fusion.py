"""Serde fusion: column-pruned decode, re-encode elision, fused chains.

The contract under test is strict observational equivalence: with
``task.serde.fusion`` on, every byte the job writes — output records,
their keys, offsets, timestamps, and checkpoint topics — must be
identical to the full decode/re-encode path, in every execution mode
and across crash/replay.
"""

import pytest

from repro.chaos import FaultInjector, FaultSchedule
from repro.chaos.supervisor import ChaosSupervisor
from repro.serde import AvroSerde

from tests.samzasql_fixtures import ORDERS_SCHEMA, Deployment

FILTER_SQL = ("SELECT STREAM rowtime, productId, orderId, units "
              "FROM Orders WHERE units > 50")
PROJECT_SQL = "SELECT STREAM orderId, units FROM Orders WHERE units > 50"
SLIDING_WINDOW_SQL = (
    "SELECT STREAM rowtime, productId, orderId, units, "
    "SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
    "RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes "
    "FROM Orders WHERE units > 10"
)


def chaos_sql_deployment(schedule, orders=80, partitions=2):
    dep = Deployment(partitions=partitions)
    dep.with_orders(count=orders)
    injector = FaultInjector(schedule, clock=dep.clock)
    dep.cluster.install_fault_injector(injector)
    dep.runner.fault_injector = injector
    return dep, injector


def cluster_dump(dep):
    """Every topic's full contents: (offset, key, value, timestamp)."""
    dump = {}
    for topic in sorted(dep.cluster.topics()):
        for tp in dep.cluster.partitions_for(topic):
            msgs = dep.cluster.fetch(tp, dep.cluster.earliest_offset(tp), None)
            dump[str(tp)] = [(m.offset, m.key, m.value, m.timestamp_ms)
                             for m in msgs]
    return dump


def run_filter(fusion: str, batch: str = "true", compile_flag: str = "true",
               sql: str = FILTER_SQL):
    dep = Deployment().with_orders(60)
    handle = dep.shell.execute(sql, containers=1, config_overrides={
        "task.batch.execution": batch,
        "task.compile.execution": compile_flag,
        "task.serde.fusion": fusion,
    })
    dep.runner.run_until_quiescent()
    return dep, handle


def fused_tasks(handle):
    return [instance.task
            for container in handle.master.samza_containers.values()
            for instance in container.tasks.values()]


class TestPrunedDecoder:
    """AvroSerde.pruned_decoder — skip-scan over unreferenced columns."""

    def setup_method(self):
        self.schema = ORDERS_SCHEMA
        self.serde = AvroSerde(ORDERS_SCHEMA)
        self.record = {"rowtime": 1_000_000, "productId": 7,
                       "orderId": 1234, "units": 55}
        self.buf = self.serde.to_bytes(self.record)

    def test_materializes_only_required_fields(self):
        decoder = self.schema.pruned_decoder(frozenset({"units"}))
        row, pos = decoder(self.buf, 0)
        assert row["units"] == 55
        assert pos == len(self.buf)
        assert "orderId" not in row and "productId" not in row

    def test_required_values_match_full_decode(self):
        full = self.serde.from_bytes(self.buf)
        decoder = self.schema.pruned_decoder(frozenset({"rowtime", "orderId"}))
        row, pos = decoder(self.buf, 0)
        assert pos == len(self.buf)
        assert {k: row[k] for k in ("rowtime", "orderId")} == \
            {k: full[k] for k in ("rowtime", "orderId")}

    def test_unknown_required_names_are_ignored(self):
        decoder = self.schema.pruned_decoder(frozenset({"units", "nope"}))
        row, pos = decoder(self.buf, 0)
        assert row["units"] == 55
        assert pos == len(self.buf)

    def test_empty_required_still_scans_to_end(self):
        decoder = self.schema.pruned_decoder(frozenset())
        row, pos = decoder(self.buf, 0)
        assert row == {}
        assert pos == len(self.buf)

    def test_non_record_schema_returns_none(self):
        from repro.serde import AvroSchema

        assert AvroSchema("long").pruned_decoder(frozenset({"x"})) is None


class TestSerdePlanAnalysis:
    """The per-task analysis decision, observed through the live tasks."""

    def test_filter_query_prunes_and_elides(self):
        _dep, handle = run_filter("true")
        tasks = fused_tasks(handle)
        assert tasks and all(t.serde_fused for t in tasks)
        plan = tasks[0].serde_plan
        assert plan.supported
        assert "units" in plan.required
        assert plan.elided  # identity projection: raw byte splice out
        assert plan.describe().startswith("serde: decode pruned")

    def test_fusion_off_runs_decoded_path(self):
        _dep, handle = run_filter("false")
        assert all(not t.serde_fused for t in fused_tasks(handle))

    def test_single_message_mode_never_fuses(self):
        _dep, handle = run_filter("true", batch="false")
        assert all(not t.serde_fused for t in fused_tasks(handle))

    def test_interpreted_chain_never_fuses(self):
        _dep, handle = run_filter("true", compile_flag="false")
        assert all(not t.serde_fused for t in fused_tasks(handle))


class TestByteEquivalence:
    """Fusion on vs off must leave the whole cluster byte-identical."""

    @pytest.mark.parametrize("batch,compile_flag",
                             [("true", "true"), ("true", "false"),
                              ("false", "true"), ("false", "false")],
                             ids=["batched-compiled", "batched-interpreted",
                                  "single-compiled", "single-interpreted"])
    def test_filter_all_modes(self, batch, compile_flag):
        dep_off, _ = run_filter("false", batch, compile_flag)
        dep_on, handle_on = run_filter("true", batch, compile_flag)
        assert cluster_dump(dep_off) == cluster_dump(dep_on)
        if batch == "true" and compile_flag == "true":
            # equivalence must hold *because* the fused path actually ran
            assert all(t.serde_fused for t in fused_tasks(handle_on))

    def test_project_query(self):
        dep_off, _ = run_filter("false", sql=PROJECT_SQL)
        dep_on, _ = run_filter("true", sql=PROJECT_SQL)
        assert cluster_dump(dep_off) == cluster_dump(dep_on)

    def test_results_match_decoded(self):
        _dep, handle_on = run_filter("true")
        _dep2, handle_off = run_filter("false")
        key = lambda r: r["orderId"]
        assert sorted(handle_on.results(), key=key) == \
            sorted(handle_off.results(), key=key)


class TestCrashMidBatchElision:
    def test_crash_mid_batch_replays_identically(self):
        """A crash landing inside a poll batch while the elision path is
        splicing raw bytes must recover exactly like the decoded path:
        the uncommitted suffix replays through the freshly fused plan on
        the replacement container and the surviving output set matches."""
        outputs = {}
        for mode, flag in (("fused", "true"), ("decoded", "false")):
            schedule = FaultSchedule.script().add_crash(25)
            dep, injector = chaos_sql_deployment(schedule)
            handle = dep.shell.execute(FILTER_SQL, containers=2,
                                       config_overrides={
                                           "task.checkpoint.interval.messages": 10,
                                           "task.poll.batch.size": 8,
                                           "task.serde.fusion": flag,
                                       })
            supervisor = ChaosSupervisor(dep.runner, injector,
                                         zk=dep.shell.zk)
            supervisor.run_until_quiescent()
            assert supervisor.restarts == 1
            # the replacement container re-ran the fusion analysis and
            # landed on the same decision the original did
            for task in fused_tasks(handle):
                assert task.serde_fused is (mode == "fused")
            with injector.suspended():
                outputs[mode] = {r["orderId"] for r in handle.results()}

        expected = {i for i in range(80) if (i * 7) % 100 > 50}
        assert outputs["fused"] == expected
        assert outputs["fused"] == outputs["decoded"]


class TestExplainSerdeStatus:
    def test_filter_reports_pruned_and_elided(self):
        dep = Deployment().with_orders(5)
        report = dep.shell.execute(f"EXPLAIN {FILTER_SQL}")
        assert "serde: decode pruned" in report
        assert "encode elided (raw byte splice)" in report

    def test_batch_off_reports_fallback(self):
        dep = Deployment().with_orders(5)
        report = dep.shell.execute(
            f"EXPLAIN {FILTER_SQL}",
            config_overrides={"task.batch.execution": "false"})
        assert ("serde: full decode/encode (fallback: requires "
                "execution.batch=true)" in report)

    def test_fusion_off_reports_fallback(self):
        dep = Deployment().with_orders(5)
        report = dep.shell.execute(
            f"EXPLAIN {FILTER_SQL}",
            config_overrides={"task.serde.fusion": "false"})
        assert ("serde: full decode/encode (fallback: disabled by "
                "execution.serde.fusion=false)" in report)

    def test_stateful_chain_reports_not_compiled(self):
        dep = Deployment().with_orders(5)
        report = dep.shell.execute(f"EXPLAIN {SLIDING_WINDOW_SQL}")
        assert "serde: full decode/encode (fallback: chain not compiled" \
            in report
