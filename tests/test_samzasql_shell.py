"""Unit tests for shell internals: schema synthesis, serde resolution,
handles, metrics, and batch data sourcing."""

import pytest

from repro.common import PlannerError
from repro.samzasql.shell import sql_row_type_to_avro
from repro.serde import AvroSerde, JsonSerde
from repro.sql.types import RowType, SqlType

from tests.samzasql_fixtures import Deployment, PRODUCTS_SCHEMA


class TestOutputSchemaSynthesis:
    def test_all_types_mapped(self):
        row_type = RowType([
            ("b", SqlType.BOOLEAN), ("i", SqlType.INTEGER),
            ("l", SqlType.BIGINT), ("d", SqlType.DOUBLE),
            ("s", SqlType.VARCHAR), ("t", SqlType.TIMESTAMP),
            ("iv", SqlType.INTERVAL),
        ])
        schema = sql_row_type_to_avro("Out", row_type)
        assert schema is not None
        assert schema.field_names == ["b", "i", "l", "d", "s", "t", "iv"]
        # every field is nullable (LEFT joins pad with NULLs)
        datum = {name: None for name in schema.field_names}
        assert schema.decode(schema.encode(datum)) == datum

    def test_any_type_falls_back(self):
        row_type = RowType([("x", SqlType.ANY)])
        assert sql_row_type_to_avro("Out", row_type) is None

    def test_values_roundtrip(self):
        row_type = RowType([("n", SqlType.BIGINT), ("s", SqlType.VARCHAR)])
        schema = sql_row_type_to_avro("Out", row_type)
        datum = {"n": 42, "s": "x"}
        assert schema.decode(schema.encode(datum)) == datum


class TestSerdeSelection:
    def test_output_serde_is_avro_for_typed_queries(self):
        deployment = Deployment().with_orders(5)
        handle = deployment.run("SELECT STREAM rowtime, units FROM Orders")
        assert isinstance(handle.output_serde, AvroSerde)

    def test_output_serde_json_for_any_columns(self):
        from repro.sql.udf import UDF_REGISTRY, register_scalar_udf

        UDF_REGISTRY.clear()
        register_scalar_udf("IDENT", lambda x: x)  # result type ANY
        try:
            deployment = Deployment().with_orders(5)
            handle = deployment.run(
                "SELECT STREAM rowtime, IDENT(units) AS u FROM Orders")
            assert isinstance(handle.output_serde, JsonSerde)
            assert len(handle.results()) == 5
        finally:
            UDF_REGISTRY.clear()


class TestHandles:
    def test_explain_shows_physical_plan(self):
        deployment = Deployment().with_orders(1)
        handle = deployment.run("SELECT STREAM * FROM Orders WHERE units > 50")
        text = handle.explain()
        assert "insert" in text
        assert "filter" in text
        assert "scan" in text

    def test_metrics_shape(self):
        deployment = Deployment().with_orders(40)
        handle = deployment.run("SELECT STREAM * FROM Orders", containers=2)
        metrics = handle.metrics()
        assert len(metrics) == 2
        assert sum(m["processed"] for m in metrics.values()) == 40
        assert all(m["lag"] == 0 for m in metrics.values())

    def test_stop_finishes_job(self):
        deployment = Deployment().with_orders(10)
        handle = deployment.run("SELECT STREAM * FROM Orders")
        handle.stop()
        deployment.feed_orders(10, start_ts=9_000_000, start_id=500)
        deployment.runner.run_until_quiescent()
        # no new output after stop
        assert all(r["orderId"] < 500 for r in handle.results())

    def test_query_ids_unique(self):
        deployment = Deployment().with_orders(1)
        h1 = deployment.run("SELECT STREAM * FROM Orders")
        h2 = deployment.run("SELECT STREAM * FROM Orders")
        assert h1.query_id != h2.query_id
        assert h1.output_stream != h2.output_stream


class TestBatchDataSourcing:
    def test_table_reads_latest_changelog_state(self):
        deployment = Deployment().with_orders(0).with_products(3)
        serde = AvroSerde(PRODUCTS_SCHEMA)
        # update product 1, tombstone product 2
        deployment.producer.send(
            "Products-changelog",
            serde.to_bytes({"productId": 1, "name": "updated", "supplierId": 9}),
            key=b"1")
        deployment.producer.send("Products-changelog", None, key=b"2")
        rows = deployment.shell.execute("SELECT productId, name FROM Products")
        by_id = {r["productId"]: r["name"] for r in rows}
        assert by_id[1] == "updated"
        assert 2 not in by_id

    def test_unknown_source_raises(self):
        deployment = Deployment().with_orders(0)
        from repro.samzasql.batch import BatchExecutor

        executor = BatchExecutor(deployment.shell._history_rows)
        with pytest.raises(PlannerError):
            deployment.shell._history_rows("Missing")
