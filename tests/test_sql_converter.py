"""Tests for validation and AST -> logical plan conversion."""

import pytest

from repro.common import SqlValidationError
from repro.sql import QueryPlanner
from repro.sql.converter import Converter
from repro.sql.parser import parse_query
from repro.sql.rel.nodes import (
    LogicalAggregate,
    LogicalDelta,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
    LogicalWindowAgg,
)
from repro.sql.rex import RexCall, RexInputRef
from repro.sql.types import SqlType

from tests.sql_fixtures import paper_catalog


@pytest.fixture
def catalog():
    return paper_catalog()


def convert(catalog, sql):
    return Converter(catalog).convert_query(parse_query(sql))


class TestScans:
    def test_stream_scan(self, catalog):
        plan = convert(catalog, "SELECT * FROM Orders")
        assert isinstance(plan, LogicalScan)
        assert plan.is_stream
        assert plan.rowtime_index == 0

    def test_table_scan(self, catalog):
        plan = convert(catalog, "SELECT * FROM Products")
        assert isinstance(plan, LogicalScan)
        assert not plan.is_stream

    def test_stream_keyword_adds_delta(self, catalog):
        plan = convert(catalog, "SELECT STREAM * FROM Orders")
        assert isinstance(plan, LogicalDelta)

    def test_unknown_source_raises(self, catalog):
        with pytest.raises(SqlValidationError, match="unknown"):
            convert(catalog, "SELECT * FROM Nope")


class TestColumnResolution:
    def test_unqualified(self, catalog):
        plan = convert(catalog, "SELECT units FROM Orders")
        assert isinstance(plan, LogicalProject)
        assert plan.exprs[0] == RexInputRef(3, SqlType.INTEGER)

    def test_qualified(self, catalog):
        plan = convert(catalog, "SELECT Orders.units FROM Orders")
        assert plan.exprs[0].index == 3

    def test_alias_qualification(self, catalog):
        plan = convert(catalog, "SELECT o.units FROM Orders o")
        assert plan.exprs[0].index == 3

    def test_original_name_hidden_by_alias(self, catalog):
        with pytest.raises(SqlValidationError):
            convert(catalog, "SELECT Orders.units FROM Orders o")

    def test_unknown_column_raises(self, catalog):
        with pytest.raises(SqlValidationError, match="unknown column"):
            convert(catalog, "SELECT nope FROM Orders")

    def test_ambiguous_column_raises(self, catalog):
        with pytest.raises(SqlValidationError, match="ambiguous"):
            convert(catalog, "SELECT productId FROM Orders JOIN Products "
                             "ON Orders.productId = Products.productId")

    def test_case_insensitive_columns(self, catalog):
        plan = convert(catalog, "SELECT UNITS FROM Orders")
        assert plan.exprs[0].index == 3

    def test_join_right_side_offset(self, catalog):
        plan = convert(catalog,
                       "SELECT Products.supplierId FROM Orders JOIN Products "
                       "ON Orders.productId = Products.productId")
        # Orders has 4 fields; supplierId is field 2 of Products -> index 6
        assert plan.exprs[0].index == 6


class TestTypeChecking:
    def test_where_must_be_boolean(self, catalog):
        with pytest.raises(SqlValidationError, match="boolean"):
            convert(catalog, "SELECT * FROM Orders WHERE units + 1")

    def test_arithmetic_type_promotion(self, catalog):
        plan = convert(catalog, "SELECT units + 1, units * 2.0 FROM Orders")
        assert plan.exprs[0].type is SqlType.INTEGER
        assert plan.exprs[1].type is SqlType.DOUBLE

    def test_string_arithmetic_rejected(self, catalog):
        with pytest.raises(SqlValidationError):
            convert(catalog, "SELECT name + 1 FROM Products")

    def test_comparing_string_and_int_rejected(self, catalog):
        with pytest.raises(SqlValidationError, match="compare"):
            convert(catalog, "SELECT * FROM Products WHERE name > 5")

    def test_timestamp_minus_timestamp_is_interval(self, catalog):
        plan = convert(catalog,
                       "SELECT PacketsR2.rowtime - PacketsR1.rowtime AS d "
                       "FROM PacketsR1 JOIN PacketsR2 "
                       "ON PacketsR1.packetId = PacketsR2.packetId")
        assert plan.exprs[0].type is SqlType.INTERVAL

    def test_not_requires_boolean(self, catalog):
        with pytest.raises(SqlValidationError):
            convert(catalog, "SELECT * FROM Orders WHERE NOT units")


class TestProjections:
    def test_star_expansion_in_join(self, catalog):
        plan = convert(catalog,
                       "SELECT * FROM Orders JOIN Products "
                       "ON Orders.productId = Products.productId")
        assert plan.row_type.field_names == [
            "rowtime", "productId", "orderId", "units",
            "productId", "name", "supplierId"]

    def test_qualified_star(self, catalog):
        plan = convert(catalog,
                       "SELECT Products.* FROM Orders JOIN Products "
                       "ON Orders.productId = Products.productId")
        assert plan.row_type.field_names == ["productId", "name", "supplierId"]

    def test_output_names(self, catalog):
        plan = convert(catalog, "SELECT units AS u, units * 2 FROM Orders")
        assert plan.row_type.field_names == ["u", "EXPR$1"]

    def test_between_expands_to_conjunction(self, catalog):
        plan = convert(catalog, "SELECT * FROM Orders WHERE units BETWEEN 10 AND 20")
        assert isinstance(plan, LogicalFilter)
        assert plan.condition.op == "AND"


class TestAggregates:
    def test_group_by_plain_key(self, catalog):
        plan = convert(catalog,
                       "SELECT productId, COUNT(*), SUM(units) FROM Orders "
                       "GROUP BY productId")
        project = plan
        agg = project.input
        assert isinstance(agg, LogicalAggregate)
        assert agg.window is None
        assert [c.func for c in agg.agg_calls] == ["COUNT", "SUM"]
        assert agg.row_type.field_names[0] == "productId"

    def test_tumble_window(self, catalog):
        plan = convert(catalog,
                       "SELECT STREAM START(rowtime), COUNT(*) FROM Orders "
                       "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")
        agg = plan.input.input  # Delta -> Project -> Aggregate
        assert isinstance(agg, LogicalAggregate)
        assert agg.window.kind == "TUMBLE"
        assert agg.window.emit_ms == agg.window.retain_ms == 3_600_000

    def test_hop_window_with_align(self, catalog):
        plan = convert(catalog,
                       "SELECT STREAM COUNT(*) FROM Orders GROUP BY HOP(rowtime, "
                       "INTERVAL '1:30' HOUR TO MINUTE, INTERVAL '2' HOUR, TIME '0:30')")
        agg = plan.input.input
        assert agg.window.kind == "HOP"
        assert agg.window.emit_ms == 90 * 60 * 1000
        assert agg.window.retain_ms == 2 * 3_600_000
        assert agg.window.align_ms == 30 * 60 * 1000

    def test_floor_to_hour_is_implicit_tumble(self, catalog):
        plan = convert(catalog,
                       "SELECT FLOOR(rowtime TO HOUR), productId, COUNT(*) "
                       "FROM Orders GROUP BY FLOOR(rowtime TO HOUR), productId")
        agg = plan.input
        assert agg.window is not None
        assert agg.window.kind == "TUMBLE"
        assert agg.window.retain_ms == 3_600_000
        assert len(agg.group_exprs) == 1  # productId only; FLOOR became the window
        # the FLOOR select item resolves to the window start field
        assert plan.exprs[0] == RexInputRef(0, SqlType.TIMESTAMP)

    def test_start_end_require_window(self, catalog):
        with pytest.raises(SqlValidationError, match="START"):
            convert(catalog, "SELECT START(rowtime), COUNT(*) FROM Orders "
                             "GROUP BY productId")

    def test_bare_column_not_in_group_by_rejected(self, catalog):
        with pytest.raises(SqlValidationError, match="GROUP BY"):
            convert(catalog, "SELECT units, COUNT(*) FROM Orders GROUP BY productId")

    def test_having_becomes_filter(self, catalog):
        plan = convert(catalog,
                       "SELECT productId FROM Orders GROUP BY productId "
                       "HAVING COUNT(*) > 2")
        assert isinstance(plan, LogicalProject)
        assert isinstance(plan.input, LogicalFilter)
        assert isinstance(plan.input.input, LogicalAggregate)

    def test_expression_over_aggregates(self, catalog):
        plan = convert(catalog,
                       "SELECT SUM(units) / COUNT(*) FROM Orders GROUP BY productId")
        assert isinstance(plan.exprs[0], RexCall)

    def test_two_windows_rejected(self, catalog):
        with pytest.raises(SqlValidationError, match="one window"):
            convert(catalog,
                    "SELECT COUNT(*) FROM Orders GROUP BY "
                    "TUMBLE(rowtime, INTERVAL '1' HOUR), "
                    "TUMBLE(rowtime, INTERVAL '2' HOUR)")

    def test_star_with_group_by_rejected(self, catalog):
        with pytest.raises(SqlValidationError):
            convert(catalog, "SELECT * FROM Orders GROUP BY productId")

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(SqlValidationError, match="not allowed here"):
            convert(catalog, "SELECT productId FROM Orders WHERE SUM(units) > 5 "
                             "GROUP BY productId")


class TestWindowAgg:
    QUERY = ("SELECT STREAM rowtime, productId, units, "
             "SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
             "RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes "
             "FROM Orders")

    def test_window_node_shape(self, catalog):
        plan = convert(catalog, self.QUERY)
        project = plan.input  # under Delta
        window = project.input
        assert isinstance(window, LogicalWindowAgg)
        assert window.preceding_ms == 5 * 60 * 1000
        assert window.frame_mode == "RANGE"
        assert window.partition_exprs == (RexInputRef(1, SqlType.INTEGER),)
        assert [c.func for c in window.agg_calls] == ["SUM"]

    def test_output_names(self, catalog):
        plan = convert(catalog, self.QUERY)
        assert plan.row_type.field_names == [
            "rowtime", "productId", "units", "unitsLastFiveMinutes"]

    def test_multiple_functions_same_window(self, catalog):
        plan = convert(catalog,
                       "SELECT SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
                       "RANGE INTERVAL '1' HOUR PRECEDING) s, "
                       "COUNT(*) OVER (PARTITION BY productId ORDER BY rowtime "
                       "RANGE INTERVAL '1' HOUR PRECEDING) c FROM Orders")
        window = plan.input
        assert len(window.agg_calls) == 2

    def test_different_windows_rejected(self, catalog):
        with pytest.raises(SqlValidationError, match="same"):
            convert(catalog,
                    "SELECT SUM(units) OVER (ORDER BY rowtime RANGE INTERVAL '1' HOUR PRECEDING), "
                    "COUNT(*) OVER (ORDER BY rowtime RANGE INTERVAL '2' HOUR PRECEDING) "
                    "FROM Orders")

    def test_range_frame_requires_timestamp_order(self, catalog):
        with pytest.raises(SqlValidationError, match="timestamp"):
            convert(catalog,
                    "SELECT SUM(units) OVER (ORDER BY units "
                    "RANGE INTERVAL '1' HOUR PRECEDING) FROM Orders")

    def test_descending_order_rejected(self, catalog):
        with pytest.raises(SqlValidationError, match="ascending"):
            convert(catalog,
                    "SELECT SUM(units) OVER (ORDER BY rowtime DESC "
                    "RANGE INTERVAL '1' HOUR PRECEDING) FROM Orders")


class TestViewsAndSubqueries:
    def test_subquery_scope(self, catalog):
        plan = convert(catalog,
                       "SELECT u FROM (SELECT units AS u FROM Orders) WHERE u > 5")
        assert plan.row_type.field_names == ["u"]

    def test_view_inlined(self, catalog):
        planner = QueryPlanner(catalog)
        planner.plan_statement(
            "CREATE VIEW BigOrders AS SELECT * FROM Orders WHERE units > 50")
        plan = planner.plan_query("SELECT STREAM rowtime FROM BigOrders")
        text = plan.explain()
        assert "LogicalScan(Orders" in text
        assert "LogicalFilter" in text

    def test_view_column_renames(self, catalog):
        planner = QueryPlanner(catalog)
        planner.plan_statement(
            "CREATE VIEW V (a, b) AS SELECT productId, units FROM Orders")
        plan = planner.plan_query("SELECT a, b FROM V")
        assert plan.row_type.field_names == ["a", "b"]

    def test_view_column_count_mismatch(self, catalog):
        planner = QueryPlanner(catalog)
        with pytest.raises(SqlValidationError, match="columns"):
            planner.plan_statement(
                "CREATE VIEW V (a) AS SELECT productId, units FROM Orders")

    def test_stream_keyword_in_view_ignored(self, catalog):
        """§3.3: STREAM in sub-queries or views has no effect."""
        planner = QueryPlanner(catalog)
        planner.plan_statement(
            "CREATE VIEW V AS SELECT STREAM * FROM Orders")
        plan = planner.plan_query("SELECT rowtime FROM V")
        assert "LogicalDelta" not in plan.explain()

    def test_duplicate_view_rejected(self, catalog):
        planner = QueryPlanner(catalog)
        planner.plan_statement("CREATE VIEW V AS SELECT * FROM Orders")
        with pytest.raises(SqlValidationError, match="already defined"):
            planner.plan_statement("CREATE VIEW V AS SELECT * FROM Orders")
