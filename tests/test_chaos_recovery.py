"""Crash/restart round-trips under the chaos subsystem.

These tests exercise the full recovery path — a scheduled container crash
escapes the run loop without committing, the supervisor fails the YARN
container, the application master re-requests one, and the replacement
restores store state from the changelog and resumes input from the last
checkpoint — for both a stateless filter and stateful windowed
aggregation, at the raw-Samza and SQL layers.
"""

import pytest

from repro.chaos import FaultInjector, FaultSchedule
from repro.chaos.supervisor import ChaosSupervisor
from repro.chaos.validate import run_validation
from repro.samza import SamzaJob
from repro.serde import AvroSerde

from tests.helpers import (
    ORDERS_SCHEMA,
    CountingTask,
    FilterTask,
    base_config,
    make_runtime,
    orders_serdes,
    produce_orders,
    read_topic,
)
from tests.samzasql_fixtures import Deployment


def chaos_runtime(schedule, order_count, partitions=2, broker_count=3):
    """A helpers.make_runtime() with the injector armed after the feed."""
    cluster, rm, runner, clock = make_runtime(broker_count=broker_count)
    written = produce_orders(cluster, order_count, partitions=partitions)
    injector = FaultInjector(schedule, clock=clock)
    cluster.install_fault_injector(injector)
    runner.fault_injector = injector
    return cluster, runner, injector, written


class TestFilterJobRecovery:
    def test_scripted_crash_replays_from_checkpoint(self):
        schedule = FaultSchedule.script().add_crash(30)
        cluster, runner, injector, written = chaos_runtime(schedule, 80)
        job = SamzaJob(
            config=base_config(containers=2).merge(
                {"task.checkpoint.interval.messages": 10}),
            task_factory=lambda: FilterTask(threshold=50),
            serdes=orders_serdes(),
        )
        master = runner.submit(job)
        supervisor = ChaosSupervisor(runner, injector)
        supervisor.run_until_quiescent()

        assert supervisor.restarts == 1
        assert master.container_restarts == 1
        out = read_topic(cluster, "OrdersOut", AvroSerde(ORDERS_SCHEMA))
        expected = {r["orderId"] for r in written if r["units"] > 50}
        # at-least-once: nothing lost; replay may duplicate
        assert {o["orderId"] for o in out} == expected
        assert len(out) >= len(expected)

    def test_crash_plus_transient_faults(self):
        schedule = (FaultSchedule.script()
                    .add_crash(25)
                    .add_fetch_fault(4, 9, 15)
                    .add_produce_fault(3, 7)
                    .add_latency(6, 20))
        cluster, runner, injector, written = chaos_runtime(schedule, 60)
        job = SamzaJob(
            config=base_config(containers=2).merge(
                {"task.checkpoint.interval.messages": 8}),
            task_factory=lambda: FilterTask(threshold=50),
            serdes=orders_serdes(),
        )
        runner.submit(job)
        supervisor = ChaosSupervisor(runner, injector)
        supervisor.run_until_quiescent()

        assert injector.transient_fault_count() == 5
        out = read_topic(cluster, "OrdersOut", AvroSerde(ORDERS_SCHEMA))
        expected = {r["orderId"] for r in written if r["units"] > 50}
        assert {o["orderId"] for o in out} == expected


class TestStatefulJobRecovery:
    def test_changelog_restores_counts_after_crash(self):
        schedule = FaultSchedule.script().add_crash(40)
        cluster, runner, injector, _ = chaos_runtime(schedule, 100)
        config = base_config(containers=2).merge({
            "stores.counts.changelog": "kafka.test-job-counts-changelog",
            "stores.counts.key.serde": "string",
            "stores.counts.msg.serde": "json",
            "task.checkpoint.interval.messages": 10,
            "task.poll.batch.size": 20,
        })
        job = SamzaJob(config=config, task_factory=CountingTask,
                       serdes=orders_serdes())
        master = runner.submit(job)
        supervisor = ChaosSupervisor(runner, injector)
        supervisor.run_until_quiescent()

        assert supervisor.restarts == 1
        totals = {}
        for container in master.samza_containers.values():
            for task in container.tasks.values():
                for key, value in task.stores["counts"].all():
                    totals[key] = totals.get(key, 0) + value
        # every message counted at least once; replay slack is bounded by
        # the crashed container's uncommitted window (one poll batch plus
        # one checkpoint interval)
        assert sum(totals.values()) >= 100
        assert sum(totals.values()) <= 100 + 20 + 10


class TestCheckpointReset:
    def test_evicted_offsets_fall_back_to_earliest(self):
        """A checkpoint pointing below the log's earliest offset (retention
        ran while the job was down) must clamp forward, count a
        ``checkpoint.reset``, and let the job keep running."""
        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, 40, partitions=2)
        job = SamzaJob(
            config=base_config(containers=1).merge({
                "task.checkpoint.interval.messages": 5,
                "task.poll.batch.size": 10,
            }),
            task_factory=lambda: FilterTask(threshold=50),
            serdes=orders_serdes(),
        )
        master = runner.submit(job)
        # consume (and checkpoint) only part of the log
        for _ in range(2):
            runner.run_iteration()
        # simulate retention evicting the whole log past the checkpoint
        for tp in cluster.partitions_for("Orders"):
            cluster.topic("Orders").partition(tp.partition).truncate_before(
                cluster.latest_offset(tp))
        runner.kill_container(master, index=0)

        [replacement] = master.samza_containers.values()
        assert replacement.checkpoint_reset_count >= 1
        # the job continues from the new earliest offset
        produce_orders(cluster, 20, partitions=2)
        runner.run_until_quiescent()
        assert replacement.total_lag() == 0


SLIDING_WINDOW_SQL = (
    "SELECT STREAM rowtime, productId, orderId, units, "
    "SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
    "RANGE INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes "
    "FROM Orders WHERE units > 10"
)
FILTER_SQL = "SELECT STREAM rowtime, productId, orderId, units FROM Orders WHERE units > 50"


def chaos_sql_deployment(schedule, orders=80, partitions=2):
    dep = Deployment(partitions=partitions)
    dep.with_orders(count=orders)
    injector = FaultInjector(schedule, clock=dep.clock)
    dep.cluster.install_fault_injector(injector)
    dep.runner.fault_injector = injector
    return dep, injector


class TestSqlQueryRecovery:
    def test_filter_query_survives_crash(self):
        schedule = FaultSchedule.script().add_crash(30).add_fetch_fault(5, 11)
        dep, injector = chaos_sql_deployment(schedule)
        handle = dep.shell.execute(FILTER_SQL, containers=2, config_overrides={
            "task.checkpoint.interval.messages": 10,
            "task.poll.batch.size": 8,
        })
        supervisor = ChaosSupervisor(dep.runner, injector, zk=dep.shell.zk)
        supervisor.run_until_quiescent()
        with injector.suspended():
            rows = handle.results()
        expected = {i for i in range(80) if (i * 7) % 100 > 50}
        assert {r["orderId"] for r in rows} == expected

    def test_compiled_filter_crash_mid_batch_matches_interpreted(self):
        """A crash landing *inside* a poll batch while the task runs the
        compiled whole-plan function must recover exactly like the
        interpreted chain: the uncommitted suffix replays through the
        freshly recompiled plan on the replacement container, and the
        surviving output set is identical either way."""
        outputs = {}
        for mode, flag in (("compiled", "true"), ("interpreted", "false")):
            # crash at message 25 with batch 8 / checkpoint 10: mid-batch
            # and mid-checkpoint-interval, so a suffix is always replayed
            schedule = FaultSchedule.script().add_crash(25)
            dep, injector = chaos_sql_deployment(schedule)
            handle = dep.shell.execute(FILTER_SQL, containers=2,
                                       config_overrides={
                                           "task.checkpoint.interval.messages": 10,
                                           "task.poll.batch.size": 8,
                                           "task.compile.execution": flag,
                                       })
            supervisor = ChaosSupervisor(dep.runner, injector,
                                         zk=dep.shell.zk)
            supervisor.run_until_quiescent()
            assert supervisor.restarts == 1
            # the replacement container re-read the plan and made the same
            # compile decision the original did
            for container in handle.master.samza_containers.values():
                for instance in container.tasks.values():
                    assert instance.task.compiled is (mode == "compiled")
            with injector.suspended():
                outputs[mode] = {r["orderId"] for r in handle.results()}

        expected = {i for i in range(80) if (i * 7) % 100 > 50}
        assert outputs["compiled"] == expected
        assert outputs["compiled"] == outputs["interpreted"]

    def test_windowed_aggregate_survives_crash_and_zk_expiry(self):
        schedule = (FaultSchedule.script()
                    .add_crash(35)
                    .add_zk_expiry(2)
                    .add_fetch_fault(6))
        dep, injector = chaos_sql_deployment(schedule)
        handle = dep.shell.execute(
            SLIDING_WINDOW_SQL, containers=2, config_overrides={
                "task.checkpoint.interval.messages": 12,
                "task.poll.batch.size": 10,
            })
        supervisor = ChaosSupervisor(dep.runner, injector, zk=dep.shell.zk)
        supervisor.run_until_quiescent()
        with injector.suspended():
            rows = handle.results()

        assert supervisor.restarts == 1
        assert supervisor.zk_expirations == 1
        expected = {i for i in range(80) if (i * 7) % 100 > 10}
        emissions = {}
        for row in rows:
            emissions.setdefault(row["orderId"], []).append(row)
        assert set(emissions) == expected  # no lost inputs
        # duplicate emissions must agree on the input fields
        for copies in emissions.values():
            assert len({(c["rowtime"], c["productId"], c["units"])
                        for c in copies}) == 1

    def test_writebehind_crash_replays_byte_identical_aggregates(self):
        """Crash a container mid-commit-interval, while the write-behind
        stores hold dirty (never flushed) window state.

        The dirty suffix dies with the container; the changelog describes
        exactly the last checkpoint's state, so the replacement rebuilds
        the same windows the lost messages originally extended and replay
        regenerates every lost emission — including the running
        ``unitsLastFiveMinutes`` aggregate — byte for byte.  This is the
        consistency property that lets write-behind defer every store
        write to commit without weakening at-least-once recovery.
        """
        overrides = {
            "task.checkpoint.interval.messages": 12,
            "task.poll.batch.size": 10,
        }

        # reference: the same input, no faults
        ref = Deployment(partitions=2)
        ref.with_orders(count=80)
        ref_rows = ref.run(SLIDING_WINDOW_SQL, containers=2,
                           config_overrides=overrides).results()
        ref_by_order = {}
        for row in ref_rows:
            ref_by_order.setdefault(row["orderId"], set()).add(
                tuple(sorted(row.items())))
        # fault-free sliding window emits exactly once per input
        assert all(len(v) == 1 for v in ref_by_order.values())

        # chaos: crash 35 messages in — 11 past the last commit at 24, so
        # the write-behind dirty maps are mid-interval when the container
        # dies
        schedule = FaultSchedule.script().add_crash(35)
        dep, injector = chaos_sql_deployment(schedule)
        handle = dep.shell.execute(SLIDING_WINDOW_SQL, containers=2,
                                   config_overrides=overrides)
        supervisor = ChaosSupervisor(dep.runner, injector)
        supervisor.run_until_quiescent()
        with injector.suspended():
            rows = handle.results()

        assert supervisor.restarts == 1
        emissions = {}
        for row in rows:
            emissions.setdefault(row["orderId"], set()).add(
                tuple(sorted(row.items())))
        # nothing lost, and every emission (original or replayed duplicate)
        # is identical to the fault-free run's — aggregates included
        assert emissions == ref_by_order


class TestValidationHarness:
    def test_seed_42_meets_acceptance_bar(self):
        report = run_validation(seed=42)
        assert report.at_least_once
        assert report.lost_order_ids == []
        assert report.meets_criteria(min_transient=5, min_crashes=1,
                                     min_zk_expiries=1)
        assert report.container_restarts >= 1

    def test_replay_is_byte_identical(self):
        first = run_validation(seed=42)
        second = run_validation(seed=42)
        assert first.events_blob == second.events_blob
        assert first.fingerprint == second.fingerprint
        assert first.to_dict() == second.to_dict()

    def test_report_serializes(self):
        report = run_validation(seed=7, orders=120)
        payload = report.to_dict()
        assert payload["at_least_once"] is True
        assert payload["input_count"] == 120
        assert "chaos validation" in report.summary()

    def test_multiway_join_recovers_all_three_stores(self):
        """Crash mid-run over the collapsed 3-way join: every order must
        still reassemble, which requires all K shared stores to restore
        from their changelogs (a lost buffered row on any one side drops
        that order's output)."""
        from repro.chaos.validate import run_multiway_join_validation

        report = run_multiway_join_validation(seed=42, orders=150)
        assert report.plan_collapsed
        assert report.at_least_once
        assert report.lost_order_ids == []
        assert report.inconsistent_order_ids == []
        assert report.distinct_outputs == 150
        assert report.container_restarts >= 1
        assert sorted(report.join_store_changelogs) == [
            "sql-mjoin-0", "sql-mjoin-1", "sql-mjoin-2"]
        assert all(n > 0 for n in report.join_store_changelogs.values())
        assert "multi-way join: plan collapsed" in report.summary()


class TestMidBatchCrash:
    """A crash scheduled *inside* a poll batch must fire at exactly the
    scheduled message — the batched loop caps its chunks at the injector's
    next crash point — and replay exactly the uncommitted suffix."""

    def test_crash_mid_batch_replays_uncommitted_suffix(self):
        from repro.chaos.faults import CONTAINER_CRASH

        crash_at, batch_size, interval = 25, 32, 10
        schedule = FaultSchedule.script().add_crash(crash_at)
        cluster, runner, injector, written = chaos_runtime(schedule, 80)
        job = SamzaJob(
            config=base_config(containers=2).merge({
                "task.batch.execution": "true",
                "task.poll.batch.size": batch_size,
                "task.checkpoint.interval.messages": interval,
            }),
            task_factory=lambda: FilterTask(threshold=50),
            serdes=orders_serdes(),
        )
        runner.submit(job)
        supervisor = ChaosSupervisor(runner, injector)
        supervisor.run_until_quiescent()

        # 25 is not a multiple of the 32-message batch, so the crash point
        # fell mid-batch; the chunk cap must still land it exactly there.
        crashes = [e for e in injector.events if e.kind == CONTAINER_CRASH]
        assert [e.op for e in crashes] == [crash_at]
        assert supervisor.restarts == 1

        out = read_topic(cluster, "OrdersOut", AvroSerde(ORDERS_SCHEMA))
        expected = {r["orderId"] for r in written if r["units"] > 50}
        # at-least-once: nothing lost; duplicates bounded by the crashed
        # container's uncommitted window (at most one checkpoint interval
        # plus one poll batch of input replays)
        assert {o["orderId"] for o in out} == expected
        assert len(out) <= len(expected) + interval + batch_size

    def test_mid_batch_crash_matches_single_message_output(self):
        """The committed-plus-replayed output set is the same whether the
        crashed job ran batched or message-at-a-time."""
        outputs = {}
        for mode in ("true", "false"):
            schedule = FaultSchedule.script().add_crash(25)
            cluster, runner, injector, _ = chaos_runtime(schedule, 80)
            job = SamzaJob(
                config=base_config(containers=2).merge({
                    "task.batch.execution": mode,
                    "task.poll.batch.size": 32,
                    "task.checkpoint.interval.messages": 10,
                }),
                task_factory=lambda: FilterTask(threshold=50),
                serdes=orders_serdes(),
            )
            runner.submit(job)
            ChaosSupervisor(runner, injector).run_until_quiescent()
            out = read_topic(cluster, "OrdersOut", AvroSerde(ORDERS_SCHEMA))
            outputs[mode] = {o["orderId"] for o in out}
        assert outputs["true"] == outputs["false"]
