"""Process-backed execution: the same end-to-end scenarios, real processes.

``cluster.parallel.execution=true`` reruns the integration suite with
every container forked into its own OS process hosting a shared-nothing
broker shard, mirrored back to the parent over framed pipes.  The suite
is parametrized over ``task.batch.execution`` as well, so all four
combinations of (execution mode, batching) produce identical results.

Also here: the frame codec unit tests, the golden-value regressions the
parallel mode depends on (canonical plan JSON, the FNV-1a partitioner),
the clock-compatibility errors, and worker kill/relaunch recovery.
"""

import json

import pytest

from repro.common import ConfigError, SystemClock, VirtualClock
from repro.kafka.message import TopicPartition
from repro.kafka.producer import _fnv1a, hash_partitioner
from repro.parallel.frames import decode_frame, encode_frame
from repro.samzasql.physical import PhysicalPlan
from repro.samzasql.plan_builder import PhysicalPlanBuilder

from tests import test_samzasql_integration as integration
from tests.samzasql_fixtures import Deployment


@pytest.fixture(autouse=True, params=["true", "false"],
                ids=["batched", "single-message"])
def parallel_mode(request, monkeypatch):
    """Force every Deployment in this module into parallel execution and
    reap the forked workers after each test (idle workers would otherwise
    outlive the whole pytest run)."""
    instances = []
    original_init = Deployment.__init__

    def tracking_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        instances.append(self)

    monkeypatch.setattr(Deployment, "default_overrides", {
        "cluster.parallel.execution": "true",
        "task.batch.execution": request.param,
    })
    monkeypatch.setattr(Deployment, "__init__", tracking_init)
    yield request.param
    for deployment in instances:
        for master in deployment.runner.masters():
            if not master.finished:
                master.finish()


# -- the integration suite, re-run across process boundaries ------------------


class TestParallelFilter(integration.TestFilterQuery):
    pass


class TestParallelProject(integration.TestProjectQuery):
    pass


class TestParallelStreamRelationJoin(integration.TestStreamRelationJoin):
    pass


class TestParallelSlidingWindow(integration.TestSlidingWindowQuery):
    pass


class TestParallelStreamStreamJoin(integration.TestStreamStreamJoin):
    pass


class TestParallelGroupWindows(integration.TestGroupWindows):
    pass


class TestParallelInsertInto(integration.TestInsertInto):
    pass


class TestParallelStreamTableEquivalence(integration.TestStreamTableEquivalence):
    pass


# -- parallel vs in-process equivalence ---------------------------------------


class TestModeEquivalence:
    SQL = ("SELECT STREAM rowtime, productId, orderId, units, SUM(units) OVER "
           "(PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE "
           "PRECEDING) unitsLastFiveMinutes FROM Orders")

    def test_same_outputs_as_in_process(self):
        parallel = Deployment().with_orders(120)
        in_process = Deployment().with_orders(120)
        a = parallel.run(self.SQL, containers=2).results()
        b = in_process.run(self.SQL, containers=2, config_overrides={
            "cluster.parallel.execution": "false"}).results()
        key = lambda r: r["orderId"]
        assert sorted(a, key=key) == sorted(b, key=key)


# -- worker kill + relaunch ---------------------------------------------------


class TestWorkerRelaunch:
    SQL = ("SELECT STREAM rowtime, productId, orderId, units, SUM(units) OVER "
           "(PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE "
           "PRECEDING) unitsLastFiveMinutes FROM Orders")

    def test_sigkill_mid_run_recovers_at_least_once(self):
        deployment = Deployment(partitions=4).with_orders(200)
        handle = deployment.run(self.SQL, containers=2, config_overrides={
            "task.checkpoint.interval.messages": 40,
            "task.poll.batch.size": 25})
        # run() drained the initial input; now kill a live worker and feed
        # a second wave so the replacement has real work.
        coordinator = handle.master.parallel_coordinator
        assert coordinator is not None
        victim = coordinator.kill_worker()
        assert victim is not None
        deployment.feed_orders(100, start_ts=2_000_000, start_id=500)
        deployment.runner.run_until_quiescent(max_iterations=1_000_000)
        assert coordinator.relaunches >= 1
        assert handle.master.container_restarts >= 1
        ids = {r["orderId"] for r in handle.results()}
        assert set(range(200)) <= ids
        assert set(range(500, 600)) <= ids
        # duplicates allowed (at-least-once), inconsistencies are not
        by_id = {}
        for r in handle.results():
            previous = by_id.setdefault(r["orderId"], r)
            assert previous == r


# -- frame codec --------------------------------------------------------------


class TestFrameCodec:
    def test_round_trip(self):
        groups = [
            ("Orders", 2, 4, [(0, 1_000_000, b"k", b"v"),
                              (1, None, None, b""),
                              (2, 5, b"", None)]),
            ("__metrics", 0, 1, []),
        ]
        assert decode_frame(encode_frame(groups)) == groups

    def test_empty_frame(self):
        assert decode_frame(encode_frame([])) == []

    def test_negative_timestamp(self):
        groups = [("t", 0, 1, [(7, -123, None, b"x")])]
        assert decode_frame(encode_frame(groups)) == groups

    def test_none_vs_empty_bytes_distinguished(self):
        groups = [("t", 0, 1, [(0, None, None, b""), (1, None, b"", None)])]
        decoded = decode_frame(encode_frame(groups))
        assert decoded[0][3][0][2] is None and decoded[0][3][0][3] == b""
        assert decoded[0][3][1][2] == b"" and decoded[0][3][1][3] is None


# -- golden regressions the parallel mode depends on --------------------------


#: Canonical plan JSON for the paper's fig5a filter query.  Workers
#: recompile operators from exactly these bytes (via ZooKeeper), so the
#: serialization must stay byte-stable across processes and releases.
FILTER_PLAN_GOLDEN = (
    '{"bootstrap_streams":[],"input_streams":["Orders"],"output_stream":'
    '"out","relation_output":false,"root":{"field_names":["rowtime",'
    '"productId","orderId","units"],"field_types":["TIMESTAMP","INTEGER",'
    '"BIGINT","INTEGER"],"inputs":[{"inputs":[{"field_names":["rowtime",'
    '"productId","orderId","units"],"inputs":[],"kind":"scan",'
    '"rowtime_index":0,"stream":"Orders"}],"kind":"filter",'
    '"predicate_source":"(r[3] > 50)"}],"key_field_indexes":null,"kind":'
    '"insert","output_stream":"out","partition_key_index":null,'
    '"rowtime_index":0},"store_names":[]}'
)


class TestPlanJsonGolden:
    @staticmethod
    def _canonical(plan: PhysicalPlan) -> str:
        return json.dumps(plan.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def _filter_plan(self) -> PhysicalPlan:
        deployment = Deployment().with_orders(0)
        planned = deployment.shell.planner.plan_statement(
            "SELECT STREAM * FROM Orders WHERE units > 50")
        return PhysicalPlanBuilder(deployment.shell.catalog).build(
            planned.plan, "out")

    def test_fig5a_filter_plan_bytes_pinned(self):
        assert self._canonical(self._filter_plan()) == FILTER_PLAN_GOLDEN

    def test_round_trip_is_byte_stable(self):
        blob = self._canonical(self._filter_plan())
        restored = PhysicalPlan.from_dict(json.loads(blob))
        assert self._canonical(restored) == blob

    def test_shell_shares_canonical_bytes_through_zk(self):
        deployment = Deployment().with_orders(5)
        handle = deployment.run("SELECT STREAM * FROM Orders WHERE units > 50")
        path = f"/samza-sql/queries/{handle.query_id}/plan"
        raw, _stat = deployment.shell.zk.get(path)
        payload = json.loads(raw.decode("utf-8"))
        assert raw == json.dumps(payload, sort_keys=True,
                                 separators=(",", ":")).encode("utf-8")


class TestHashPartitionerGolden:
    """FNV-1a must yield the same partition in every process; these pins
    fail if anyone swaps in Python's randomized ``hash`` (or any other
    per-process function) — which would scatter keyed records across
    shard owners."""

    GOLDEN = {
        b"": 0xCBF29CE484222325,
        b"0": 0xAF63AD4C86019CAF,
        b"7": 0xAF63AA4C86019796,
        b"orders": 0x125D9250BE8B4C,
        b"productId-3": 0xCF3D0CF1D8C49FF5,
        b"\x00\x01\x02": 0xD949AA186C0C4928,
    }

    def test_fnv1a_pinned_values(self):
        for key, value in self.GOLDEN.items():
            assert _fnv1a(key) == value, key

    def test_partitioner_pinned_assignments(self):
        assert hash_partitioner(b"0", 4) == 3
        assert hash_partitioner(b"7", 4) == 2
        assert hash_partitioner(b"orders", 4) == 0
        assert hash_partitioner(b"orders", 8) == 4
        assert hash_partitioner(b"productId-3", 8) == 5


# -- clock compatibility ------------------------------------------------------


class TestParallelClockRules:
    def test_environment_auto_selects_system_clock(self):
        from repro.samzasql.environment import SamzaSqlEnvironment

        env = SamzaSqlEnvironment(
            config={"cluster.parallel.execution": "true"},
            metrics_interval_ms=0)
        assert isinstance(env.clock, SystemClock)

    def test_environment_rejects_virtual_clock(self):
        from repro.samzasql.environment import SamzaSqlEnvironment

        with pytest.raises(ConfigError, match="VirtualClock"):
            SamzaSqlEnvironment(
                clock=VirtualClock(0),
                config={"cluster.parallel.execution": "true"})

    def test_submit_rejects_virtual_clock_runner(self):
        deployment = Deployment().with_orders(5)
        deployment.runner.clock = VirtualClock(0)
        with pytest.raises(ConfigError, match="VirtualClock"):
            deployment.run("SELECT STREAM * FROM Orders")
