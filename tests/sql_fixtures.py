"""Shared catalog fixture matching §3.2's example schema."""

from repro.sql import Catalog
from repro.sql.catalog import StreamDefinition, TableDefinition
from repro.sql.types import RowType, SqlType


def paper_catalog() -> Catalog:
    """The two tables and five streams used throughout the paper."""
    catalog = Catalog()
    catalog.register_stream(StreamDefinition("Orders", RowType([
        ("rowtime", SqlType.TIMESTAMP), ("productId", SqlType.INTEGER),
        ("orderId", SqlType.BIGINT), ("units", SqlType.INTEGER)])))
    catalog.register_table(TableDefinition("Products", RowType([
        ("productId", SqlType.INTEGER), ("name", SqlType.VARCHAR),
        ("supplierId", SqlType.INTEGER)]), key_field="productId"))
    catalog.register_table(TableDefinition("Suppliers", RowType([
        ("supplierId", SqlType.INTEGER), ("name", SqlType.VARCHAR),
        ("location", SqlType.VARCHAR)]), key_field="supplierId"))
    for name in ("PacketsR1", "PacketsR2", "PacketsR3", "PacketsR4"):
        catalog.register_stream(StreamDefinition(name, RowType([
            ("rowtime", SqlType.TIMESTAMP), ("sourcetime", SqlType.TIMESTAMP),
            ("packetId", SqlType.BIGINT)])))
    for name in ("Asks", "Bids"):
        catalog.register_stream(StreamDefinition(name, RowType([
            ("rowtime", SqlType.TIMESTAMP), (f"{name[:-1].lower()}Id", SqlType.BIGINT),
            ("ticker", SqlType.VARCHAR), ("shares", SqlType.INTEGER),
            ("price", SqlType.DOUBLE)])))
    return catalog
