"""Tests for the benchmark support package (native jobs, harness, LoC)."""

import pytest

from repro.bench import (
    NativeFilterTask,
    NativeProjectTask,
    native_job_config,
    usability_table,
)
from repro.bench.calibration import SQL_QUERIES, measure
from repro.bench.harness import FIGURES, run_figure
from repro.bench.loc import format_usability_table
from repro.bench.micro import native_pipeline, samzasql_pipeline
from repro.common import VirtualClock
from repro.kafka import KafkaCluster
from repro.samza import JobRunner, SamzaJob
from repro.serde import AvroSerde
from repro.workloads import OrdersGenerator, ProductsGenerator, padded_orders_schema
from repro.workloads.products import PRODUCTS_SCHEMA
from repro.yarn import NodeManager, Resource, ResourceManager


def runtime():
    clock = VirtualClock(0)
    cluster = KafkaCluster(broker_count=3, clock=clock)
    rm = ResourceManager()
    rm.add_node(NodeManager("node-0", Resource(61_000, 8)))
    return cluster, JobRunner(cluster, rm, clock)


class TestNativeJobs:
    def _run(self, query, messages=100):
        cluster, runner = runtime()
        OrdersGenerator(product_count=10).produce(cluster, "Orders", messages,
                                                  partitions=4)
        if query == "join":
            ProductsGenerator(product_count=10).produce(
                cluster, "Products-changelog", partitions=4)
        config, serdes, factory = native_job_config(query, f"native-{query}")
        runner.submit(SamzaJob(config=config, task_factory=factory, serdes=serdes))
        runner.run_until_quiescent()
        return cluster

    def test_filter_output_is_raw_passthrough(self):
        cluster = self._run("filter")
        serde = AvroSerde(padded_orders_schema())
        out = []
        for tp in cluster.partitions_for("NativeFilterOut"):
            for msg in cluster.fetch(tp, 0):
                out.append(serde.from_bytes(msg.value))
        assert out and all(r["units"] > 50 for r in out)

    def test_project_output_schema(self):
        cluster = self._run("project")
        out = []
        for tp in cluster.partitions_for("NativeProjectOut"):
            for msg in cluster.fetch(tp, 0):
                out.append(NativeProjectTask.PROJECTED_SCHEMA.from_bytes(msg.value))
        assert len(out) == 100
        assert set(out[0]) == {"rowtime", "productId", "units"}

    def test_join_enriches(self):
        from repro.bench.native_jobs import NativeJoinTask

        cluster = self._run("join")
        total = 0
        for tp in cluster.partitions_for("NativeJoinOut"):
            for msg in cluster.fetch(tp, 0):
                record = NativeJoinTask.JOINED_SCHEMA.from_bytes(msg.value)
                assert "supplierId" in record
                total += 1
        assert total == 100

    def test_window_running_sums(self):
        from repro.bench.native_jobs import NativeSlidingWindowTask

        cluster = self._run("window", messages=50)
        rows = []
        for tp in cluster.partitions_for("NativeWindowOut"):
            for msg in cluster.fetch(tp, 0):
                rows.append(NativeSlidingWindowTask.WINDOWED_SCHEMA.from_bytes(msg.value))
        assert len(rows) == 50
        assert all(r["unitsLastFiveMinutes"] >= r["units"] for r in rows)

    def test_unknown_query_rejected(self):
        with pytest.raises(ValueError):
            native_job_config("sort", "x")


class TestCalibration:
    def test_measure_returns_sane_numbers(self):
        result = measure("filter", "samzasql", messages=300, partitions=4)
        assert result.messages == 300
        assert result.per_message_ms > 0
        assert result.throughput_msgs_per_s > 0

    def test_unknown_inputs_rejected(self):
        with pytest.raises(ValueError):
            measure("sort", "native")
        with pytest.raises(ValueError):
            measure("filter", "cpp")

    def test_measure_frame_codec_sane(self):
        from repro.bench.micro import measure_frame_codec

        result = measure_frame_codec(records=400, groups=4, repeats=1)
        assert result["records"] == 400
        assert result["frame_bytes"] > 400 * 64  # payload plus framing
        for key in ("encode_us_per_record", "decode_us_per_record",
                    "encode_mb_per_s", "decode_mb_per_s",
                    "header_us_per_frame", "pack_us_per_msg"):
            assert result[key] > 0

    def test_all_queries_planable(self):
        """Every benchmark query must at least plan on the SQL side."""
        from repro.sql import QueryPlanner
        from repro.sql.catalog import Catalog

        catalog = Catalog()
        catalog.register_stream_from_avro("Orders", padded_orders_schema())
        catalog.register_table_from_avro("Products", PRODUCTS_SCHEMA,
                                         key_field="productId")
        planner = QueryPlanner(catalog)
        for sql in SQL_QUERIES.values():
            assert planner.plan_query(sql) is not None


class TestMicroPipelines:
    @pytest.mark.parametrize("query", sorted(SQL_QUERIES))
    def test_samzasql_pipeline_steps(self, query):
        pipeline = samzasql_pipeline(query, messages=64)
        pipeline.run_batch(96)  # wraps around and resets

    @pytest.mark.parametrize("query", sorted(SQL_QUERIES))
    def test_native_pipeline_steps(self, query):
        native_pipeline(query, messages=64).run_batch(96)

    def test_sink_counts_output(self):
        pipeline = samzasql_pipeline("project", messages=32)
        pipeline.run_batch(32)
        assert pipeline.sink_count[0] == 32

    def test_fused_pipeline_works(self):
        samzasql_pipeline("filter", fuse_scans=True, messages=32).run_batch(32)


class TestHarness:
    def test_run_figure_small(self):
        result = run_figure("5a", container_counts=[1, 2], messages=200)
        assert len(result.native_series) == 2
        assert result.native_series[0][1] > 0
        assert "Figure 5a" in result.format_table()

    def test_all_figures_known(self):
        assert set(FIGURES) == {"5a", "5b", "5c", "6"}

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            run_figure("7")


class TestUsability:
    def test_rows_cover_all_queries(self):
        rows = usability_table()
        assert {r.query for r in rows} == set(SQL_QUERIES)

    def test_sql_is_terser(self):
        for row in usability_table():
            assert row.sql_lines < row.native_lines

    def test_format_has_all_queries(self):
        text = format_usability_table()
        for query in SQL_QUERIES:
            assert query in text
