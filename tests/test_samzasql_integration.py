"""End-to-end tests: streaming SQL text in, output stream records out.

These exercise the full stack: shell planning, ZooKeeper plan sharing,
YARN submission, Samza containers, and the operator layer.
"""

import pytest

from repro.common import PlannerError

from tests.samzasql_fixtures import Deployment


@pytest.fixture(autouse=True,
                params=[("true", "true"), ("true", "false"),
                        ("false", "true"), ("false", "false")],
                ids=["batched-compiled", "batched-interpreted",
                     "single-message-compiled", "single-message-interpreted"])
def execution_mode(request, monkeypatch):
    """Run every end-to-end scenario down all four execution paths.

    The batched container loop must be observationally identical to the
    single-message one — same outputs, same offsets, same checkpoints —
    and the exec-compiled whole-plan path must be byte-identical to the
    interpreted operator DAG, so the whole module is parametrized over
    the (``task.batch.execution`` × ``task.compile.execution``) product.
    """
    batch, compile_flag = request.param
    monkeypatch.setattr(Deployment, "default_overrides",
                        {"task.batch.execution": batch,
                         "task.compile.execution": compile_flag})
    return request.param


class TestFilterQuery:
    """The paper's Filter benchmark query."""

    SQL = "SELECT STREAM * FROM Orders WHERE units > 50"

    def test_only_matching_rows(self):
        deployment = Deployment().with_orders(100)
        handle = deployment.run(self.SQL)
        results = handle.results()
        expected = [i for i in range(100) if (i * 7) % 100 > 50]
        assert sorted(r["orderId"] for r in results) == expected
        assert all(r["units"] > 50 for r in results)

    def test_all_columns_preserved(self):
        deployment = Deployment().with_orders(20)
        handle = deployment.run(self.SQL)
        for record in handle.results():
            assert set(record) == {"rowtime", "productId", "orderId", "units"}

    def test_multi_container_same_output(self):
        single = Deployment().with_orders(100)
        multi = Deployment().with_orders(100)
        one = single.run(self.SQL, containers=1).results()
        four = multi.run(self.SQL, containers=4).results()
        key = lambda r: r["orderId"]
        assert sorted(one, key=key) == sorted(four, key=key)

    def test_continuous_processing(self):
        """A streaming query keeps consuming new input (§3.3: 'this query
        will continue to run')."""
        deployment = Deployment().with_orders(10)
        handle = deployment.run(self.SQL)
        first = len(handle.results())
        deployment.feed_orders(10, start_ts=2_000_000, start_id=100)
        deployment.runner.run_until_quiescent()
        assert len(handle.results()) > first


class TestProjectQuery:
    SQL = "SELECT STREAM rowtime, productId, units FROM Orders"

    def test_projected_columns(self):
        deployment = Deployment().with_orders(30)
        handle = deployment.run(self.SQL)
        results = handle.results()
        assert len(results) == 30
        assert all(set(r) == {"rowtime", "productId", "units"} for r in results)

    def test_computed_projection(self):
        deployment = Deployment().with_orders(10)
        handle = deployment.run(
            "SELECT STREAM orderId, units * 2 AS doubled FROM Orders")
        assert all(r["doubled"] == (r["orderId"] * 7) % 100 * 2
                   for r in handle.results())


class TestStreamRelationJoin:
    """Listing 8 — the paper's join benchmark query."""

    SQL = ("SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, "
           "Orders.units, Products.supplierId FROM Orders JOIN Products "
           "ON Orders.productId = Products.productId")

    def test_join_enriches_every_order(self):
        deployment = Deployment().with_orders(50).with_products(10)
        handle = deployment.run(self.SQL)
        results = handle.results()
        assert len(results) == 50
        for record in results:
            assert record["supplierId"] == record["productId"] % 3

    def test_missing_relation_rows_drop_orders(self):
        deployment = Deployment().with_orders(50).with_products(5)  # products 0-4
        handle = deployment.run(self.SQL)
        results = handle.results()
        assert len(results) == 25
        assert all(r["productId"] < 5 for r in results)

    def test_relation_updates_seen_by_later_orders(self):
        """Changelog updates arriving after bootstrap keep the cache current."""
        from repro.serde import AvroSerde
        from tests.samzasql_fixtures import PRODUCTS_SCHEMA

        deployment = Deployment().with_orders(10).with_products(10)
        handle = deployment.run(self.SQL)
        before = {r["orderId"]: r["supplierId"] for r in handle.results()}
        # update product 3's supplier, then send more orders for product 3
        serde = AvroSerde(PRODUCTS_SCHEMA)
        deployment.producer.send(
            "Products-changelog",
            serde.to_bytes({"productId": 3, "name": "product-3", "supplierId": 99}),
            key=b"3")
        deployment.feed_orders(10, start_ts=5_000_000, start_id=200)
        deployment.runner.run_until_quiescent()
        after = {r["orderId"]: r["supplierId"] for r in handle.results()}
        assert after[203] == 99          # new order sees the update
        assert after[3] == before[3] == 0  # old output unchanged

    def test_bootstrap_happens_before_stream(self):
        """Orders produced before the job starts must still all join — the
        relation is fully bootstrapped before stream processing."""
        deployment = Deployment().with_orders(40).with_products(10)
        handle = deployment.run(self.SQL, containers=2)
        assert len(handle.results()) == 40


class TestSlidingWindowQuery:
    """The paper's sliding-window benchmark query (Listing 6 shape)."""

    SQL = ("SELECT STREAM rowtime, productId, units, SUM(units) OVER "
           "(PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE "
           "PRECEDING) unitsLastFiveMinutes FROM Orders")

    def test_one_output_per_input(self):
        deployment = Deployment().with_orders(50)
        handle = deployment.run(self.SQL)
        assert len(handle.results()) == 50

    def test_window_sums_match_reference(self):
        deployment = Deployment(partitions=1).with_orders(60, step_ms=30_000)
        handle = deployment.run(self.SQL)
        results = sorted(handle.results(), key=lambda r: r["rowtime"])
        window_ms = 5 * 60 * 1000
        rows = [(r["rowtime"], r["productId"], r["units"]) for r in results]
        for record in results:
            expected = sum(
                units for ts, pid, units in rows
                if pid == record["productId"]
                and record["rowtime"] - window_ms <= ts <= record["rowtime"])
            assert record["unitsLastFiveMinutes"] == expected

    def test_old_rows_leave_the_window(self):
        deployment = Deployment(partitions=1)
        deployment.with_orders(0)
        # two bursts 10 minutes apart: second burst must not include first
        deployment.feed_orders(5, start_ts=1_000_000, step_ms=1)
        deployment.feed_orders(5, start_ts=1_000_000 + 10 * 60 * 1000,
                               step_ms=1, start_id=100)
        handle = deployment.run(self.SQL)
        results = sorted(handle.results(), key=lambda r: r["rowtime"])
        by_order = {r["rowtime"]: r for r in results}
        late = [r for r in results if r["rowtime"] >= 1_000_000 + 10 * 60 * 1000]
        for record in late:
            assert record["unitsLastFiveMinutes"] <= sum(
                x["units"] for x in late)


class TestStreamStreamJoin:
    """Listing 7 — packet latency between two routers."""

    SQL = ("SELECT STREAM GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime, "
           "PacketsR1.sourcetime, PacketsR1.packetId, "
           "PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel "
           "FROM PacketsR1 JOIN PacketsR2 ON "
           "PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
           "AND PacketsR2.rowtime + INTERVAL '2' SECOND "
           "AND PacketsR1.packetId = PacketsR2.packetId")

    def test_packets_within_window_join(self):
        deployment = Deployment(partitions=2).with_packets()
        for pid in range(10):
            t0 = 1_000_000 + pid * 10_000
            deployment.feed_packet("PacketsR1", pid, t0)
            deployment.feed_packet("PacketsR2", pid, t0 + 500)  # 0.5s later
        handle = deployment.run(self.SQL)
        results = handle.results()
        assert len(results) == 10
        assert all(r["timeToTravel"] == 500 for r in results)

    def test_packets_outside_window_do_not_join(self):
        deployment = Deployment(partitions=2).with_packets()
        deployment.feed_packet("PacketsR1", 1, 1_000_000)
        deployment.feed_packet("PacketsR2", 1, 1_000_000 + 5000)  # 5s > 2s window
        handle = deployment.run(self.SQL)
        assert handle.results() == []

    def test_key_mismatch_does_not_join(self):
        deployment = Deployment(partitions=2).with_packets()
        deployment.feed_packet("PacketsR1", 1, 1_000_000)
        deployment.feed_packet("PacketsR2", 2, 1_000_500)
        handle = deployment.run(self.SQL)
        assert handle.results() == []

    def test_join_works_regardless_of_arrival_order(self):
        deployment = Deployment(partitions=1).with_packets()
        deployment.feed_packet("PacketsR2", 7, 1_000_500)  # R2 first
        deployment.feed_packet("PacketsR1", 7, 1_000_000)
        handle = deployment.run(self.SQL)
        results = handle.results()
        assert len(results) == 1
        assert results[0]["timeToTravel"] == 500


class TestMultiWayStreamJoin:
    """K-way windowed stream joins: the collapsed shared-state operator
    must produce exactly the pairwise cascade's output set."""

    @staticmethod
    def _sql(k):
        parts = ["SELECT STREAM PacketsR1.rowtime AS rowtime, "
                 "PacketsR1.packetId, "
                 f"PacketsR{k}.rowtime - PacketsR1.rowtime AS lag "
                 "FROM PacketsR1"]
        for i in range(2, k + 1):
            parts.append(
                f"JOIN PacketsR{i} ON PacketsR1.rowtime BETWEEN "
                f"PacketsR{i}.rowtime - INTERVAL '2' SECOND AND "
                f"PacketsR{i}.rowtime + INTERVAL '2' SECOND AND "
                f"PacketsR{i - 1}.packetId = PacketsR{i}.packetId")
        return " ".join(parts)

    @staticmethod
    def _feed(deployment, k):
        for pid in range(8):
            t0 = 1_000_000 + pid * 5_000
            deployment.feed_packet("PacketsR1", pid, t0)
            deployment.feed_packet("PacketsR2", pid, t0 + 400)
            deployment.feed_packet("PacketsR2", pid, t0 + 700)  # fan-out
            for i in range(3, k + 1):
                deployment.feed_packet(f"PacketsR{i}", pid, t0 + 200 * i)
        # never join: unmatched key, and an R1 row inside no window
        deployment.feed_packet("PacketsR2", 999, 1_000_000)
        deployment.feed_packet("PacketsR1", 500, 2_000_000)

    def _run(self, k, overrides=None):
        deployment = Deployment(partitions=2).with_packets(routers=k)
        self._feed(deployment, k)
        handle = deployment.run(self._sql(k),
                                config_overrides=overrides or {})
        return sorted(tuple(sorted(r.items())) for r in handle.results())

    @pytest.mark.parametrize("routers", [3, 4])
    def test_output_identical_to_cascade(self, routers):
        multi = self._run(routers)
        cascade = self._run(routers, {"execution.multiway.join": "false"})
        assert multi == cascade
        assert len(multi) == 16  # 8 packet ids x 2 matching R2 rows

    def test_window_chain_needs_the_multiway_operator(self):
        """Windows chained pairwise (R2-R3, not all anchored to R1) are
        collapsible via the transitive closure, but the cascade cannot
        derive a window for its outer join — the collapse is a net new
        capability, not just a faster plan."""
        sql = ("SELECT STREAM PacketsR1.packetId FROM PacketsR1 "
               "JOIN PacketsR2 ON PacketsR1.rowtime BETWEEN "
               "PacketsR2.rowtime - INTERVAL '2' SECOND AND "
               "PacketsR2.rowtime + INTERVAL '2' SECOND AND "
               "PacketsR1.packetId = PacketsR2.packetId "
               "JOIN PacketsR3 ON PacketsR2.rowtime BETWEEN "
               "PacketsR3.rowtime - INTERVAL '2' SECOND AND "
               "PacketsR3.rowtime + INTERVAL '2' SECOND AND "
               "PacketsR2.packetId = PacketsR3.packetId")
        deployment = Deployment(partitions=1).with_packets(routers=3)
        deployment.feed_packet("PacketsR1", 1, 1_000_000)
        deployment.feed_packet("PacketsR2", 1, 1_000_500)
        deployment.feed_packet("PacketsR3", 1, 1_000_900)
        handle = deployment.run(sql)
        assert len(handle.results()) == 1

        cascade = Deployment(partitions=1).with_packets(routers=3)
        with pytest.raises(PlannerError, match="time window"):
            cascade.run(sql,
                        config_overrides={"execution.multiway.join": "false"})

    def test_explain_reports_collapse_and_order(self):
        deployment = Deployment(partitions=1).with_packets(routers=3)
        report = deployment.shell.execute("EXPLAIN " + self._sql(3))
        assert "multi-way join: collapsed 3 inputs" in report
        assert "probe order by window_ms" in report
        cascade = deployment.shell.execute(
            "EXPLAIN " + self._sql(3),
            config_overrides={"execution.multiway.join": "false"})
        assert "running the pairwise cascade" in cascade


class TestGroupWindows:
    def test_tumbling_hourly_count(self):
        """Listing 4 — hourly order counts."""
        deployment = Deployment(partitions=1)
        deployment.with_orders(0)
        hour = 3_600_000
        # 3 orders in hour 1, 2 in hour 2, 1 in hour 3 (h3 emits on watermark
        # from a later sentinel order in hour 4)
        times = [hour + 1, hour + 2, hour + 3,
                 2 * hour + 1, 2 * hour + 2,
                 3 * hour + 1,
                 4 * hour + 1]
        from repro.serde import AvroSerde
        from tests.samzasql_fixtures import ORDERS_SCHEMA
        serde = AvroSerde(ORDERS_SCHEMA)
        for i, ts in enumerate(times):
            deployment.producer.send(
                "Orders", serde.to_bytes(
                    {"rowtime": ts, "productId": 0, "orderId": i, "units": 1}),
                key=b"0", timestamp_ms=ts)
        handle = deployment.run(
            "SELECT STREAM START(rowtime) AS ws, END(rowtime) AS we, COUNT(*) AS c "
            "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")
        results = sorted(handle.results(), key=lambda r: r["ws"])
        # the hour-4 window never closes (no later watermark), so 3 outputs
        assert [(r["ws"] // hour, r["c"]) for r in results] == [(1, 3), (2, 2), (3, 1)]
        assert all(r["we"] - r["ws"] == hour for r in results)

    def test_hopping_window_overlap(self):
        """HOP(emit=1m, retain=2m): each tuple lands in two windows."""
        deployment = Deployment(partitions=1)
        deployment.with_orders(0)
        minute = 60_000
        from repro.serde import AvroSerde
        from tests.samzasql_fixtures import ORDERS_SCHEMA
        serde = AvroSerde(ORDERS_SCHEMA)
        # one order per minute for 6 minutes
        for i in range(6):
            ts = minute * (i + 1) + 1
            deployment.producer.send(
                "Orders", serde.to_bytes(
                    {"rowtime": ts, "productId": 0, "orderId": i, "units": 1}),
                key=b"0", timestamp_ms=ts)
        handle = deployment.run(
            "SELECT STREAM START(rowtime) AS ws, COUNT(*) AS c FROM Orders "
            "GROUP BY HOP(rowtime, INTERVAL '1' MINUTE, INTERVAL '2' MINUTE)")
        results = sorted(handle.results(), key=lambda r: r["ws"])
        # interior closed windows hold 2 tuples each (overlap)
        interior = [r for r in results if r["c"] == 2]
        assert len(interior) >= 3

    def test_floor_group_by_is_hourly_tumble(self):
        """Listing 3's FLOOR(rowtime TO HOUR) GROUP BY idiom."""
        deployment = Deployment(partitions=1)
        deployment.with_orders(0)
        hour = 3_600_000
        from repro.serde import AvroSerde
        from tests.samzasql_fixtures import ORDERS_SCHEMA
        serde = AvroSerde(ORDERS_SCHEMA)
        for i, ts in enumerate([hour + 1, hour + 2, 2 * hour + 5, 3 * hour + 1]):
            deployment.producer.send(
                "Orders", serde.to_bytes(
                    {"rowtime": ts, "productId": i % 2, "orderId": i, "units": 20}),
                key=str(i % 2).encode(), timestamp_ms=ts)
        handle = deployment.run(
            "SELECT STREAM FLOOR(rowtime TO HOUR) AS hr, productId, COUNT(*) AS c, "
            "SUM(units) AS su FROM Orders "
            "GROUP BY FLOOR(rowtime TO HOUR), productId")
        results = handle.results()
        hour1 = [r for r in results if r["hr"] == hour]
        assert sorted((r["productId"], r["c"], r["su"]) for r in hour1) == [
            (0, 1, 20), (1, 1, 20)]


class TestBatchMode:
    def test_select_without_stream_reads_history(self):
        deployment = Deployment().with_orders(40)
        rows = deployment.shell.execute(
            "SELECT productId, COUNT(*) AS c, SUM(units) AS su FROM Orders "
            "GROUP BY productId")
        assert len(rows) == 10
        assert all(r["c"] == 4 for r in rows)

    def test_table_query(self):
        deployment = Deployment().with_orders(0).with_products(10)
        rows = deployment.shell.execute(
            "SELECT name FROM Products WHERE supplierId = 0")
        assert sorted(r["name"] for r in rows) == [
            "product-0", "product-3", "product-6", "product-9"]

    def test_stream_table_join_batch(self):
        deployment = Deployment().with_orders(20).with_products(10)
        rows = deployment.shell.execute(
            "SELECT Orders.orderId, Products.name FROM Orders JOIN Products "
            "ON Orders.productId = Products.productId")
        assert len(rows) == 20

    def test_create_view_then_query(self):
        deployment = Deployment().with_orders(50)
        assert deployment.shell.execute(
            "CREATE VIEW BigOrders AS SELECT * FROM Orders WHERE units > 50") is None
        rows = deployment.shell.execute("SELECT COUNT(*) AS c FROM BigOrders")
        expected = sum(1 for i in range(50) if (i * 7) % 100 > 50)
        assert rows[0]["c"] == expected


class TestStreamTableEquivalence:
    """§3.2: same results on a stream as if the data were in a table."""

    def test_filter_equivalence(self):
        deployment = Deployment().with_orders(80)
        streaming = deployment.run("SELECT STREAM orderId, units FROM Orders "
                                   "WHERE units BETWEEN 20 AND 60").results()
        batch = deployment.shell.execute(
            "SELECT orderId, units FROM Orders WHERE units BETWEEN 20 AND 60")
        key = lambda r: r["orderId"]
        assert sorted(streaming, key=key) == sorted(batch, key=key)

    def test_join_equivalence(self):
        deployment = Deployment().with_orders(30).with_products(10)
        sql_core = ("Orders.orderId AS orderId, Products.supplierId AS supplierId "
                    "FROM Orders JOIN Products "
                    "ON Orders.productId = Products.productId")
        streaming = deployment.run(f"SELECT STREAM {sql_core}").results()
        batch = deployment.shell.execute(f"SELECT {sql_core}")
        key = lambda r: r["orderId"]
        assert sorted(streaming, key=key) == sorted(batch, key=key)


class TestPlannerRejections:
    def test_unwindowed_stream_aggregate_rejected(self):
        deployment = Deployment().with_orders(5)
        with pytest.raises(PlannerError, match="window"):
            deployment.shell.execute(
                "SELECT STREAM productId, COUNT(*) FROM Orders GROUP BY productId")

    def test_stream_of_table_rejected(self):
        deployment = Deployment().with_orders(0).with_products(3)
        with pytest.raises(PlannerError, match="stream"):
            deployment.shell.execute("SELECT STREAM * FROM Products")

    def test_unbounded_stream_join_rejected(self):
        deployment = Deployment().with_packets()
        with pytest.raises(PlannerError, match="time window"):
            deployment.shell.execute(
                "SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 "
                "ON PacketsR1.packetId = PacketsR2.packetId")


class TestInsertInto:
    def test_named_output_stream(self):
        deployment = Deployment().with_orders(20)
        handle = deployment.run(
            "INSERT INTO BigOrders SELECT STREAM * FROM Orders WHERE units > 50")
        assert handle.output_stream == "BigOrders"
        assert deployment.cluster.has_topic("BigOrders")
        assert len(handle.results()) > 0

    def test_chained_queries_via_insert(self):
        """Kappa-style pipeline: query 2 consumes query 1's output stream."""
        deployment = Deployment().with_orders(40)
        first = deployment.run(
            "INSERT INTO BigOrders SELECT STREAM * FROM Orders WHERE units > 50")
        deployment.shell.register_derived_stream("BigOrdersIn", first)
        handle = deployment.run(
            "SELECT STREAM orderId FROM BigOrdersIn WHERE units > 90")
        expected = [i for i in range(40) if (i * 7) % 100 > 90]
        assert sorted(r["orderId"] for r in handle.results()) == expected


class TestFaultTolerance:
    SQL = ("SELECT STREAM rowtime, productId, orderId, units, SUM(units) OVER "
           "(PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE "
           "PRECEDING) unitsLastFiveMinutes FROM Orders")

    def test_sliding_window_survives_container_failure(self):
        """Kill a container mid-query; the replacement restores window state
        from the changelog and outputs stay deterministic (§4.3)."""
        deployment = Deployment(partitions=2).with_orders(30, step_ms=1000)
        handle = deployment.shell.execute(self.SQL, containers=2)
        for _ in range(3):
            deployment.runner.run_iteration()
        deployment.runner.kill_container(handle.master, index=0)
        deployment.feed_orders(30, start_ts=2_000_000, start_id=100)
        deployment.runner.run_until_quiescent()
        results = handle.results()
        # at-least-once: every input produced at least one output, and window
        # sums for late (post-failure) records are still correct
        order_ids = {r["orderId"] for r in results}
        assert set(range(100, 130)) <= order_ids
        window_ms = 5 * 60 * 1000
        by_id = {}
        for r in results:
            by_id[r["orderId"]] = r  # replays overwrite with identical values
        rows = sorted(by_id.values(), key=lambda r: r["rowtime"])
        for record in rows:
            if record["orderId"] < 100:
                continue
            expected = sum(
                x["units"] for x in rows
                if x["productId"] == record["productId"]
                and record["rowtime"] - window_ms <= x["rowtime"] <= record["rowtime"])
            assert record["unitsLastFiveMinutes"] == expected


class TestBatchSingleEquivalence:
    """The batched path must be bit-identical to single-message execution:
    same output records, same task offsets, same checkpoint contents."""

    QUERIES = {
        "filter": "SELECT STREAM * FROM Orders WHERE units > 50",
        "project": "SELECT STREAM rowtime, productId, units FROM Orders",
        "window": ("SELECT STREAM rowtime, productId, units, SUM(units) OVER "
                   "(PARTITION BY productId ORDER BY rowtime RANGE "
                   "INTERVAL '5' MINUTE PRECEDING) unitsLastFiveMinutes "
                   "FROM Orders"),
        "join": ("SELECT STREAM GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) "
                 "AS rowtime, PacketsR1.sourcetime, PacketsR1.packetId, "
                 "PacketsR2.rowtime - PacketsR1.rowtime AS timeToTravel "
                 "FROM PacketsR1 JOIN PacketsR2 ON "
                 "PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
                 "AND PacketsR2.rowtime + INTERVAL '2' SECOND "
                 "AND PacketsR1.packetId = PacketsR2.packetId"),
        "group_window": ("SELECT STREAM START(rowtime) AS ws, END(rowtime) AS we, "
                         "COUNT(*) AS c, SUM(units) AS s FROM Orders "
                         "GROUP BY TUMBLE(rowtime, INTERVAL '1' MINUTE)"),
    }

    @staticmethod
    def _deployment(query: str) -> Deployment:
        if query == "join":
            deployment = Deployment(partitions=2).with_packets()
            for pid in range(40):
                t0 = 1_000_000 + pid * 700
                deployment.feed_packet("PacketsR1", pid, t0)
                deployment.feed_packet("PacketsR2", pid, t0 + (pid % 5) * 400)
            return deployment
        return Deployment().with_orders(120)

    @classmethod
    def _run_mode(cls, query: str, mode: str, containers: int = 2):
        deployment = cls._deployment(query)
        handle = deployment.run(
            cls.QUERIES[query], containers=containers,
            config_overrides={"task.batch.execution": mode})
        outputs = sorted(handle.results(),
                         key=lambda r: sorted(r.items()))
        offsets = {}
        checkpoints = {}
        stores = {}
        for container in handle.master.samza_containers.values():
            for name, instance in container.tasks.items():
                offsets[name] = {str(ssp): off
                                 for ssp, off in instance.offsets.items()}
                instance.commit()
                checkpoint = instance._checkpoints.read_last_checkpoint(name)
                checkpoints[name] = checkpoint.to_payload()
                stores[name] = {
                    store_name: {repr(k): v for k, v in contents.items()}
                    for store_name, contents
                    in instance.store_snapshot().items()
                }
        return outputs, offsets, checkpoints, stores

    @pytest.mark.parametrize("query", sorted(QUERIES))
    def test_outputs_offsets_checkpoints_identical(self, query):
        batched = self._run_mode(query, "true")
        single = self._run_mode(query, "false")
        assert batched[0] == single[0], "output records differ"
        assert batched[1] == single[1], "task offsets differ"
        assert batched[2] == single[2], "checkpoint contents differ"
        assert batched[3] == single[3], "committed store state differs"
