"""Direct tests of SamzaSqlTask: the task-side half of two-phase planning."""

import pytest

from repro.common import Config, ZkError
from repro.samza.storage import InMemoryKeyValueStore, SerializedKeyValueStore
from repro.samza.system import (
    IncomingMessageEnvelope,
    SystemStreamPartition,
)
from repro.samza.task import ListCollector, TaskContext
from repro.samzasql.plan_builder import PhysicalPlanBuilder
from repro.samzasql.task import SamzaSqlTask
from repro.serde import ObjectSerde
from repro.sql import QueryPlanner
from repro.zk import ZkClient, ZkServer

from tests.sql_fixtures import paper_catalog


class _Coordinator:
    def commit(self):
        pass

    def shutdown(self):
        pass


def make_task(sql, stores=()):
    """Plan a query, push the plan through ZooKeeper, init a task from it."""
    catalog = paper_catalog()
    logical = QueryPlanner(catalog).plan_query(sql)
    builder = PhysicalPlanBuilder(catalog)
    plan = builder.build(logical, "Out")

    zk = ZkServer()
    shell_client = ZkClient(zk)
    shell_client.write_json("/samza-sql/queries/q1/plan", plan.to_dict())

    task = SamzaSqlTask(ZkClient(zk), "/samza-sql/queries/q1/plan")
    store_map = {
        name: SerializedKeyValueStore(InMemoryKeyValueStore(),
                                      ObjectSerde(), ObjectSerde())
        for name in plan.store_names
    }
    context = TaskContext("Partition 0", 0, store_map)
    task.init(Config({}), context)
    return task, plan


def envelope(stream, message, ts=0):
    return IncomingMessageEnvelope(
        system_stream_partition=SystemStreamPartition("kafka", stream, 0),
        offset=0, key=None, message=message, timestamp_ms=ts)


class TestTaskInit:
    def test_plan_loaded_from_zookeeper(self):
        task, plan = make_task("SELECT STREAM * FROM Orders WHERE units > 50")
        assert task.router is not None
        assert "Filter" in task.router.operator_chain()

    def test_missing_plan_raises(self):
        zk = ZkServer()
        task = SamzaSqlTask(ZkClient(zk), "/missing")
        with pytest.raises(ZkError):
            task.init(Config({}), TaskContext("Partition 0", 0, {}))

    def test_process_routes_and_collects(self):
        task, _ = make_task("SELECT STREAM * FROM Orders WHERE units > 50")
        collector = ListCollector()
        task.process(envelope("Orders", {"rowtime": 1, "productId": 1,
                                         "orderId": 1, "units": 60}),
                     collector, _Coordinator())
        task.process(envelope("Orders", {"rowtime": 2, "productId": 1,
                                         "orderId": 2, "units": 10}),
                     collector, _Coordinator())
        assert len(collector.envelopes) == 1
        assert collector.envelopes[0].message["units"] == 60
        assert collector.envelopes[0].system_stream.stream == "Out"

    def test_stateful_task_uses_context_stores(self):
        task, plan = make_task(
            "SELECT STREAM rowtime, SUM(units) OVER (PARTITION BY productId "
            "ORDER BY rowtime RANGE INTERVAL '1' HOUR PRECEDING) s FROM Orders")
        assert set(plan.store_names) == {"sql-window-messages", "sql-window-state"}
        collector = ListCollector()
        for i, units in enumerate([5, 7]):
            task.process(envelope("Orders", {"rowtime": 1000 + i, "productId": 1,
                                             "orderId": i, "units": units}),
                         collector, _Coordinator())
        assert collector.envelopes[-1].message["s"] == 12

    def test_window_callback_noop_without_early_emit(self):
        task, _ = make_task("SELECT STREAM * FROM Orders")
        collector = ListCollector()
        task.window(collector, _Coordinator())  # must not raise or emit
        assert collector.envelopes == []
