"""Unit + property tests for the varint/zigzag codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import (
    SerdeError,
    decode_varint,
    decode_zigzag,
    encode_varint,
    encode_zigzag,
    read_varint,
    read_zigzag,
)


class TestVarint:
    @pytest.mark.parametrize("value,encoded", [
        (0, b"\x00"),
        (1, b"\x01"),
        (127, b"\x7f"),
        (128, b"\x80\x01"),
        (300, b"\xac\x02"),
    ])
    def test_known_encodings(self, value, encoded):
        assert encode_varint(value) == encoded
        assert decode_varint(encoded) == value

    def test_negative_rejected(self):
        with pytest.raises(SerdeError):
            encode_varint(-1)

    def test_truncated_rejected(self):
        with pytest.raises(SerdeError):
            decode_varint(b"\x80")

    def test_trailing_bytes_rejected(self):
        with pytest.raises(SerdeError):
            decode_varint(b"\x01\x01")

    def test_read_returns_offset(self):
        buf = encode_varint(300) + b"rest"
        value, pos = read_varint(buf, 0)
        assert value == 300
        assert buf[pos:] == b"rest"

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        assert decode_varint(encode_varint(value)) == value


class TestZigzag:
    @pytest.mark.parametrize("value,encoded", [
        (0, b"\x00"),
        (-1, b"\x01"),
        (1, b"\x02"),
        (-2, b"\x03"),
        (2147483647, b"\xfe\xff\xff\xff\x0f"),
    ])
    def test_known_encodings(self, value, encoded):
        assert encode_zigzag(value) == encoded
        assert decode_zigzag(encoded) == value

    def test_read_returns_offset(self):
        buf = encode_zigzag(-42) + b"x"
        value, pos = read_zigzag(buf, 0)
        assert value == -42
        assert pos == len(buf) - 1

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_roundtrip_property(self, value):
        assert decode_zigzag(encode_zigzag(value)) == value

    @given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=20))
    def test_concatenated_stream_roundtrip(self, values):
        buf = b"".join(encode_zigzag(v) for v in values)
        pos = 0
        out = []
        for _ in values:
            v, pos = read_zigzag(buf, pos)
            out.append(v)
        assert out == values
        assert pos == len(buf)
