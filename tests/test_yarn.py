"""Tests for the YARN model: scheduling, capacity, failure handling."""

import pytest

from repro.common import YarnError
from repro.yarn import (
    ApplicationMaster,
    Container,
    ContainerState,
    NodeManager,
    Resource,
    ResourceManager,
)
from repro.yarn.rm import ApplicationState


class RecordingMaster(ApplicationMaster):
    """Test AM: requests N containers at start, records callbacks, and can
    re-request replacements for failures (like the Samza AM does)."""

    def __init__(self, initial=2, resource=Resource(1024, 1), replace_failed=False):
        self.initial = initial
        self.resource = resource
        self.replace_failed = replace_failed
        self.allocated: list[Container] = []
        self.completed: list[Container] = []
        self._rm = None

    def on_start(self, rm):
        self._rm = rm
        rm.request_containers(self.application_id, self.initial, self.resource)

    def on_containers_allocated(self, containers):
        self.allocated.extend(containers)

    def on_container_completed(self, container):
        self.completed.append(container)
        if self.replace_failed and container.state is ContainerState.FAILED:
            self._rm.request_containers(self.application_id, 1, self.resource)


def small_cluster(nodes=2, mem=4096, cores=4):
    rm = ResourceManager()
    for i in range(nodes):
        rm.add_node(NodeManager(f"node-{i}", Resource(mem, cores)))
    return rm


class TestResource:
    def test_arithmetic(self):
        assert Resource(2, 1) + Resource(3, 1) == Resource(5, 2)
        assert Resource(5, 2) - Resource(3, 1) == Resource(2, 1)

    def test_fits_in(self):
        assert Resource(1, 1).fits_in(Resource(2, 2))
        assert not Resource(3, 1).fits_in(Resource(2, 2))
        assert not Resource(1, 3).fits_in(Resource(2, 2))

    def test_negative_rejected(self):
        with pytest.raises(YarnError):
            Resource(-1, 0)


class TestNodeManager:
    def test_capacity_accounting(self):
        node = NodeManager("n", Resource(4096, 4))
        c = Container("c1", "app", "n", Resource(1024, 1))
        node.launch(c)
        assert node.allocated == Resource(1024, 1)
        assert node.available == Resource(3072, 3)

    def test_overcommit_rejected(self):
        node = NodeManager("n", Resource(1024, 1))
        node.launch(Container("c1", "app", "n", Resource(1024, 1)))
        with pytest.raises(YarnError):
            node.launch(Container("c2", "app", "n", Resource(1, 1)))

    def test_kill_releases_capacity(self):
        node = NodeManager("n", Resource(1024, 1))
        node.launch(Container("c1", "app", "n", Resource(1024, 1)))
        node.kill("c1")
        assert node.available == Resource(1024, 1)

    def test_kill_unknown_raises(self):
        with pytest.raises(YarnError):
            NodeManager("n", Resource(1, 1)).kill("nope")

    def test_mark_unhealthy_fails_running(self):
        node = NodeManager("n", Resource(4096, 4))
        c = Container("c1", "app", "n", Resource(1024, 1))
        node.launch(c)
        failed = node.mark_unhealthy()
        assert failed == [c]
        assert c.state is ContainerState.FAILED
        assert not node.can_fit(Resource(1, 1))


class TestScheduling:
    def test_submit_allocates(self):
        rm = small_cluster()
        am = RecordingMaster(initial=3)
        app_id = rm.submit_application("job", am)
        assert len(am.allocated) == 3
        assert rm.application(app_id).state is ApplicationState.RUNNING

    def test_containers_spread_across_nodes(self):
        rm = small_cluster(nodes=2)
        am = RecordingMaster(initial=4)
        rm.submit_application("job", am)
        nodes = {c.node_id for c in am.allocated}
        assert nodes == {"node-0", "node-1"}

    def test_request_queues_when_full(self):
        rm = small_cluster(nodes=1, mem=2048)
        am = RecordingMaster(initial=3, resource=Resource(1024, 1))
        rm.submit_application("job", am)
        assert len(am.allocated) == 2
        assert rm.pending_request_count() == 1

    def test_queued_request_served_after_release(self):
        rm = small_cluster(nodes=1, mem=2048)
        am = RecordingMaster(initial=3, resource=Resource(1024, 1))
        rm.submit_application("job", am)
        rm.release_container(am.allocated[0].container_id)
        rm.request_containers(am.application_id, 1, Resource(1024, 1))
        # the release freed capacity; both the old pending and the new request
        # compete for one slot
        assert len(am.allocated) == 3

    def test_invalid_count_rejected(self):
        rm = small_cluster()
        am = RecordingMaster(initial=1)
        rm.submit_application("job", am)
        with pytest.raises(YarnError):
            rm.request_containers(am.application_id, 0, Resource(1, 1))

    def test_unknown_app_raises(self):
        with pytest.raises(YarnError):
            small_cluster().application("application_9999")

    def test_cluster_capacity_math(self):
        rm = small_cluster(nodes=2, mem=4096, cores=4)
        assert rm.cluster_capacity() == Resource(8192, 8)
        am = RecordingMaster(initial=1, resource=Resource(1000, 1))
        rm.submit_application("job", am)
        assert rm.cluster_available() == Resource(7192, 7)

    def test_duplicate_node_rejected(self):
        rm = small_cluster(nodes=1)
        with pytest.raises(YarnError):
            rm.add_node(NodeManager("node-0", Resource(1, 1)))

    def test_can_allocate_honours_per_node_packing(self):
        # Two nodes with 2048 MB each: aggregate headroom is 4096 MB, but
        # a single 3000 MB container fits nowhere.
        rm = small_cluster(nodes=2, mem=2048)
        assert rm.can_allocate(Resource(2048, 1))
        assert rm.can_allocate(Resource(2048, 1), count=2)
        assert not rm.can_allocate(Resource(3000, 1))
        assert not rm.can_allocate(Resource(2048, 1), count=3)
        # Placement consumes capacity: after one 2048 MB container lands,
        # only one more fits.
        am = RecordingMaster(initial=1, resource=Resource(2048, 1))
        rm.submit_application("job", am)
        assert rm.can_allocate(Resource(2048, 1))
        assert not rm.can_allocate(Resource(2048, 1), count=2)

    def test_can_allocate_ignores_unhealthy_nodes(self):
        rm = small_cluster(nodes=2, mem=2048)
        rm.fail_node("node-0")
        assert rm.can_allocate(Resource(2048, 1))
        assert not rm.can_allocate(Resource(2048, 1), count=2)


class TestLifecycleAndFailure:
    def test_finish_application_completes_containers(self):
        rm = small_cluster()
        am = RecordingMaster(initial=2)
        app_id = rm.submit_application("job", am)
        rm.finish_application(app_id)
        report = rm.application(app_id)
        assert report.state is ApplicationState.FINISHED
        assert all(c.state is ContainerState.COMPLETED for c in report.containers.values())

    def test_kill_application(self):
        rm = small_cluster()
        am = RecordingMaster(initial=1)
        app_id = rm.submit_application("job", am)
        rm.kill_application(app_id)
        assert rm.application(app_id).state is ApplicationState.KILLED

    def test_container_failure_notifies_am(self):
        rm = small_cluster()
        am = RecordingMaster(initial=2)
        rm.submit_application("job", am)
        victim = am.allocated[0]
        rm.fail_container(victim.container_id, "oom")
        assert am.completed == [victim]
        assert victim.state is ContainerState.FAILED
        assert victim.exit_message == "oom"

    def test_am_replaces_failed_container(self):
        """The Samza-style recovery loop: failure -> AM re-requests -> new
        container allocated on remaining capacity."""
        rm = small_cluster()
        am = RecordingMaster(initial=2, replace_failed=True)
        rm.submit_application("job", am)
        rm.fail_container(am.allocated[0].container_id)
        assert len(am.allocated) == 3
        assert am.allocated[2].state is ContainerState.RUNNING

    def test_node_failure_fails_all_its_containers(self):
        rm = small_cluster(nodes=2)
        am = RecordingMaster(initial=4, replace_failed=True)
        rm.submit_application("job", am)
        per_node = {}
        for c in am.allocated:
            per_node.setdefault(c.node_id, []).append(c)
        rm.fail_node("node-0")
        # all containers that were on node-0 failed and were replaced on node-1
        assert len(am.completed) == len(per_node["node-0"])
        replacements = am.allocated[4:]
        assert all(c.node_id == "node-1" for c in replacements)

    def test_fail_container_idempotent_on_terminal(self):
        rm = small_cluster()
        am = RecordingMaster(initial=1)
        app_id = rm.submit_application("job", am)
        rm.finish_application(app_id)
        rm.fail_container(am.allocated[0].container_id)  # no callback
        assert am.completed == []
