"""Tests for PartitionLog: ordering, replay, retention, compaction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import KafkaError, OffsetOutOfRangeError
from repro.kafka import PartitionLog


def make_log(n=0):
    log = PartitionLog("t", 0)
    for i in range(n):
        log.append(str(i % 3).encode(), f"v{i}".encode(), timestamp_ms=1000 + i)
    return log


class TestAppendRead:
    def test_offsets_sequential_from_zero(self):
        log = make_log()
        assert log.append(b"k", b"v", 1) == 0
        assert log.append(b"k", b"v", 2) == 1
        assert log.end_offset == 2

    def test_read_all_in_order(self):
        log = make_log(5)
        msgs = log.read(0)
        assert [m.offset for m in msgs] == [0, 1, 2, 3, 4]
        assert msgs[0].value == b"v0"

    def test_read_from_middle(self):
        log = make_log(5)
        assert [m.offset for m in log.read(3)] == [3, 4]

    def test_read_max_records(self):
        log = make_log(10)
        assert len(log.read(0, max_records=4)) == 4

    def test_read_at_end_is_empty(self):
        log = make_log(3)
        assert log.read(3) == []

    def test_read_past_end_raises(self):
        log = make_log(3)
        with pytest.raises(OffsetOutOfRangeError):
            log.read(4)

    def test_null_key_and_value_allowed(self):
        log = PartitionLog("t", 0)
        log.append(None, b"v", 1)
        log.append(b"k", None, 2)  # tombstone
        assert log.read(0)[0].key is None
        assert log.read(0)[1].value is None

    def test_non_bytes_rejected(self):
        log = PartitionLog("t", 0)
        with pytest.raises(KafkaError):
            log.append("key", b"v", 1)
        with pytest.raises(KafkaError):
            log.append(b"k", 42, 1)

    def test_message_size_accounting(self):
        log = PartitionLog("t", 0)
        log.append(b"ab", b"cdef", 1)
        assert log.size_bytes == 2 + 4 + 24


class TestRetention:
    def test_truncate_before(self):
        log = make_log(10)
        removed = log.truncate_before(4)
        assert removed == 4
        assert log.log_start_offset == 4
        assert [m.offset for m in log.read(4)] == list(range(4, 10))

    def test_read_below_log_start_raises(self):
        log = make_log(10)
        log.truncate_before(4)
        with pytest.raises(OffsetOutOfRangeError):
            log.read(2)

    def test_truncate_beyond_end_clamps(self):
        log = make_log(3)
        assert log.truncate_before(100) == 3
        assert log.log_start_offset == 3
        assert log.end_offset == 3

    def test_truncate_noop_below_start(self):
        log = make_log(5)
        log.truncate_before(3)
        assert log.truncate_before(2) == 0

    def test_time_retention(self):
        log = make_log(10)  # timestamps 1000..1009
        removed = log.apply_retention(now_ms=1010, retention_ms=5)
        # cutoff = 1005; records with ts < 1005 (offsets 0-4) removed
        assert removed == 5
        assert log.log_start_offset == 5

    def test_retention_none_keeps_all(self):
        log = make_log(5)
        assert log.apply_retention(now_ms=10**9, retention_ms=None) == 0

    def test_offsets_not_reused_after_truncation(self):
        log = make_log(5)
        log.truncate_before(5)
        assert log.append(b"k", b"v", 1) == 5


class TestCompaction:
    def test_keeps_latest_per_key(self):
        log = PartitionLog("t", 0)
        for i, (k, v) in enumerate([(b"a", b"1"), (b"b", b"2"), (b"a", b"3")]):
            log.append(k, v, i)
        removed = log.compact()
        assert removed == 1
        msgs = log.read(0)
        assert [(m.key, m.value) for m in msgs] == [(b"b", b"2"), (b"a", b"3")]

    def test_offsets_preserved_sparse(self):
        log = PartitionLog("t", 0)
        log.append(b"a", b"1", 0)
        log.append(b"a", b"2", 1)
        log.append(b"b", b"3", 2)
        log.compact()
        assert [m.offset for m in log.read(0)] == [1, 2]
        # Reading from a compaction gap starts at the next survivor.
        assert [m.offset for m in log.read(0, 1)] == [1]

    def test_tombstone_removes_key(self):
        log = PartitionLog("t", 0)
        log.append(b"a", b"1", 0)
        log.append(b"a", None, 1)  # tombstone
        log.compact()
        assert log.read(0) == []

    def test_tombstone_then_rewrite_keeps_value(self):
        log = PartitionLog("t", 0)
        log.append(b"a", b"1", 0)
        log.append(b"a", None, 1)
        log.append(b"a", b"2", 2)
        log.compact()
        assert [(m.key, m.value) for m in log.read(0)] == [(b"a", b"2")]

    def test_unkeyed_records_survive(self):
        log = PartitionLog("t", 0)
        log.append(None, b"x", 0)
        log.append(None, b"y", 1)
        assert log.compact() == 0
        assert len(log.read(0)) == 2

    def test_appends_continue_after_compaction(self):
        log = PartitionLog("t", 0)
        log.append(b"a", b"1", 0)
        log.append(b"a", b"2", 1)
        log.compact()
        assert log.append(b"c", b"3", 2) == 2


class TestProperties:
    @given(st.lists(st.tuples(st.binary(min_size=1, max_size=4), st.binary(max_size=8)),
                    min_size=1, max_size=60))
    def test_compaction_equals_dict_semantics(self, entries):
        """Compaction must agree with 'latest value per key' dict semantics."""
        log = PartitionLog("t", 0)
        expected: dict[bytes, bytes] = {}
        for i, (k, v) in enumerate(entries):
            log.append(k, v, i)
            expected[k] = v
        log.compact()
        survivors = {bytes(m.key): m.value for m in log.read(0)}
        assert survivors == expected

    @given(st.integers(min_value=0, max_value=50), st.integers(min_value=0, max_value=50))
    def test_read_is_replayable(self, n, start):
        """Reading twice from the same offset yields identical results."""
        log = make_log(n)
        if start > n:
            return
        assert log.read(start) == log.read(start)
