"""Unit + property tests for the batch executor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import PlannerError
from repro.samzasql.batch import BatchExecutor
from repro.sql import QueryPlanner
from repro.sql.parser import parse_query
from repro.sql.converter import Converter

from tests.sql_fixtures import paper_catalog

ORDERS = [
    # rowtime, productId, orderId, units
    [1000, 1, 0, 30],
    [2000, 2, 1, 60],
    [3000, 1, 2, 10],
    [4000, 3, 3, 90],
    [5000, 2, 4, 20],
]

PRODUCTS = [
    # productId, name, supplierId
    [1, "alpha", 10],
    [2, "beta", 20],
]


def execute(sql, orders=None, products=None):
    catalog = paper_catalog()
    planner = QueryPlanner(catalog)
    plan = planner.plan_query(sql)
    data = {"Orders": orders if orders is not None else ORDERS,
            "Products": products if products is not None else PRODUCTS}
    return BatchExecutor(lambda name: data[name]).execute(plan)


class TestRelationalBasics:
    def test_scan(self):
        assert execute("SELECT * FROM Orders") == ORDERS

    def test_filter(self):
        rows = execute("SELECT * FROM Orders WHERE units > 25")
        assert [r[2] for r in rows] == [0, 1, 3]

    def test_project(self):
        rows = execute("SELECT orderId, units * 2 FROM Orders")
        assert rows[0] == [0, 60]

    def test_inner_join(self):
        rows = execute(
            "SELECT Orders.orderId, Products.name FROM Orders JOIN Products "
            "ON Orders.productId = Products.productId")
        assert sorted(rows) == [[0, "alpha"], [1, "beta"], [2, "alpha"], [4, "beta"]]

    def test_left_join(self):
        rows = execute(
            "SELECT Orders.orderId, Products.name FROM Orders "
            "LEFT JOIN Products ON Orders.productId = Products.productId")
        assert [None, 3] in [[r[1], r[0]] for r in rows]

    def test_right_join(self):
        rows = execute(
            "SELECT Orders.orderId, Products.name FROM Orders "
            "RIGHT JOIN Products ON Orders.productId = Products.productId",
            products=PRODUCTS + [[9, "ghost", 0]])
        assert [None, "ghost"] in rows

    def test_group_by(self):
        rows = execute(
            "SELECT productId, COUNT(*), SUM(units) FROM Orders GROUP BY productId")
        assert sorted(rows) == [[1, 2, 40], [2, 2, 80], [3, 1, 90]]

    def test_having(self):
        rows = execute(
            "SELECT productId FROM Orders GROUP BY productId HAVING COUNT(*) > 1")
        assert sorted(r[0] for r in rows) == [1, 2]

    def test_distinct(self):
        rows = execute("SELECT DISTINCT productId FROM Orders")
        assert sorted(r[0] for r in rows) == [1, 2, 3]

    def test_aggregates_over_empty_input(self):
        rows = execute("SELECT productId, SUM(units) FROM Orders GROUP BY productId",
                       orders=[])
        assert rows == []

    def test_delta_rejected(self):
        catalog = paper_catalog()
        plan = Converter(catalog).convert_query(
            parse_query("SELECT STREAM * FROM Orders"))
        with pytest.raises(PlannerError):
            BatchExecutor(lambda name: ORDERS).execute(plan)


class TestWindowedBatch:
    def test_tumble(self):
        rows = execute(
            "SELECT START(rowtime) AS ws, COUNT(*) AS c FROM Orders "
            "GROUP BY TUMBLE(rowtime, INTERVAL '2' SECOND)")
        assert sorted(rows) == [[0, 1], [2000, 2], [4000, 2]]

    def test_sliding_window(self):
        rows = execute(
            "SELECT orderId, SUM(units) OVER (PARTITION BY productId "
            "ORDER BY rowtime RANGE INTERVAL '3' SECOND PRECEDING) s FROM Orders")
        by_id = {r[0]: r[1] for r in rows}
        assert by_id[0] == 30          # product 1 at t=1000
        assert by_id[2] == 40          # product 1 at t=3000: 30+10
        assert by_id[4] == 80          # product 2 at t=5000: 60+20

    def test_rows_frame(self):
        rows = execute(
            "SELECT orderId, SUM(units) OVER (ORDER BY rowtime ROWS 1 PRECEDING) s "
            "FROM Orders")
        by_id = {r[0]: r[1] for r in rows}
        assert by_id[0] == 30
        assert by_id[1] == 90  # 30 + 60

    def test_unbounded_frame(self):
        rows = execute(
            "SELECT orderId, SUM(units) OVER (ORDER BY rowtime "
            "RANGE UNBOUNDED PRECEDING) s FROM Orders")
        assert rows[-1][1] == 210

    def test_window_output_order_matches_input(self):
        rows = execute(
            "SELECT orderId, COUNT(*) OVER (PARTITION BY productId "
            "ORDER BY rowtime RANGE INTERVAL '1' HOUR PRECEDING) c FROM Orders")
        assert [r[0] for r in rows] == [0, 1, 2, 3, 4]


@st.composite
def orders_rows(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    rows = []
    for i in range(n):
        rows.append([
            draw(st.integers(min_value=0, max_value=10_000)),  # rowtime
            draw(st.integers(min_value=0, max_value=4)),       # productId
            i,                                                  # orderId
            draw(st.integers(min_value=0, max_value=100)),     # units
        ])
    return rows


class TestProperties:
    @given(orders_rows())
    @settings(max_examples=30, deadline=None)
    def test_filter_matches_python(self, rows):
        out = execute("SELECT * FROM Orders WHERE units > 50", orders=rows)
        assert out == [r for r in rows if r[3] > 50]

    @given(orders_rows())
    @settings(max_examples=30, deadline=None)
    def test_group_by_matches_python(self, rows):
        out = execute(
            "SELECT productId, COUNT(*), SUM(units) FROM Orders GROUP BY productId",
            orders=rows)
        expected = {}
        for r in rows:
            c, s = expected.get(r[1], (0, 0))
            expected[r[1]] = (c + 1, s + r[3])
        assert {r[0]: (r[1], r[2]) for r in out} == expected

    @given(orders_rows())
    @settings(max_examples=20, deadline=None)
    def test_sliding_window_matches_quadratic_reference(self, rows):
        out = execute(
            "SELECT orderId, SUM(units) OVER (PARTITION BY productId "
            "ORDER BY rowtime RANGE INTERVAL '2' SECOND PRECEDING) s FROM Orders",
            orders=rows)
        window = 2000
        # reference must break ties the same way the executor sorts
        # (rowtime, then input order)
        order = sorted(range(len(rows)), key=lambda i: (rows[i][0], i))
        rank = {i: pos for pos, i in enumerate(order)}
        by_id = {r[0]: r[1] for r in out}
        for i, row in enumerate(rows):
            expected = sum(
                other[3] for j, other in enumerate(rows)
                if other[1] == row[1]
                and row[0] - window <= other[0]
                and (other[0], rank[j]) <= (row[0], rank[i]))
            assert by_id[row[2]] == expected
