"""Metrics snapshots: serde round-trip, reporter intervals, SQL over
``__metrics``, and the operator instrumentation hooks."""

from __future__ import annotations

import io

from repro.common import VirtualClock
from repro.common.metrics import MetricsRegistry, Timer
from repro.kafka import KafkaCluster
from repro.metrics import (
    METRICS_SNAPSHOT_SCHEMA,
    METRICS_STREAM,
    SNAPSHOT_VERSION,
    MetricsSnapshotReporter,
    latest_by_container,
    snapshot_records,
)
from repro.samzasql import SamzaSqlEnvironment
from repro.samzasql.cli import SamzaSQLCli
from repro.serde import AvroSerde

from tests.helpers import ORDERS_SCHEMA, produce_orders


def make_env(**kwargs):
    kwargs.setdefault("broker_count", 1)
    kwargs.setdefault("metrics_interval_ms", 1_000)
    return SamzaSqlEnvironment(**kwargs)


def run_filter_query(env, orders=100, partitions=4):
    env.shell.register_stream("Orders", ORDERS_SCHEMA, partitions=partitions)
    produce_orders(env.cluster, orders, partitions=partitions)
    handle = env.shell.execute("SELECT STREAM * FROM Orders WHERE units > 50")
    env.run_until_quiescent()
    return handle


# -- Timer math ---------------------------------------------------------------


def test_timer_single_sample_stdev_is_zero():
    t = Timer("t")
    t.update(42.0)
    assert t.count == 1
    assert t.stdev == 0.0
    assert t.mean == 42.0


def test_timer_single_sample_percentiles_are_that_sample():
    t = Timer("t")
    t.update(7.0)
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert t.percentile(q) == 7.0


def test_timer_empty_percentile_and_stats():
    t = Timer("t")
    assert t.percentile(0.95) == 0.0
    assert t.stdev == 0.0
    assert t.mean == 0.0


def test_timer_stdev_matches_population_stdev():
    t = Timer("t")
    samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    for s in samples:
        t.update(s)
    assert abs(t.stdev - 2.0) < 1e-12  # classic population-stdev fixture


def test_timer_stdev_never_negative_under_cancellation():
    t = Timer("t")
    for _ in range(10_000):
        t.update(1e9 + 0.001)
    assert t.stdev >= 0.0


def test_timer_percentile_uses_recent_reservoir():
    t = Timer("t")
    for i in range(2000):
        t.update(float(i))
    # reservoir holds the most recent 512 samples: 1488..1999
    assert t.percentile(0.0) >= 1488.0
    assert t.percentile(1.0) == 1999.0


# -- snapshot records + serde -------------------------------------------------


def _sample_registry(order: str = "forward") -> MetricsRegistry:
    registry = MetricsRegistry()
    groups = ["container-0", "operator.filter-1.p0"]
    if order == "reverse":
        groups = list(reversed(groups))
    for group in groups:
        registry.counter(group, "processed").inc(5)
        registry.gauge(group, "lag").set(3.0)
        registry.timer(group, "process-ns").update(100.0)
    return registry


def test_snapshot_records_round_trip_through_avro():
    records = snapshot_records("job-1", "c-0", _sample_registry(), 12_345)
    serde = AvroSerde(METRICS_SNAPSHOT_SCHEMA)
    decoded = [serde.from_bytes(serde.to_bytes(r)) for r in records]
    assert decoded == records
    assert all(r["version"] == SNAPSHOT_VERSION for r in decoded)
    assert all(r["rowtime"] == 12_345 for r in decoded)


def test_snapshot_records_deterministic_across_registration_order():
    a = snapshot_records("j", "c", _sample_registry("forward"), 1)
    b = snapshot_records("j", "c", _sample_registry("reverse"), 1)
    assert a == b
    serde = AvroSerde(METRICS_SNAPSHOT_SCHEMA)
    assert [serde.to_bytes(r) for r in a] == [serde.to_bytes(r) for r in b]


def test_snapshot_records_split_operator_groups():
    records = snapshot_records("j", "c", _sample_registry(), 1)
    by_group = {}
    for r in records:
        by_group.setdefault(r["grp"], r)
    assert by_group["container-0"]["operator"] == ""
    assert by_group["container-0"]["part"] == -1
    assert by_group["operator.filter-1.p0"]["operator"] == "filter-1"
    assert by_group["operator.filter-1.p0"]["part"] == 0


def test_snapshot_records_timer_statistics():
    registry = MetricsRegistry()
    registry.timer("g", "t").update(10.0)
    metrics = {r["metric"] for r in snapshot_records("j", "c", registry, 1)}
    assert metrics == {"t.count", "t.mean", "t.max", "t.stdev",
                       "t.p50", "t.p95", "t.p99"}


def test_latest_by_container_keeps_newest_batch():
    registry = MetricsRegistry()
    registry.counter("g", "n").inc()
    old = snapshot_records("j", "c", registry, 100)
    registry.counter("g", "n").inc()
    new = snapshot_records("j", "c", registry, 200)
    other = snapshot_records("j2", "c", registry, 50)
    latest = latest_by_container(old + new + other)
    assert all(r["rowtime"] == 200 for r in latest if r["job"] == "j")
    assert any(r["job"] == "j2" for r in latest)
    only_j = latest_by_container(old + new + other, job="j")
    assert {r["job"] for r in only_j} == {"j"}
    assert all(r["value"] == 2.0 for r in only_j if r["kind"] == "counter")


# -- reporter interval semantics ----------------------------------------------


def _make_reporter(interval_ms=1_000):
    clock = VirtualClock(10_000)
    cluster = KafkaCluster(broker_count=1, clock=clock)
    registry = MetricsRegistry()
    registry.counter("g", "n").inc()
    reporter = MetricsSnapshotReporter(
        job="j", container="c", registry=registry, cluster=cluster,
        clock=clock, interval_ms=interval_ms)
    return reporter, clock, cluster


def test_reporter_waits_one_full_interval():
    reporter, clock, _ = _make_reporter()
    assert reporter.maybe_report() == 0
    clock.advance(999)
    assert reporter.maybe_report() == 0
    clock.advance(1)
    assert reporter.maybe_report() > 0
    assert reporter.reports_published == 1


def test_reporter_clock_jump_publishes_one_catchup_snapshot():
    reporter, clock, _ = _make_reporter()
    clock.advance(5_500)  # five-and-a-half intervals at once
    reporter.maybe_report()
    assert reporter.reports_published == 1
    # next snapshot is due one interval after the catch-up
    clock.advance(999)
    reporter.maybe_report()
    assert reporter.reports_published == 1
    clock.advance(1)
    reporter.maybe_report()
    assert reporter.reports_published == 2


def test_reporter_forced_report_ignores_interval():
    reporter, _, cluster = _make_reporter()
    assert reporter.report() > 0
    assert cluster.has_topic(METRICS_STREAM)
    serde = AvroSerde(METRICS_SNAPSHOT_SCHEMA)
    tp = cluster.partitions_for(METRICS_STREAM)[0]
    messages = cluster.fetch(tp, cluster.earliest_offset(tp))
    decoded = [serde.from_bytes(m.value) for m in messages]
    assert any(r["metric"] == "n" and r["value"] == 1.0 for r in decoded)


def test_reporter_rejects_nonpositive_interval():
    clock = VirtualClock(0)
    cluster = KafkaCluster(broker_count=1, clock=clock)
    try:
        MetricsSnapshotReporter(job="j", container="c",
                                registry=MetricsRegistry(), cluster=cluster,
                                clock=clock, interval_ms=0)
    except ValueError:
        pass
    else:
        raise AssertionError("interval_ms=0 must be rejected")


# -- end to end through the runtime -------------------------------------------


def test_operator_snapshots_published_for_filter_query():
    env = make_env()
    handle = run_filter_query(env)
    records = handle.snapshots()
    operators = {r["operator"] for r in records if r["operator"]}
    assert {"scan-2", "filter-1", "insert-0"} <= operators
    by_metric = {}
    for r in records:
        if r["operator"] == "filter-1" and r["metric"] == "messages-in":
            by_metric[r["part"]] = r["value"]
    assert sum(by_metric.values()) == 100  # every order reached the filter


def test_select_stream_over_metrics_stream():
    env = make_env()
    run_filter_query(env)
    env.metrics(force=True)  # publish a snapshot batch to read back
    handle = env.shell.execute(
        "SELECT STREAM job, operator, metric, value FROM __metrics "
        "WHERE kind = 'gauge' AND metric = 'messages-in'")
    env.run_until_quiescent()
    rows = handle.results()
    assert rows, "metrics query returned no rows"
    assert all(r["metric"] == "messages-in" for r in rows)
    assert any(r["operator"] == "filter-1" for r in rows)


def test_metrics_consumer_job_has_no_reporter():
    # Feedback-loop guard: a job consuming __metrics must not also report
    # into it, or it would never quiesce under a real clock.
    env = make_env()
    run_filter_query(env)
    handle = env.shell.execute("SELECT STREAM * FROM __metrics")
    env.run_until_quiescent()
    containers = list(handle.master.samza_containers.values())
    assert containers
    assert all(c.metrics_reporter is None for c in containers)


def test_container_level_counters_in_snapshots():
    env = make_env()
    handle = run_filter_query(env)
    records = handle.snapshots()
    container_metrics = {r["metric"] for r in records if not r["operator"]}
    assert {"processed", "sent", "commits"} <= container_metrics


def test_window_state_size_gauge():
    env = make_env()
    env.shell.register_stream("Orders", ORDERS_SCHEMA, partitions=2)
    produce_orders(env.cluster, 50, partitions=2)
    handle = env.shell.execute(
        "SELECT STREAM rowtime, productId, SUM(units) OVER "
        "(PARTITION BY productId ORDER BY rowtime "
        "RANGE INTERVAL '5' MINUTE PRECEDING) s FROM Orders")
    env.run_until_quiescent()
    sizes = [r["value"] for r in handle.snapshots()
             if r["metric"] == "window-state-size"]
    assert sizes and sum(sizes) > 0


def test_cli_metrics_command_renders_snapshots():
    env = make_env()
    out = io.StringIO()
    cli = SamzaSQLCli(shell=env.shell, runner=env.runner, out=out)
    env.shell.register_stream("Orders", ORDERS_SCHEMA, partitions=2)
    produce_orders(env.cluster, 40, partitions=2)
    cli.process_line("SELECT STREAM * FROM Orders WHERE units > 50;")
    cli.process_line("!run")
    cli.process_line("!metrics 1")
    text = out.getvalue()
    assert "messages-in" in text
    assert "filter-1" in text


def test_cli_metrics_command_without_queries():
    env = make_env()
    out = io.StringIO()
    cli = SamzaSQLCli(shell=env.shell, runner=env.runner, out=out)
    cli.process_line("!metrics")
    assert "no metrics snapshots" in out.getvalue()
