"""Coverage for smaller internals: rex helpers, system-layer types, the
samza serde registry, codegen UDF rendering, and physical-plan explain."""

import pytest

from repro.common import Config, ConfigError
from repro.samza.serdes import SerdeRegistry
from repro.samza.system import (
    IncomingMessageEnvelope,
    SystemStream,
    SystemStreamPartition,
)
from repro.serde import AvroSerde, StringSerde
from repro.sql.codegen import compile_lambda, render
from repro.sql.rex import (
    RexCall,
    RexInputRef,
    RexLiteral,
    make_conjunction,
    remap_input_refs,
    shift_input_refs,
    split_conjunction,
)
from repro.sql.types import SqlType, common_numeric_type
from repro.common.errors import SqlValidationError


class TestRexHelpers:
    def _conj(self, *ops):
        return RexCall("AND", tuple(ops), SqlType.BOOLEAN)

    def test_split_flattens_nested_ands(self):
        a = RexCall(">", (RexInputRef(0), RexLiteral(1)), SqlType.BOOLEAN)
        b = RexCall("<", (RexInputRef(1), RexLiteral(2)), SqlType.BOOLEAN)
        c = RexCall("=", (RexInputRef(2), RexLiteral(3)), SqlType.BOOLEAN)
        nested = self._conj(self._conj(a, b), c)
        assert split_conjunction(nested) == [a, b, c]

    def test_split_non_and_is_singleton(self):
        lit = RexLiteral(True, SqlType.BOOLEAN)
        assert split_conjunction(lit) == [lit]

    def test_make_conjunction_inverse(self):
        a = RexCall(">", (RexInputRef(0), RexLiteral(1)), SqlType.BOOLEAN)
        b = RexCall("<", (RexInputRef(1), RexLiteral(2)), SqlType.BOOLEAN)
        assert make_conjunction([]) is None
        assert make_conjunction([a]) is a
        combined = make_conjunction([a, b])
        assert split_conjunction(combined) == [a, b]

    def test_shift_refs(self):
        expr = RexCall("+", (RexInputRef(0, SqlType.INTEGER),
                             RexInputRef(2, SqlType.INTEGER)), SqlType.INTEGER)
        shifted = shift_input_refs(expr, 4)
        assert shifted.accept_fields() == {4, 6}

    def test_remap_refs(self):
        expr = RexCall("+", (RexInputRef(0, SqlType.INTEGER),
                             RexInputRef(1, SqlType.INTEGER)), SqlType.INTEGER)
        remapped = remap_input_refs(expr, {0: 5, 1: 0})
        assert remapped.accept_fields() == {5, 0}

    def test_accept_fields_literal_empty(self):
        assert RexLiteral(1, SqlType.INTEGER).accept_fields() == set()


class TestCommonNumericType:
    @pytest.mark.parametrize("a,b,expected", [
        (SqlType.INTEGER, SqlType.INTEGER, SqlType.INTEGER),
        (SqlType.INTEGER, SqlType.BIGINT, SqlType.BIGINT),
        (SqlType.BIGINT, SqlType.DOUBLE, SqlType.DOUBLE),
        (SqlType.TIMESTAMP, SqlType.INTERVAL, SqlType.TIMESTAMP),
        (SqlType.INTERVAL, SqlType.TIMESTAMP, SqlType.TIMESTAMP),
        (SqlType.TIMESTAMP, SqlType.TIMESTAMP, SqlType.INTERVAL),
        (SqlType.ANY, SqlType.INTEGER, SqlType.ANY),
    ])
    def test_promotions(self, a, b, expected):
        assert common_numeric_type(a, b) is expected

    def test_non_numeric_rejected(self):
        with pytest.raises(SqlValidationError):
            common_numeric_type(SqlType.VARCHAR, SqlType.INTEGER)


class TestSystemTypes:
    def test_system_stream_parse(self):
        ss = SystemStream.parse("kafka.Orders")
        assert ss == SystemStream("kafka", "Orders")
        assert str(ss) == "kafka.Orders"

    def test_system_stream_parse_invalid(self):
        with pytest.raises(ValueError):
            SystemStream.parse("nodot")

    def test_ssp_topic_partition(self):
        ssp = SystemStreamPartition("kafka", "Orders", 3)
        assert ssp.topic_partition.topic == "Orders"
        assert ssp.topic_partition.partition == 3
        assert str(ssp) == "kafka.Orders-3"
        assert ssp.system_stream == SystemStream("kafka", "Orders")

    def test_envelope_stream_shortcut(self):
        envelope = IncomingMessageEnvelope(
            system_stream_partition=SystemStreamPartition("kafka", "Orders", 0),
            offset=5, key=None, message={"x": 1})
        assert envelope.stream == "Orders"


class TestSamzaSerdeRegistry:
    def test_builtins_present(self):
        registry = SerdeRegistry()
        for name in ("string", "bytes", "integer", "long", "json", "object"):
            assert registry.get(name) is not None

    def test_unknown_raises_config_error(self):
        with pytest.raises(ConfigError, match="no serde"):
            SerdeRegistry().get("protobuf")

    def test_register_custom(self):
        registry = SerdeRegistry()
        serde = StringSerde()
        registry.register("mine", serde)
        assert registry.get("mine") is serde

    def test_stream_resolution_with_fallbacks(self):
        registry = SerdeRegistry()
        config = Config({
            "systems.kafka.samza.msg.serde": "object",
            "systems.kafka.streams.Orders.samza.msg.serde": "json",
            "systems.kafka.streams.Orders.samza.key.serde": "string",
        })
        key_serde, msg_serde = registry.resolve_stream_serdes(
            config, "kafka", "Orders")
        assert msg_serde is registry.get("json")
        # stream without overrides uses the system default
        _, default_msg = registry.resolve_stream_serdes(config, "kafka", "Other")
        assert default_msg is registry.get("object")


class TestCodegenCorners:
    def test_udf_rendering(self):
        from repro.sql.udf import UDF_REGISTRY

        UDF_REGISTRY.clear()
        try:
            UDF_REGISTRY.register_scalar("TWICE", lambda x: x * 2,
                                         result_type=SqlType.INTEGER)
            call = RexCall("UDF:TWICE", (RexInputRef(0, SqlType.INTEGER),),
                           SqlType.INTEGER)
            source = render(call)
            assert "_udf_call('TWICE', r[0])" == source
            assert compile_lambda(source)([21]) == 42
        finally:
            UDF_REGISTRY.clear()

    def test_unregistered_udf_fails_at_runtime(self):
        from repro.common import PlannerError

        fn = compile_lambda("_udf_call('GONE', r[0])")
        with pytest.raises(PlannerError, match="not registered"):
            fn([1])

    def test_generated_code_has_no_builtin_access(self):
        """The codegen namespace is a tight sandbox."""
        fn = compile_lambda("max(r[0], 2)")
        assert fn([1]) == 2
        bad = compile_lambda("__import__('os')") if False else None
        with pytest.raises(Exception):
            compile_lambda("open('/etc/passwd')")([])

    def test_case_nesting(self):
        call = RexCall("CASE", (
            RexCall(">", (RexInputRef(0, SqlType.INTEGER), RexLiteral(10)),
                    SqlType.BOOLEAN),
            RexLiteral("big", SqlType.VARCHAR),
            RexCall(">", (RexInputRef(0, SqlType.INTEGER), RexLiteral(5)),
                    SqlType.BOOLEAN),
            RexLiteral("mid", SqlType.VARCHAR),
            RexLiteral("small", SqlType.VARCHAR),
        ), SqlType.VARCHAR)
        fn = compile_lambda(render(call))
        assert [fn([20]), fn([7]), fn([1])] == ["big", "mid", "small"]


class TestPhysicalExplain:
    def test_explain_tree_text(self):
        from repro.samzasql.plan_builder import PhysicalPlanBuilder
        from repro.sql import QueryPlanner

        from tests.sql_fixtures import paper_catalog

        catalog = paper_catalog()
        logical = QueryPlanner(catalog).plan_query(
            "SELECT STREAM Orders.units, Products.supplierId FROM Orders "
            "JOIN Products ON Orders.productId = Products.productId")
        plan = PhysicalPlanBuilder(catalog).build(logical, "Out")
        text = plan.explain()
        assert "insert(Out)" in text
        assert "stream_relation_join(relation=Products)" in text
        assert "scan(Orders)" in text
