"""Admission control: slots, bounded queue, state-byte budgets."""

import pytest

from repro.samzasql.environment import SamzaSqlEnvironment
from repro.serving import (AdmissionController, PendingQuery, PipelineError,
                           TenantPolicy, TenantQuota)
from repro.serving.errors import ErrorCode

from tests.samzasql_fixtures import ORDERS_SCHEMA


class TestControllerUnit:
    def test_slots_then_queue_then_reject(self):
        controller = AdmissionController(
            TenantQuota(max_concurrent_queries=1, max_queue_depth=1))
        assert controller.admit("t", "q1") is True
        assert controller.admit("t", "q2") is False  # caller should enqueue
        controller.enqueue("t", lambda: None)
        with pytest.raises(PipelineError) as err:
            controller.admit("t", "q3")
        assert err.value.code is ErrorCode.QUOTA_EXCEEDED
        assert err.value.details["reason"] == "admission_queue_full"

    def test_release_drains_queue_fifo(self):
        controller = AdmissionController(
            TenantQuota(max_concurrent_queries=1, max_queue_depth=4))
        controller.admit("t", "q1")
        order = []
        for name in ("a", "b"):
            controller.admit("t", f"queued-{name}")

            def submit(name=name):
                controller.admit("t", f"q-{name}")
                order.append(name)

            controller.enqueue("t", submit)
        controller.release("t", "q1")
        assert order == ["a"]
        controller.release("t", "q-a")
        assert order == ["a", "b"]

    def test_state_budget_rejects_before_slots(self):
        controller = AdmissionController(
            TenantQuota(max_concurrent_queries=8, max_state_bytes=100),
            state_bytes_fn=lambda tenant, ids: 5_000 if ids else 0)
        controller.admit("t", "q1")  # first query: no state yet
        with pytest.raises(PipelineError) as err:
            controller.admit("t", "q2")
        assert err.value.code is ErrorCode.QUOTA_EXCEEDED
        assert err.value.details["reason"] == "state_bytes"

    def test_quotas_are_per_tenant(self):
        controller = AdmissionController(
            TenantQuota(max_concurrent_queries=1, max_queue_depth=0))
        controller.set_quota("big", TenantQuota(max_concurrent_queries=3))
        controller.admit("small", "q1")
        with pytest.raises(PipelineError):
            controller.admit("small", "q2")
        for i in range(3):
            assert controller.admit("big", f"b{i}") is True

    def test_stats_track_outcomes(self):
        controller = AdmissionController(
            TenantQuota(max_concurrent_queries=1, max_queue_depth=0))
        controller.admit("t", "q1")
        with pytest.raises(PipelineError):
            controller.admit("t", "q2")
        assert controller.stats.admitted == 1
        assert controller.stats.rejected == {"QUOTA_EXCEEDED": 1}
        assert controller.stats.rejected_total == 1


@pytest.fixture
def front_door():
    with SamzaSqlEnvironment(metrics_interval_ms=0) as env:
        fd = env.front_door()
        fd.catalog.add_data_source("retail")
        fd.catalog.create("Orders", "retail", ORDERS_SCHEMA)
        fd.register_tenant(
            "t", TenantPolicy("t", frozenset({"retail.*"})),
            quota=TenantQuota(max_concurrent_queries=1, max_queue_depth=1))
        yield fd


class TestFrontDoorIntegration:
    def test_over_quota_submission_queues_then_admits_on_stop(self, front_door):
        session = front_door.connect("t")
        first = front_door.execute(session, "SELECT STREAM rowtime FROM Orders")
        second = front_door.execute(session, "SELECT STREAM units FROM Orders")
        assert isinstance(second, PendingQuery)
        assert not second.admitted
        first.stop()
        assert second.admitted
        assert second.handle.query_id != first.query_id
        second.handle.stop()

    def test_full_queue_rejected_while_running_queries_survive(self, front_door):
        session = front_door.connect("t")
        first = front_door.execute(session, "SELECT STREAM rowtime FROM Orders")
        front_door.execute(session, "SELECT STREAM units FROM Orders")  # queued
        with pytest.raises(PipelineError) as err:
            front_door.execute(session, "SELECT STREAM orderId FROM Orders")
        assert err.value.code is ErrorCode.QUOTA_EXCEEDED
        assert not first.stopped  # graceful rejection: existing queries run on

    def test_batch_statements_bypass_streaming_admission(self, front_door):
        session = front_door.connect("t")
        front_door.execute(session, "SELECT STREAM rowtime FROM Orders")
        # quota is exhausted for streaming, yet batch still runs
        rows = front_door.execute(session, "SELECT orderId FROM Orders")
        assert rows == []

    def test_queued_submission_skipped_if_tables_dropped(self, front_door):
        # A queued thunk re-validates nothing (validation already passed)
        # but must not crash the release path if submission fails.
        session = front_door.connect("t")
        first = front_door.execute(session, "SELECT STREAM rowtime FROM Orders")
        pending = front_door.execute(session, "SELECT STREAM units FROM Orders")
        front_door.catalog.drop("Orders", force=True)
        first.stop()  # drains the queue; submission now fails inside
        assert pending.handle is None  # not admitted, but nothing raised


class TestStateBudgetEndToEnd:
    def test_window_state_gauges_feed_the_budget(self):
        with SamzaSqlEnvironment(metrics_interval_ms=1_000) as env:
            fd = env.front_door()
            fd.catalog.add_data_source("retail")
            fd.catalog.create("Orders", "retail", ORDERS_SCHEMA)
            fd.register_tenant(
                "t", TenantPolicy("t", frozenset({"retail.*"})),
                quota=TenantQuota(max_concurrent_queries=4,
                                  max_state_bytes=1))
            session = fd.connect("t")
            from repro.kafka.producer import Producer
            from repro.serde.avro import AvroSerde

            serde = AvroSerde(ORDERS_SCHEMA)
            producer = Producer(env.cluster)
            for i in range(50):
                producer.send("Orders", key=str(i).encode(),
                              value=serde.to_bytes({
                                  "rowtime": 1_000_000 + i * 1_000,
                                  "productId": i % 5, "orderId": i,
                                  "units": 10 + i}))
            handle = fd.execute(
                session,
                "SELECT STREAM rowtime, SUM(units) OVER (ORDER BY rowtime "
                "RANGE INTERVAL '10' SECOND PRECEDING) AS s FROM Orders")
            env.run_until_quiescent()
            env.advance(2_000)
            env.run_until_quiescent()  # publish a metrics snapshot
            charged = fd.admission.state_bytes("t")
            assert charged > 1  # real gauge bytes flowed through __metrics
            with pytest.raises(PipelineError) as err:
                fd.execute(session, "SELECT STREAM units FROM Orders")
            assert err.value.code is ErrorCode.QUOTA_EXCEEDED
            assert err.value.details["reason"] == "state_bytes"
            handle.stop()
