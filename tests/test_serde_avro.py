"""Tests for the mini-Avro schema parser and binary codec."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import SchemaError, SerdeError
from repro.serde import AvroSchema, AvroSerde

ORDERS_SCHEMA = AvroSchema.record(
    "Orders",
    [("rowtime", "long"), ("productId", "int"), ("orderId", "long"), ("units", "int")],
)


class TestPrimitives:
    @pytest.mark.parametrize("kind,value", [
        ("null", None),
        ("boolean", True),
        ("boolean", False),
        ("int", -12345),
        ("long", 2**40),
        ("double", 3.25),
        ("string", "héllo"),
        ("bytes", b"\x00raw"),
    ])
    def test_roundtrip(self, kind, value):
        schema = AvroSchema(kind)
        assert schema.decode(schema.encode(value)) == value

    def test_float_precision(self):
        schema = AvroSchema("float")
        assert schema.decode(schema.encode(1.5)) == 1.5  # representable in f32

    def test_int_range_enforced(self):
        with pytest.raises(SerdeError):
            AvroSchema("int").encode(2**31)

    def test_long_accepts_int_range(self):
        schema = AvroSchema("long")
        assert schema.decode(schema.encode(5)) == 5

    def test_bool_is_not_int(self):
        with pytest.raises(SerdeError):
            AvroSchema("int").encode(True)

    def test_null_rejects_values(self):
        with pytest.raises(SerdeError):
            AvroSchema("null").encode(0)

    def test_string_type_error(self):
        with pytest.raises(SerdeError):
            AvroSchema("string").encode(5)

    def test_known_zigzag_encoding(self):
        # Avro spec: long 1 encodes to 0x02.
        assert AvroSchema("long").encode(1) == b"\x02"

    def test_known_string_encoding(self):
        # length 3 (zigzag 0x06) + utf-8 bytes
        assert AvroSchema("string").encode("foo") == b"\x06foo"


class TestRecords:
    def test_roundtrip(self):
        datum = {"rowtime": 1000, "productId": 7, "orderId": 99, "units": 30}
        assert ORDERS_SCHEMA.decode(ORDERS_SCHEMA.encode(datum)) == datum

    def test_field_order_is_schema_order(self):
        # Encoding must not depend on dict insertion order.
        a = {"rowtime": 1, "productId": 2, "orderId": 3, "units": 4}
        b = {"units": 4, "orderId": 3, "productId": 2, "rowtime": 1}
        assert ORDERS_SCHEMA.encode(a) == ORDERS_SCHEMA.encode(b)

    def test_missing_field_raises(self):
        with pytest.raises(SerdeError, match="missing field"):
            ORDERS_SCHEMA.encode({"rowtime": 1})

    def test_non_dict_raises(self):
        with pytest.raises(SerdeError):
            ORDERS_SCHEMA.encode([1, 2, 3, 4])

    def test_nested_record(self):
        schema = AvroSchema.record(
            "Outer",
            [("name", "string"),
             ("inner", {"type": "record", "name": "Inner",
                        "fields": [{"name": "x", "type": "int"}]})],
        )
        datum = {"name": "n", "inner": {"x": 5}}
        assert schema.decode(schema.encode(datum)) == datum

    def test_field_names_and_types(self):
        assert ORDERS_SCHEMA.field_names == ["rowtime", "productId", "orderId", "units"]
        assert ORDERS_SCHEMA.field_type("units") == "int"
        with pytest.raises(SchemaError):
            ORDERS_SCHEMA.field_type("nope")

    def test_field_names_on_primitive_raises(self):
        with pytest.raises(SchemaError):
            AvroSchema("int").field_names


class TestContainers:
    def test_array_roundtrip(self):
        schema = AvroSchema.array("long")
        assert schema.decode(schema.encode([1, -2, 300])) == [1, -2, 300]

    def test_empty_array(self):
        schema = AvroSchema.array("long")
        assert schema.encode([]) == b"\x00"
        assert schema.decode(b"\x00") == []

    def test_map_roundtrip(self):
        schema = AvroSchema.map("string")
        datum = {"a": "x", "b": "y"}
        assert schema.decode(schema.encode(datum)) == datum

    def test_map_non_string_key_raises(self):
        with pytest.raises(SerdeError):
            AvroSchema.map("int").encode({1: 2})

    def test_array_of_records(self):
        schema = AvroSchema.array(ORDERS_SCHEMA.definition)
        data = [{"rowtime": i, "productId": i, "orderId": i, "units": i} for i in range(3)]
        assert schema.decode(schema.encode(data)) == data


class TestUnions:
    def test_nullable_string(self):
        schema = AvroSchema(["null", "string"])
        assert schema.decode(schema.encode(None)) is None
        assert schema.decode(schema.encode("x")) == "x"

    def test_branch_selection_int_vs_string(self):
        schema = AvroSchema(["long", "string"])
        assert schema.decode(schema.encode(42)) == 42
        assert schema.decode(schema.encode("42")) == "42"

    def test_no_matching_branch_raises(self):
        with pytest.raises(SerdeError):
            AvroSchema(["null", "string"]).encode(1.5)

    def test_bad_branch_index_raises(self):
        with pytest.raises(SerdeError):
            AvroSchema(["null", "string"]).decode(b"\x08")

    def test_empty_union_rejected(self):
        with pytest.raises(SchemaError):
            AvroSchema([])


class TestSchemaParsing:
    def test_from_json_string(self):
        text = json.dumps(ORDERS_SCHEMA.definition)
        assert AvroSchema(text) == ORDERS_SCHEMA

    def test_equality_and_hash(self):
        a = AvroSchema.record("R", [("x", "int")])
        b = AvroSchema.record("R", [("x", "int")])
        assert a == b
        assert hash(a) == hash(b)

    def test_unknown_type_raises(self):
        with pytest.raises(SchemaError):
            AvroSchema("decimal128")

    def test_record_missing_fields_raises(self):
        with pytest.raises(SchemaError):
            AvroSchema({"type": "record", "name": "R"})

    def test_trailing_bytes_rejected(self):
        schema = AvroSchema("long")
        with pytest.raises(SerdeError):
            schema.decode(schema.encode(1) + b"x")


class TestAvroSerde:
    def test_roundtrip(self):
        serde = AvroSerde(ORDERS_SCHEMA)
        datum = {"rowtime": 10, "productId": 1, "orderId": 2, "units": 3}
        assert serde.roundtrip(datum) == datum

    def test_accepts_raw_definition(self):
        serde = AvroSerde("long")
        assert serde.roundtrip(99) == 99


# -- property tests --------------------------------------------------------

_field_values = st.fixed_dictionaries(
    {
        "rowtime": st.integers(min_value=0, max_value=2**62),
        "productId": st.integers(min_value=-(2**31), max_value=2**31 - 1),
        "orderId": st.integers(min_value=0, max_value=2**62),
        "units": st.integers(min_value=-(2**31), max_value=2**31 - 1),
    }
)


@given(_field_values)
def test_record_roundtrip_property(datum):
    assert ORDERS_SCHEMA.decode(ORDERS_SCHEMA.encode(datum)) == datum


@given(st.lists(st.text(max_size=20), max_size=30))
def test_string_array_roundtrip_property(values):
    schema = AvroSchema.array("string")
    assert schema.decode(schema.encode(values)) == values


@given(st.dictionaries(st.text(max_size=10), st.integers(min_value=-(2**62), max_value=2**62), max_size=20))
def test_map_roundtrip_property(values):
    schema = AvroSchema.map("long")
    assert schema.decode(schema.encode(values)) == values


class TestBatchCodecs:
    """The generated flat-record codecs behind encode_batch/decode_batch
    must be byte- and error-identical to the closure-walk interpreter."""

    NULLABLE_SCHEMA = AvroSchema.record(
        "Out",
        [("rowtime", ["null", "long"]), ("productId", ["null", "int"]),
         ("name", ["null", "string"]), ("price", ["null", "double"]),
         ("live", ["null", "boolean"])],
    )

    def _orders(self, n=40):
        return [{"rowtime": 1000 + i, "productId": i % 10,
                 "orderId": -i if i % 7 == 0 else i * 2**40,
                 "units": (i * 7) % 100} for i in range(n)]

    def test_fast_codecs_compiled_for_flat_records(self):
        assert ORDERS_SCHEMA._encode_fast is not None
        assert ORDERS_SCHEMA._decode_fast is not None
        assert self.NULLABLE_SCHEMA._encode_fast is not None
        assert self.NULLABLE_SCHEMA._decode_fast is not None

    def test_batch_encode_byte_identical_to_single(self):
        datums = self._orders()
        assert (ORDERS_SCHEMA.encode_batch(datums)
                == [ORDERS_SCHEMA.encode(d) for d in datums])

    def test_batch_decode_matches_single(self):
        blobs = [ORDERS_SCHEMA.encode(d) for d in self._orders()]
        assert (ORDERS_SCHEMA.decode_batch(blobs)
                == [ORDERS_SCHEMA.decode(b) for b in blobs])

    def test_nullable_union_batch_roundtrip(self):
        datums = [
            {"rowtime": 1, "productId": 2, "name": "a", "price": 1.5, "live": True},
            {"rowtime": None, "productId": None, "name": None, "price": None,
             "live": None},
            {"rowtime": -(2**60), "productId": -1, "name": "", "price": -0.0,
             "live": False},
            {"rowtime": 7, "productId": None, "name": "x" * 300, "price": 3,
             "live": None},  # int into double slot
        ]
        schema = self.NULLABLE_SCHEMA
        blobs = schema.encode_batch(datums)
        assert blobs == [schema.encode(d) for d in datums]
        decoded = schema.decode_batch(blobs)
        assert decoded == [schema.decode(b) for b in blobs]
        assert decoded[3]["price"] == 3.0

    def test_non_record_schema_falls_back_to_interpreter(self):
        bare = AvroSchema({"type": "array", "items": "string"})
        assert bare._encode_fast is None
        assert bare._decode_fast is None
        datums = [["a", "b"], []]
        assert bare.decode_batch(bare.encode_batch(datums)) == datums

    def test_unsupported_field_falls_back_per_field(self):
        # One exotic column no longer pushes the whole record off the
        # generated path: supported siblings stay inlined and the record
        # keeps byte-identical generated codecs.
        mixed = AvroSchema.record("Wrapper", [
            ("id", "long"),
            ("tags", {"type": "array", "items": "string"}),
            ("name", ["null", "string"]),
        ])
        assert mixed._encode_fast is not None
        assert mixed._decode_fast is not None
        datums = [
            {"id": 1, "tags": ["a", "b"], "name": "x"},
            {"id": -7, "tags": [], "name": None},
        ]
        blobs = mixed.encode_batch(datums)
        assert blobs == [mixed.encode(d) for d in datums]
        assert mixed.decode_batch(blobs) == datums

    @pytest.mark.parametrize("bad,message", [
        ([1, 2], "expected dict"),
        ({"rowtime": 1, "productId": 2, "orderId": 3}, "missing field"),
    ])
    def test_fast_encoder_error_parity(self, bad, message):
        with pytest.raises(SerdeError) as fast:
            ORDERS_SCHEMA.encode_batch([bad])
        with pytest.raises(SerdeError) as slow:
            ORDERS_SCHEMA._encode(bad, bytearray())
        assert str(fast.value) == str(slow.value)
        assert message in str(fast.value)

    def test_fast_decoder_truncation_parity(self):
        blob = ORDERS_SCHEMA.encode(
            {"rowtime": 10, "productId": 1, "orderId": 2, "units": 3})
        for cut in range(len(blob)):
            with pytest.raises(SerdeError):
                ORDERS_SCHEMA.decode_batch([blob[:cut]])

    def test_serde_batch_helpers(self):
        serde = AvroSerde(ORDERS_SCHEMA)
        datums = self._orders(10)
        blobs = serde.to_bytes_batch(datums)
        assert blobs == [serde.to_bytes(d) for d in datums]
        assert serde.from_bytes_batch(blobs) == datums

    @given(st.lists(st.fixed_dictionaries({
        "rowtime": st.one_of(st.none(),
                             st.integers(min_value=-(2**62), max_value=2**62)),
        "productId": st.one_of(st.none(), st.integers(min_value=-(2**31),
                                                      max_value=2**31 - 1)),
        "name": st.one_of(st.none(), st.text(max_size=20)),
        "price": st.one_of(st.none(), st.floats(allow_nan=False)),
        "live": st.one_of(st.none(), st.booleans()),
    }), max_size=20))
    def test_nullable_batch_roundtrip_property(self, datums):
        schema = self.NULLABLE_SCHEMA
        blobs = schema.encode_batch(datums)
        assert blobs == [schema.encode(d) for d in datums]
        assert schema.decode_batch(blobs) == datums
