"""Tests for the generic object serde ("Kryo") and the schema registry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import SchemaError, SerdeError
from repro.serde import AvroSchema, ObjectSerde, SchemaRegistry


class TestObjectSerde:
    @pytest.mark.parametrize("obj", [
        None, True, False, 0, -1, 2**40, 3.5, "text", b"raw",
        [1, "a", None], (1, 2), {"k": [True, {"n": 1.5}]},
    ])
    def test_roundtrip(self, obj):
        assert ObjectSerde().roundtrip(obj) == obj

    def test_tuple_preserved(self):
        assert ObjectSerde().roundtrip((1, (2, 3))) == (1, (2, 3))

    def test_unknown_type_raises(self):
        with pytest.raises(SerdeError):
            ObjectSerde().to_bytes(object())

    def test_truncated_raises(self):
        s = ObjectSerde()
        data = s.to_bytes("hello")
        with pytest.raises(SerdeError):
            s.from_bytes(data[:-1])

    def test_trailing_bytes_raise(self):
        s = ObjectSerde()
        with pytest.raises(SerdeError):
            s.from_bytes(s.to_bytes(1) + b"\x00")

    def test_unknown_tag_raises(self):
        with pytest.raises(SerdeError):
            ObjectSerde().from_bytes(b"\xee")

    nested = st.recursive(
        st.none() | st.booleans() | st.integers(min_value=-(2**62), max_value=2**62)
        | st.floats(allow_nan=False, allow_infinity=False) | st.text(max_size=15)
        | st.binary(max_size=15),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=5), children, max_size=4),
        max_leaves=20,
    )

    @given(nested)
    def test_roundtrip_property(self, obj):
        assert ObjectSerde().roundtrip(obj) == obj


class TestSchemaRegistry:
    def _orders(self, extra=()):
        fields = [("rowtime", "long"), ("units", "int"), *extra]
        return AvroSchema.record("Orders", fields)

    def test_register_and_latest(self):
        reg = SchemaRegistry()
        first = reg.register("orders-value", self._orders())
        assert first.version == 1
        assert reg.latest("orders-value").schema == self._orders()

    def test_register_idempotent(self):
        reg = SchemaRegistry()
        a = reg.register("s", self._orders())
        b = reg.register("s", self._orders())
        assert a.schema_id == b.schema_id
        assert a.version == b.version == 1

    def test_backward_compatible_addition(self):
        reg = SchemaRegistry()
        reg.register("s", self._orders())
        second = reg.register("s", self._orders(extra=[("note", "string")]))
        assert second.version == 2

    def test_field_removal_rejected(self):
        reg = SchemaRegistry()
        reg.register("s", self._orders())
        with pytest.raises(SchemaError, match="removed"):
            reg.register("s", AvroSchema.record("Orders", [("rowtime", "long")]))

    def test_field_retype_rejected(self):
        reg = SchemaRegistry()
        reg.register("s", self._orders())
        with pytest.raises(SchemaError, match="re-typed"):
            reg.register(
                "s",
                AvroSchema.record("Orders", [("rowtime", "string"), ("units", "int")]),
            )

    def test_compat_none_allows_anything(self):
        reg = SchemaRegistry(compatibility="NONE")
        reg.register("s", self._orders())
        reg.register("s", AvroSchema("long"))  # would break BACKWARD

    def test_get_by_id_and_version(self):
        reg = SchemaRegistry()
        first = reg.register("s", self._orders())
        second = reg.register("s", self._orders(extra=[("x", "long")]))
        assert reg.get_by_id(first.schema_id).version == 1
        assert reg.get_version("s", 2).schema_id == second.schema_id

    def test_unknown_lookups_raise(self):
        reg = SchemaRegistry()
        with pytest.raises(SchemaError):
            reg.latest("missing")
        with pytest.raises(SchemaError):
            reg.get_by_id(12345)
        reg.register("s", self._orders())
        with pytest.raises(SchemaError):
            reg.get_version("s", 9)

    def test_subjects_sorted(self):
        reg = SchemaRegistry()
        reg.register("b", self._orders())
        reg.register("a", self._orders())
        assert reg.subjects() == ["a", "b"]

    def test_invalid_compat_mode_rejected(self):
        with pytest.raises(SchemaError):
            SchemaRegistry(compatibility="FULL_TRANSITIVE")
