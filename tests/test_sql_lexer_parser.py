"""Tests for the SQL lexer and parser."""

import pytest

from repro.common import SqlParseError
from repro.sql import ast
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse_query, parse_statement


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Stream FROM")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "STREAM", "FROM"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        [token, _eof] = tokenize("productId")
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "productId"

    def test_quoted_identifier(self):
        [token, _eof] = tokenize('"Weird Name"')
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "Weird Name"

    def test_string_with_escaped_quote(self):
        [token, _eof] = tokenize("'it''s'")
        assert token.value == "it's"

    def test_numbers(self):
        tokens = tokenize("42 3.14 .5")
        assert [t.value for t in tokens[:-1]] == ["42", "3.14", ".5"]
        assert all(t.type is TokenType.NUMBER for t in tokens[:-1])

    def test_multi_char_operators(self):
        tokens = tokenize("<= >= <> != ||")
        assert [t.value for t in tokens[:-1]] == ["<=", ">=", "<>", "!=", "||"]

    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT -- comment here\n1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_block_comment_skipped(self):
        tokens = tokenize("SELECT /* multi\nline */ 1")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "1"]

    def test_positions_tracked(self):
        tokens = tokenize("SELECT\n  x")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unterminated_string_raises(self):
        with pytest.raises(SqlParseError):
            tokenize("'oops")

    def test_unterminated_comment_raises(self):
        with pytest.raises(SqlParseError):
            tokenize("/* never ends")

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlParseError):
            tokenize("SELECT @")


class TestParserBasics:
    def test_select_star(self):
        stmt = parse_query("SELECT * FROM Orders")
        assert not stmt.stream
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.from_clause == ast.NamedTable("Orders")

    def test_select_stream(self):
        assert parse_query("SELECT STREAM * FROM Orders").stream

    def test_projection_with_aliases(self):
        stmt = parse_query("SELECT rowtime, units AS u, units * 2 doubled FROM Orders")
        assert stmt.items[0].alias is None
        assert stmt.items[1].alias == "u"
        assert stmt.items[2].alias == "doubled"

    def test_qualified_star(self):
        stmt = parse_query("SELECT Orders.* FROM Orders")
        assert stmt.items[0].expr == ast.Star(qualifier="Orders")

    def test_where_comparison(self):
        stmt = parse_query("SELECT * FROM Orders WHERE units > 25")
        assert stmt.where == ast.BinaryOp(
            ">", ast.ColumnRef(("units",)), ast.Literal(25))

    def test_operator_precedence(self):
        stmt = parse_query("SELECT * FROM t WHERE a + b * 2 = 10 OR c AND d")
        # OR at top, AND binds tighter, * tighter than +
        assert isinstance(stmt.where, ast.BinaryOp) and stmt.where.op == "OR"
        left, right = stmt.where.left, stmt.where.right
        assert left.op == "="
        assert left.left.op == "+"
        assert left.left.right.op == "*"
        assert right.op == "AND"

    def test_parenthesized_precedence(self):
        stmt = parse_query("SELECT * FROM t WHERE (a OR b) AND c")
        assert stmt.where.op == "AND"
        assert stmt.where.left.op == "OR"

    def test_between(self):
        stmt = parse_query("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b = 2")
        # BETWEEN consumes '1 AND 5'; the second AND joins the b = 2 term
        assert stmt.where.op == "AND"
        assert isinstance(stmt.where.left, ast.Between)

    def test_not_between(self):
        stmt = parse_query("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5")
        assert stmt.where == ast.Between(
            ast.ColumnRef(("a",)), ast.Literal(1), ast.Literal(5), negated=True)

    def test_in_list(self):
        stmt = parse_query("SELECT * FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 3

    def test_is_null(self):
        stmt = parse_query("SELECT * FROM t WHERE a IS NOT NULL")
        assert stmt.where == ast.IsNull(ast.ColumnRef(("a",)), negated=True)

    def test_case_expression(self):
        stmt = parse_query(
            "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t")
        case = stmt.items[0].expr
        assert isinstance(case, ast.Case)
        assert len(case.whens) == 1
        assert case.else_result == ast.Literal("small")

    def test_cast(self):
        stmt = parse_query("SELECT CAST(a AS DOUBLE) FROM t")
        assert stmt.items[0].expr == ast.Cast(ast.ColumnRef(("a",)), "DOUBLE")

    def test_count_star(self):
        stmt = parse_query("SELECT COUNT(*) FROM t")
        call = stmt.items[0].expr
        assert call.is_star and call.name == "COUNT"

    def test_unary_minus(self):
        stmt = parse_query("SELECT -units FROM t")
        assert stmt.items[0].expr == ast.UnaryOp("-", ast.ColumnRef(("units",)))

    def test_semicolon_allowed(self):
        parse_query("SELECT * FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse_statement("SELECT * FROM t nonsense extra")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlParseError):
            parse_statement("SELECT 1")

    def test_error_carries_position(self):
        with pytest.raises(SqlParseError) as excinfo:
            parse_statement("SELECT *\nFROM WHERE")
        assert excinfo.value.line == 2


class TestParserStreamingExtensions:
    def test_interval_literal(self):
        stmt = parse_query("SELECT * FROM t WHERE x > INTERVAL '2' SECOND")
        assert stmt.where.right == ast.IntervalLit(2000)

    def test_compound_interval(self):
        stmt = parse_query("SELECT * FROM t WHERE x > INTERVAL '1:30' HOUR TO MINUTE")
        assert stmt.where.right == ast.IntervalLit(90 * 60 * 1000)

    def test_time_literal(self):
        stmt = parse_query("SELECT * FROM t WHERE x > TIME '0:30'")
        assert stmt.where.right == ast.TimeLit(30 * 60 * 1000)

    def test_floor_to_hour(self):
        stmt = parse_query("SELECT FLOOR(rowtime TO HOUR) FROM t")
        assert stmt.items[0].expr == ast.FloorTo(ast.ColumnRef(("rowtime",)), "HOUR")

    def test_group_by_tumble(self):
        stmt = parse_query(
            "SELECT STREAM COUNT(*) FROM Orders "
            "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")
        [key] = stmt.group_by
        assert key.name == "TUMBLE"
        assert key.args[1] == ast.IntervalLit(3600 * 1000)

    def test_group_by_hop_with_align(self):
        stmt = parse_query(
            "SELECT STREAM COUNT(*) FROM Orders GROUP BY HOP(rowtime, "
            "INTERVAL '1:30' HOUR TO MINUTE, INTERVAL '2' HOUR, TIME '0:30')")
        [key] = stmt.group_by
        assert key.name == "HOP"
        assert len(key.args) == 4

    def test_end_function_call(self):
        """END is a keyword (CASE) but also the window-end aggregate."""
        stmt = parse_query("SELECT END(rowtime) FROM t GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")
        assert stmt.items[0].expr == ast.FuncCall("END", (ast.ColumnRef(("rowtime",)),))

    def test_over_with_range_frame(self):
        stmt = parse_query(
            "SELECT SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
            "RANGE INTERVAL '5' MINUTE PRECEDING) FROM Orders")
        over = stmt.items[0].expr
        assert isinstance(over, ast.OverCall)
        assert over.func.name == "SUM"
        assert over.partition_by == (ast.ColumnRef(("productId",)),)
        assert over.frame.mode == "RANGE"
        assert over.frame.preceding == ast.IntervalLit(5 * 60 * 1000)

    def test_over_rows_frame(self):
        stmt = parse_query(
            "SELECT AVG(price) OVER (ORDER BY rowtime ROWS 10 PRECEDING) FROM Bids")
        assert stmt.items[0].expr.frame == ast.WindowFrame("ROWS", ast.Literal(10))

    def test_over_unbounded(self):
        stmt = parse_query(
            "SELECT SUM(x) OVER (ORDER BY rowtime RANGE UNBOUNDED PRECEDING) FROM t")
        assert stmt.items[0].expr.frame == ast.WindowFrame("RANGE", "UNBOUNDED")


class TestParserRelations:
    def test_join_on(self):
        stmt = parse_query(
            "SELECT STREAM * FROM Orders JOIN Products "
            "ON Orders.productId = Products.productId")
        join = stmt.from_clause
        assert isinstance(join, ast.JoinRef)
        assert join.kind == "INNER"
        assert join.left == ast.NamedTable("Orders")

    def test_left_outer_join(self):
        stmt = parse_query("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert stmt.from_clause.kind == "LEFT"

    def test_join_condition_with_between(self):
        """The paper's Listing 7 join shape."""
        stmt = parse_query("""
            SELECT STREAM
              GREATEST(PacketsR1.rowtime, PacketsR2.rowtime) AS rowtime,
              PacketsR1.packetId
            FROM PacketsR1
            JOIN PacketsR2 ON
              PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND
                AND PacketsR2.rowtime + INTERVAL '2' SECOND
              AND PacketsR1.packetId = PacketsR2.packetId
        """)
        join = stmt.from_clause
        assert isinstance(join.condition, ast.BinaryOp)
        assert join.condition.op == "AND"

    def test_subquery_in_from(self):
        stmt = parse_query(
            "SELECT STREAM rowtime FROM (SELECT rowtime, units FROM Orders) WHERE units > 1")
        assert isinstance(stmt.from_clause, ast.DerivedTable)

    def test_table_alias(self):
        stmt = parse_query("SELECT o.units FROM Orders o")
        assert stmt.from_clause == ast.NamedTable("Orders", alias="o")

    def test_group_by_having(self):
        stmt = parse_query(
            "SELECT productId, COUNT(*) FROM Orders GROUP BY productId "
            "HAVING COUNT(*) > 2")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None


class TestStatements:
    def test_create_view(self):
        stmt = parse_statement(
            "CREATE VIEW HourlyTotals (rowtime, c) AS "
            "SELECT FLOOR(rowtime TO HOUR), COUNT(*) FROM Orders "
            "GROUP BY FLOOR(rowtime TO HOUR)")
        assert isinstance(stmt, ast.CreateView)
        assert stmt.name == "HourlyTotals"
        assert stmt.columns == ("rowtime", "c")

    def test_create_view_without_columns(self):
        stmt = parse_statement("CREATE VIEW V AS SELECT * FROM Orders")
        assert stmt.columns is None

    def test_insert_into(self):
        stmt = parse_statement("INSERT INTO BigOrders SELECT STREAM * FROM Orders WHERE units > 50")
        assert isinstance(stmt, ast.InsertInto)
        assert stmt.target == "BigOrders"
        assert stmt.query.stream

    def test_parse_query_rejects_ddl(self):
        with pytest.raises(SqlParseError):
            parse_query("CREATE VIEW v AS SELECT * FROM t")
