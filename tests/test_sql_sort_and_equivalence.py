"""ORDER BY/LIMIT tests + the optimizer-equivalence property.

The equivalence property is the strongest correctness check on the rule
engine: for a corpus of queries and random data, the *optimized* logical
plan must produce exactly the same rows as the *unoptimized* one.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import PlannerError
from repro.samzasql.batch import BatchExecutor
from repro.sql import QueryPlanner
from repro.sql.converter import Converter
from repro.sql.parser import parse_query
from repro.sql.rel.nodes import LogicalSort
from repro.sql.rel.optimizer import Optimizer

from tests.sql_fixtures import paper_catalog


def plans_for(sql):
    catalog = paper_catalog()
    raw = Converter(catalog).convert_query(parse_query(sql))
    optimized = Optimizer().optimize(raw)
    return raw, optimized


def run(plan, orders, products):
    data = {"Orders": orders, "Products": products}
    return BatchExecutor(lambda name: data[name]).execute(plan)


class TestOrderByLimit:
    ORDERS = [
        [1000, 1, 0, 30],
        [2000, 2, 1, 60],
        [3000, 1, 2, 10],
        [4000, 3, 3, 90],
    ]

    def _run(self, sql):
        _, plan = plans_for(sql)
        return run(plan, self.ORDERS, [])

    def test_order_by_asc(self):
        rows = self._run("SELECT orderId, units FROM Orders ORDER BY units")
        assert [r[1] for r in rows] == [10, 30, 60, 90]

    def test_order_by_desc(self):
        rows = self._run("SELECT orderId, units FROM Orders ORDER BY units DESC")
        assert [r[1] for r in rows] == [90, 60, 30, 10]

    def test_order_by_alias(self):
        rows = self._run(
            "SELECT productId, SUM(units) AS su FROM Orders GROUP BY productId "
            "ORDER BY su DESC")
        assert [r[1] for r in rows] == [90, 60, 40]

    def test_multi_key_sort_stable(self):
        rows = self._run(
            "SELECT productId, orderId FROM Orders ORDER BY productId, orderId DESC")
        assert rows == [[1, 2], [1, 0], [2, 1], [3, 3]]

    def test_limit(self):
        rows = self._run("SELECT orderId FROM Orders ORDER BY units DESC LIMIT 2")
        assert [r[0] for r in rows] == [3, 1]

    def test_limit_without_order(self):
        assert len(self._run("SELECT orderId FROM Orders LIMIT 3")) == 3

    def test_streaming_order_by_rejected(self):
        catalog = paper_catalog()
        with pytest.raises(PlannerError):
            QueryPlanner(catalog).plan_query(
                "SELECT STREAM * FROM Orders ORDER BY rowtime")

    def test_sort_node_in_plan(self):
        _, plan = plans_for("SELECT orderId, units FROM Orders ORDER BY units LIMIT 1")
        assert isinstance(plan, LogicalSort)
        assert plan.limit == 1

    def test_hidden_sort_column_projected_away(self):
        """Ordering by a column outside the projection (standard SQL)."""
        _, plan = plans_for("SELECT orderId FROM Orders ORDER BY units LIMIT 1")
        assert plan.row_type.field_names == ["orderId"]
        rows = run(plan, self.ORDERS, [])
        assert rows == [[2]]  # smallest units


# -- the optimizer equivalence corpus ---------------------------------------

EQUIVALENCE_QUERIES = [
    "SELECT * FROM Orders WHERE units > 50 AND productId < 3",
    "SELECT rowtime, units * 2 + 1 AS d FROM Orders WHERE units BETWEEN 10 AND 80",
    "SELECT u FROM (SELECT units AS u, productId AS p FROM Orders) WHERE u > 5 AND p = 1",
    "SELECT * FROM (SELECT * FROM Orders WHERE units > 10) WHERE units < 90",
    ("SELECT Orders.orderId, Products.supplierId FROM Orders JOIN Products "
     "ON Orders.productId = Products.productId "
     "WHERE Orders.units > 20 AND Products.supplierId > 0"),
    "SELECT productId, COUNT(*) AS c, SUM(units) AS s FROM Orders GROUP BY productId HAVING COUNT(*) > 1",
    "SELECT DISTINCT productId FROM Orders WHERE units > 30",
    "SELECT orderId FROM Orders WHERE units > 10 + 5 * 2",
    "SELECT CASE WHEN units > 50 THEN 'hi' ELSE 'lo' END AS bucket, orderId FROM Orders",
    ("SELECT orderId, SUM(units) OVER (PARTITION BY productId ORDER BY rowtime "
     "RANGE INTERVAL '5' SECOND PRECEDING) w FROM Orders"),
]


@st.composite
def random_orders(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    return [
        [draw(st.integers(min_value=0, max_value=20_000)),
         draw(st.integers(min_value=0, max_value=4)),
         i,
         draw(st.integers(min_value=0, max_value=100))]
        for i in range(n)
    ]


@st.composite
def random_products(draw):
    ids = draw(st.lists(st.integers(min_value=0, max_value=4), unique=True,
                        max_size=5))
    return [[pid, f"p{pid}", draw(st.integers(min_value=0, max_value=3))]
            for pid in ids]


class TestOptimizerEquivalence:
    @pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
    @given(orders=random_orders(), products=random_products())
    @settings(max_examples=15, deadline=None)
    def test_optimized_plan_equivalent(self, sql, orders, products):
        raw, optimized = plans_for(sql)
        raw_rows = run(raw, orders, products)
        opt_rows = run(optimized, orders, products)
        # row order may legally differ for joins after pushdown; compare as
        # multisets
        assert sorted(map(repr, raw_rows)) == sorted(map(repr, opt_rows))

    @pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
    def test_optimization_changes_or_keeps_plans_valid(self, sql):
        raw, optimized = plans_for(sql)
        assert optimized.row_type.field_names == raw.row_type.field_names
