"""Virtual-table catalog: registration, namespacing, drops, pins."""

import pytest

from repro.samzasql.environment import SamzaSqlEnvironment
from repro.serving import (PipelineError, TenantPolicy, VirtualTableCatalog)
from repro.serving.errors import ErrorCode

from tests.samzasql_fixtures import ORDERS_SCHEMA, PRODUCTS_SCHEMA


@pytest.fixture
def env():
    with SamzaSqlEnvironment(metrics_interval_ms=0) as env:
        yield env


@pytest.fixture
def catalog(env):
    catalog = env.front_door().catalog
    catalog.add_data_source("retail")
    return catalog


class TestDataSources:
    def test_default_source_exists(self, catalog):
        assert catalog.data_source("default") is not None

    def test_add_is_idempotent(self, catalog):
        first = catalog.add_data_source("iot", "edge cluster")
        second = catalog.add_data_source("iot")
        assert first is second

    def test_listing_sorted(self, catalog):
        catalog.add_data_source("zeta")
        catalog.add_data_source("alpha")
        names = [s.name for s in catalog.list_data_sources()]
        assert names == sorted(names, key=str.lower)


class TestCreate:
    def test_create_registers_planner_catalog_and_topic(self, env, catalog):
        vt = catalog.create("Orders", "retail", ORDERS_SCHEMA)
        assert vt.qualified_name == "retail.Orders"
        assert env.catalog.stream("Orders") is not None
        assert env.cluster.has_topic("Orders")

    def test_create_table_kind(self, env, catalog):
        vt = catalog.create("Products", "retail", PRODUCTS_SCHEMA,
                            kind="table", key_field="productId")
        assert vt.topic == "Products-changelog"
        assert env.catalog.table("Products") is not None

    def test_unknown_datasource_rejected(self, catalog):
        with pytest.raises(PipelineError) as err:
            catalog.create("Orders", "nope", ORDERS_SCHEMA)
        assert err.value.code is ErrorCode.DATASOURCE_NOT_FOUND

    def test_duplicate_registration_rejected(self, catalog):
        catalog.create("Orders", "retail", ORDERS_SCHEMA)
        with pytest.raises(PipelineError) as err:
            catalog.create("Orders", "retail", ORDERS_SCHEMA)
        assert err.value.code is ErrorCode.DUPLICATE_TABLE

    def test_duplicate_against_legacy_catalog_object(self, env, catalog):
        env.shell.register_stream("Legacy", ORDERS_SCHEMA)
        with pytest.raises(PipelineError) as err:
            catalog.create("Legacy", "retail", ORDERS_SCHEMA)
        assert err.value.code is ErrorCode.DUPLICATE_TABLE

    def test_bad_kind_rejected(self, catalog):
        with pytest.raises(PipelineError):
            catalog.create("Orders", "retail", ORDERS_SCHEMA, kind="blob")


class TestAdopt:
    def test_adopt_legacy_stream_into_namespace(self, env, catalog):
        env.shell.register_stream("Clicks", ORDERS_SCHEMA)
        vt = catalog.adopt("Clicks", "retail")
        assert vt.qualified_name == "retail.Clicks"
        assert catalog.namespace_of("Clicks") == "retail"

    def test_adopt_unknown_object_rejected(self, catalog):
        with pytest.raises(PipelineError) as err:
            catalog.adopt("Ghost", "retail")
        assert err.value.code is ErrorCode.TABLE_NOT_FOUND


class TestNamespaces:
    def test_legacy_objects_fall_back_to_default(self, env, catalog):
        env.shell.register_stream("Legacy", ORDERS_SCHEMA)
        assert catalog.namespace_of("Legacy") == "default"

    def test_unknown_name_has_no_namespace(self, catalog):
        assert catalog.namespace_of("Ghost") is None

    def test_listing_deterministic_by_datasource_then_name(self, catalog):
        catalog.add_data_source("alpha")
        catalog.create("Zed", "retail", ORDERS_SCHEMA)
        catalog.create("Ann", "retail", ORDERS_SCHEMA, topic="ann-topic")
        catalog.create("Mid", "alpha", ORDERS_SCHEMA, topic="mid-topic")
        names = [vt.qualified_name for vt in catalog.list_tables()]
        assert names == ["alpha.Mid", "retail.Ann", "retail.Zed"]


class TestDrop:
    def test_drop_removes_both_layers(self, env, catalog):
        catalog.create("Orders", "retail", ORDERS_SCHEMA)
        catalog.drop("Orders")
        assert catalog.get("Orders") is None
        assert env.catalog.stream("Orders") is None

    def test_drop_unknown_rejected(self, catalog):
        with pytest.raises(PipelineError) as err:
            catalog.drop("Ghost")
        assert err.value.code is ErrorCode.TABLE_NOT_FOUND

    def test_drop_while_query_running_refused_then_allowed(self, env, catalog):
        catalog.create("Orders", "retail", ORDERS_SCHEMA)
        front_door = env.front_door()
        front_door.register_tenant("t", TenantPolicy("t", frozenset({"retail.*"})))
        session = front_door.connect("t")
        handle = front_door.execute(
            session, "SELECT STREAM rowtime, units FROM Orders")
        with pytest.raises(PipelineError) as err:
            catalog.drop("Orders")
        assert err.value.code is ErrorCode.TABLE_IN_USE
        assert err.value.details["queries"] == [handle.query_id]
        handle.stop()
        assert catalog.drop("Orders").name == "Orders"

    def test_force_drop_overrides_pin(self, env, catalog):
        catalog.create("Orders", "retail", ORDERS_SCHEMA)
        front_door = env.front_door()
        front_door.register_tenant("t", TenantPolicy("t", frozenset({"retail.*"})))
        session = front_door.connect("t")
        front_door.execute(session, "SELECT STREAM rowtime FROM Orders")
        assert catalog.drop("Orders", force=True).name == "Orders"

    def test_recreate_after_drop(self, catalog):
        catalog.create("Orders", "retail", ORDERS_SCHEMA)
        catalog.drop("Orders")
        assert catalog.create("Orders", "retail", ORDERS_SCHEMA) is not None
