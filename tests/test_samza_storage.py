"""Tests for the layered key-value store stack."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import StateStoreError
from repro.samza import (
    CachedKeyValueStore,
    InMemoryKeyValueStore,
    LoggedKeyValueStore,
    SerializedKeyValueStore,
    WriteBehindKeyValueStore,
)
from repro.serde import JsonSerde, LongSerde, ObjectSerde, StringSerde


class TestInMemoryStore:
    def test_put_get_delete(self):
        store = InMemoryKeyValueStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        store.delete(b"k")
        assert store.get(b"k") is None

    def test_get_missing_is_none(self):
        assert InMemoryKeyValueStore().get(b"nope") is None

    def test_delete_missing_is_noop(self):
        InMemoryKeyValueStore().delete(b"nope")

    def test_overwrite(self):
        store = InMemoryKeyValueStore()
        store.put(b"k", b"1")
        store.put(b"k", b"2")
        assert store.get(b"k") == b"2"
        assert len(store) == 1

    def test_range_is_sorted_half_open(self):
        store = InMemoryKeyValueStore()
        for key in (b"d", b"a", b"c", b"b"):
            store.put(key, key.upper())
        assert list(store.range(b"b", b"d")) == [(b"b", b"B"), (b"c", b"C")]

    def test_range_empty(self):
        store = InMemoryKeyValueStore()
        store.put(b"a", b"1")
        assert list(store.range(b"x", b"z")) == []

    def test_range_reversed_bounds_raise(self):
        store = InMemoryKeyValueStore()
        with pytest.raises(StateStoreError):
            list(store.range(b"z", b"a"))

    def test_all_in_key_order(self):
        store = InMemoryKeyValueStore()
        for key in (b"c", b"a", b"b"):
            store.put(key, b"v")
        assert [k for k, _ in store.all()] == [b"a", b"b", b"c"]

    def test_non_bytes_key_rejected(self):
        with pytest.raises(StateStoreError):
            InMemoryKeyValueStore().put("str", b"v")
        with pytest.raises(StateStoreError):
            InMemoryKeyValueStore().get(3)

    def test_non_bytes_value_rejected(self):
        with pytest.raises(StateStoreError):
            InMemoryKeyValueStore().put(b"k", "v")

    @given(st.dictionaries(st.binary(min_size=1, max_size=6), st.binary(max_size=6),
                           max_size=40))
    def test_matches_dict_semantics(self, entries):
        store = InMemoryKeyValueStore()
        for k, v in entries.items():
            store.put(k, v)
        assert dict(store.all()) == entries
        assert [k for k, _ in store.all()] == sorted(entries)

    @given(
        st.dictionaries(st.binary(min_size=1, max_size=4), st.binary(max_size=4), max_size=30),
        st.binary(min_size=1, max_size=4), st.binary(min_size=1, max_size=4),
    )
    def test_range_matches_filter(self, entries, a, b):
        lo, hi = min(a, b), max(a, b)
        store = InMemoryKeyValueStore()
        for k, v in entries.items():
            store.put(k, v)
        expected = sorted((k, v) for k, v in entries.items() if lo <= k < hi)
        assert list(store.range(lo, hi)) == expected


class TestLoggedStore:
    def test_mutations_logged(self):
        log = []
        store = LoggedKeyValueStore(InMemoryKeyValueStore(), lambda k, v: log.append((k, v)))
        store.put(b"a", b"1")
        store.put(b"a", b"2")
        store.delete(b"a")
        assert log == [(b"a", b"1"), (b"a", b"2"), (b"a", None)]

    def test_reads_not_logged(self):
        log = []
        store = LoggedKeyValueStore(InMemoryKeyValueStore(), lambda k, v: log.append(1))
        store.put(b"a", b"1")
        store.get(b"a")
        list(store.range(b"a", b"b"))
        list(store.all())
        assert len(log) == 1

    def test_replaying_log_rebuilds_store(self):
        log = []
        store = LoggedKeyValueStore(InMemoryKeyValueStore(), lambda k, v: log.append((k, v)))
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        store.delete(b"a")
        rebuilt = InMemoryKeyValueStore()
        for key, value in log:
            if value is None:
                rebuilt.delete(key)
            else:
                rebuilt.put(key, value)
        assert dict(rebuilt.all()) == dict(store.all())


class TestSerializedStore:
    def _store(self):
        return SerializedKeyValueStore(
            InMemoryKeyValueStore(), StringSerde(), JsonSerde())

    def test_object_roundtrip(self):
        store = self._store()
        store.put("order-1", {"units": 30})
        assert store.get("order-1") == {"units": 30}

    def test_missing_is_none(self):
        assert self._store().get("missing") is None

    def test_delete(self):
        store = self._store()
        store.put("k", [1])
        store.delete("k")
        assert store.get("k") is None

    def test_range_decodes(self):
        store = SerializedKeyValueStore(
            InMemoryKeyValueStore(), LongSerde(), JsonSerde())
        for ts in (100, 200, 300):
            store.put(ts, {"ts": ts})
        assert [k for k, _ in store.range(100, 300)] == [100, 200]

    def test_long_keys_sort_numerically(self):
        """Big-endian longs keep numeric order in the bytes store — the
        property the window operator's time-keyed scans depend on."""
        store = SerializedKeyValueStore(
            InMemoryKeyValueStore(), LongSerde(), JsonSerde())
        for ts in (5, 1000, 3, 70):
            store.put(ts, ts)
        assert [k for k, _ in store.all()] == [3, 5, 70, 1000]


class TestCachedStore:
    def _stack(self, capacity=8):
        inner = SerializedKeyValueStore(
            InMemoryKeyValueStore(), StringSerde(), JsonSerde())
        return CachedKeyValueStore(inner, capacity=capacity), inner

    def test_read_through_and_hit(self):
        cached, _ = self._stack()
        cached.put("k", 1)
        assert cached.get("k") == 1
        assert cached.hits == 1  # put populated the cache

    def test_miss_then_hit(self):
        cached, inner = self._stack()
        inner.put("k", 5)
        assert cached.get("k") == 5
        assert cached.misses == 1
        assert cached.get("k") == 5
        assert cached.hits == 1

    def test_write_through(self):
        cached, inner = self._stack()
        cached.put("k", 2)
        assert inner.get("k") == 2  # not buffered

    def test_delete_invalidates(self):
        cached, _ = self._stack()
        cached.put("k", 1)
        cached.delete("k")
        assert cached.get("k") is None

    def test_eviction_bounded(self):
        cached, _ = self._stack(capacity=2)
        for i in range(5):
            cached.put(f"k{i}", i)
        # oldest entries evicted; store still correct
        assert cached.get("k0") == 0
        assert len(cached) == 5

    def test_zero_capacity_rejected(self):
        with pytest.raises(StateStoreError):
            CachedKeyValueStore(InMemoryKeyValueStore(), capacity=0)


class TestWriteBehindStore:
    """Write-behind over serialized over logged over in-memory — the full
    production stack permutation."""

    def _stack(self):
        log = []
        memory = InMemoryKeyValueStore()
        logged = LoggedKeyValueStore(
            memory, lambda k, v: log.append((k, v)))
        serde = ObjectSerde()
        serialized = SerializedKeyValueStore(logged, serde, serde)
        wb = WriteBehindKeyValueStore(serialized, serde)
        return wb, serialized, log

    def test_reads_see_unflushed_writes(self):
        wb, inner, log = self._stack()
        wb.put("k", {"n": 1})
        assert wb.get("k") == {"n": 1}
        assert inner.get("k") is None   # nothing pushed down yet
        assert log == []                # ...and nothing logged

    def test_value_captured_by_reference(self):
        """Mutations after put are visible at flush — the flushed bytes
        describe commit-time state, matching the checkpoint."""
        wb, inner, _ = self._stack()
        value = {"n": 1}
        wb.put("k", value)
        value["n"] = 2
        wb.flush()
        assert inner.get("k") == {"n": 2}

    def test_flush_pushes_serde_and_changelog(self):
        wb, inner, log = self._stack()
        wb.put("a", 1)
        wb.put("b", 2)
        wb.flush()
        assert inner.get("a") == 1 and inner.get("b") == 2
        assert len(log) == 2
        assert wb.dirty_count == 0

    def test_flush_order_is_insertion_order(self):
        """First-dirtying order decides the changelog sequence, so replayed
        runs produce byte-identical changelogs."""
        wb, _, log = self._stack()
        wb.put("b", 1)
        wb.put("a", 2)
        wb.put("b", 3)  # overwrite keeps b's original position
        wb.flush()
        serde = ObjectSerde()
        assert [k for k, _ in log] == [serde.to_bytes("b"), serde.to_bytes("a")]
        assert serde.from_bytes(log[0][1]) == 3

    def test_last_write_wins_before_flush(self):
        wb, inner, log = self._stack()
        wb.put("k", 1)
        wb.put("k", 2)
        wb.flush()
        assert inner.get("k") == 2
        assert len(log) == 1  # intermediate version never logged

    def test_tombstone_defers_delete(self):
        wb, inner, log = self._stack()
        wb.put("k", 1)
        wb.flush()
        wb.delete("k")
        assert wb.get("k") is None      # read-your-delete
        assert inner.get("k") == 1      # not yet applied below
        wb.flush()
        assert inner.get("k") is None
        assert log[-1][1] is None       # changelog tombstone

    def test_put_then_delete_flushes_tombstone_only(self):
        wb, inner, log = self._stack()
        wb.put("k", 1)
        wb.delete("k")
        wb.flush()
        assert inner.get("k") is None
        assert [v for _, v in log] == [None]

    def test_scan_merges_dirty_and_backing(self):
        wb, _, log = self._stack()
        wb.put(1, "flushed")
        wb.put(3, "flushed")
        wb.flush()
        flushed_log = len(log)
        wb.put(2, "dirty")
        wb.put(4, "dirty")
        wb.delete(3)
        assert list(wb.all()) == [(1, "flushed"), (2, "dirty"), (4, "dirty")]
        assert list(wb.range(1, 4)) == [(1, "flushed"), (2, "dirty")]
        # scans never spill: no changelog traffic between commits
        assert len(log) == flushed_log

    def test_scan_dirty_shadows_backing(self):
        wb, _, _ = self._stack()
        wb.put(1, "old")
        wb.flush()
        wb.put(1, "new")
        assert list(wb.all()) == [(1, "new")]

    def test_len_accounts_for_dirty(self):
        wb, _, _ = self._stack()
        wb.put("a", 1)
        wb.put("b", 2)
        wb.flush()
        wb.delete("a")
        wb.put("c", 3)
        wb.put("b", 9)  # overwrite: no size change
        assert len(wb) == 2

    def test_changelog_restore_equivalence(self):
        """Replaying the changelog produced through write-behind rebuilds
        exactly the flushed store contents."""
        wb, _, log = self._stack()
        wb.put("a", {"n": 1})
        wb.put("b", [1, 2])
        wb.flush()
        wb.delete("a")
        wb.put("c", "x")
        wb.flush()
        wb.put("never-flushed", 1)  # lost on crash: not in the changelog

        restored_memory = InMemoryKeyValueStore()
        for key, value in log:
            if value is None:
                restored_memory.delete(key)
            else:
                restored_memory.put(key, value)
        serde = ObjectSerde()
        restored = SerializedKeyValueStore(restored_memory, serde, serde)
        assert dict(restored.all()) == {"b": [1, 2], "c": "x"}

    def test_write_behind_over_cached_composition(self):
        """Cache above write-behind: hits come from the cache, writes stay
        dirty until flush."""
        wb, inner, _ = self._stack()
        cached = CachedKeyValueStore(wb, capacity=8)
        cached.put("k", 7)
        assert cached.get("k") == 7
        assert cached.hits == 1
        assert inner.get("k") is None
        cached.flush()
        assert inner.get("k") == 7


class TestCachedStoreLRU:
    def _stack(self, capacity=3):
        inner = InMemoryKeyValueStore()
        serde = ObjectSerde()
        serialized = SerializedKeyValueStore(inner, serde, serde)
        return CachedKeyValueStore(serialized, capacity), serialized

    def test_hit_refreshes_recency(self):
        """A hot key survives a scan of cold keys (true LRU, not FIFO)."""
        cached, _ = self._stack(capacity=2)
        cached.put("hot", 1)
        cached.put("cold1", 2)
        cached.get("hot")       # refresh: cold1 is now least recent
        cached.put("cold2", 3)  # evicts cold1, not hot
        misses_before = cached.misses
        cached.get("hot")
        assert cached.misses == misses_before  # still cached
        cached.get("cold1")
        assert cached.misses == misses_before + 1  # was evicted

    def test_eviction_is_least_recently_used(self):
        cached, _ = self._stack(capacity=3)
        for key in ("a", "b", "c"):
            cached.put(key, key)
        cached.get("a")  # order now b, c, a
        cached.put("d", "d")  # evicts b
        misses_before = cached.misses
        cached.get("a")
        cached.get("c")
        cached.get("d")
        assert cached.misses == misses_before
        cached.get("b")
        assert cached.misses == misses_before + 1
