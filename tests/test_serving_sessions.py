"""Persistent named sessions and idempotent query stop."""

import pytest

from repro.samzasql.environment import SamzaSqlEnvironment
from repro.serving import PipelineError, TenantPolicy, TenantQuota
from repro.serving.errors import ErrorCode

from tests.samzasql_fixtures import ORDERS_SCHEMA


@pytest.fixture
def env():
    with SamzaSqlEnvironment(metrics_interval_ms=0) as env:
        yield env


@pytest.fixture
def front_door(env):
    fd = env.front_door()
    fd.catalog.add_data_source("retail")
    fd.catalog.create("Orders", "retail", ORDERS_SCHEMA)
    fd.register_tenant("t", TenantPolicy("t", frozenset({"retail.*"})),
                       quota=TenantQuota(max_concurrent_queries=4))
    return fd


class TestSessionPersistence:
    def test_reconnect_returns_same_session(self, front_door):
        first = front_door.connect("t", "etl")
        first.set_variable("region", "emea")
        again = front_door.connect("t", "etl")
        assert again is first
        assert again.get_variable("region") == "emea"

    def test_sessions_isolated_by_name_and_tenant(self, front_door):
        front_door.register_tenant("u", TenantPolicy("u", frozenset({"retail.*"})))
        a = front_door.connect("t", "one")
        b = front_door.connect("t", "two")
        c = front_door.connect("u", "one")
        assert len({id(a), id(b), id(c)}) == 3

    def test_running_queries_survive_reconnect(self, env, front_door):
        session = front_door.connect("t", "etl")
        handle = front_door.execute(
            session, "SELECT STREAM rowtime, units FROM Orders")
        reconnected = front_door.connect("t", "etl")
        assert [h.query_id for h in reconnected.running_handles()] == \
            [handle.query_id]

    def test_close_stops_queries_and_forgets_session(self, front_door):
        session = front_door.connect("t", "etl")
        handle = front_door.execute(
            session, "SELECT STREAM rowtime FROM Orders")
        front_door.sessions.close("t", "etl")
        assert handle.stopped
        with pytest.raises(PipelineError) as err:
            front_door.sessions.get("t", "etl")
        assert err.value.code is ErrorCode.SESSION_NOT_FOUND

    def test_listing_deterministic(self, front_door):
        front_door.connect("t", "zz")
        front_door.connect("t", "aa")
        names = [s.name for s in front_door.sessions.list_sessions("t")]
        assert names == ["aa", "zz"]


class TestIdempotentStop:
    def test_double_stop_does_not_raise(self, front_door):
        session = front_door.connect("t")
        handle = front_door.execute(
            session, "SELECT STREAM rowtime FROM Orders")
        handle.stop()
        handle.stop()  # admission-control eviction racing the user
        assert handle.stopped

    def test_stop_listener_fires_exactly_once(self, front_door):
        session = front_door.connect("t")
        handle = front_door.execute(
            session, "SELECT STREAM rowtime FROM Orders")
        fired = []
        handle.add_stop_listener(lambda h: fired.append(h.query_id))
        handle.stop()
        handle.stop()
        assert fired == [handle.query_id]

    def test_stop_releases_admission_slot(self, front_door):
        session = front_door.connect("t")
        handle = front_door.execute(
            session, "SELECT STREAM rowtime FROM Orders")
        assert front_door.admission.running("t")
        handle.stop()
        assert not front_door.admission.running("t")

    def test_eviction_uses_idempotent_stop(self, front_door):
        session = front_door.connect("t")
        first = front_door.execute(session, "SELECT STREAM rowtime FROM Orders")
        second = front_door.execute(session, "SELECT STREAM units FROM Orders")
        first.stop()  # user stopped one; evict must not raise on it
        evicted = front_door.evict_tenant("t")
        assert evicted == [second.query_id]
        assert first.stopped and second.stopped
