"""Tests for the basic serdes (string, bytes, int, long, json, no-op)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import SerdeError
from repro.serde import (
    BytesSerde,
    IntegerSerde,
    JsonSerde,
    LongSerde,
    NoOpSerde,
    StringSerde,
)


class TestStringSerde:
    def test_roundtrip(self):
        s = StringSerde()
        assert s.roundtrip("hello, wörld") == "hello, wörld"

    def test_wrong_type_raises(self):
        with pytest.raises(SerdeError):
            StringSerde().to_bytes(42)

    def test_invalid_utf8_raises(self):
        with pytest.raises(SerdeError):
            StringSerde().from_bytes(b"\xff\xfe")

    @given(st.text())
    def test_roundtrip_property(self, text):
        assert StringSerde().roundtrip(text) == text


class TestBytesSerde:
    def test_roundtrip(self):
        assert BytesSerde().roundtrip(b"\x00\x01") == b"\x00\x01"

    def test_bytearray_accepted(self):
        assert BytesSerde().to_bytes(bytearray(b"ab")) == b"ab"

    def test_wrong_type_raises(self):
        with pytest.raises(SerdeError):
            BytesSerde().to_bytes("str")


class TestIntegerSerdes:
    def test_int32_roundtrip(self):
        assert IntegerSerde().roundtrip(-123456) == -123456

    def test_int32_fixed_width(self):
        assert len(IntegerSerde().to_bytes(1)) == 4

    def test_int32_overflow_raises(self):
        with pytest.raises(SerdeError):
            IntegerSerde().to_bytes(2**31)

    def test_int64_roundtrip(self):
        assert LongSerde().roundtrip(2**62) == 2**62

    def test_int64_bad_length_raises(self):
        with pytest.raises(SerdeError):
            LongSerde().from_bytes(b"\x00")

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_long_roundtrip_property(self, value):
        assert LongSerde().roundtrip(value) == value

    def test_long_ordering_preserved_unsigned_prefix(self):
        # Big-endian encoding gives bytewise ordering for non-negative longs,
        # which the KV-store changelog keys rely on.
        s = LongSerde()
        assert s.to_bytes(1) < s.to_bytes(2) < s.to_bytes(2**40)


class TestJsonSerde:
    def test_roundtrip(self):
        obj = {"a": [1, 2.5, None, True], "b": {"nested": "x"}}
        assert JsonSerde().roundtrip(obj) == obj

    def test_deterministic_output(self):
        s = JsonSerde()
        assert s.to_bytes({"b": 1, "a": 2}) == s.to_bytes({"a": 2, "b": 1})

    def test_unserializable_raises(self):
        with pytest.raises(SerdeError):
            JsonSerde().to_bytes({"x": object()})

    def test_invalid_json_raises(self):
        with pytest.raises(SerdeError):
            JsonSerde().from_bytes(b"{nope")


class TestNoOpSerde:
    def test_passthrough_identity(self):
        obj = {"k": [1, 2]}
        s = NoOpSerde()
        assert s.to_bytes(obj) is obj
        assert s.from_bytes(obj) is obj
