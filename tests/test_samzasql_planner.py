"""Unit tests for the physical plan builder and plan serialization."""

import pytest

from repro.common import PlannerError
from repro.samzasql.physical import (
    FilterNode,
    FusedScanNode,
    GroupWindowAggNode,
    InsertNode,
    MultiWayStreamJoinNode,
    PhysicalPlan,
    ProjectNode,
    ScanNode,
    SlidingWindowNode,
    StreamRelationJoinNode,
    StreamStreamJoinNode,
)
from repro.samzasql.plan_builder import PhysicalPlanBuilder
from repro.sql import QueryPlanner
from repro.sql.catalog import Catalog, StreamDefinition, TableDefinition
from repro.sql.types import RowType, SqlType

from tests.sql_fixtures import paper_catalog


@pytest.fixture
def catalog():
    return paper_catalog()


def build(catalog, sql, fuse=False):
    logical = QueryPlanner(catalog).plan_query(sql)
    return PhysicalPlanBuilder(catalog, fuse_scans=fuse).build(logical, "Out")


class TestLowering:
    def test_filter_plan_shape(self, catalog):
        plan = build(catalog, "SELECT STREAM * FROM Orders WHERE units > 50")
        assert isinstance(plan.root, InsertNode)
        [filter_node] = plan.root.inputs
        assert isinstance(filter_node, FilterNode)
        assert isinstance(filter_node.inputs[0], ScanNode)
        assert plan.input_streams == ["Orders"]
        assert plan.store_names == []

    def test_project_names(self, catalog):
        plan = build(catalog, "SELECT STREAM rowtime, units FROM Orders")
        [project] = plan.root.inputs
        assert isinstance(project, ProjectNode)
        assert project.field_names == ["rowtime", "units"]

    def test_sliding_window_requirements(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM rowtime, SUM(units) OVER (PARTITION BY "
                     "productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE "
                     "PRECEDING) s FROM Orders")
        assert "sql-window-messages" in plan.store_names
        assert "sql-window-state" in plan.store_names
        window = plan.root.inputs[0].inputs[0]
        assert isinstance(window, SlidingWindowNode)
        assert window.preceding_ms == 300_000

    def test_group_window_plan(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM START(rowtime), COUNT(*) FROM Orders "
                     "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")
        agg = plan.root.inputs[0].inputs[0]
        assert isinstance(agg, GroupWindowAggNode)
        assert agg.window_kind == "TUMBLE"
        assert plan.store_names == ["sql-group-windows"]

    def test_stream_relation_join_requirements(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM Orders.units, Products.supplierId "
                     "FROM Orders JOIN Products "
                     "ON Orders.productId = Products.productId")
        join = plan.root.inputs[0].inputs[0]
        assert isinstance(join, StreamRelationJoinNode)
        assert join.stream_is_left
        assert plan.bootstrap_streams == ["Products-changelog"]
        assert "Products-changelog" in plan.input_streams
        assert plan.store_names == ["sql-relation-products"]

    def test_relation_on_left_supported(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM Orders.units FROM Products JOIN Orders "
                     "ON Orders.productId = Products.productId")
        join = plan.root.inputs[0].inputs[0]
        assert isinstance(join, StreamRelationJoinNode)
        assert not join.stream_is_left

    def test_output_rowtime_detected(self, catalog):
        plan = build(catalog, "SELECT STREAM rowtime, units FROM Orders")
        assert plan.root.rowtime_index == 0

    def test_output_without_rowtime(self, catalog):
        plan = build(catalog, "SELECT STREAM units FROM Orders")
        assert plan.root.rowtime_index is None


class TestStreamStreamBounds:
    def test_symmetric_between(self, catalog):
        plan = build(catalog, """
            SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 ON
            PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND
              AND PacketsR2.rowtime + INTERVAL '2' SECOND
            AND PacketsR1.packetId = PacketsR2.packetId""")
        join = plan.root.inputs[0].inputs[0]
        assert isinstance(join, StreamStreamJoinNode)
        assert join.lower_bound_ms == 2000
        assert join.upper_bound_ms == 2000
        assert join.left_key_source is not None
        assert plan.store_names == ["sql-join-left", "sql-join-right"]

    def test_asymmetric_bounds(self, catalog):
        plan = build(catalog, """
            SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 ON
            PacketsR1.rowtime >= PacketsR2.rowtime - INTERVAL '1' SECOND
            AND PacketsR1.rowtime <= PacketsR2.rowtime + INTERVAL '3' SECOND
            AND PacketsR1.packetId = PacketsR2.packetId""")
        join = plan.root.inputs[0].inputs[0]
        assert join.lower_bound_ms == 1000
        assert join.upper_bound_ms == 3000

    def test_missing_bounds_rejected(self, catalog):
        with pytest.raises(PlannerError, match="time window"):
            build(catalog,
                  "SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 "
                  "ON PacketsR1.packetId = PacketsR2.packetId")

    def test_one_sided_bound_rejected(self, catalog):
        with pytest.raises(PlannerError, match="time window"):
            build(catalog, """
                SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2
                ON PacketsR1.rowtime >= PacketsR2.rowtime - INTERVAL '2' SECOND
                AND PacketsR1.packetId = PacketsR2.packetId""")

    def test_join_without_equi_key_allowed(self, catalog):
        plan = build(catalog, """
            SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 ON
            PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '1' SECOND
              AND PacketsR2.rowtime + INTERVAL '1' SECOND""")
        join = plan.root.inputs[0].inputs[0]
        assert join.left_key_source is None


class TestRejections:
    def test_unwindowed_aggregate(self, catalog):
        with pytest.raises(PlannerError, match="window"):
            build(catalog,
                  "SELECT STREAM productId, COUNT(*) FROM Orders GROUP BY productId")

    def test_distinct_aggregate_rejected(self, catalog):
        with pytest.raises(PlannerError, match="DISTINCT"):
            build(catalog,
                  "SELECT STREAM COUNT(DISTINCT productId) FROM Orders "
                  "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")

    def test_table_only_query_rejected(self, catalog):
        logical = QueryPlanner(catalog).plan_query("SELECT * FROM Products")
        with pytest.raises(PlannerError):
            PhysicalPlanBuilder(catalog).build(logical, "Out")

    def test_full_outer_stream_relation_rejected(self, catalog):
        with pytest.raises(PlannerError, match="INNER and LEFT"):
            build(catalog,
                  "SELECT STREAM Orders.units FROM Orders FULL OUTER JOIN Products "
                  "ON Orders.productId = Products.productId")


class TestFusion:
    def test_filter_project_fused(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM rowtime, units FROM Orders WHERE units > 50",
                     fuse=True)
        [fused] = plan.root.inputs
        assert isinstance(fused, FusedScanNode)
        assert fused.predicate_source is not None
        assert fused.projection_source is not None
        assert fused.output_field_names == ["rowtime", "units"]

    def test_filter_only_fused(self, catalog):
        plan = build(catalog, "SELECT STREAM * FROM Orders WHERE units > 50",
                     fuse=True)
        [fused] = plan.root.inputs
        assert isinstance(fused, FusedScanNode)
        assert fused.projection_source is None

    def test_fusion_uses_field_names(self, catalog):
        plan = build(catalog, "SELECT STREAM * FROM Orders WHERE units > 50",
                     fuse=True)
        assert "r['units']" in plan.root.inputs[0].predicate_source

    def test_no_fusion_without_flag(self, catalog):
        plan = build(catalog, "SELECT STREAM * FROM Orders WHERE units > 50")
        assert not isinstance(plan.root.inputs[0], FusedScanNode)

    def test_window_not_fused(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM rowtime, SUM(units) OVER (PARTITION BY "
                     "productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE "
                     "PRECEDING) s FROM Orders", fuse=True)
        # the window operator itself must not be swallowed
        assert any(isinstance(node, SlidingWindowNode)
                   for node in _walk(plan.root))


def _walk(node):
    yield node
    for child in node.inputs:
        yield from _walk(child)


def build_cascade(catalog, sql):
    """Build with the multi-way collapse rule disabled (the A/B planner
    the shell selects for ``execution.multiway.join=false``)."""
    from repro.sql.rel.optimizer import Optimizer
    from repro.sql.rel.rules import default_rules

    planner = QueryPlanner(catalog,
                           Optimizer(rules=default_rules(multiway_joins=False)))
    return PhysicalPlanBuilder(catalog).build(planner.plan_query(sql), "Out")


def _window_join(i):
    """One anchored JOIN clause: R1's rowtime within ±2s of R{i}'s."""
    return (f"JOIN PacketsR{i} ON PacketsR1.rowtime BETWEEN "
            f"PacketsR{i}.rowtime - INTERVAL '2' SECOND AND "
            f"PacketsR{i}.rowtime + INTERVAL '2' SECOND AND "
            f"PacketsR{i - 1}.packetId = PacketsR{i}.packetId")


class TestMultiWayCollapse:
    THREE_WAY = ("SELECT STREAM PacketsR1.packetId FROM PacketsR1 "
                 + _window_join(2) + " " + _window_join(3))
    FOUR_WAY = THREE_WAY + " " + _window_join(4)

    def test_three_way_collapses(self, catalog):
        plan = build(catalog, self.THREE_WAY)
        [join] = [n for n in _walk(plan.root)
                  if isinstance(n, MultiWayStreamJoinNode)]
        assert join.widths == [3, 3, 3]
        assert join.input_names == ["PacketsR1", "PacketsR2", "PacketsR3"]
        assert plan.store_names == ["sql-mjoin-0", "sql-mjoin-1", "sql-mjoin-2"]
        # stated bounds plus the transitively derived R2-R3 pair
        assert join.upper_bounds_ms[0][1] == 2000
        assert join.upper_bounds_ms[1][0] == 2000
        assert join.upper_bounds_ms[1][2] == 4000
        assert join.upper_bounds_ms[2][1] == 4000

    def test_four_way_collapses(self, catalog):
        plan = build(catalog, self.FOUR_WAY)
        [join] = [n for n in _walk(plan.root)
                  if isinstance(n, MultiWayStreamJoinNode)]
        assert len(join.widths) == 4
        assert not any(isinstance(n, StreamStreamJoinNode)
                       for n in _walk(plan.root))

    def test_cascade_planner_keeps_binary_chain(self, catalog):
        plan = build_cascade(catalog, self.THREE_WAY)
        joins = [n for n in _walk(plan.root)
                 if isinstance(n, StreamStreamJoinNode)]
        assert len(joins) == 2
        # each join instance gets its own store pair
        stores = sorted(plan.store_names)
        assert stores == ["sql-join-left", "sql-join-left-2",
                          "sql-join-right", "sql-join-right-2"]
        assert {j.left_store for j in joins} == {"sql-join-left",
                                                "sql-join-left-2"}

    def test_two_way_not_collapsed(self, catalog):
        plan = build(catalog, """
            SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 ON
            PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND
              AND PacketsR2.rowtime + INTERVAL '2' SECOND
            AND PacketsR1.packetId = PacketsR2.packetId""")
        [join] = [n for n in _walk(plan.root)
                  if isinstance(n, StreamStreamJoinNode)]
        assert join.left_store == "sql-join-left"

    def test_non_time_comparison_blocks_collapse(self, catalog):
        sql = (self.THREE_WAY
               + " AND PacketsR1.sourcetime < PacketsR2.sourcetime")
        plan = build(catalog, sql)
        assert not any(isinstance(n, MultiWayStreamJoinNode)
                       for n in _walk(plan.root))
        assert sum(isinstance(n, StreamStreamJoinNode)
                   for n in _walk(plan.root)) == 2

    def test_missing_key_family_blocks_collapse(self, catalog):
        # R3 is windowed against R1 but shares no equi key with anyone.
        sql = ("SELECT STREAM PacketsR1.packetId FROM PacketsR1 "
               + _window_join(2) +
               " JOIN PacketsR3 ON PacketsR1.rowtime BETWEEN "
               "PacketsR3.rowtime - INTERVAL '2' SECOND AND "
               "PacketsR3.rowtime + INTERVAL '2' SECOND")
        plan = build(catalog, sql)
        assert not any(isinstance(n, MultiWayStreamJoinNode)
                       for n in _walk(plan.root))

    def test_relation_input_blocks_collapse(self, catalog):
        sql = ("SELECT STREAM PacketsR1.packetId FROM PacketsR1 "
               + _window_join(2)
               + " JOIN Products ON PacketsR1.packetId = Products.productId")
        plan = build(catalog, sql)
        assert not any(isinstance(n, MultiWayStreamJoinNode)
                       for n in _walk(plan.root))
        assert any(isinstance(n, StreamRelationJoinNode)
                   for n in _walk(plan.root))


class TestMultiWayProbeOrder:
    def _catalog(self, rates):
        from tests.sql_fixtures import paper_catalog

        catalog = Catalog()
        base = paper_catalog()
        for i, rate in enumerate(rates, start=1):
            name = f"PacketsR{i}"
            definition = base.stream(name)
            catalog.register_stream(StreamDefinition(
                name, definition.row_type, rate_per_sec=rate))
        return catalog

    def test_probe_order_by_declared_rate(self):
        catalog = self._catalog([100.0, 1.0, 10.0])
        plan = build(catalog, TestMultiWayCollapse.THREE_WAY)
        [join] = [n for n in _walk(plan.root)
                  if isinstance(n, MultiWayStreamJoinNode)]
        assert join.order_metric == "window_ms*rate"
        # retention spans are [2000, 4000, 4000] (anchored windows close
        # R2-R3 at 4s), so weights are [200, 4, 40] rows of expected state
        assert join.input_weights == [200.0, 4.0, 40.0]
        assert join.state_order() == [1, 2, 0]
        assert join.probe_orders == [[1, 2], [2, 0], [1, 0]]

    def test_unknown_rate_falls_back_to_window_span(self):
        catalog = self._catalog([100.0, None, 10.0])
        plan = build(catalog, TestMultiWayCollapse.THREE_WAY)
        [join] = [n for n in _walk(plan.root)
                  if isinstance(n, MultiWayStreamJoinNode)]
        assert join.order_metric == "window_ms"
        assert join.input_weights == [2000.0, 4000.0, 4000.0]
        assert join.state_order() == [0, 1, 2]


class TestSerialization:
    QUERIES = [
        "SELECT STREAM * FROM Orders WHERE units > 50",
        "SELECT STREAM rowtime, productId, units FROM Orders",
        ("SELECT STREAM rowtime, SUM(units) OVER (PARTITION BY productId "
         "ORDER BY rowtime RANGE INTERVAL '5' MINUTE PRECEDING) s FROM Orders"),
        ("SELECT STREAM START(rowtime), COUNT(*) FROM Orders "
         "GROUP BY HOP(rowtime, INTERVAL '30' MINUTE, INTERVAL '1' HOUR)"),
        ("SELECT STREAM Orders.units, Products.supplierId FROM Orders "
         "JOIN Products ON Orders.productId = Products.productId"),
        ("SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 ON "
         "PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
         "AND PacketsR2.rowtime + INTERVAL '2' SECOND "
         "AND PacketsR1.packetId = PacketsR2.packetId"),
        ("SELECT STREAM PacketsR1.packetId FROM PacketsR1 "
         "JOIN PacketsR2 ON PacketsR1.rowtime BETWEEN "
         "PacketsR2.rowtime - INTERVAL '2' SECOND AND "
         "PacketsR2.rowtime + INTERVAL '2' SECOND "
         "AND PacketsR1.packetId = PacketsR2.packetId "
         "JOIN PacketsR3 ON PacketsR1.rowtime BETWEEN "
         "PacketsR3.rowtime - INTERVAL '2' SECOND AND "
         "PacketsR3.rowtime + INTERVAL '2' SECOND "
         "AND PacketsR2.packetId = PacketsR3.packetId"),
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_json_roundtrip(self, catalog, sql):
        """The plan must survive the ZooKeeper round trip byte-identically
        (the two-phase planning contract)."""
        plan = build(catalog, sql)
        restored = PhysicalPlan.from_dict(plan.to_dict())
        assert restored.to_dict() == plan.to_dict()
        assert restored.input_streams == plan.input_streams
        assert restored.bootstrap_streams == plan.bootstrap_streams
        assert restored.explain() == plan.explain()

    def test_json_roundtrip_fused(self, catalog):
        plan = build(catalog, "SELECT STREAM units FROM Orders WHERE units > 1",
                     fuse=True)
        restored = PhysicalPlan.from_dict(plan.to_dict())
        assert restored.to_dict() == plan.to_dict()

    def test_unknown_kind_rejected(self):
        from repro.samzasql.physical import node_from_dict

        with pytest.raises(PlannerError, match="unknown physical node"):
            node_from_dict({"kind": "teleport", "inputs": []})
