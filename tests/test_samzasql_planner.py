"""Unit tests for the physical plan builder and plan serialization."""

import pytest

from repro.common import PlannerError
from repro.samzasql.physical import (
    FilterNode,
    FusedScanNode,
    GroupWindowAggNode,
    InsertNode,
    PhysicalPlan,
    ProjectNode,
    ScanNode,
    SlidingWindowNode,
    StreamRelationJoinNode,
    StreamStreamJoinNode,
)
from repro.samzasql.plan_builder import PhysicalPlanBuilder
from repro.sql import QueryPlanner
from repro.sql.catalog import Catalog, StreamDefinition, TableDefinition
from repro.sql.types import RowType, SqlType

from tests.sql_fixtures import paper_catalog


@pytest.fixture
def catalog():
    return paper_catalog()


def build(catalog, sql, fuse=False):
    logical = QueryPlanner(catalog).plan_query(sql)
    return PhysicalPlanBuilder(catalog, fuse_scans=fuse).build(logical, "Out")


class TestLowering:
    def test_filter_plan_shape(self, catalog):
        plan = build(catalog, "SELECT STREAM * FROM Orders WHERE units > 50")
        assert isinstance(plan.root, InsertNode)
        [filter_node] = plan.root.inputs
        assert isinstance(filter_node, FilterNode)
        assert isinstance(filter_node.inputs[0], ScanNode)
        assert plan.input_streams == ["Orders"]
        assert plan.store_names == []

    def test_project_names(self, catalog):
        plan = build(catalog, "SELECT STREAM rowtime, units FROM Orders")
        [project] = plan.root.inputs
        assert isinstance(project, ProjectNode)
        assert project.field_names == ["rowtime", "units"]

    def test_sliding_window_requirements(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM rowtime, SUM(units) OVER (PARTITION BY "
                     "productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE "
                     "PRECEDING) s FROM Orders")
        assert "sql-window-messages" in plan.store_names
        assert "sql-window-state" in plan.store_names
        window = plan.root.inputs[0].inputs[0]
        assert isinstance(window, SlidingWindowNode)
        assert window.preceding_ms == 300_000

    def test_group_window_plan(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM START(rowtime), COUNT(*) FROM Orders "
                     "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")
        agg = plan.root.inputs[0].inputs[0]
        assert isinstance(agg, GroupWindowAggNode)
        assert agg.window_kind == "TUMBLE"
        assert plan.store_names == ["sql-group-windows"]

    def test_stream_relation_join_requirements(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM Orders.units, Products.supplierId "
                     "FROM Orders JOIN Products "
                     "ON Orders.productId = Products.productId")
        join = plan.root.inputs[0].inputs[0]
        assert isinstance(join, StreamRelationJoinNode)
        assert join.stream_is_left
        assert plan.bootstrap_streams == ["Products-changelog"]
        assert "Products-changelog" in plan.input_streams
        assert plan.store_names == ["sql-relation-products"]

    def test_relation_on_left_supported(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM Orders.units FROM Products JOIN Orders "
                     "ON Orders.productId = Products.productId")
        join = plan.root.inputs[0].inputs[0]
        assert isinstance(join, StreamRelationJoinNode)
        assert not join.stream_is_left

    def test_output_rowtime_detected(self, catalog):
        plan = build(catalog, "SELECT STREAM rowtime, units FROM Orders")
        assert plan.root.rowtime_index == 0

    def test_output_without_rowtime(self, catalog):
        plan = build(catalog, "SELECT STREAM units FROM Orders")
        assert plan.root.rowtime_index is None


class TestStreamStreamBounds:
    def test_symmetric_between(self, catalog):
        plan = build(catalog, """
            SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 ON
            PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND
              AND PacketsR2.rowtime + INTERVAL '2' SECOND
            AND PacketsR1.packetId = PacketsR2.packetId""")
        join = plan.root.inputs[0].inputs[0]
        assert isinstance(join, StreamStreamJoinNode)
        assert join.lower_bound_ms == 2000
        assert join.upper_bound_ms == 2000
        assert join.left_key_source is not None
        assert plan.store_names == ["sql-join-left", "sql-join-right"]

    def test_asymmetric_bounds(self, catalog):
        plan = build(catalog, """
            SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 ON
            PacketsR1.rowtime >= PacketsR2.rowtime - INTERVAL '1' SECOND
            AND PacketsR1.rowtime <= PacketsR2.rowtime + INTERVAL '3' SECOND
            AND PacketsR1.packetId = PacketsR2.packetId""")
        join = plan.root.inputs[0].inputs[0]
        assert join.lower_bound_ms == 1000
        assert join.upper_bound_ms == 3000

    def test_missing_bounds_rejected(self, catalog):
        with pytest.raises(PlannerError, match="time window"):
            build(catalog,
                  "SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 "
                  "ON PacketsR1.packetId = PacketsR2.packetId")

    def test_one_sided_bound_rejected(self, catalog):
        with pytest.raises(PlannerError, match="time window"):
            build(catalog, """
                SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2
                ON PacketsR1.rowtime >= PacketsR2.rowtime - INTERVAL '2' SECOND
                AND PacketsR1.packetId = PacketsR2.packetId""")

    def test_join_without_equi_key_allowed(self, catalog):
        plan = build(catalog, """
            SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 ON
            PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '1' SECOND
              AND PacketsR2.rowtime + INTERVAL '1' SECOND""")
        join = plan.root.inputs[0].inputs[0]
        assert join.left_key_source is None


class TestRejections:
    def test_unwindowed_aggregate(self, catalog):
        with pytest.raises(PlannerError, match="window"):
            build(catalog,
                  "SELECT STREAM productId, COUNT(*) FROM Orders GROUP BY productId")

    def test_distinct_aggregate_rejected(self, catalog):
        with pytest.raises(PlannerError, match="DISTINCT"):
            build(catalog,
                  "SELECT STREAM COUNT(DISTINCT productId) FROM Orders "
                  "GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")

    def test_table_only_query_rejected(self, catalog):
        logical = QueryPlanner(catalog).plan_query("SELECT * FROM Products")
        with pytest.raises(PlannerError):
            PhysicalPlanBuilder(catalog).build(logical, "Out")

    def test_full_outer_stream_relation_rejected(self, catalog):
        with pytest.raises(PlannerError, match="INNER and LEFT"):
            build(catalog,
                  "SELECT STREAM Orders.units FROM Orders FULL OUTER JOIN Products "
                  "ON Orders.productId = Products.productId")


class TestFusion:
    def test_filter_project_fused(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM rowtime, units FROM Orders WHERE units > 50",
                     fuse=True)
        [fused] = plan.root.inputs
        assert isinstance(fused, FusedScanNode)
        assert fused.predicate_source is not None
        assert fused.projection_source is not None
        assert fused.output_field_names == ["rowtime", "units"]

    def test_filter_only_fused(self, catalog):
        plan = build(catalog, "SELECT STREAM * FROM Orders WHERE units > 50",
                     fuse=True)
        [fused] = plan.root.inputs
        assert isinstance(fused, FusedScanNode)
        assert fused.projection_source is None

    def test_fusion_uses_field_names(self, catalog):
        plan = build(catalog, "SELECT STREAM * FROM Orders WHERE units > 50",
                     fuse=True)
        assert "r['units']" in plan.root.inputs[0].predicate_source

    def test_no_fusion_without_flag(self, catalog):
        plan = build(catalog, "SELECT STREAM * FROM Orders WHERE units > 50")
        assert not isinstance(plan.root.inputs[0], FusedScanNode)

    def test_window_not_fused(self, catalog):
        plan = build(catalog,
                     "SELECT STREAM rowtime, SUM(units) OVER (PARTITION BY "
                     "productId ORDER BY rowtime RANGE INTERVAL '5' MINUTE "
                     "PRECEDING) s FROM Orders", fuse=True)
        # the window operator itself must not be swallowed
        assert any(isinstance(node, SlidingWindowNode)
                   for node in _walk(plan.root))


def _walk(node):
    yield node
    for child in node.inputs:
        yield from _walk(child)


class TestSerialization:
    QUERIES = [
        "SELECT STREAM * FROM Orders WHERE units > 50",
        "SELECT STREAM rowtime, productId, units FROM Orders",
        ("SELECT STREAM rowtime, SUM(units) OVER (PARTITION BY productId "
         "ORDER BY rowtime RANGE INTERVAL '5' MINUTE PRECEDING) s FROM Orders"),
        ("SELECT STREAM START(rowtime), COUNT(*) FROM Orders "
         "GROUP BY HOP(rowtime, INTERVAL '30' MINUTE, INTERVAL '1' HOUR)"),
        ("SELECT STREAM Orders.units, Products.supplierId FROM Orders "
         "JOIN Products ON Orders.productId = Products.productId"),
        ("SELECT STREAM PacketsR1.packetId FROM PacketsR1 JOIN PacketsR2 ON "
         "PacketsR1.rowtime BETWEEN PacketsR2.rowtime - INTERVAL '2' SECOND "
         "AND PacketsR2.rowtime + INTERVAL '2' SECOND "
         "AND PacketsR1.packetId = PacketsR2.packetId"),
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_json_roundtrip(self, catalog, sql):
        """The plan must survive the ZooKeeper round trip byte-identically
        (the two-phase planning contract)."""
        plan = build(catalog, sql)
        restored = PhysicalPlan.from_dict(plan.to_dict())
        assert restored.to_dict() == plan.to_dict()
        assert restored.input_streams == plan.input_streams
        assert restored.bootstrap_streams == plan.bootstrap_streams
        assert restored.explain() == plan.explain()

    def test_json_roundtrip_fused(self, catalog):
        plan = build(catalog, "SELECT STREAM units FROM Orders WHERE units > 1",
                     fuse=True)
        restored = PhysicalPlan.from_dict(plan.to_dict())
        assert restored.to_dict() == plan.to_dict()

    def test_unknown_kind_rejected(self):
        from repro.samzasql.physical import node_from_dict

        with pytest.raises(PlannerError, match="unknown physical node"):
            node_from_dict({"kind": "teleport", "inputs": []})
