"""Tests for the ZooKeeper model: tree ops, versions, ephemerals, watches."""

import pytest

from repro.common import ZkError
from repro.zk import ZkClient, ZkServer


@pytest.fixture
def server():
    return ZkServer()


@pytest.fixture
def client(server):
    return ZkClient(server)


class TestPaths:
    def test_relative_path_rejected(self, client):
        with pytest.raises(ZkError):
            client.create("relative")

    def test_trailing_slash_rejected(self, client):
        with pytest.raises(ZkError):
            client.create("/a/")

    def test_empty_component_rejected(self, client):
        with pytest.raises(ZkError):
            client.create("/a//b")

    def test_root_operations_rejected(self, client):
        with pytest.raises(ZkError):
            client.create("/")


class TestCrud:
    def test_create_get(self, client):
        client.create("/samza-sql", b"meta")
        data, stat = client.get("/samza-sql")
        assert data == b"meta"
        assert stat.version == 0

    def test_create_requires_parent(self, client):
        with pytest.raises(ZkError):
            client.create("/a/b/c")

    def test_ensure_path_builds_ancestors(self, client):
        client.ensure_path("/a/b/c")
        assert client.exists("/a/b/c") is not None
        assert client.get_children("/a") == ["b"]

    def test_duplicate_create_raises(self, client):
        client.create("/x")
        with pytest.raises(ZkError):
            client.create("/x")

    def test_set_bumps_version(self, client):
        client.create("/x", b"1")
        stat = client.set("/x", b"2")
        assert stat.version == 1
        assert client.get("/x")[0] == b"2"

    def test_conditional_set(self, client):
        client.create("/x", b"1")
        client.set("/x", b"2", expected_version=0)
        with pytest.raises(ZkError):
            client.set("/x", b"3", expected_version=0)

    def test_delete(self, client):
        client.create("/x")
        client.delete("/x")
        assert client.exists("/x") is None

    def test_delete_with_children_raises(self, client):
        client.ensure_path("/a/b")
        with pytest.raises(ZkError):
            client.delete("/a")

    def test_conditional_delete(self, client):
        client.create("/x", b"1")
        client.set("/x", b"2")
        with pytest.raises(ZkError):
            client.delete("/x", expected_version=0)
        client.delete("/x", expected_version=1)

    def test_get_children_sorted(self, client):
        client.ensure_path("/jobs")
        client.create("/jobs/b")
        client.create("/jobs/a")
        assert client.get_children("/jobs") == ["a", "b"]

    def test_get_missing_raises(self, client):
        with pytest.raises(ZkError):
            client.get("/missing")


class TestSequential:
    def test_sequential_names(self, client):
        client.ensure_path("/queue")
        a = client.create("/queue/item-", sequential=True)
        b = client.create("/queue/item-", sequential=True)
        assert a == "/queue/item-0000000000"
        assert b == "/queue/item-0000000001"
        assert client.get_children("/queue") == ["item-0000000000", "item-0000000001"]


class TestEphemerals:
    def test_ephemeral_deleted_on_session_close(self, server):
        c1 = ZkClient(server)
        c1.ensure_path("/locks")
        c1.create("/locks/owner", b"c1", ephemeral=True)
        c2 = ZkClient(server)
        assert c2.exists("/locks/owner") is not None
        c1.close()
        assert c2.exists("/locks/owner") is None
        # persistent parent survives
        assert c2.exists("/locks") is not None

    def test_ephemeral_cannot_have_children(self, client):
        client.create("/e", ephemeral=True)
        with pytest.raises(ZkError):
            client.create("/e/child")

    def test_closed_client_rejects_operations(self, server):
        client = ZkClient(server)
        client.close()
        with pytest.raises(ZkError):
            client.create("/x")

    def test_context_manager_closes(self, server):
        with ZkClient(server) as c:
            c.create("/tmp-node", ephemeral=True)
        probe = ZkClient(server)
        assert probe.exists("/tmp-node") is None


class TestWatches:
    def test_data_watch_fires_once(self, client):
        events = []
        client.create("/w", b"1")
        client.get("/w", watch=lambda ev, path: events.append((ev, path)))
        client.set("/w", b"2")
        client.set("/w", b"3")  # watch is one-shot
        assert events == [("changed", "/w")]

    def test_exists_watch_fires_on_create(self, client):
        events = []
        client.exists("/later", watch=lambda ev, path: events.append(ev))
        client.create("/later")
        assert events == ["created"]

    def test_delete_fires_data_watch(self, client):
        events = []
        client.create("/w")
        client.get("/w", watch=lambda ev, path: events.append(ev))
        client.delete("/w")
        assert events == ["deleted"]

    def test_child_watch(self, client):
        events = []
        client.ensure_path("/parent")
        client.get_children("/parent", watch=lambda ev, path: events.append((ev, path)))
        client.create("/parent/kid")
        assert events == [("children", "/parent")]


class TestJsonHelpers:
    def test_write_read_json(self, client):
        payload = {"query": "SELECT STREAM * FROM Orders", "partitions": 32}
        client.write_json("/samza-sql/jobs/q1", payload)
        assert client.read_json("/samza-sql/jobs/q1") == payload

    def test_write_json_overwrites(self, client):
        client.write_json("/x", {"v": 1})
        client.write_json("/x", {"v": 2})
        assert client.read_json("/x") == {"v": 2}

    def test_read_json_empty_node_raises(self, client):
        client.create("/empty")
        with pytest.raises(ZkError):
            client.read_json("/empty")
