"""Integration tests for the Samza container/job runtime."""

import pytest

from repro.common import Config
from repro.samza import OutgoingMessageEnvelope, SamzaJob
from repro.samza.system import SystemStream
from repro.samza.task import StreamTask
from repro.serde import AvroSerde

from tests.helpers import (
    ORDERS_SCHEMA,
    CountingTask,
    FilterTask,
    WindowEmitTask,
    base_config,
    make_runtime,
    orders_serdes,
    produce_orders,
    read_topic,
)


class TestFilterJobEndToEnd:
    def _run(self, containers=1, partitions=4, count=100):
        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, count, partitions=partitions)
        job = SamzaJob(
            config=base_config(containers=containers),
            task_factory=lambda: FilterTask(threshold=50),
            serdes=orders_serdes(),
        )
        master = runner.submit(job)
        runner.run_until_quiescent()
        return cluster, master

    def test_filter_output_correct(self):
        cluster, _ = self._run()
        out = read_topic(cluster, "OrdersOut", AvroSerde(ORDERS_SCHEMA))
        # input units pattern: (i*7) % 100 — count how many exceed 50
        expected = [r for r in produce_expected(100) if r["units"] > 50]
        assert sorted(o["orderId"] for o in out) == sorted(r["orderId"] for r in expected)
        assert all(o["units"] > 50 for o in out)

    def test_multi_container_same_result(self):
        cluster_1, _ = self._run(containers=1)
        cluster_4, _ = self._run(containers=4)
        one = sorted(o["orderId"] for o in read_topic(
            cluster_1, "OrdersOut", AvroSerde(ORDERS_SCHEMA)))
        four = sorted(o["orderId"] for o in read_topic(
            cluster_4, "OrdersOut", AvroSerde(ORDERS_SCHEMA)))
        assert one == four

    def test_key_partitioning_preserved(self):
        """Outputs keyed by productId land in consistent partitions."""
        cluster, _ = self._run()
        by_key_partition = {}
        for tp in cluster.partitions_for("OrdersOut"):
            for msg in cluster.fetch(tp, 0):
                by_key_partition.setdefault(msg.key, set()).add(tp.partition)
        assert all(len(parts) == 1 for parts in by_key_partition.values())

    def test_processed_count_matches_input(self):
        _, master = self._run(count=60)
        processed = sum(c.processed_count for c in master.samza_containers.values())
        assert processed == 60

    def test_container_count_respected(self):
        _, master = self._run(containers=3)
        assert len(master.samza_containers) == 3

    def test_containers_cover_all_partitions(self):
        _, master = self._run(containers=3, partitions=8)
        partition_ids = []
        for container in master.samza_containers.values():
            for task in container.tasks.values():
                partition_ids.append(task.partition_id)
        assert sorted(partition_ids) == list(range(8))


def produce_expected(count, start_ts=1_000_000):
    return [
        {"rowtime": start_ts + i, "productId": i % 10, "orderId": i,
         "units": (i * 7) % 100}
        for i in range(count)
    ]


class TestStatefulJob:
    def _job(self, cluster, containers=1):
        config = base_config(containers=containers).merge({
            "stores.counts.changelog": "kafka.test-job-counts-changelog",
            "stores.counts.key.serde": "string",
            "stores.counts.msg.serde": "json",
        })
        return SamzaJob(config=config, task_factory=CountingTask, serdes=orders_serdes())

    def test_counts_accumulate(self):
        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, 100, partitions=2)
        master = runner.submit(self._job(cluster))
        runner.run_until_quiescent()
        totals = {}
        for container in master.samza_containers.values():
            for task in container.tasks.values():
                for key, value in task.stores["counts"].all():
                    totals[key] = totals.get(key, 0) + value
        assert sum(totals.values()) == 100
        assert totals == {str(p): 10 for p in range(10)}

    def test_changelog_written(self):
        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, 20, partitions=2)
        master = runner.submit(self._job(cluster))
        runner.run_until_quiescent()
        # Write-behind defers changelog writes to commit: nothing has been
        # mirrored yet (20 messages < the commit interval)...
        assert cluster.topic("test-job-counts-changelog").total_messages() == 0
        # ...until stop(), which commits — flushing the dirty state down
        # through the changelog layer alongside the checkpoint.
        master.finish()
        assert cluster.topic("test-job-counts-changelog").total_messages() > 0

    def test_changelog_writethrough_mode(self):
        """stores.write.behind=false restores per-mutation changelog writes."""
        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, 20, partitions=2)
        config = base_config(containers=1).merge({
            "stores.counts.changelog": "kafka.test-job-counts-changelog",
            "stores.counts.key.serde": "string",
            "stores.counts.msg.serde": "json",
            "stores.write.behind": "false",
        })
        job = SamzaJob(config=config, task_factory=CountingTask,
                       serdes=orders_serdes())
        runner.submit(job)
        runner.run_until_quiescent()
        assert cluster.topic("test-job-counts-changelog").total_messages() > 0

    def test_state_restored_after_container_failure(self):
        """Kill a container mid-stream; the replacement must restore counts
        from the changelog and resume from the checkpoint."""
        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, 50, partitions=2)
        config = base_config(containers=2).merge({
            "stores.counts.changelog": "kafka.test-job-counts-changelog",
            "stores.counts.key.serde": "string",
            "stores.counts.msg.serde": "json",
            "task.checkpoint.interval.messages": 5,
        })
        job = SamzaJob(config=config, task_factory=CountingTask, serdes=orders_serdes())
        master = runner.submit(job)
        # process some of the input
        for _ in range(3):
            runner.run_iteration()
        runner.kill_container(master, index=0)
        produce_orders(cluster, 50, partitions=2)  # more input after failure
        runner.run_until_quiescent()
        totals = {}
        for container in master.samza_containers.values():
            for task in container.tasks.values():
                for key, value in task.stores["counts"].all():
                    totals[key] = totals.get(key, 0) + value
        # At-least-once: every message counted at least once, and the
        # replacement container resumed from its checkpoint, so totals are
        # at least the true counts and bounded by checkpoint-interval slack.
        assert sum(totals.values()) >= 100
        assert sum(totals.values()) <= 100 + 2 * 5 * 2  # tasks * interval slack


class TestWindowTimer:
    def test_window_fires_on_interval(self):
        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, 10, partitions=1)
        config = base_config().merge({"task.window.ms": 100})
        job = SamzaJob(config=config, task_factory=WindowEmitTask, serdes=orders_serdes())
        master = runner.submit(job)
        runner.run_iteration()
        clock.advance(150)
        runner.run_iteration()
        [container] = master.samza_containers.values()
        [task] = container.tasks.values()
        assert task.task.window_calls == 1
        clock.advance(150)
        runner.run_iteration()
        assert task.task.window_calls == 2

    def test_window_disabled_by_default(self):
        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, 10, partitions=1)
        job = SamzaJob(config=base_config(), task_factory=WindowEmitTask,
                       serdes=orders_serdes())
        master = runner.submit(job)
        clock.advance(10_000)
        runner.run_until_quiescent()
        [container] = master.samza_containers.values()
        [task] = container.tasks.values()
        assert task.task.window_calls == 0


class TestBootstrapStreams:
    def test_bootstrap_consumed_before_other_inputs(self):
        """Products (bootstrap) must be fully read before any Orders message
        is processed — the §4.4 stream-to-relation join mechanism."""
        order_of_streams = []

        class RecordingTask(StreamTask):
            def process(self, envelope, collector, coordinator):
                order_of_streams.append(envelope.stream)

        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, 30, partitions=2)
        produce_orders(cluster, 10, partitions=2, topic="Products")
        config = base_config().merge({
            "task.inputs": "kafka.Orders,kafka.Products",
            "systems.kafka.streams.Products.samza.bootstrap": "true",
            "systems.kafka.streams.Products.samza.msg.serde": "avro-orders",
            "systems.kafka.streams.Products.samza.key.serde": "string",
        })
        job = SamzaJob(config=config, task_factory=RecordingTask, serdes=orders_serdes())
        runner.submit(job)
        runner.run_until_quiescent()
        first_orders = order_of_streams.index("Orders")
        products_seen_before = order_of_streams[:first_orders].count("Products")
        assert products_seen_before == 10
        assert order_of_streams.count("Orders") == 30

    def test_no_bootstrap_interleaves(self):
        streams_seen = []

        class RecordingTask(StreamTask):
            def process(self, envelope, collector, coordinator):
                streams_seen.append(envelope.stream)

        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, 20, partitions=2)
        produce_orders(cluster, 20, partitions=2, topic="Products")
        config = base_config().merge({
            "task.inputs": "kafka.Orders,kafka.Products",
            "systems.kafka.streams.Products.samza.msg.serde": "avro-orders",
            "systems.kafka.streams.Products.samza.key.serde": "string",
        })
        job = SamzaJob(config=config, task_factory=RecordingTask, serdes=orders_serdes())
        runner.submit(job)
        runner.run_until_quiescent()
        assert len(streams_seen) == 40


class TestCoordinator:
    def test_shutdown_request_stops_container(self):
        class OneShotTask(StreamTask):
            def process(self, envelope, collector, coordinator):
                coordinator.shutdown()

        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, 10, partitions=1)
        job = SamzaJob(config=base_config(), task_factory=OneShotTask,
                       serdes=orders_serdes())
        master = runner.submit(job)
        runner.run_iteration()
        [container] = master.samza_containers.values()
        assert container.shutdown_requested
        assert container.processed_count == 1

    def test_commit_request_writes_checkpoint(self):
        class CommittingTask(StreamTask):
            def process(self, envelope, collector, coordinator):
                coordinator.commit()

        cluster, rm, runner, clock = make_runtime()
        produce_orders(cluster, 4, partitions=1)
        job = SamzaJob(config=base_config(), task_factory=CommittingTask,
                       serdes=orders_serdes())
        master = runner.submit(job)
        runner.run_until_quiescent()
        checkpoint = master.checkpoints.read_last_checkpoint("Partition 0")
        assert checkpoint is not None
        [(ssp, offset)] = checkpoint.offsets.items()
        assert offset == 4
