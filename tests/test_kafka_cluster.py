"""Tests for broker/cluster/topic admin and request routing."""

import pytest

from repro.common import (
    KafkaError,
    TopicExistsError,
    UnknownTopicError,
    VirtualClock,
)
from repro.kafka import KafkaCluster, TopicPartition
from repro.kafka.topic import Topic, TopicConfig


class TestTopicConfig:
    def test_defaults(self):
        cfg = TopicConfig()
        assert cfg.partitions == 1
        assert cfg.cleanup_policy == "delete"

    def test_invalid_partitions(self):
        with pytest.raises(KafkaError):
            TopicConfig(partitions=0)

    def test_invalid_policy(self):
        with pytest.raises(KafkaError):
            TopicConfig(cleanup_policy="shred")

    def test_invalid_topic_name(self):
        with pytest.raises(KafkaError):
            Topic("bad/name", TopicConfig())
        with pytest.raises(KafkaError):
            Topic("", TopicConfig())

    def test_partition_lookup(self):
        topic = Topic("t", TopicConfig(partitions=2))
        assert topic.partition(1).partition == 1
        with pytest.raises(KafkaError):
            topic.partition(2)


class TestClusterAdmin:
    def test_create_and_describe(self):
        cluster = KafkaCluster()
        cluster.create_topic("orders", partitions=4)
        assert cluster.topics() == ["orders"]
        assert len(cluster.partitions_for("orders")) == 4

    def test_create_duplicate_raises(self):
        cluster = KafkaCluster()
        cluster.create_topic("t")
        with pytest.raises(TopicExistsError):
            cluster.create_topic("t")

    def test_create_if_not_exists(self):
        cluster = KafkaCluster()
        a = cluster.create_topic("t", partitions=2)
        b = cluster.create_topic("t", partitions=5, if_not_exists=True)
        assert a is b
        assert b.partition_count == 2

    def test_unknown_topic_raises(self):
        with pytest.raises(UnknownTopicError):
            KafkaCluster().topic("missing")

    def test_delete_topic(self):
        cluster = KafkaCluster()
        cluster.create_topic("t")
        cluster.delete_topic("t")
        assert not cluster.has_topic("t")
        with pytest.raises(UnknownTopicError):
            cluster.fetch(TopicPartition("t", 0), 0)

    def test_leaders_spread_round_robin(self):
        cluster = KafkaCluster(broker_count=3)
        cluster.create_topic("t", partitions=6)
        leaders = [cluster.leader(TopicPartition("t", i)).broker_id for i in range(6)]
        assert leaders == [0, 1, 2, 0, 1, 2]
        # every broker hosts exactly its share
        for broker in cluster.brokers:
            assert len(broker.hosted_partitions()) == 2

    def test_zero_brokers_rejected(self):
        with pytest.raises(ValueError):
            KafkaCluster(broker_count=0)


class TestDataPlane:
    def test_produce_fetch_roundtrip(self):
        cluster = KafkaCluster(clock=VirtualClock(5000))
        cluster.create_topic("t", partitions=1)
        tp = TopicPartition("t", 0)
        offset = cluster.produce(tp, b"k", b"v")
        assert offset == 0
        [msg] = cluster.fetch(tp, 0)
        assert (msg.key, msg.value, msg.timestamp_ms) == (b"k", b"v", 5000)

    def test_explicit_timestamp_wins(self):
        cluster = KafkaCluster(clock=VirtualClock(5000))
        cluster.create_topic("t")
        tp = TopicPartition("t", 0)
        cluster.produce(tp, None, b"v", timestamp_ms=123)
        assert cluster.fetch(tp, 0)[0].timestamp_ms == 123

    def test_watermarks(self):
        cluster = KafkaCluster()
        cluster.create_topic("t")
        tp = TopicPartition("t", 0)
        assert cluster.earliest_offset(tp) == 0
        assert cluster.latest_offset(tp) == 0
        cluster.produce(tp, None, b"v")
        assert cluster.latest_offset(tp) == 1

    def test_fetch_counts_per_broker(self):
        cluster = KafkaCluster(broker_count=2)
        cluster.create_topic("t", partitions=2)
        cluster.fetch(TopicPartition("t", 0), 0)
        cluster.fetch(TopicPartition("t", 1), 0)
        cluster.fetch(TopicPartition("t", 1), 0)
        assert cluster.brokers[0].fetch_request_count == 1
        assert cluster.brokers[1].fetch_request_count == 2
        assert cluster.total_fetch_requests() == 3


class TestGroupOffsets:
    def test_commit_and_read(self):
        cluster = KafkaCluster()
        cluster.create_topic("t")
        tp = TopicPartition("t", 0)
        assert cluster.committed_offset("g", tp) is None
        cluster.commit_offset("g", tp, 42)
        assert cluster.committed_offset("g", tp) == 42
        assert cluster.committed_offset("other", tp) is None


class TestRetentionService:
    def test_run_retention_compacts_compact_topics(self):
        cluster = KafkaCluster()
        cluster.create_topic("changelog", cleanup_policy="compact")
        tp = TopicPartition("changelog", 0)
        cluster.produce(tp, b"k", b"1")
        cluster.produce(tp, b"k", b"2")
        assert cluster.run_retention() == 1
        [msg] = cluster.fetch(tp, 0)
        assert msg.value == b"2"

    def test_run_retention_expires_delete_topics(self):
        clock = VirtualClock(0)
        cluster = KafkaCluster(clock=clock)
        cluster.create_topic("t", retention_ms=100)
        tp = TopicPartition("t", 0)
        cluster.produce(tp, None, b"old", timestamp_ms=0)
        clock.advance(1000)
        cluster.produce(tp, None, b"new", timestamp_ms=1000)
        assert cluster.run_retention() == 1
        assert cluster.earliest_offset(tp) == 1
