"""Tests for checkpoints and their Kafka-topic persistence."""

import pytest

from repro.common import CheckpointError
from repro.kafka import KafkaCluster
from repro.samza import Checkpoint, CheckpointManager
from repro.samza.system import SystemStreamPartition


def ssp(stream, partition=0):
    return SystemStreamPartition("kafka", stream, partition)


class TestCheckpointPayload:
    def test_roundtrip(self):
        cp = Checkpoint({ssp("Orders", 3): 42, ssp("Products", 0): 7})
        restored = Checkpoint.from_payload(cp.to_payload())
        assert restored.offsets == cp.offsets

    def test_stream_name_with_dash(self):
        cp = Checkpoint({ssp("my-stream", 2): 5})
        assert Checkpoint.from_payload(cp.to_payload()).offsets == cp.offsets

    def test_malformed_key_raises(self):
        with pytest.raises(CheckpointError):
            Checkpoint.from_payload({"nodots": 1})


class TestCheckpointManager:
    def test_write_read_latest(self):
        cluster = KafkaCluster()
        manager = CheckpointManager(cluster, "job1")
        manager.write_checkpoint("Partition 0", Checkpoint({ssp("Orders"): 5}))
        manager.write_checkpoint("Partition 0", Checkpoint({ssp("Orders"): 9}))
        restored = manager.read_last_checkpoint("Partition 0")
        assert restored.offsets == {ssp("Orders"): 9}

    def test_unknown_task_is_none(self):
        manager = CheckpointManager(KafkaCluster(), "job1")
        assert manager.read_last_checkpoint("Partition 0") is None

    def test_tasks_isolated(self):
        manager = CheckpointManager(KafkaCluster(), "job1")
        manager.write_checkpoint("Partition 0", Checkpoint({ssp("Orders", 0): 1}))
        manager.write_checkpoint("Partition 1", Checkpoint({ssp("Orders", 1): 2}))
        assert manager.read_last_checkpoint("Partition 0").offsets == {ssp("Orders", 0): 1}
        assert manager.read_last_checkpoint("Partition 1").offsets == {ssp("Orders", 1): 2}

    def test_survives_compaction(self):
        """The checkpoint topic is compacted; the latest entry per task must
        survive a compaction pass."""
        cluster = KafkaCluster()
        manager = CheckpointManager(cluster, "job1")
        for offset in range(10):
            manager.write_checkpoint("Partition 0", Checkpoint({ssp("Orders"): offset}))
        cluster.run_retention()
        assert manager.read_last_checkpoint("Partition 0").offsets == {ssp("Orders"): 9}

    def test_jobs_use_distinct_topics(self):
        cluster = KafkaCluster()
        m1 = CheckpointManager(cluster, "job1")
        m2 = CheckpointManager(cluster, "job2")
        m1.write_checkpoint("Partition 0", Checkpoint({ssp("Orders"): 1}))
        assert m2.read_last_checkpoint("Partition 0") is None
