"""Multiple jobs sharing the cluster — the Kappa fan-out pattern.

§2: Samza "facilitates sharing across stream processing stages by allowing
addition of jobs that consume an intermediate stream"; each job has its
own master, so "glitches in one job do not affect other jobs".
"""

import pytest

from repro.common import PlannerError

from tests.samzasql_fixtures import Deployment


class TestConcurrentQueries:
    def test_two_queries_same_input_independent(self):
        deployment = Deployment().with_orders(60)
        big = deployment.shell.execute("SELECT STREAM * FROM Orders WHERE units > 50")
        small = deployment.shell.execute("SELECT STREAM * FROM Orders WHERE units <= 50")
        deployment.runner.run_until_quiescent()
        n_big = len(big.results())
        n_small = len(small.results())
        assert n_big + n_small == 60
        assert n_big == sum(1 for i in range(60) if (i * 7) % 100 > 50)

    def test_failure_in_one_job_does_not_affect_other(self):
        deployment = Deployment().with_orders(40)
        victim_query = deployment.shell.execute(
            "SELECT STREAM * FROM Orders WHERE units > 50", containers=2)
        healthy_query = deployment.shell.execute(
            "SELECT STREAM rowtime, units FROM Orders")
        for _ in range(2):
            deployment.runner.run_iteration()
        deployment.runner.kill_container(victim_query.master, index=0)
        deployment.runner.run_until_quiescent()
        # the healthy job saw every record exactly once (no failure there)
        assert len(healthy_query.results()) == 40
        # the victim job recovered and (at-least-once) covered everything
        expected = {i for i in range(40) if (i * 7) % 100 > 50}
        assert {r["orderId"] for r in victim_query.results()} == expected

    def test_three_stage_pipeline(self):
        deployment = Deployment().with_orders(50)
        stage1 = deployment.run(
            "INSERT INTO Stage1 SELECT STREAM * FROM Orders WHERE units > 20")
        deployment.shell.register_derived_stream("S1", stage1)
        stage2 = deployment.run(
            "INSERT INTO Stage2 SELECT STREAM * FROM S1 WHERE units > 60")
        deployment.shell.register_derived_stream("S2", stage2)
        stage3 = deployment.run(
            "SELECT STREAM orderId FROM S2 WHERE units > 90")
        expected = [i for i in range(50) if (i * 7) % 100 > 90]
        assert sorted(r["orderId"] for r in stage3.results()) == expected

    def test_jobs_get_separate_checkpoint_topics(self):
        deployment = Deployment().with_orders(10)
        q1 = deployment.run("SELECT STREAM * FROM Orders")
        q2 = deployment.run("SELECT STREAM rowtime, units FROM Orders")
        topics = deployment.cluster.topics()
        assert f"__checkpoint_{q1.query_id}" in topics
        assert f"__checkpoint_{q2.query_id}" in topics

    def test_yarn_capacity_shared(self):
        """Containers from different jobs coexist under cluster capacity."""
        deployment = Deployment(nodes=2).with_orders(10)
        deployment.run("SELECT STREAM * FROM Orders", containers=2)
        deployment.run("SELECT STREAM rowtime FROM Orders", containers=2)
        used = deployment.rm.cluster_capacity().memory_mb - \
            deployment.rm.cluster_available().memory_mb
        assert used == 4 * 1024  # four containers at the 1024 MB default

    def test_run_until_quiescent_guard_fires(self):
        """The runner's iteration guard must fire instead of spinning
        forever when a job cannot drain its input."""
        from repro.samza.task import StreamTask
        from repro.samza.system import OutgoingMessageEnvelope, SystemStream
        from repro.samza import SamzaJob
        from tests.helpers import base_config, orders_serdes

        class SelfFeedingTask(StreamTask):
            def process(self, envelope, collector, coordinator):
                collector.send(OutgoingMessageEnvelope(
                    system_stream=SystemStream("kafka", "Orders"),
                    message=envelope.message, key=envelope.key,
                    timestamp_ms=envelope.timestamp_ms))

        deployment = Deployment().with_orders(1)
        job = SamzaJob(config=base_config(name="loop-job"),
                       task_factory=SelfFeedingTask, serdes=orders_serdes())
        deployment.runner.submit(job)
        with pytest.raises(RuntimeError, match="quiesce"):
            deployment.runner.run_until_quiescent(max_iterations=50)
