"""Tests for producer partitioning and the consumer poll loop."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import KafkaError
from repro.kafka import Consumer, KafkaCluster, Producer, TopicPartition, hash_partitioner


@pytest.fixture
def cluster():
    c = KafkaCluster()
    c.create_topic("orders", partitions=4)
    return c


class TestPartitioner:
    def test_deterministic(self):
        assert hash_partitioner(b"key", 8) == hash_partitioner(b"key", 8)

    def test_requires_key(self):
        with pytest.raises(KafkaError):
            hash_partitioner(None, 4)

    @given(st.binary(min_size=1, max_size=16), st.integers(min_value=1, max_value=64))
    def test_in_range_property(self, key, n):
        assert 0 <= hash_partitioner(key, n) < n

    def test_spreads_keys(self):
        targets = {hash_partitioner(str(i).encode(), 8) for i in range(200)}
        assert len(targets) == 8  # all partitions hit with 200 distinct keys


class TestProducer:
    def test_keyed_messages_colocate(self, cluster):
        producer = Producer(cluster)
        p1, _ = producer.send("orders", b"v1", key=b"product-7")
        p2, _ = producer.send("orders", b"v2", key=b"product-7")
        assert p1 == p2

    def test_unkeyed_round_robin(self, cluster):
        producer = Producer(cluster)
        parts = [producer.send("orders", b"v")[0] for _ in range(8)]
        assert parts == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_explicit_partition(self, cluster):
        producer = Producer(cluster)
        p, offset = producer.send("orders", b"v", partition=2)
        assert (p, offset) == (2, 0)

    def test_explicit_partition_out_of_range(self, cluster):
        with pytest.raises(KafkaError):
            Producer(cluster).send("orders", b"v", partition=9)

    def test_offsets_increase_per_partition(self, cluster):
        producer = Producer(cluster)
        offsets = [producer.send("orders", b"v", partition=1)[1] for _ in range(3)]
        assert offsets == [0, 1, 2]


class TestConsumer:
    def _fill(self, cluster, n_per_partition=5):
        producer = Producer(cluster)
        for p in range(4):
            for i in range(n_per_partition):
                producer.send("orders", f"p{p}-m{i}".encode(), partition=p)

    def test_poll_reads_everything_in_partition_order(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders"))
        records = []
        while True:
            batch = consumer.poll()
            if not batch:
                break
            records.extend(batch)
        assert len(records) == 20
        # per-partition order is preserved
        for p in range(4):
            offsets = [r.offset for r in records if r.partition == p]
            assert offsets == sorted(offsets) == [0, 1, 2, 3, 4]

    def test_poll_respects_max_records(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders"))
        assert len(consumer.poll(max_records=3)) == 3

    def test_round_robin_fairness(self, cluster):
        """A hot partition must not starve others across polls."""
        producer = Producer(cluster)
        for i in range(100):
            producer.send("orders", b"hot", partition=0)
        producer.send("orders", b"cold", partition=1)
        consumer = Consumer(cluster, fetch_max_records_per_partition=10)
        consumer.assign(cluster.partitions_for("orders"))
        seen_partitions = set()
        for _ in range(4):
            for r in consumer.poll(max_records=10):
                seen_partitions.add(r.partition)
        assert 1 in seen_partitions

    def test_seek_and_position(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        tp = TopicPartition("orders", 0)
        consumer.assign([tp])
        consumer.seek(tp, 3)
        records = consumer.poll()
        assert [r.offset for r in records] == [3, 4]
        assert consumer.position(tp) == 5

    def test_seek_to_end_then_new_data(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        tp = TopicPartition("orders", 0)
        consumer.assign([tp])
        consumer.seek_to_end(tp)
        assert consumer.poll() == []
        Producer(cluster).send("orders", b"late", partition=0)
        assert [r.value for r in consumer.poll()] == [b"late"]

    def test_lag(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        tp = TopicPartition("orders", 0)
        consumer.assign([tp])
        assert consumer.lag(tp) == 5
        consumer.poll()
        assert consumer.lag(tp) == 0
        assert consumer.total_lag() == 0

    def test_pause_resume(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders"))
        consumer.pause(TopicPartition("orders", 0))
        records = []
        while True:
            batch = consumer.poll()
            if not batch:
                break
            records.extend(batch)
        assert all(r.partition != 0 for r in records)
        consumer.resume(TopicPartition("orders", 0))
        assert any(r.partition == 0 for r in consumer.poll())

    def test_unassigned_partition_operations_raise(self, cluster):
        consumer = Consumer(cluster)
        with pytest.raises(KafkaError):
            consumer.seek(TopicPartition("orders", 0), 0)
        with pytest.raises(KafkaError):
            consumer.position(TopicPartition("orders", 0))

    def test_commit_and_resume_from_committed(self, cluster):
        self._fill(cluster)
        tp = TopicPartition("orders", 0)
        c1 = Consumer(cluster, group_id="g")
        c1.assign([tp])
        c1.poll(max_records=2)
        c1.commit()
        c2 = Consumer(cluster, group_id="g")
        c2.assign([tp])
        assert c2.position(tp) == 2

    def test_commit_without_group_raises(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders"))
        with pytest.raises(KafkaError):
            consumer.commit()

    def test_auto_reset_after_retention(self, cluster):
        """Position below log start (expired data) resets to earliest."""
        self._fill(cluster)
        tp = TopicPartition("orders", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        cluster.topic("orders").partition(0).truncate_before(3)
        records = consumer.poll()
        assert [r.offset for r in records] == [3, 4]

    def test_invalid_sizes_rejected(self, cluster):
        with pytest.raises(KafkaError):
            Consumer(cluster, max_poll_records=0)
