"""Tests for producer partitioning and the consumer poll loop."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import KafkaError
from repro.kafka import Consumer, KafkaCluster, Producer, TopicPartition, hash_partitioner


@pytest.fixture
def cluster():
    c = KafkaCluster()
    c.create_topic("orders", partitions=4)
    return c


class TestPartitioner:
    def test_deterministic(self):
        assert hash_partitioner(b"key", 8) == hash_partitioner(b"key", 8)

    def test_requires_key(self):
        with pytest.raises(KafkaError):
            hash_partitioner(None, 4)

    @given(st.binary(min_size=1, max_size=16), st.integers(min_value=1, max_value=64))
    def test_in_range_property(self, key, n):
        assert 0 <= hash_partitioner(key, n) < n

    def test_spreads_keys(self):
        targets = {hash_partitioner(str(i).encode(), 8) for i in range(200)}
        assert len(targets) == 8  # all partitions hit with 200 distinct keys


class TestProducer:
    def test_keyed_messages_colocate(self, cluster):
        producer = Producer(cluster)
        p1, _ = producer.send("orders", b"v1", key=b"product-7")
        p2, _ = producer.send("orders", b"v2", key=b"product-7")
        assert p1 == p2

    def test_unkeyed_round_robin(self, cluster):
        producer = Producer(cluster)
        parts = [producer.send("orders", b"v")[0] for _ in range(8)]
        assert parts == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_explicit_partition(self, cluster):
        producer = Producer(cluster)
        p, offset = producer.send("orders", b"v", partition=2)
        assert (p, offset) == (2, 0)

    def test_explicit_partition_out_of_range(self, cluster):
        with pytest.raises(KafkaError):
            Producer(cluster).send("orders", b"v", partition=9)

    def test_offsets_increase_per_partition(self, cluster):
        producer = Producer(cluster)
        offsets = [producer.send("orders", b"v", partition=1)[1] for _ in range(3)]
        assert offsets == [0, 1, 2]


class TestConsumer:
    def _fill(self, cluster, n_per_partition=5):
        producer = Producer(cluster)
        for p in range(4):
            for i in range(n_per_partition):
                producer.send("orders", f"p{p}-m{i}".encode(), partition=p)

    def test_poll_reads_everything_in_partition_order(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders"))
        records = []
        while True:
            batch = consumer.poll()
            if not batch:
                break
            records.extend(batch)
        assert len(records) == 20
        # per-partition order is preserved
        for p in range(4):
            offsets = [r.offset for r in records if r.partition == p]
            assert offsets == sorted(offsets) == [0, 1, 2, 3, 4]

    def test_poll_respects_max_records(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders"))
        assert len(consumer.poll(max_records=3)) == 3

    def test_round_robin_fairness(self, cluster):
        """A hot partition must not starve others across polls."""
        producer = Producer(cluster)
        for i in range(100):
            producer.send("orders", b"hot", partition=0)
        producer.send("orders", b"cold", partition=1)
        consumer = Consumer(cluster, fetch_max_records_per_partition=10)
        consumer.assign(cluster.partitions_for("orders"))
        seen_partitions = set()
        for _ in range(4):
            for r in consumer.poll(max_records=10):
                seen_partitions.add(r.partition)
        assert 1 in seen_partitions

    def test_priority_partitions_served_first(self, cluster):
        """Priority partitions (bootstrap streams) lead every poll, in
        (topic, partition) order, regardless of the round-robin cursor."""
        producer = Producer(cluster)
        for p in range(4):
            producer.send("orders", f"p{p}".encode(), partition=p)
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders"))
        consumer.set_priority({TopicPartition("orders", 3)})
        # Advance the cursor a few times so partition 3 would not lead the
        # rotation naturally.
        for _ in range(2):
            consumer.poll(max_records=0)
        records = consumer.poll()
        assert records[0].partition == 3
        assert {r.partition for r in records} == {0, 1, 2, 3}
        # Fresh records keep the same precedence on later polls.
        producer.send("orders", b"late0", partition=0)
        producer.send("orders", b"late3", partition=3)
        assert [r.partition for r in consumer.poll()] == [3, 0]

    def test_priority_requires_assignment(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign([TopicPartition("orders", 0)])
        with pytest.raises(KafkaError):
            consumer.set_priority({TopicPartition("orders", 1)})
        # Reassignment clears flow-control state, priority included.
        consumer.set_priority({TopicPartition("orders", 0)})
        consumer.assign(cluster.partitions_for("orders"))
        producer = Producer(cluster)
        for p in range(4):
            producer.send("orders", f"p{p}".encode(), partition=p)
        assert [r.partition for r in consumer.poll()] == [0, 1, 2, 3]

    def test_seek_and_position(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        tp = TopicPartition("orders", 0)
        consumer.assign([tp])
        consumer.seek(tp, 3)
        records = consumer.poll()
        assert [r.offset for r in records] == [3, 4]
        assert consumer.position(tp) == 5

    def test_seek_to_end_then_new_data(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        tp = TopicPartition("orders", 0)
        consumer.assign([tp])
        consumer.seek_to_end(tp)
        assert consumer.poll() == []
        Producer(cluster).send("orders", b"late", partition=0)
        assert [r.value for r in consumer.poll()] == [b"late"]

    def test_lag(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        tp = TopicPartition("orders", 0)
        consumer.assign([tp])
        assert consumer.lag(tp) == 5
        consumer.poll()
        assert consumer.lag(tp) == 0
        assert consumer.total_lag() == 0

    def test_pause_resume(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders"))
        consumer.pause(TopicPartition("orders", 0))
        records = []
        while True:
            batch = consumer.poll()
            if not batch:
                break
            records.extend(batch)
        assert all(r.partition != 0 for r in records)
        consumer.resume(TopicPartition("orders", 0))
        assert any(r.partition == 0 for r in consumer.poll())

    def test_unassigned_partition_operations_raise(self, cluster):
        consumer = Consumer(cluster)
        with pytest.raises(KafkaError):
            consumer.seek(TopicPartition("orders", 0), 0)
        with pytest.raises(KafkaError):
            consumer.position(TopicPartition("orders", 0))

    def test_commit_and_resume_from_committed(self, cluster):
        self._fill(cluster)
        tp = TopicPartition("orders", 0)
        c1 = Consumer(cluster, group_id="g")
        c1.assign([tp])
        c1.poll(max_records=2)
        c1.commit()
        c2 = Consumer(cluster, group_id="g")
        c2.assign([tp])
        assert c2.position(tp) == 2

    def test_commit_without_group_raises(self, cluster):
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders"))
        with pytest.raises(KafkaError):
            consumer.commit()

    def test_auto_reset_after_retention(self, cluster):
        """Position below log start (expired data) resets to earliest."""
        self._fill(cluster)
        tp = TopicPartition("orders", 0)
        consumer = Consumer(cluster)
        consumer.assign([tp])
        cluster.topic("orders").partition(0).truncate_before(3)
        records = consumer.poll()
        assert [r.offset for r in records] == [3, 4]

    def test_invalid_sizes_rejected(self, cluster):
        with pytest.raises(KafkaError):
            Consumer(cluster, max_poll_records=0)


class TestBatchClients:
    """poll_batches / send_batch — the batched dataflow's client primitives."""

    def _fill(self, cluster, n_per_partition=5):
        producer = Producer(cluster)
        for p in range(4):
            for i in range(n_per_partition):
                producer.send("orders", f"p{p}-m{i}".encode(), partition=p)

    def test_poll_batches_groups_per_partition(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders"))
        groups = consumer.poll_batches()
        assert {tp.partition for tp, _ in groups} == {0, 1, 2, 3}
        for tp, records in groups:
            # Batched records are the log's Message objects — coordinates
            # live on the group's TopicPartition, not on each record.
            assert [r.offset for r in records] == [0, 1, 2, 3, 4]

    def test_poll_batches_matches_flat_poll(self, cluster):
        """Same records, same order — grouping is the only difference."""
        self._fill(cluster)
        flat_consumer = Consumer(cluster)
        flat_consumer.assign(cluster.partitions_for("orders"))
        grouped_consumer = Consumer(cluster)
        grouped_consumer.assign(cluster.partitions_for("orders"))
        flat = flat_consumer.poll(max_records=12)
        grouped = [(tp.partition, r.offset, r.value) for tp, records in
                   grouped_consumer.poll_batches(max_records=12)
                   for r in records]
        assert [(r.partition, r.offset, r.value) for r in flat] == grouped

    def test_poll_batches_advances_position(self, cluster):
        self._fill(cluster)
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders"))
        seen = []
        while True:
            groups = consumer.poll_batches(max_records=7)
            if not groups:
                break
            seen.extend((tp.partition, r.offset)
                        for tp, records in groups for r in records)
        assert len(seen) == 20
        assert len(set(seen)) == 20  # no dups

    def test_send_batch_matches_sequential_sends(self, cluster):
        cluster.create_topic("mirror", partitions=4)
        sequential = Producer(cluster)
        batched = Producer(cluster)
        entries = [(f"v{i}".encode(),
                    str(i % 3).encode() if i % 2 else None,
                    1 if i == 4 else None, 1000 + i)
                   for i in range(8)]
        expected = [sequential.send("orders", value, key=key,
                                    partition=partition, timestamp_ms=ts)
                    for value, key, partition, ts in entries]
        got = batched.send_batch("mirror", entries)
        assert got == expected
        consumer = Consumer(cluster)
        consumer.assign(cluster.partitions_for("orders")
                        + cluster.partitions_for("mirror"))
        records = consumer.poll(max_records=100)
        by_topic = {"orders": [], "mirror": []}
        for r in records:
            by_topic[r.topic].append((r.partition, r.offset, r.key, r.value))
        assert sorted(by_topic["orders"]) == sorted(by_topic["mirror"])

    def test_send_batch_rejects_out_of_range_partition(self, cluster):
        with pytest.raises(KafkaError):
            Producer(cluster).send_batch("orders", [(b"v", None, 9, None)])

    def test_partition_cache_invalidated_on_metadata_change(self, cluster):
        """The producer's cached TopicPartition tuples must follow topic
        metadata: a topic recreated with more partitions gets routed with
        the new count, not the cached one."""
        producer = Producer(cluster)
        producer.send("orders", b"v", partition=3)
        assert len(producer._tps["orders"]) == 4
        cluster.delete_topic("orders")
        cluster.create_topic("orders", partitions=8)
        partition, offset = producer.send("orders", b"v", partition=6)
        assert (partition, offset) == (6, 0)
        assert len(producer._tps["orders"]) == 8
