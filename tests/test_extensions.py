"""Tests for the four paper future-work items implemented as extensions.

1. stream repartitioning (repro.samza.repartition)
2. planner warnings when a projection drops the rowtime field
3. relation-stream outputs (compacted keyed output topics)
4. user-defined scalar functions and aggregates
"""

import pytest

from repro.common import PlannerError, SqlValidationError
from repro.samza.repartition import repartition_stream
from repro.serde import AvroSerde
from repro.sql.types import SqlType
from repro.sql.udf import UDF_REGISTRY, Udaf, register_scalar_udf, register_udaf

from tests.samzasql_fixtures import ORDERS_SCHEMA, Deployment


@pytest.fixture(autouse=True)
def clean_udf_registry():
    UDF_REGISTRY.clear()
    yield
    UDF_REGISTRY.clear()


class TestRepartitioning:
    def test_repartition_by_new_key(self):
        """Orders keyed by productId get re-keyed by orderId-mod bucket."""
        deployment = Deployment(partitions=4).with_orders(100)
        report = repartition_stream(
            deployment.cluster, deployment.runner,
            source_topic="Orders", target_topic="OrdersByOrder",
            key_field="orderId", serde=AvroSerde(ORDERS_SCHEMA))
        assert report.records == 100
        assert report.partitions == 4
        # every record made it over, re-keyed
        serde = AvroSerde(ORDERS_SCHEMA)
        seen = set()
        for tp in deployment.cluster.partitions_for("OrdersByOrder"):
            for msg in deployment.cluster.fetch(tp, 0):
                record = serde.from_bytes(msg.value)
                assert msg.key == str(record["orderId"]).encode()
                seen.add(record["orderId"])
        assert seen == set(range(100))

    def test_same_new_key_colocates(self):
        deployment = Deployment(partitions=4).with_orders(60)
        repartition_stream(
            deployment.cluster, deployment.runner,
            "Orders", "OrdersByUnits", "units", AvroSerde(ORDERS_SCHEMA))
        serde = AvroSerde(ORDERS_SCHEMA)
        partition_of: dict[int, set[int]] = {}
        for tp in deployment.cluster.partitions_for("OrdersByUnits"):
            for msg in deployment.cluster.fetch(tp, 0):
                units = serde.from_bytes(msg.value)["units"]
                partition_of.setdefault(units, set()).add(tp.partition)
        assert all(len(parts) == 1 for parts in partition_of.values())

    def test_reordering_detected(self):
        """Merging partitions can break rowtime order — the report says so."""
        deployment = Deployment(partitions=4)
        deployment.with_orders(0)
        # interleave timestamps across source partitions such that re-keying
        # to a single bucket mixes them
        from repro.serde import AvroSerde as _A
        serde = _A(ORDERS_SCHEMA)
        for i, ts in enumerate([100, 50, 200, 10]):
            record = {"rowtime": ts, "productId": i, "orderId": i, "units": 1}
            deployment.producer.send("Orders", serde.to_bytes(record),
                                     partition=i % 4, timestamp_ms=ts)
        report = repartition_stream(
            deployment.cluster, deployment.runner,
            "Orders", "OrdersByUnits2", "units", serde, partitions=1)
        assert not report.preserved_time_order
        assert report.reordered_partitions == [0]


class TestPlannerWarnings:
    def test_warning_when_rowtime_dropped(self):
        deployment = Deployment().with_orders(5)
        handle = deployment.run("SELECT STREAM orderId, units FROM Orders")
        assert handle.warnings
        assert "rowtime" in handle.warnings[0]

    def test_no_warning_when_rowtime_kept(self):
        deployment = Deployment().with_orders(5)
        handle = deployment.run("SELECT STREAM rowtime, units FROM Orders")
        assert handle.warnings == []

    def test_no_warning_for_batch(self):
        deployment = Deployment().with_orders(5)
        planned = deployment.shell.planner.plan_statement(
            "SELECT orderId FROM Orders")
        assert planned.warnings == []


class TestRelationStreamOutput:
    QUERY = ("SELECT STREAM START(rowtime) AS ws, productId, COUNT(*) AS c "
             "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), productId")

    def _deploy(self):
        deployment = Deployment(partitions=2)
        deployment.with_orders(0)
        serde = AvroSerde(ORDERS_SCHEMA)
        hour = 3_600_000
        times = [hour + 1, hour + 2, 2 * hour + 1, 3 * hour + 1]
        for i, ts in enumerate(times):
            deployment.producer.send(
                "Orders", serde.to_bytes(
                    {"rowtime": ts, "productId": 0, "orderId": i, "units": 1}),
                key=b"0", timestamp_ms=ts)
        return deployment

    def test_output_topic_compacted_and_keyed(self):
        deployment = self._deploy()
        handle = deployment.run(self.QUERY, relation_key=["ws", "productId"])
        topic = deployment.cluster.topic(handle.output_stream)
        assert topic.config.cleanup_policy == "compact"
        for tp in deployment.cluster.partitions_for(handle.output_stream):
            for msg in deployment.cluster.fetch(tp, 0):
                assert msg.key is not None

    def test_relation_view_latest_wins(self):
        deployment = self._deploy()
        handle = deployment.run(self.QUERY, relation_key=["ws", "productId"],
                                window_ms=0,
                                config_overrides={
                                    "samzasql.window.early.emit": "true"})
        relation = handle.relation()
        hour = 3_600_000
        counts = {record["ws"] // hour: record["c"]
                  for record in relation.values()}
        # hour 1 saw two orders; early emits were superseded by the final value
        assert counts[1] == 2

    def test_replay_upserts_not_duplicates(self):
        """After compaction, each (window, key) appears once — the relation
        changelog property the paper's future-work item 3 asks for."""
        deployment = self._deploy()
        handle = deployment.run(self.QUERY, relation_key=["ws", "productId"])
        deployment.cluster.run_retention()  # compaction pass
        keys = []
        for tp in deployment.cluster.partitions_for(handle.output_stream):
            for msg in deployment.cluster.fetch(tp, 0):
                keys.append(msg.key)
        assert len(keys) == len(set(keys))

    def test_bad_relation_key_rejected(self):
        deployment = self._deploy()
        with pytest.raises(PlannerError, match="relation key"):
            deployment.shell.execute(self.QUERY, relation_key=["nope"])


class TestScalarUdf:
    def test_udf_in_projection(self):
        register_scalar_udf("DOUBLE_IT", lambda x: x * 2,
                            result_type=SqlType.INTEGER)
        deployment = Deployment().with_orders(10)
        handle = deployment.run(
            "SELECT STREAM orderId, DOUBLE_IT(units) AS d FROM Orders")
        for record in handle.results():
            assert record["d"] == ((record["orderId"] * 7) % 100) * 2

    def test_udf_in_where(self):
        register_scalar_udf("IS_EVEN", lambda x: x % 2 == 0,
                            result_type=SqlType.BOOLEAN)
        deployment = Deployment().with_orders(10)
        handle = deployment.run(
            "SELECT STREAM orderId FROM Orders WHERE IS_EVEN(orderId)")
        assert sorted(r["orderId"] for r in handle.results()) == [0, 2, 4, 6, 8]

    def test_udf_arity_checked(self):
        register_scalar_udf("ONE_ARG", lambda x: x, min_args=1, max_args=1)
        deployment = Deployment().with_orders(1)
        with pytest.raises(SqlValidationError, match="argument"):
            deployment.shell.execute(
                "SELECT STREAM ONE_ARG(units, orderId) FROM Orders")

    def test_udf_not_constant_folded(self):
        calls = []
        register_scalar_udf("TICK", lambda x: calls.append(x) or x,
                            result_type=SqlType.INTEGER)
        deployment = Deployment().with_orders(3)
        deployment.run("SELECT STREAM orderId FROM Orders WHERE TICK(1) = 1")
        assert len(calls) == 3  # once per row, not once at plan time

    def test_duplicate_registration_rejected(self):
        register_scalar_udf("F", lambda x: x)
        with pytest.raises(SqlValidationError, match="already registered"):
            register_scalar_udf("f", lambda x: x)

    def test_unknown_function_error_mentions_udfs(self):
        deployment = Deployment().with_orders(1)
        with pytest.raises(SqlValidationError, match="UDF"):
            deployment.shell.execute("SELECT STREAM NOPE(units) FROM Orders")


class GeometricMean(Udaf):
    name = "GEOMEAN"
    result_type = SqlType.DOUBLE

    def create(self):
        return [0.0, 0]  # [sum of logs, count]

    def add(self, state, value):
        import math

        if value is not None and value > 0:
            state[0] += math.log(value)
            state[1] += 1
        return state

    def result(self, state):
        import math

        return math.exp(state[0] / state[1]) if state[1] else None


class TestUdaf:
    def test_udaf_in_tumbling_window(self):
        register_udaf(GeometricMean())
        deployment = Deployment(partitions=1)
        deployment.with_orders(0)
        serde = AvroSerde(ORDERS_SCHEMA)
        hour = 3_600_000
        for i, units in enumerate([2, 8]):  # geomean = 4
            deployment.producer.send(
                "Orders", serde.to_bytes(
                    {"rowtime": hour + i, "productId": 0, "orderId": i,
                     "units": units}), key=b"0", timestamp_ms=hour + i)
        # sentinel closes the window
        deployment.producer.send(
            "Orders", serde.to_bytes(
                {"rowtime": 3 * hour, "productId": 0, "orderId": 9, "units": 1}),
            key=b"0", timestamp_ms=3 * hour)
        handle = deployment.run(
            "SELECT STREAM START(rowtime) AS ws, GEOMEAN(units) AS g "
            "FROM Orders GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)")
        [row] = [r for r in handle.results() if r["ws"] == hour]
        assert row["g"] == pytest.approx(4.0)

    def test_udaf_in_sliding_window(self):
        register_udaf(GeometricMean())
        deployment = Deployment(partitions=1).with_orders(0)
        serde = AvroSerde(ORDERS_SCHEMA)
        for i, units in enumerate([2, 8, 4]):
            deployment.producer.send(
                "Orders", serde.to_bytes(
                    {"rowtime": 1000 + i, "productId": 0, "orderId": i,
                     "units": units}), key=b"0", timestamp_ms=1000 + i)
        handle = deployment.run(
            "SELECT STREAM orderId, GEOMEAN(units) OVER (PARTITION BY productId "
            "ORDER BY rowtime RANGE INTERVAL '1' MINUTE PRECEDING) g FROM Orders")
        by_id = {r["orderId"]: r["g"] for r in handle.results()}
        assert by_id[1] == pytest.approx(4.0)       # geomean(2, 8)
        assert by_id[2] == pytest.approx(4.0)       # geomean(2, 8, 4)

    def test_udaf_in_batch(self):
        register_udaf(GeometricMean())
        deployment = Deployment().with_orders(0)
        serde = AvroSerde(ORDERS_SCHEMA)
        for i, units in enumerate([3, 9]):
            deployment.producer.send(
                "Orders", serde.to_bytes(
                    {"rowtime": 1000 + i, "productId": 0, "orderId": i,
                     "units": units}), key=b"0", timestamp_ms=1000 + i)
        rows = deployment.shell.execute(
            "SELECT productId, GEOMEAN(units) AS g FROM Orders GROUP BY productId")
        assert rows[0]["g"] == pytest.approx((3 * 9) ** 0.5)

    def test_udaf_requires_name(self):
        class Anonymous(Udaf):
            pass

        with pytest.raises(SqlValidationError, match="name"):
            register_udaf(Anonymous())
