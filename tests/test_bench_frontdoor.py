"""The front-door load generator: payload shape and CI gates."""

import json

from repro.bench import frontdoor


def test_small_run_payload_and_gates(tmp_path):
    payload = frontdoor.run(sessions=12, tenants=3, messages=200,
                            statements_per_session=2)
    # every named session stayed open concurrently
    assert payload["concurrent_sessions"] == 12
    admission = payload["admission"]
    assert admission["admitted"] >= 1
    assert admission["rejected"].get("QUOTA_EXCEEDED", 0) >= 1  # the hog tenant
    assert payload["errors"].get("SECURITY_VIOLATION", 0) >= 1  # odd tenants
    assert payload["throughput"]["processed_msgs"] > 0
    assert payload["latency_ms"]["p50"] > 0
    json.dumps(payload)  # JSON-able end to end
    assert frontdoor.check_gates(payload, min_throughput=0.0) == []


def test_gates_catch_missing_rejections():
    payload = {
        "admission": {"admitted": 0, "rejected": {}},
        "errors": {},
        "throughput": {"msgs_per_s": 0.0},
    }
    failures = frontdoor.check_gates(payload, min_throughput=100.0)
    assert len(failures) == 4


def test_main_smoke_writes_json(tmp_path):
    out = tmp_path / "BENCH_frontdoor.json"
    code = frontdoor.main(["--smoke", "--min-throughput", "0",
                           "--out", str(out)])
    assert code == 0
    payload = json.loads(out.read_text())
    assert payload["mode"] == "smoke"
    assert payload["admission"]["rejected"]["QUOTA_EXCEEDED"] >= 1
