"""Kafka model: ordered, partitioned, replayable commit logs.

SamzaSQL's data model (§3.1 of the paper) is derived from Kafka's
topic/partition model: a *stream* is a set of ordered partitions, an
*element* is identified by a per-partition sequential offset, and streams
are immutable and append-only.  This package provides exactly those
guarantees in-process:

* :class:`~repro.kafka.partition.PartitionLog` — the per-partition
  append-only commit log with offset-addressed reads, time-based
  retention and key-based compaction;
* :class:`~repro.kafka.broker.Broker` / :class:`~repro.kafka.cluster.KafkaCluster`
  — topic management and leader placement across brokers;
* :class:`~repro.kafka.producer.Producer` — keyed writes with the default
  hash partitioner (how a stream "is partitioned ... by the publisher");
* :class:`~repro.kafka.consumer.Consumer` — fetch-based reads with
  per-partition positions, plus committed offsets for consumer groups.
"""

from repro.kafka.message import Message, TopicPartition
from repro.kafka.partition import PartitionLog
from repro.kafka.topic import Topic, TopicConfig
from repro.kafka.broker import Broker
from repro.kafka.cluster import KafkaCluster
from repro.kafka.producer import Producer, hash_partitioner
from repro.kafka.consumer import Consumer, ConsumerRecord

__all__ = [
    "Message",
    "TopicPartition",
    "PartitionLog",
    "Topic",
    "TopicConfig",
    "Broker",
    "KafkaCluster",
    "Producer",
    "hash_partitioner",
    "Consumer",
    "ConsumerRecord",
]
