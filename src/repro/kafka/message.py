"""Log records and partition coordinates."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TopicPartition:
    """Coordinate of one partition of one topic (Kafka's TopicPartition)."""

    topic: str
    partition: int

    def __str__(self) -> str:
        return f"{self.topic}-{self.partition}"


class Message:
    """One record in a partition log.

    ``offset`` is the per-partition sequential id (§3.1: "an element is
    uniquely identified by a sequential ID number ... unique only within
    the context of a partition").  ``key``/``value`` are opaque bytes —
    serialization is entirely the concern of the serde layer, exactly as
    in Kafka ("messages ... can be in any format as long as it is wrapped
    in a Kafka binary format").

    A hand-written ``__slots__`` class rather than a frozen dataclass:
    one is built per appended record, and the frozen constructor's
    ``object.__setattr__`` calls are several times the cost of direct
    slot stores — measurable at fig5 message rates.  Treat instances as
    immutable all the same; the log hands out its internal objects on
    the batched fetch path.
    """

    __slots__ = ("offset", "key", "value", "timestamp_ms")

    def __init__(self, offset: int, key: bytes | None, value: bytes | None,
                 timestamp_ms: int):
        self.offset = offset
        self.key = key
        self.value = value
        self.timestamp_ms = timestamp_ms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (self.offset == other.offset and self.key == other.key
                and self.value == other.value
                and self.timestamp_ms == other.timestamp_ms)

    def __hash__(self) -> int:
        return hash((self.offset, self.key, self.value, self.timestamp_ms))

    def __repr__(self) -> str:
        return (f"Message(offset={self.offset}, key={self.key!r}, "
                f"value={self.value!r}, timestamp_ms={self.timestamp_ms})")

    @property
    def size_bytes(self) -> int:
        """Approximate on-the-wire size (key + value + fixed header)."""
        key_len = len(self.key) if self.key is not None else 0
        value_len = len(self.value) if self.value is not None else 0
        return key_len + value_len + 24
