"""Log records and partition coordinates."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class TopicPartition:
    """Coordinate of one partition of one topic (Kafka's TopicPartition)."""

    topic: str
    partition: int

    def __str__(self) -> str:
        return f"{self.topic}-{self.partition}"


@dataclass(frozen=True, slots=True)
class Message:
    """One record in a partition log.

    ``offset`` is the per-partition sequential id (§3.1: "an element is
    uniquely identified by a sequential ID number ... unique only within
    the context of a partition").  ``key``/``value`` are opaque bytes —
    serialization is entirely the concern of the serde layer, exactly as
    in Kafka ("messages ... can be in any format as long as it is wrapped
    in a Kafka binary format").
    """

    offset: int
    key: bytes | None
    value: bytes | None
    timestamp_ms: int

    @property
    def size_bytes(self) -> int:
        """Approximate on-the-wire size (key + value + fixed header)."""
        key_len = len(self.key) if self.key is not None else 0
        value_len = len(self.value) if self.value is not None else 0
        return key_len + value_len + 24
