"""Producer with the default hash partitioner.

§3.1: "How a stream is partitioned is defined by the publisher at
publishing time."  The default partitioner hashes the key (FNV-1a over the
key bytes — stable across processes, unlike Python's randomized ``hash``)
so that all records with the same key land in the same partition; unkeyed
records are sprayed round-robin.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import KafkaError
from repro.kafka.cluster import KafkaCluster
from repro.kafka.message import TopicPartition

Partitioner = Callable[[bytes | None, int], int]


def _fnv1a(data: bytes) -> int:
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def hash_partitioner(key: bytes | None, partition_count: int) -> int:
    """Stable keyed partitioner; requires a key."""
    if key is None:
        raise KafkaError("hash partitioner requires a message key")
    return _fnv1a(key) % partition_count


class Producer:
    """Client-side writer: partition selection + produce-request routing.

    ``retry_policy`` (a :class:`repro.chaos.retry.RetryPolicy`) makes sends
    survive transient broker errors by backing off and re-issuing the
    produce request; ``None`` (the default) sends exactly once and lets
    errors propagate.
    """

    def __init__(self, cluster: KafkaCluster, partitioner: Partitioner = hash_partitioner,
                 retry_policy=None):
        self._cluster = cluster
        self._partitioner = partitioner
        self._retry = retry_policy
        self._round_robin: dict[str, int] = {}
        # Per-topic partition counts, valid for one cluster metadata epoch.
        # Topic partition counts are fixed at creation, so the cache only
        # goes stale when topics are created/deleted (e.g. a repartition
        # writing to a fresh topic) — which bumps the cluster epoch.
        self._partition_counts: dict[str, int] = {}
        # TopicPartition is immutable, so the coordinate objects themselves
        # are cached alongside the counts instead of being rebuilt per send.
        self._tps: dict[str, tuple[TopicPartition, ...]] = {}
        self._metadata_epoch = -1

    def _partition_count(self, topic: str) -> int:
        epoch = self._cluster.metadata_epoch
        if epoch != self._metadata_epoch:
            self._partition_counts.clear()
            self._tps.clear()
            self._metadata_epoch = epoch
        count = self._partition_counts.get(topic)
        if count is None:
            count = self._cluster.topic(topic).partition_count
            self._partition_counts[topic] = count
            self._tps[topic] = tuple(
                TopicPartition(topic, p) for p in range(count))
        return count

    def send(self, topic: str, value: bytes | None, key: bytes | None = None,
             partition: int | None = None, timestamp_ms: int | None = None) -> tuple[int, int]:
        """Send one record; returns ``(partition, offset)``.

        Partition selection order: explicit ``partition`` argument, then the
        partitioner for keyed records, then round-robin for unkeyed ones.
        """
        count = self._partition_count(topic)
        if partition is None:
            if key is not None:
                partition = self._partitioner(key, count)
            else:
                cursor = self._round_robin.get(topic, 0)
                partition = cursor % count
                self._round_robin[topic] = cursor + 1
        elif not 0 <= partition < count:
            raise KafkaError(
                f"partition {partition} out of range for topic {topic!r} ({count} partitions)"
            )
        tp = self._tps[topic][partition]
        if self._retry is None:
            offset = self._cluster.produce(tp, key, value, timestamp_ms)
        else:
            # Re-sending after a transient failure may duplicate the record
            # (the first attempt could have landed) — at-least-once, exactly
            # like a real producer without idempotence enabled.
            offset = self._retry.call(
                lambda: self._cluster.produce(tp, key, value, timestamp_ms))
        return partition, offset

    def send_batch(
        self, topic: str,
        entries: list[tuple[bytes | None, bytes | None, int | None, int | None]],
    ) -> list[tuple[int, int]]:
        """Send many records to one topic; returns ``(partition, offset)``
        per entry, in order.

        Each entry is ``(value, key, partition, timestamp_ms)`` with the
        same selection rules as :meth:`send`.  The topic's partition count
        and the partitioner are resolved once for the whole batch; records
        are grouped per partition (input order preserved within each) and
        appended through one produce-batch request per partition.  Under
        fault injection the broker unrolls a batch back into per-record
        produce ops, so the injector still sees one op per record; a fault
        mid-batch retries that partition's whole group (bounded
        duplication, still at-least-once).
        """
        count = self._partition_count(topic)
        tps = self._tps[topic]
        partitioner = self._partitioner
        produce_batch = self._cluster.produce_batch
        retry = self._retry
        results: list[tuple[int, int] | None] = [None] * len(entries)
        rr_cursor: int | None = None
        # partition -> (entry indexes, (key, value, ts) records), in order.
        groups: dict[int, tuple[list[int], list[tuple]]] = {}
        for index, (value, key, partition, timestamp_ms) in enumerate(entries):
            if partition is None:
                if key is not None:
                    partition = partitioner(key, count)
                else:
                    if rr_cursor is None:
                        rr_cursor = self._round_robin.get(topic, 0)
                    partition = rr_cursor % count
                    rr_cursor += 1
            elif not 0 <= partition < count:
                raise KafkaError(
                    f"partition {partition} out of range for topic {topic!r} "
                    f"({count} partitions)")
            group = groups.get(partition)
            if group is None:
                group = groups[partition] = ([], [])
            group[0].append(index)
            group[1].append((key, value, timestamp_ms))
        for partition, (indexes, records) in groups.items():
            tp = tps[partition]
            if retry is None:
                base = produce_batch(tp, records)
            else:
                base = retry.call(
                    lambda tp=tp, records=records: produce_batch(tp, records))
            for position, index in enumerate(indexes):
                results[index] = (partition, base + position)
        if rr_cursor is not None:
            self._round_robin[topic] = rr_cursor
        return results
