"""Producer with the default hash partitioner.

§3.1: "How a stream is partitioned is defined by the publisher at
publishing time."  The default partitioner hashes the key (FNV-1a over the
key bytes — stable across processes, unlike Python's randomized ``hash``)
so that all records with the same key land in the same partition; unkeyed
records are sprayed round-robin.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import KafkaError
from repro.kafka.cluster import KafkaCluster
from repro.kafka.message import TopicPartition

Partitioner = Callable[[bytes | None, int], int]


def _fnv1a(data: bytes) -> int:
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def hash_partitioner(key: bytes | None, partition_count: int) -> int:
    """Stable keyed partitioner; requires a key."""
    if key is None:
        raise KafkaError("hash partitioner requires a message key")
    return _fnv1a(key) % partition_count


class Producer:
    """Client-side writer: partition selection + produce-request routing.

    ``retry_policy`` (a :class:`repro.chaos.retry.RetryPolicy`) makes sends
    survive transient broker errors by backing off and re-issuing the
    produce request; ``None`` (the default) sends exactly once and lets
    errors propagate.
    """

    def __init__(self, cluster: KafkaCluster, partitioner: Partitioner = hash_partitioner,
                 retry_policy=None):
        self._cluster = cluster
        self._partitioner = partitioner
        self._retry = retry_policy
        self._round_robin: dict[str, int] = {}

    def send(self, topic: str, value: bytes | None, key: bytes | None = None,
             partition: int | None = None, timestamp_ms: int | None = None) -> tuple[int, int]:
        """Send one record; returns ``(partition, offset)``.

        Partition selection order: explicit ``partition`` argument, then the
        partitioner for keyed records, then round-robin for unkeyed ones.
        """
        count = self._cluster.topic(topic).partition_count
        if partition is None:
            if key is not None:
                partition = self._partitioner(key, count)
            else:
                cursor = self._round_robin.get(topic, 0)
                partition = cursor % count
                self._round_robin[topic] = cursor + 1
        elif not 0 <= partition < count:
            raise KafkaError(
                f"partition {partition} out of range for topic {topic!r} ({count} partitions)"
            )
        tp = TopicPartition(topic, partition)
        if self._retry is None:
            offset = self._cluster.produce(tp, key, value, timestamp_ms)
        else:
            # Re-sending after a transient failure may duplicate the record
            # (the first attempt could have landed) — at-least-once, exactly
            # like a real producer without idempotence enabled.
            offset = self._retry.call(
                lambda: self._cluster.produce(tp, key, value, timestamp_ms))
        return partition, offset
