"""Shard-local produce targeting: who owns a (topic, partition)?

Under process-backed execution every worker's forked cluster copy is a
shared-nothing broker shard, and *GroupByPartitionId* plus the FNV-1a
:func:`~repro.kafka.producer.hash_partitioner` make partition ownership
deterministic: task *i* consumes partition *i* of every input stream, and
a keyed produce lands on a partition computed from the key alone.  The
:class:`RouteTable` is the materialization of that determinism — a map
from (topic, partition) to the worker group that hosts the partition's
shard, its peer-mesh socket address, and its incarnation number (bumped
on every relaunch so reconnecting senders can tell a replacement from a
stale address).

The table is owned and versioned by the parent control plane
(``repro.parallel.coordinator.RunnerMesh``), shipped to workers at fork
and re-pushed (``MSG_ROUTES``) whenever ownership changes; workers use it
to send keyed traffic shard-to-shard instead of through the parent.
"""

from __future__ import annotations

from typing import NamedTuple


class RouteEntry(NamedTuple):
    """Owner of one partition: worker group id, socket address, incarnation."""

    gid: str
    address: str
    incarnation: int


class RouteTable:
    """Versioned (topic, partition) -> owner map."""

    def __init__(self, epoch: int = 0,
                 entries: dict[str, dict[int, RouteEntry]] | None = None):
        self.epoch = epoch
        self.entries: dict[str, dict[int, RouteEntry]] = entries or {}

    def owner(self, topic: str, partition: int) -> RouteEntry | None:
        by_partition = self.entries.get(topic)
        if by_partition is None:
            return None
        return by_partition.get(partition)

    def set_owner(self, topic: str, partition: int, entry: RouteEntry) -> None:
        self.entries.setdefault(topic, {})[partition] = entry

    def owned_topics(self) -> set[str]:
        return set(self.entries)

    def entries_for_gid(self, gid: str) -> RouteEntry | None:
        """Any entry owned by ``gid`` (they all share address/incarnation)."""
        for by_partition in self.entries.values():
            for entry in by_partition.values():
                if entry.gid == gid:
                    return entry
        return None

    def to_payload(self) -> dict:
        return {
            "epoch": self.epoch,
            "entries": {
                topic: {str(p): list(entry)
                        for p, entry in by_partition.items()}
                for topic, by_partition in self.entries.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RouteTable":
        entries = {
            topic: {int(p): RouteEntry(*value)
                    for p, value in by_partition.items()}
            for topic, by_partition in payload.get("entries", {}).items()
        }
        return cls(epoch=payload.get("epoch", 0), entries=entries)


def shard_partitions(partition_ids: set[int], partition_count: int) -> set[int]:
    """The partitions of a ``partition_count``-wide topic hosted by a worker
    group whose tasks carry ``partition_ids`` (GroupByPartitionId: task i
    owns partition i of every co-partitioned input)."""
    return {pid for pid in partition_ids if pid < partition_count}
