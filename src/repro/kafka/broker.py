"""A single broker: hosts partition leaders, serves produce/fetch requests."""

from __future__ import annotations

from repro.common.clock import Clock, SystemClock
from repro.common.errors import UnknownTopicError
from repro.common.metrics import MetricsRegistry
from repro.kafka.message import Message, TopicPartition
from repro.kafka.partition import PartitionLog


class Broker:
    """Hosts a set of partition logs and counts request traffic.

    The request counters (``produce_requests`` / ``fetch_requests``) are the
    calibration inputs for the cluster simulator: Kafka's throughput model
    is per-request overhead plus per-byte cost, and the sublinear scaling
    in Figure 5 falls out of how many fetch round-trips are needed when 32
    partitions are spread over more consumers.

    ``fault_injector`` (see :mod:`repro.chaos.faults`) is consulted before
    each produce/fetch and may raise a transient error or add latency; the
    default ``None`` keeps the happy path unchanged.
    """

    def __init__(self, broker_id: int, clock: Clock | None = None,
                 metrics: MetricsRegistry | None = None):
        self.broker_id = broker_id
        self.clock = clock or SystemClock()
        self.metrics = metrics or MetricsRegistry()
        self.fault_injector = None
        self._partitions: dict[TopicPartition, PartitionLog] = {}
        group = f"broker-{broker_id}"
        self._produce_requests = self.metrics.counter(group, "produce_requests")
        self._fetch_requests = self.metrics.counter(group, "fetch_requests")
        self._messages_in = self.metrics.counter(group, "messages_in")
        self._messages_out = self.metrics.counter(group, "messages_out")

    # -- partition hosting ------------------------------------------------------

    def host_partition(self, log: PartitionLog) -> None:
        self._partitions[TopicPartition(log.topic, log.partition)] = log

    def hosts(self, tp: TopicPartition) -> bool:
        return tp in self._partitions

    def hosted_partitions(self) -> list[TopicPartition]:
        return sorted(self._partitions, key=lambda tp: (tp.topic, tp.partition))

    def _log(self, tp: TopicPartition) -> PartitionLog:
        try:
            return self._partitions[tp]
        except KeyError:
            raise UnknownTopicError(f"broker {self.broker_id} does not host {tp}") from None

    # -- request handling ----------------------------------------------------------

    def produce(self, tp: TopicPartition, key: bytes | None, value: bytes | None,
                timestamp_ms: int | None = None) -> int:
        """Append one record; returns its offset."""
        if self.fault_injector is not None:
            self.fault_injector.on_produce(self.broker_id, tp)
        self._produce_requests.inc()
        self._messages_in.inc()
        ts = timestamp_ms if timestamp_ms is not None else self.clock.now_ms()
        return self._log(tp).append(key, value, ts)

    def produce_batch(self, tp: TopicPartition, records: list[tuple]) -> int:
        """Append many ``(key, value, timestamp_ms)`` records to one
        partition; returns the first offset (contiguous from there).

        With fault injection active this falls back to per-record
        :meth:`produce`, so the injector sees one produce op per record —
        the same op stream sequential sends give it.  A fault raised
        mid-batch leaves the earlier records appended; a batch-level retry
        then re-appends them (bounded duplication, still at-least-once).
        """
        if self.fault_injector is not None:
            base = None
            for key, value, timestamp_ms in records:
                offset = self.produce(tp, key, value, timestamp_ms)
                if base is None:
                    base = offset
            return base if base is not None else self._log(tp).end_offset
        n = len(records)
        self._produce_requests.inc(n)
        self._messages_in.inc(n)
        return self._log(tp).append_batch(records, self.clock.now_ms)

    def fetch(self, tp: TopicPartition, from_offset: int,
              max_records: int | None = None) -> list[Message]:
        """Serve one fetch request for one partition."""
        if self.fault_injector is not None:
            self.fault_injector.on_fetch(self.broker_id, tp)
        self._fetch_requests.inc()
        records = self._log(tp).read(from_offset, max_records)
        self._messages_out.inc(len(records))
        return records

    # -- watermarks ------------------------------------------------------------------

    def earliest_offset(self, tp: TopicPartition) -> int:
        return self._log(tp).log_start_offset

    def latest_offset(self, tp: TopicPartition) -> int:
        return self._log(tp).end_offset

    @property
    def fetch_request_count(self) -> int:
        return self._fetch_requests.count

    @property
    def produce_request_count(self) -> int:
        return self._produce_requests.count
