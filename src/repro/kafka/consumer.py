"""Fetch-based consumer with explicit partition assignment.

Samza assigns partitions to tasks itself (through its job-coordinator
grouper), so this consumer exposes the ``assign``/``seek``/``poll`` API
rather than broker-side group rebalancing.  ``poll`` round-robins fetch
requests across assigned partitions, pulling at most
``max_poll_records`` per call — the batch economics that drive the
sublinear scaling shape in the paper's Figure 5.
"""

from __future__ import annotations

from repro.common.errors import KafkaError, OffsetOutOfRangeError
from repro.kafka.cluster import KafkaCluster
from repro.kafka.message import Message, TopicPartition


class ConsumerRecord:
    """A fetched record tagged with its coordinates.

    A plain ``__slots__`` class with a hand-written ``__init__``: one of
    these is built per fetched message, and a frozen-dataclass constructor
    (six ``object.__setattr__`` calls) costs ~3.5x a direct slot store —
    measurable on the poll path at fig5 message rates.
    """

    __slots__ = ("topic", "partition", "offset", "key", "value", "timestamp_ms")

    def __init__(self, topic: str, partition: int, offset: int,
                 key: bytes | None, value: bytes | None, timestamp_ms: int):
        self.topic = topic
        self.partition = partition
        self.offset = offset
        self.key = key
        self.value = value
        self.timestamp_ms = timestamp_ms

    def __repr__(self) -> str:
        return (f"ConsumerRecord(topic={self.topic!r}, "
                f"partition={self.partition}, offset={self.offset}, "
                f"key={self.key!r}, value={self.value!r}, "
                f"timestamp_ms={self.timestamp_ms})")


class Consumer:
    """Single-threaded partition consumer with manual assignment."""

    def __init__(self, cluster: KafkaCluster, group_id: str | None = None,
                 max_poll_records: int = 500, fetch_max_records_per_partition: int = 100,
                 retry_policy=None):
        if max_poll_records < 1 or fetch_max_records_per_partition < 1:
            raise KafkaError("poll/fetch sizes must be positive")
        self._cluster = cluster
        self.group_id = group_id
        self._max_poll_records = max_poll_records
        self._fetch_size = fetch_max_records_per_partition
        self._retry = retry_policy
        self._positions: dict[TopicPartition, int] = {}
        self._paused: set[TopicPartition] = set()
        self._priority: set[TopicPartition] = set()
        self._rr_cursor = 0
        self.poll_count = 0

    # -- assignment ---------------------------------------------------------------

    def assign(self, partitions: list[TopicPartition]) -> None:
        """Assign partitions; positions default to the committed offset for
        this group, falling back to the earliest available offset.

        Reassignment discards all flow-control state *before* resolving the
        new positions: stale pause flags from a previous assignment would
        otherwise silently starve re-assigned partitions, and the old
        round-robin cursor would bias the first polls.  Clearing first also
        keeps the state consistent if position resolution raises (e.g. an
        unknown topic) halfway through.
        """
        self._paused.clear()
        self._priority.clear()
        self._rr_cursor = 0
        positions: dict[TopicPartition, int] = {}
        for tp in partitions:
            committed = (
                self._cluster.committed_offset(self.group_id, tp)
                if self.group_id is not None else None
            )
            start = committed if committed is not None else self._cluster.earliest_offset(tp)
            positions[tp] = start
        self._positions = positions

    def assignment(self) -> list[TopicPartition]:
        return sorted(self._positions, key=lambda tp: (tp.topic, tp.partition))

    def _check_assigned(self, tp: TopicPartition) -> None:
        if tp not in self._positions:
            raise KafkaError(f"partition {tp} is not assigned to this consumer")

    # -- positions ---------------------------------------------------------------------

    def seek(self, tp: TopicPartition, offset: int) -> None:
        self._check_assigned(tp)
        self._positions[tp] = offset

    def seek_to_beginning(self, tp: TopicPartition) -> None:
        self.seek(tp, self._cluster.earliest_offset(tp))

    def seek_to_end(self, tp: TopicPartition) -> None:
        self.seek(tp, self._cluster.latest_offset(tp))

    def position(self, tp: TopicPartition) -> int:
        self._check_assigned(tp)
        return self._positions[tp]

    def lag(self, tp: TopicPartition) -> int:
        """Records between the current position and the high watermark."""
        self._check_assigned(tp)
        return max(self._cluster.latest_offset(tp) - self._positions[tp], 0)

    def total_lag(self) -> int:
        return sum(self.lag(tp) for tp in self._positions)

    # -- flow control --------------------------------------------------------------------

    def pause(self, tp: TopicPartition) -> None:
        self._check_assigned(tp)
        self._paused.add(tp)

    def resume(self, tp: TopicPartition) -> None:
        self._paused.discard(tp)

    def paused(self) -> set[TopicPartition]:
        return set(self._paused)

    def set_priority(self, partitions: set[TopicPartition]) -> None:
        """Mark partitions that every poll must visit *before* the fair
        round-robin pass over the rest.

        Kafka's Samza consumer gives bootstrap streams the highest priority
        permanently — not just until catch-up — so a relation's changelog
        update that is already in the log is always applied before stream
        records fetched in the same poll.  Priority partitions are exempt
        from the round-robin cursor; within the set they are visited in
        (topic, partition) order.
        """
        for tp in partitions:
            self._check_assigned(tp)
        self._priority = set(partitions)

    # -- the poll loop ----------------------------------------------------------------------

    def _fetch(self, tp: TopicPartition, offset: int, max_records: int):
        """One fetch request, retried on transient broker errors when a
        retry policy is installed (``OffsetOutOfRangeError`` is permanent
        and always propagates to the caller)."""
        if self._retry is None:
            return self._cluster.fetch(tp, offset, max_records)
        return self._retry.call(lambda: self._cluster.fetch(tp, offset, max_records))

    def poll(self, max_records: int | None = None) -> list[ConsumerRecord]:
        """Fetch up to ``max_records`` across assigned, unpaused partitions.

        Partitions are visited round-robin starting after the last partition
        served, so a hot partition cannot starve the others.
        """
        out: list[ConsumerRecord] = []
        for tp, records in self._poll_groups(max_records):
            topic, partition = tp.topic, tp.partition
            out.extend(
                ConsumerRecord(topic, partition, msg.offset,
                               msg.key, msg.value, msg.timestamp_ms)
                for msg in records
            )
        return out

    def poll_batches(
        self, max_records: int | None = None,
    ) -> list[tuple[TopicPartition, list[Message]]]:
        """Like :meth:`poll`, but grouped per partition: one
        ``(TopicPartition, records)`` pair per partition served this poll.

        Each fetch already returns one partition's contiguous records, so
        grouping costs nothing here and saves the caller a regroup; the
        pair order is the same round-robin-fair visit order ``poll`` uses.
        The records are the log's immutable :class:`Message` objects, not
        :class:`ConsumerRecord` copies — the group's ``TopicPartition``
        already carries the coordinates, so the per-record wrap would only
        duplicate them, and skipping it saves an allocation plus six
        attribute stores per message on the hot batched path.
        """
        return self._poll_groups(max_records)

    def _poll_groups(
        self, max_records: int | None,
    ) -> list[tuple[TopicPartition, list[Message]]]:
        self.poll_count += 1
        budget = max_records if max_records is not None else self._max_poll_records
        order = self.assignment()
        if not order:
            return []
        # Priority partitions (bootstrap streams) come first in every poll
        # and are exempt from the fairness cursor; the cursor rotates over
        # the remainder only, so with no priorities set the visit order is
        # unchanged.
        rest = [tp for tp in order if tp not in self._priority]
        visit = [tp for tp in order if tp in self._priority]
        n = len(rest)
        visit.extend(rest[(self._rr_cursor + i) % n] for i in range(n))
        groups: list[tuple[TopicPartition, list[Message]]] = []
        for tp in visit:
            if budget <= 0:
                break
            if tp in self._paused:
                continue
            try:
                messages = self._fetch(
                    tp, self._positions[tp], min(self._fetch_size, budget)
                )
            except OffsetOutOfRangeError:
                # Auto-reset to earliest, like auto.offset.reset=earliest.
                self._positions[tp] = self._cluster.earliest_offset(tp)
                messages = self._fetch(
                    tp, self._positions[tp], min(self._fetch_size, budget)
                )
            if not messages:
                continue
            groups.append((tp, messages))
            self._positions[tp] = messages[-1].offset + 1
            budget -= len(messages)
        if n:
            self._rr_cursor = (self._rr_cursor + 1) % n
        return groups

    # -- commit -------------------------------------------------------------------------------

    def commit(self) -> None:
        """Commit current positions for the consumer group."""
        if self.group_id is None:
            raise KafkaError("cannot commit offsets without a group id")
        for tp, offset in self._positions.items():
            self._cluster.commit_offset(self.group_id, tp, offset)
