"""Topics: named groups of partitions with a cleanup policy."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import KafkaError
from repro.kafka.partition import PartitionLog


@dataclass(frozen=True)
class TopicConfig:
    """Per-topic knobs (subset of Kafka's topic configs).

    ``cleanup_policy`` is ``"delete"`` (time retention) or ``"compact"``
    (key-based compaction — used by Samza changelog and checkpoint topics).
    """

    partitions: int = 1
    cleanup_policy: str = "delete"
    retention_ms: int | None = None
    replication_factor: int = 1

    def __post_init__(self) -> None:
        if self.partitions < 1:
            raise KafkaError(f"topic must have >= 1 partition, got {self.partitions}")
        if self.cleanup_policy not in ("delete", "compact"):
            raise KafkaError(f"unknown cleanup.policy {self.cleanup_policy!r}")
        if self.replication_factor < 1:
            raise KafkaError("replication factor must be >= 1")


class Topic:
    """A named stream: an ordered set of :class:`PartitionLog`."""

    def __init__(self, name: str, config: TopicConfig):
        if not name or "/" in name:
            raise KafkaError(f"invalid topic name {name!r}")
        self.name = name
        self.config = config
        self.partitions: list[PartitionLog] = [
            PartitionLog(name, i) for i in range(config.partitions)
        ]

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    def partition(self, index: int) -> PartitionLog:
        try:
            return self.partitions[index]
        except IndexError:
            raise KafkaError(
                f"topic {self.name!r} has {len(self.partitions)} partitions, "
                f"no partition {index}"
            ) from None

    def total_messages(self) -> int:
        return sum(len(p) for p in self.partitions)
