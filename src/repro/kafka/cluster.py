"""The Kafka cluster: topic catalogue, leader placement, group offsets.

The paper's test setup runs a 3-node Kafka cluster; partition leaders are
spread round-robin across brokers here the same way.  Consumer-group
committed offsets live in the cluster (standing in for the
``__consumer_offsets`` topic).
"""

from __future__ import annotations

from repro.common.clock import Clock, SystemClock
from repro.common.errors import TopicExistsError, UnknownTopicError
from repro.common.metrics import MetricsRegistry
from repro.kafka.broker import Broker
from repro.kafka.message import TopicPartition
from repro.kafka.topic import Topic, TopicConfig


class KafkaCluster:
    """Topic management plus broker-side request routing."""

    def __init__(self, broker_count: int = 1, clock: Clock | None = None):
        if broker_count < 1:
            raise ValueError("cluster needs at least one broker")
        self.clock = clock or SystemClock()
        self.metrics = MetricsRegistry()
        self.brokers = [Broker(i, self.clock, self.metrics) for i in range(broker_count)]
        self.fault_injector = None
        # Bumped on every topic create/delete; producers key their
        # partition-count caches off it.
        self.metadata_epoch = 0
        self._topics: dict[str, Topic] = {}
        self._leaders: dict[TopicPartition, Broker] = {}
        # {group: {TopicPartition: offset}} — committed consumer positions.
        self._group_offsets: dict[str, dict[TopicPartition, int]] = {}

    # -- fault injection ---------------------------------------------------------

    def install_fault_injector(self, injector) -> None:
        """Arm every broker with a :class:`repro.chaos.faults.FaultInjector`.

        Pass ``None`` to disarm.  The injector's clock defaults to the
        cluster clock so latency faults advance virtual time.
        """
        if injector is not None and injector.clock is None:
            injector.clock = self.clock
        self.fault_injector = injector
        for broker in self.brokers:
            broker.fault_injector = injector

    # -- admin -------------------------------------------------------------------

    def create_topic(self, name: str, partitions: int = 1,
                     cleanup_policy: str = "delete",
                     retention_ms: int | None = None,
                     if_not_exists: bool = False) -> Topic:
        if name in self._topics:
            if if_not_exists:
                return self._topics[name]
            raise TopicExistsError(f"topic {name!r} already exists")
        topic = Topic(name, TopicConfig(
            partitions=partitions,
            cleanup_policy=cleanup_policy,
            retention_ms=retention_ms,
        ))
        self._topics[name] = topic
        self.metadata_epoch += 1
        for log in topic.partitions:
            leader = self.brokers[log.partition % len(self.brokers)]
            leader.host_partition(log)
            self._leaders[TopicPartition(name, log.partition)] = leader
        return topic

    def delete_topic(self, name: str) -> None:
        topic = self.topic(name)
        for log in topic.partitions:
            tp = TopicPartition(name, log.partition)
            del self._leaders[tp]
        del self._topics[name]
        self.metadata_epoch += 1

    def topic(self, name: str) -> Topic:
        try:
            return self._topics[name]
        except KeyError:
            raise UnknownTopicError(f"unknown topic {name!r}") from None

    def has_topic(self, name: str) -> bool:
        return name in self._topics

    def topics(self) -> list[str]:
        return sorted(self._topics)

    def partitions_for(self, topic: str) -> list[TopicPartition]:
        t = self.topic(topic)
        return [TopicPartition(topic, i) for i in range(t.partition_count)]

    def leader(self, tp: TopicPartition) -> Broker:
        try:
            return self._leaders[tp]
        except KeyError:
            raise UnknownTopicError(f"no leader for {tp}") from None

    # -- data plane (routed to the leader broker) ------------------------------------

    def produce(self, tp: TopicPartition, key: bytes | None, value: bytes | None,
                timestamp_ms: int | None = None) -> int:
        return self.leader(tp).produce(tp, key, value, timestamp_ms)

    def produce_batch(self, tp: TopicPartition, records: list[tuple]) -> int:
        """Append many ``(key, value, timestamp_ms)`` records to one
        partition's leader; returns the first offset."""
        return self.leader(tp).produce_batch(tp, records)

    def fetch(self, tp: TopicPartition, from_offset: int,
              max_records: int | None = None):
        return self.leader(tp).fetch(tp, from_offset, max_records)

    def earliest_offset(self, tp: TopicPartition) -> int:
        return self.leader(tp).earliest_offset(tp)

    def latest_offset(self, tp: TopicPartition) -> int:
        return self.leader(tp).latest_offset(tp)

    # -- consumer group offsets ---------------------------------------------------------

    def commit_offset(self, group: str, tp: TopicPartition, offset: int) -> None:
        self._group_offsets.setdefault(group, {})[tp] = offset

    def committed_offset(self, group: str, tp: TopicPartition) -> int | None:
        return self._group_offsets.get(group, {}).get(tp)

    # -- maintenance ----------------------------------------------------------------------

    def run_retention(self) -> int:
        """Apply each topic's cleanup policy once; returns records removed."""
        removed = 0
        now = self.clock.now_ms()
        for topic in self._topics.values():
            for log in topic.partitions:
                if topic.config.cleanup_policy == "compact":
                    removed += log.compact()
                else:
                    removed += log.apply_retention(now, topic.config.retention_ms)
        return removed

    def total_fetch_requests(self) -> int:
        return sum(b.fetch_request_count for b in self.brokers)
