"""The per-partition append-only commit log.

Provides the three properties Samza builds on: ordering within a
partition, offset-addressed replayable reads, and durability under
retention/compaction policies.  After compaction offsets become sparse
(compaction removes superseded records but never renumbers), so reads
locate the start offset by binary search.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.common.errors import KafkaError, OffsetOutOfRangeError
from repro.kafka.message import Message


class PartitionLog:
    """Ordered, immutable, append-only sequence of :class:`Message`."""

    def __init__(self, topic: str, partition: int):
        self.topic = topic
        self.partition = partition
        self._messages: list[Message] = []
        self._offsets: list[int] = []  # parallel to _messages, ascending
        self._next_offset = 0
        self._log_start_offset = 0

    # -- write path ----------------------------------------------------------

    def append(self, key: bytes | None, value: bytes | None, timestamp_ms: int) -> int:
        """Append one record; returns the offset it was assigned."""
        if key is not None and not isinstance(key, (bytes, bytearray)):
            raise KafkaError(f"message key must be bytes, got {type(key).__name__}")
        if value is not None and not isinstance(value, (bytes, bytearray)):
            raise KafkaError(f"message value must be bytes, got {type(value).__name__}")
        offset = self._next_offset
        self._messages.append(
            Message(offset=offset, key=key, value=value, timestamp_ms=timestamp_ms)
        )
        self._offsets.append(offset)
        self._next_offset += 1
        return offset

    def append_batch(self, records: list[tuple], default_ts_fn=None) -> int:
        """Append many ``(key, value, timestamp_ms)`` records in order;
        returns the offset of the first (offsets are contiguous).

        ``default_ts_fn`` supplies the timestamp for records carrying
        ``None`` (the broker passes its clock), called only when needed.
        """
        base = self._next_offset
        offset = base
        messages = self._messages
        offsets = self._offsets
        for key, value, timestamp_ms in records:
            if key is not None and not isinstance(key, (bytes, bytearray)):
                raise KafkaError(
                    f"message key must be bytes, got {type(key).__name__}")
            if value is not None and not isinstance(value, (bytes, bytearray)):
                raise KafkaError(
                    f"message value must be bytes, got {type(value).__name__}")
            if timestamp_ms is None and default_ts_fn is not None:
                timestamp_ms = default_ts_fn()
            messages.append(Message(offset=offset, key=key, value=value,
                                    timestamp_ms=timestamp_ms))
            offsets.append(offset)
            offset += 1
        self._next_offset = offset
        return base

    # -- read path -------------------------------------------------------------

    def read(self, from_offset: int, max_records: int | None = None) -> list[Message]:
        """Read records with offset >= ``from_offset`` in offset order.

        ``from_offset`` may point into a compaction gap — the read starts at
        the next surviving record.  Requesting below the log start offset or
        above the end offset raises :class:`OffsetOutOfRangeError`, matching
        Kafka fetch semantics.
        """
        if from_offset < self._log_start_offset:
            raise OffsetOutOfRangeError(
                f"{self.topic}-{self.partition}: offset {from_offset} below "
                f"log start {self._log_start_offset}"
            )
        if from_offset > self._next_offset:
            raise OffsetOutOfRangeError(
                f"{self.topic}-{self.partition}: offset {from_offset} beyond "
                f"end offset {self._next_offset}"
            )
        start = bisect_left(self._offsets, from_offset)
        if max_records is None:
            return self._messages[start:]
        return self._messages[start : start + max_records]

    # -- watermarks ------------------------------------------------------------

    @property
    def log_start_offset(self) -> int:
        return self._log_start_offset

    @property
    def end_offset(self) -> int:
        """The offset the *next* record will get (Kafka's high watermark)."""
        return self._next_offset

    def __len__(self) -> int:
        return len(self._messages)

    @property
    def size_bytes(self) -> int:
        return sum(m.size_bytes for m in self._messages)

    def earliest_timestamp(self) -> int | None:
        return self._messages[0].timestamp_ms if self._messages else None

    # -- retention / compaction -------------------------------------------------

    def truncate_before(self, offset: int) -> int:
        """Delete records with offset < ``offset``; returns count removed.

        Models time/size retention: "a topic in Kafka often retains
        historical data for several hours to several days".
        """
        offset = min(offset, self._next_offset)
        if offset <= self._log_start_offset:
            return 0
        cut = bisect_left(self._offsets, offset)
        removed = cut
        del self._messages[:cut]
        del self._offsets[:cut]
        self._log_start_offset = offset
        return removed

    def apply_retention(self, now_ms: int, retention_ms: int | None) -> int:
        """Remove records older than ``retention_ms``; returns count removed."""
        if retention_ms is None:
            return 0
        cutoff = now_ms - retention_ms
        keep_from = self._next_offset
        for msg in self._messages:
            if msg.timestamp_ms >= cutoff:
                keep_from = msg.offset
                break
        return self.truncate_before(keep_from)

    def compact(self) -> int:
        """Key-based log compaction; returns the number of records removed.

        Keeps only the latest record per key (and the latest null-value
        *tombstone* deletes the key entirely).  Offsets of survivors are
        preserved.  This is what makes changelog topics usable for state
        restoration without unbounded growth.
        """
        latest_for_key: dict[bytes, int] = {}
        tombstoned: set[bytes] = set()
        for msg in self._messages:
            if msg.key is None:
                continue
            key = bytes(msg.key)
            latest_for_key[key] = msg.offset
            if msg.value is None:
                tombstoned.add(key)
            else:
                tombstoned.discard(key)
        survivors: list[Message] = []
        for msg in self._messages:
            if msg.key is None:
                survivors.append(msg)  # unkeyed records are never compacted
                continue
            key = bytes(msg.key)
            if latest_for_key[key] != msg.offset:
                continue
            if key in tombstoned:
                continue
            survivors.append(msg)
        removed = len(self._messages) - len(survivors)
        self._messages = survivors
        self._offsets = [m.offset for m in survivors]
        return removed
