"""Admission control: per-tenant budgets for queries and window state.

Shared containers mean one tenant's runaway fan-out starves everyone
else's queries (and the YARN cluster has finite vcores), so streaming
submissions pass through this gate:

* **concurrent-query budget** — at most ``max_concurrent_queries``
  running streaming queries per tenant; excess submissions park in a
  bounded FIFO admission queue (``max_queue_depth``) and are admitted
  as slots free up; a full queue rejects gracefully with
  ``QUOTA_EXCEEDED`` (``details["reason"] = "admission_queue_full"``);
* **state-byte budget** — the tenant's *aggregate* window-state bytes,
  read from the existing :mod:`repro.metrics` ``window-state-size``
  gauges via the ``__metrics`` stream, must stay under
  ``max_state_bytes``; a tenant over budget is rejected with
  ``QUOTA_EXCEEDED`` until state drains or queries stop.

Rejection is an error *to the one submission*, never to the tenant's
running queries — eviction only happens through the explicit
:meth:`AdmissionController.evict` path, which uses the now-idempotent
``QueryHandle.stop``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import ReproError
from repro.serving.errors import ErrorCode, PipelineError


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission budgets."""

    max_concurrent_queries: int = 4
    max_state_bytes: int = 64 * 1024 * 1024
    max_queue_depth: int = 8


@dataclass
class AdmissionStats:
    """Counters the load generator and CI gates read."""

    admitted: int = 0
    queued: int = 0
    rejected: dict[str, int] = field(default_factory=dict)

    def reject(self, code: ErrorCode) -> None:
        self.rejected[code.value] = self.rejected.get(code.value, 0) + 1

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())


class AdmissionController:
    """Slots + a bounded FIFO queue per tenant.

    ``state_bytes_fn(tenant, query_ids)`` is injected by the front door
    and returns the tenant's aggregate window-state bytes for its
    running queries (from the metrics stream); tests substitute a stub.
    """

    def __init__(self, default_quota: TenantQuota | None = None,
                 state_bytes_fn: Callable[[str, list[str]], int] | None = None):
        self._default_quota = default_quota or TenantQuota()
        self._quotas: dict[str, TenantQuota] = {}
        self._running: dict[str, list[str]] = {}  # tenant -> query_ids
        self._queues: dict[str, deque] = {}       # tenant -> submit thunks
        self._state_bytes_fn = state_bytes_fn or (lambda tenant, ids: 0)
        self.stats = AdmissionStats()

    # -- configuration --------------------------------------------------------

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self._quotas[tenant] = quota

    def quota_for(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self._default_quota)

    # -- introspection --------------------------------------------------------

    def running(self, tenant: str) -> list[str]:
        return list(self._running.get(tenant, ()))

    def queue_depth(self, tenant: str) -> int:
        return len(self._queues.get(tenant, ()))

    def state_bytes(self, tenant: str) -> int:
        return self._state_bytes_fn(tenant, self.running(tenant))

    # -- the gate -------------------------------------------------------------

    def admit(self, tenant: str, query_id: str) -> bool:
        """Try to take a slot for a streaming query.

        Returns True when the query may start now, False when it should
        be queued (the caller parks the submission thunk via
        :meth:`enqueue`).  Raises ``QUOTA_EXCEEDED`` when the tenant's
        state-byte budget is blown, and ``ADMISSION_QUEUE_FULL`` when
        both the slots and the queue are full.
        """
        quota = self.quota_for(tenant)
        running = self._running.setdefault(tenant, [])
        state_bytes = self._state_bytes_fn(tenant, list(running))
        if state_bytes >= quota.max_state_bytes:
            self.stats.reject(ErrorCode.QUOTA_EXCEEDED)
            raise PipelineError(
                ErrorCode.QUOTA_EXCEEDED,
                f"tenant {tenant!r} holds {state_bytes} window-state bytes "
                f"(budget {quota.max_state_bytes}); stop queries or wait "
                f"for windows to drain",
                details={"tenant": tenant, "reason": "state_bytes",
                         "state_bytes": state_bytes,
                         "max_state_bytes": quota.max_state_bytes})
        if len(running) < quota.max_concurrent_queries:
            running.append(query_id)
            self.stats.admitted += 1
            return True
        if self.queue_depth(tenant) >= quota.max_queue_depth:
            self.stats.reject(ErrorCode.QUOTA_EXCEEDED)
            raise PipelineError(
                ErrorCode.QUOTA_EXCEEDED,
                f"tenant {tenant!r} has {len(running)} running queries "
                f"(budget {quota.max_concurrent_queries}) and a full "
                f"admission queue (depth {quota.max_queue_depth})",
                details={"tenant": tenant, "reason": "admission_queue_full",
                         "running": len(running),
                         "queue_depth": quota.max_queue_depth})
        return False

    def enqueue(self, tenant: str, submit: Callable[[], object]) -> None:
        """Park a submission thunk; run when a slot frees (FIFO)."""
        self._queues.setdefault(tenant, deque()).append(submit)
        self.stats.queued += 1

    def release(self, tenant: str, query_id: str) -> None:
        """Free a slot (query stopped or finished); drain the queue.

        Queued submissions re-enter through :meth:`admit` inside their
        thunk, so state-byte budgets are re-checked at actual start time.
        """
        running = self._running.get(tenant, [])
        if query_id in running:
            running.remove(query_id)
        queue = self._queues.get(tenant)
        while queue and len(running) < self.quota_for(
                tenant).max_concurrent_queries:
            submit = queue.popleft()
            try:
                submit()
            except ReproError:
                # Budget re-check failed, or the world changed while the
                # submission waited (table dropped, planner rejection):
                # the queued query is abandoned, the next one gets its try.
                continue
            break

    def evict(self, tenant: str, handles: list) -> list[str]:
        """Stop every running query of one tenant (operator action).

        Relies on ``QueryHandle.stop`` being idempotent: a handle the
        user already stopped is skipped without raising, and the slot
        release below is driven by the handle's stop listeners.
        """
        evicted = []
        for handle in handles:
            if not handle.stopped:
                evicted.append(handle.query_id)
            handle.stop()  # idempotent either way
        return evicted
