"""Persistent named sessions: per-tenant state across shell reconnects.

A session is the unit of user state in the front door: a tenant plus a
session name resolve to the *same* :class:`Session` object no matter
how many times the user's shell process reconnects — default data
source, session variables and the handles of still-running queries all
survive the disconnect (the shell "runs on users' desktops"; the
queries run in the shared cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serving.errors import ErrorCode, PipelineError


@dataclass
class Session:
    """One named session: tenant identity plus mutable per-session state."""

    tenant: str
    name: str
    default_datasource: str = "default"
    variables: dict[str, str] = field(default_factory=dict)
    handles: list = field(default_factory=list)
    statements: int = 0
    closed: bool = False

    @property
    def session_id(self) -> str:
        return f"{self.tenant}/{self.name}"

    def set_variable(self, key: str, value: str) -> None:
        self.variables[key] = value

    def get_variable(self, key: str, default: str = "") -> str:
        return self.variables.get(key, default)

    def running_handles(self) -> list:
        """Handles of queries still running (stopped ones drop out)."""
        return [h for h in self.handles if not h.stopped]


class SessionManager:
    """Registry of persistent named sessions, keyed by (tenant, name)."""

    def __init__(self):
        self._sessions: dict[tuple[str, str], Session] = {}

    def connect(self, tenant: str, name: str = "main",
                default_datasource: str = "default") -> Session:
        """Get-or-create: reconnecting by the same name re-attaches to
        the live session (running queries and variables intact)."""
        key = (tenant, name)
        session = self._sessions.get(key)
        if session is None or session.closed:
            session = Session(tenant=tenant, name=name,
                              default_datasource=default_datasource)
            self._sessions[key] = session
        return session

    def get(self, tenant: str, name: str = "main") -> Session:
        session = self._sessions.get((tenant, name))
        if session is None or session.closed:
            raise PipelineError(
                ErrorCode.SESSION_NOT_FOUND,
                f"no live session {name!r} for tenant {tenant!r}",
                details={"tenant": tenant, "session": name})
        return session

    def close(self, tenant: str, name: str = "main",
              stop_queries: bool = True) -> Session:
        """End a session; optionally stop its still-running queries."""
        session = self.get(tenant, name)
        if stop_queries:
            for handle in session.running_handles():
                handle.stop()
        session.closed = True
        del self._sessions[(tenant, name)]
        return session

    def list_sessions(self, tenant: str | None = None) -> list[Session]:
        """Deterministic listing: sorted by (tenant, session name)."""
        sessions = [s for (t, _n), s in self._sessions.items()
                    if tenant is None or t == tenant]
        return sorted(sessions, key=lambda s: (s.tenant, s.name))

    def __len__(self) -> int:
        return len(self._sessions)
