"""The multi-tenant SQL front door (serving layer).

The paper positions SamzaSQL as the streaming-SQL layer through which
*many* analysts run ad-hoc continuous queries against shared fast-data
infrastructure.  The shell in :mod:`repro.samzasql` is a single-user
REPL wired straight into the planner; this package is the front door
that sits between users and that runtime:

* :class:`~repro.serving.session.SessionManager` — persistent named
  sessions holding per-tenant state (default data source, session
  variables, running query handles), survivable across shell reconnects;
* :class:`~repro.serving.catalog.VirtualTableCatalog` — named virtual
  tables mapping (topic, Avro schema, serde, data-source namespace),
  the SQL Stream Builder shape, layered over :mod:`repro.sql.catalog`;
* :class:`~repro.serving.policy.PolicyValidator` — a validation/policy
  node that runs *between parse and plan*: read-only enforcement,
  table/column/join validation against the catalog, per-tenant table
  ACLs with strict datasource namespacing, structured
  :class:`~repro.serving.errors.PipelineError` codes;
* :class:`~repro.serving.admission.AdmissionController` — per-tenant
  budgets for concurrent streaming queries and aggregate window-state
  bytes, with a bounded admission queue and graceful rejection;
* :class:`~repro.serving.frontdoor.FrontDoor` — the facade wiring all
  of the above over one shared :class:`~repro.samzasql.shell.SamzaSQLShell`.
"""

from repro.serving.admission import (AdmissionController, AdmissionStats,
                                     TenantQuota)
from repro.serving.catalog import (DataSource, VirtualTable,
                                   VirtualTableCatalog)
from repro.serving.errors import ErrorCode, PipelineError
from repro.serving.frontdoor import FrontDoor, PendingQuery
from repro.serving.policy import PolicyValidator, TenantPolicy
from repro.serving.session import Session, SessionManager

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "DataSource",
    "ErrorCode",
    "FrontDoor",
    "PendingQuery",
    "PipelineError",
    "PolicyValidator",
    "Session",
    "SessionManager",
    "TenantPolicy",
    "TenantQuota",
    "VirtualTable",
    "VirtualTableCatalog",
]
