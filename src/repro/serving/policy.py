"""The validation/policy node: runs between parse and plan.

Modeled on the ``LogicalValidatorNode`` pipeline: the AST is checked
against the catalog and the tenant's policy *before* any planning work
happens, and every rejection is a structured
:class:`~repro.serving.errors.PipelineError` with a stable code and a
source position.  Checks, in order:

1. **read-only enforcement** — ``INSERT INTO`` requires write permission;
2. **table validation** — every referenced stream/table/view must exist
   (``TABLE_NOT_FOUND``);
3. **ACL enforcement with strict datasource namespacing** — the tenant's
   allow-list holds ``datasource.table`` entries (or ``datasource.*``);
   a table resolving to a namespace the tenant cannot read is a
   ``SECURITY_VIOLATION``;
4. **join/column validation** — qualified references must name a table
   binding actually in scope (``JOIN_TABLE_NOT_IN_SCOPE``), column names
   must exist in a referenced table (``COLUMN_NOT_FOUND``) and resolve
   to exactly one (``AMBIGUOUS_COLUMN``).

The validator never mutates anything; a statement that passes proceeds
to the planner exactly as written, so front-door results stay
byte-identical to the legacy single-user shell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql import ast
from repro.serving.catalog import VirtualTableCatalog
from repro.serving.errors import ErrorCode, PipelineError, position_of


@dataclass(frozen=True)
class TenantPolicy:
    """What one tenant may do.

    ``allowed_tables`` entries are *always* datasource-qualified:
    ``"retail.Orders"`` or the wildcard ``"retail.*"``.  An unqualified
    entry would silently match across namespaces, so construction
    rejects it (strict datasource namespacing).  ``allow_all`` bypasses
    the ACL entirely — the legacy single-user mode.
    """

    tenant: str
    allowed_tables: frozenset[str] = frozenset()
    read_only: bool = True
    allow_all: bool = False
    default_datasource: str = "default"

    def __post_init__(self) -> None:
        for entry in self.allowed_tables:
            if "." not in entry:
                raise PipelineError(
                    ErrorCode.SECURITY_VIOLATION,
                    f"ACL entry {entry!r} for tenant {self.tenant!r} is not "
                    f"datasource-qualified; use '<datasource>.<table>' or "
                    f"'<datasource>.*'")
        object.__setattr__(self, "allowed_tables",
                           frozenset(e.lower() for e in self.allowed_tables))

    def may_read(self, qualified_name: str) -> bool:
        if self.allow_all:
            return True
        name = qualified_name.lower()
        if name in self.allowed_tables:
            return True
        namespace = name.split(".", 1)[0]
        return f"{namespace}.*" in self.allowed_tables


@dataclass
class _Scope:
    """Table bindings visible to a statement: alias -> field names."""

    bindings: dict[str, list[str] | None] = field(default_factory=dict)
    has_opaque: bool = False  # a binding whose columns are unknown


class PolicyValidator:
    """Validates a parsed statement for one tenant, pre-plan."""

    def __init__(self, catalog: VirtualTableCatalog):
        self._vt = catalog
        self._sql_catalog = catalog._shell.catalog

    # -- entry point ----------------------------------------------------------

    def validate(self, statement: ast.Statement, sql: str,
                 policy: TenantPolicy) -> list[str]:
        """Raise the first :class:`PipelineError`; return scanned tables.

        The returned (deduplicated, source-ordered) table list is what
        the front door pins in the virtual-table catalog for
        drop-while-running protection.
        """
        if isinstance(statement, ast.ExplainStmt):
            # EXPLAIN gets the full validation of the statement it wraps —
            # including read-only enforcement: explaining a denied INSERT
            # leaks nothing but still signals the denial.
            statement = statement.statement
        if isinstance(statement, ast.InsertInto):
            if policy.read_only:
                raise PipelineError(
                    ErrorCode.READ_ONLY_VIOLATION,
                    f"tenant {policy.tenant!r} is read-only; INSERT INTO "
                    f"{statement.target!r} denied",
                    *position_of(sql, statement.target),
                    details={"tenant": policy.tenant,
                             "target": statement.target})
            query = statement.query
        elif isinstance(statement, ast.CreateView):
            query = statement.query
        else:
            query = statement
        tables: list[str] = []
        self._validate_select(query, sql, policy, tables)
        return tables

    # -- static + policy checks ----------------------------------------------

    def _validate_select(self, query: ast.SelectStmt, sql: str,
                         policy: TenantPolicy, tables: list[str]) -> None:
        scope = _Scope()
        self._collect_tables(query.from_clause, sql, policy, tables, scope)
        # HAVING and ORDER BY also resolve against select-list output
        # aliases (the converter resolves aliases first) — admit those.
        aliases = {item.alias.lower() for item in query.items
                   if item.alias is not None}
        for expr, where, allow_aliases in self._expressions_of(query):
            self._validate_expr(expr, sql, scope, where,
                                aliases if allow_aliases else frozenset())

    def _collect_tables(self, ref: ast.TableRef, sql: str,
                        policy: TenantPolicy, tables: list[str],
                        scope: _Scope) -> None:
        if isinstance(ref, ast.NamedTable):
            self._check_table(ref, sql, policy, tables, scope)
        elif isinstance(ref, ast.DerivedTable):
            inner: list[str] = []
            self._validate_select(ref.query, sql, policy, inner)
            tables.extend(n for n in inner if n not in tables)
            # The subquery's output columns are its select aliases when
            # they are all plain; otherwise the binding is opaque.
            columns = self._derived_columns(ref.query)
            binding = (ref.alias or "").lower()
            if binding:
                scope.bindings[binding] = columns
            if columns is None:
                scope.has_opaque = True
        elif isinstance(ref, ast.JoinRef):
            self._collect_tables(ref.left, sql, policy, tables, scope)
            self._collect_tables(ref.right, sql, policy, tables, scope)
            self._validate_expr(ref.condition, sql, scope, "join condition")

    def _check_table(self, ref: ast.NamedTable, sql: str,
                     policy: TenantPolicy, tables: list[str],
                     scope: _Scope) -> None:
        name = ref.name
        namespace = self._vt.namespace_of(name)
        view = self._sql_catalog.view(name)
        if namespace is None and view is None:
            known = sorted(vt.qualified_name for vt in self._vt.list_tables())
            raise PipelineError(
                ErrorCode.TABLE_NOT_FOUND,
                f"unknown stream/table/view {name!r}; known virtual tables: "
                f"{known}",
                *position_of(sql, name),
                details={"table": name, "known": known})
        if view is not None:
            # Views are tenant-defined named queries; their *bodies* are
            # validated against the ACL when the view is created through
            # the front door.  Their output columns are opaque here.
            binding = ref.binding.lower()
            scope.bindings[binding] = None
            scope.has_opaque = True
            if name not in tables:
                tables.append(name)
            return
        qualified = f"{namespace}.{name}"
        if not policy.may_read(qualified):
            raise PipelineError(
                ErrorCode.SECURITY_VIOLATION,
                f"tenant {policy.tenant!r} may not read {qualified}",
                *position_of(sql, name),
                details={"tenant": policy.tenant, "table": qualified})
        columns = self._columns_of(name)
        scope.bindings[ref.binding.lower()] = columns
        if columns is None:
            scope.has_opaque = True
        if name not in tables:
            tables.append(name)

    def _columns_of(self, name: str) -> list[str] | None:
        stream = self._sql_catalog.stream(name)
        if stream is not None:
            return [f.lower() for f in stream.row_type.field_names]
        table = self._sql_catalog.table(name)
        if table is not None:
            return [f.lower() for f in table.row_type.field_names]
        return None

    @staticmethod
    def _derived_columns(query: ast.SelectStmt) -> list[str] | None:
        columns: list[str] = []
        for item in query.items:
            if item.alias is not None:
                columns.append(item.alias.lower())
            elif isinstance(item.expr, ast.ColumnRef):
                columns.append(item.expr.name.lower())
            else:
                return None  # Star or unnamed expression: opaque
        return columns

    # -- column / join-scope checks ------------------------------------------

    @staticmethod
    def _expressions_of(query: ast.SelectStmt):
        for item in query.items:
            if not isinstance(item.expr, ast.Star):
                yield item.expr, "select list", False
        if query.where is not None:
            yield query.where, "WHERE clause", False
        for expr in query.group_by:
            yield expr, "GROUP BY", False
        if query.having is not None:
            yield query.having, "HAVING", True
        for expr, _asc in query.order_by:
            yield expr, "ORDER BY", True

    def _validate_expr(self, expr, sql: str, scope: _Scope, where: str,
                       aliases: frozenset[str] | set[str] = frozenset()) -> None:
        for ref in self._column_refs(expr):
            if ref.qualifier is None and ref.name.lower() in aliases:
                continue
            self._check_column(ref, sql, scope, where)

    def _column_refs(self, expr):
        if isinstance(expr, ast.ColumnRef):
            yield expr
            return
        if isinstance(expr, (ast.Literal, ast.IntervalLit, ast.TimeLit,
                             ast.Star)):
            return
        if isinstance(expr, ast.SelectStmt):
            return  # nested queries validated on their own scope
        for field_name in getattr(expr, "__dataclass_fields__", ()):
            value = getattr(expr, field_name)
            children = value if isinstance(value, (tuple, list)) else (value,)
            for child in children:
                if isinstance(child, (tuple, list)):
                    for grandchild in child:
                        if hasattr(grandchild, "__dataclass_fields__"):
                            yield from self._column_refs(grandchild)
                elif hasattr(child, "__dataclass_fields__"):
                    yield from self._column_refs(child)

    def _check_column(self, ref: ast.ColumnRef, sql: str, scope: _Scope,
                      where: str) -> None:
        if ref.qualifier is not None:
            binding = scope.bindings.get(ref.qualifier.lower())
            if binding is None and ref.qualifier.lower() not in scope.bindings:
                raise PipelineError(
                    ErrorCode.JOIN_TABLE_NOT_IN_SCOPE,
                    f"{where}: qualifier {ref.qualifier!r} in {ref} does not "
                    f"name a table in the FROM clause "
                    f"(in scope: {sorted(scope.bindings)})",
                    *position_of(sql, ref.qualifier),
                    details={"qualifier": ref.qualifier,
                             "in_scope": sorted(scope.bindings)})
            if binding is not None and ref.name.lower() not in binding:
                raise PipelineError(
                    ErrorCode.COLUMN_NOT_FOUND,
                    f"{where}: {ref.qualifier}.{ref.name} — no column "
                    f"{ref.name!r} in {ref.qualifier!r}",
                    *position_of(sql, ref.name),
                    details={"column": ref.name, "table": ref.qualifier})
            return
        if scope.has_opaque:
            return  # cannot prove absence against an opaque binding
        owners = [alias for alias, columns in scope.bindings.items()
                  if columns is not None and ref.name.lower() in columns]
        if not owners:
            raise PipelineError(
                ErrorCode.COLUMN_NOT_FOUND,
                f"{where}: unknown column {ref.name!r} "
                f"(tables in scope: {sorted(scope.bindings)})",
                *position_of(sql, ref.name),
                details={"column": ref.name,
                         "in_scope": sorted(scope.bindings)})
        if len(owners) > 1:
            raise PipelineError(
                ErrorCode.AMBIGUOUS_COLUMN,
                f"{where}: column {ref.name!r} exists in multiple tables "
                f"{sorted(owners)}; qualify it",
                *position_of(sql, ref.name),
                details={"column": ref.name, "owners": sorted(owners)})
