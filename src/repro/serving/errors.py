"""Structured front-door errors: stable codes plus source positions.

Everything the serving layer rejects is reported as a
:class:`PipelineError` carrying a machine-readable :class:`ErrorCode`,
the offending source position when one is known, and a details map —
the ``LogicalValidatorNode`` error contract (``TABLE_NOT_FOUND``,
``SECURITY_VIOLATION``, ``QUOTA_EXCEEDED``, ...) rather than bare
exception strings.  Shells and load generators switch on ``code``;
humans read ``str(error)``.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.common.errors import ReproError, SqlParseError
from repro.sql.lexer import TokenType, tokenize


class ErrorCode(enum.Enum):
    """Stable identifiers for every front-door rejection reason."""

    PARSE_ERROR = "PARSE_ERROR"
    INVALID_PLAN_STRUCTURE = "INVALID_PLAN_STRUCTURE"
    TABLE_NOT_FOUND = "TABLE_NOT_FOUND"
    COLUMN_NOT_FOUND = "COLUMN_NOT_FOUND"
    AMBIGUOUS_COLUMN = "AMBIGUOUS_COLUMN"
    JOIN_TABLE_NOT_IN_SCOPE = "JOIN_TABLE_NOT_IN_SCOPE"
    DATASOURCE_NOT_FOUND = "DATASOURCE_NOT_FOUND"
    DUPLICATE_TABLE = "DUPLICATE_TABLE"
    TABLE_IN_USE = "TABLE_IN_USE"
    READ_ONLY_VIOLATION = "READ_ONLY_VIOLATION"
    SECURITY_VIOLATION = "SECURITY_VIOLATION"
    QUOTA_EXCEEDED = "QUOTA_EXCEEDED"
    SESSION_NOT_FOUND = "SESSION_NOT_FOUND"
    TENANT_NOT_FOUND = "TENANT_NOT_FOUND"
    QUERY_STOPPED = "QUERY_STOPPED"
    VALIDATOR_CRASH = "VALIDATOR_CRASH"

    def __str__(self) -> str:  # "TABLE_NOT_FOUND", not "ErrorCode.TABLE..."
        return self.value


class PipelineError(ReproError):
    """A structured rejection from the serving pipeline.

    ``line``/``column`` are 1-based source positions into the statement
    text when the error anchors to a token (parse errors always do;
    validation errors do whenever the offending identifier can be found
    in the source).  ``details`` carries code-specific context — the
    denied table, the exceeded budget, the known object list — for
    programmatic consumers.
    """

    def __init__(self, code: ErrorCode, message: str,
                 line: int | None = None, column: int | None = None,
                 details: dict[str, Any] | None = None):
        location = (f" at line {line}, column {column}"
                    if line is not None else "")
        super().__init__(f"[{code}] {message}{location}")
        self.code = code
        self.reason = message
        self.line = line
        self.column = column
        self.details = dict(details or {})

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-able shape for logs and load-generator reports."""
        return {
            "code": self.code.value,
            "message": self.reason,
            "line": self.line,
            "column": self.column,
            "details": self.details,
        }


def position_of(sql: str, identifier: str,
                occurrence: int = 1) -> tuple[int | None, int | None]:
    """Best-effort (line, column) of an identifier in the statement text.

    Validation runs over the AST, which carries no positions; this
    re-tokenizes the source and finds the *n*-th case-insensitive match,
    so structured errors can still point at the offending name.  Returns
    ``(None, None)`` when the text does not tokenize or has no match.
    """
    try:
        tokens = tokenize(sql)
    except SqlParseError:
        return None, None
    want = identifier.lower()
    seen = 0
    for token in tokens:
        if (token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD)
                and token.value.lower() == want):
            seen += 1
            if seen == occurrence:
                return token.line, token.column
    return None, None


def from_parse_error(exc: SqlParseError) -> PipelineError:
    """Wrap the parser's positioned exception in the structured shape."""
    message = str(exc)
    if exc.line is not None:
        # SqlParseError bakes the location into its message; strip it so
        # the structured wrapper doesn't render it twice.
        message = message.rsplit(" at line ", 1)[0]
    return PipelineError(ErrorCode.PARSE_ERROR, message,
                         line=exc.line, column=exc.column)
