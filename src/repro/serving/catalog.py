"""The virtual-table catalog: named tables over (topic, schema, serde, namespace).

The SQL Stream Builder shape: before anyone can query a Kafka topic, an
operator registers the cluster as a *data source* and maps topics to
*virtual tables* — a name, an Avro schema, a serde, and the data-source
namespace the per-tenant ACLs key on.  This catalog layers that model
over :class:`repro.sql.catalog.Catalog`: creating a virtual table
registers the stream/table with the planner's catalog (and creates the
backing topic), dropping it unregisters both, and running queries *pin*
the tables they scan so a drop cannot yank metadata out from under a
live job.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.serde.avro import AvroSchema
from repro.serving.errors import ErrorCode, PipelineError

#: Namespace assumed for catalog objects registered outside this layer
#: (demo data, ``__metrics``, legacy ``register_stream`` callers).
DEFAULT_DATASOURCE = "default"


@dataclass(frozen=True)
class DataSource:
    """A registered data provider (one Kafka cluster namespace)."""

    name: str
    description: str = ""


@dataclass(frozen=True)
class VirtualTable:
    """A named virtual table: topic + Avro schema + serde + namespace."""

    name: str
    datasource: str
    topic: str
    kind: str  # "stream" | "table"
    avro_schema: AvroSchema | None = None
    serde: str = "avro"  # "avro" | "json"
    rowtime_field: str = "rowtime"
    key_field: str = ""
    partitions: int = 4

    @property
    def qualified_name(self) -> str:
        """The ACL key: ``<datasource>.<table>`` (strict namespacing)."""
        return f"{self.datasource}.{self.name}"


class VirtualTableCatalog:
    """Data sources + virtual tables, layered over the planner catalog.

    Listing order is deterministic — ``(datasource, lower(name))`` — so
    shells, tests and the load generator all see the same sequence.
    """

    def __init__(self, shell):
        self._shell = shell
        self._sources: dict[str, DataSource] = {
            DEFAULT_DATASOURCE: DataSource(
                DEFAULT_DATASOURCE, "implicit namespace for legacy objects"),
        }
        self._tables: dict[str, VirtualTable] = {}  # lower(name) -> vt
        self._pins: dict[str, tuple[str, ...]] = {}  # query_id -> table names

    # -- data sources ---------------------------------------------------------

    def add_data_source(self, name: str, description: str = "") -> DataSource:
        """Register a data provider; re-adding the same name is a no-op."""
        existing = self._sources.get(name.lower())
        if existing is not None:
            return existing
        source = DataSource(name, description)
        self._sources[name.lower()] = source
        return source

    def data_source(self, name: str) -> DataSource | None:
        return self._sources.get(name.lower())

    def list_data_sources(self) -> list[DataSource]:
        return sorted(self._sources.values(), key=lambda s: s.name.lower())

    # -- virtual tables -------------------------------------------------------

    def create(self, name: str, datasource: str, schema: AvroSchema,
               kind: str = "stream", topic: str = "",
               rowtime_field: str = "rowtime", key_field: str = "",
               partitions: int = 4) -> VirtualTable:
        """Create a virtual table and register it with the planner catalog.

        The backing topic is created if missing (compacted for tables).
        Raises ``DATASOURCE_NOT_FOUND`` for an unknown namespace and
        ``DUPLICATE_TABLE`` when the name is taken — either by another
        virtual table or by a legacy catalog object.
        """
        if self.data_source(datasource) is None:
            raise PipelineError(
                ErrorCode.DATASOURCE_NOT_FOUND,
                f"unknown data source {datasource!r}; known: "
                f"{[s.name for s in self.list_data_sources()]}",
                details={"datasource": datasource})
        key = name.lower()
        if key in self._tables:
            raise PipelineError(
                ErrorCode.DUPLICATE_TABLE,
                f"virtual table {name!r} already exists in data source "
                f"{self._tables[key].datasource!r}",
                details={"table": name})
        if self._shell.catalog.resolvable(name):
            raise PipelineError(
                ErrorCode.DUPLICATE_TABLE,
                f"name {name!r} is already bound in the planner catalog",
                details={"table": name})
        if kind not in ("stream", "table"):
            raise PipelineError(
                ErrorCode.INVALID_PLAN_STRUCTURE,
                f"virtual table kind must be 'stream' or 'table', got {kind!r}")
        vt = VirtualTable(
            name=name, datasource=datasource, topic=topic or name,
            kind=kind, avro_schema=schema,
            rowtime_field=rowtime_field, key_field=key_field,
            partitions=partitions)
        if kind == "stream":
            definition = self._shell.register_stream(
                name, schema, partitions=partitions,
                rowtime_field=rowtime_field)
            vt = dataclasses.replace(vt, topic=definition.topic)
        else:
            definition = self._shell.register_table(
                name, schema, key_field=key_field, partitions=partitions)
            vt = dataclasses.replace(vt, topic=definition.changelog_topic)
        self._tables[key] = vt
        return vt

    def adopt(self, name: str, datasource: str = DEFAULT_DATASOURCE,
              kind: str = "stream") -> VirtualTable:
        """Claim an already-registered planner-catalog object into a
        namespace, so ACLs can govern legacy streams (demo data,
        ``__metrics``) without re-registering their schemas."""
        if self.data_source(datasource) is None:
            raise PipelineError(
                ErrorCode.DATASOURCE_NOT_FOUND,
                f"unknown data source {datasource!r}",
                details={"datasource": datasource})
        key = name.lower()
        if key in self._tables:
            raise PipelineError(
                ErrorCode.DUPLICATE_TABLE,
                f"virtual table {name!r} already exists",
                details={"table": name})
        stream = self._shell.catalog.stream(name)
        table = self._shell.catalog.table(name)
        if stream is None and table is None:
            raise PipelineError(
                ErrorCode.TABLE_NOT_FOUND,
                f"no planner-catalog stream/table {name!r} to adopt",
                details={"table": name})
        if stream is not None:
            vt = VirtualTable(
                name=stream.name, datasource=datasource, topic=stream.topic,
                kind="stream", avro_schema=stream.avro_schema,
                serde="avro" if stream.avro_schema is not None else "json",
                rowtime_field=stream.rowtime_field)
        else:
            vt = VirtualTable(
                name=table.name, datasource=datasource,
                topic=table.changelog_topic, kind="table",
                avro_schema=table.avro_schema,
                serde="avro" if table.avro_schema is not None else "json",
                key_field=table.key_field)
        self._tables[key] = vt
        return vt

    def drop(self, name: str, force: bool = False) -> VirtualTable:
        """Drop a virtual table (and its planner-catalog registration).

        A table pinned by a running query refuses to drop unless
        ``force=True`` — the topic itself is never deleted, so a forced
        drop strands the query's metadata but not its data.
        """
        key = name.lower()
        vt = self._tables.get(key)
        if vt is None:
            raise PipelineError(
                ErrorCode.TABLE_NOT_FOUND,
                f"no virtual table {name!r}", details={"table": name})
        users = self.queries_using(name)
        if users and not force:
            raise PipelineError(
                ErrorCode.TABLE_IN_USE,
                f"virtual table {name!r} is scanned by running "
                f"queries {users}; stop them or drop with force",
                details={"table": name, "queries": users})
        del self._tables[key]
        self._shell.catalog.unregister(vt.name)
        return vt

    def get(self, name: str) -> VirtualTable | None:
        return self._tables.get(name.lower())

    def list_tables(self, datasource: str | None = None) -> list[VirtualTable]:
        """Deterministic listing: sorted by (datasource, name)."""
        tables = [vt for vt in self._tables.values()
                  if datasource is None
                  or vt.datasource.lower() == datasource.lower()]
        return sorted(tables, key=lambda vt: (vt.datasource.lower(),
                                              vt.name.lower()))

    def namespace_of(self, name: str) -> str | None:
        """The ACL namespace a table name resolves to.

        Virtual tables carry their data source; planner-catalog objects
        registered outside this layer fall back to ``default``; unknown
        names resolve to None.
        """
        vt = self.get(name)
        if vt is not None:
            return vt.datasource
        if self._shell.catalog.resolvable(name):
            return DEFAULT_DATASOURCE
        return None

    # -- pins (drop-while-running protection) ---------------------------------

    def pin(self, query_id: str, table_names: list[str]) -> None:
        """Record that a running query scans these tables."""
        self._pins[query_id] = tuple(n.lower() for n in table_names)

    def unpin(self, query_id: str) -> None:
        self._pins.pop(query_id, None)

    def queries_using(self, name: str) -> list[str]:
        key = name.lower()
        return sorted(q for q, names in self._pins.items() if key in names)
