"""The front door: one facade between many tenants and one runtime.

Statement flow (the pipeline the package exists for)::

    text --parse--> AST --policy/validate--> admission --plan+submit--> handle
           |                 |                   |
       PARSE_ERROR    TABLE_NOT_FOUND /     QUOTA_EXCEEDED /
       (line, col)    SECURITY_VIOLATION    ADMISSION_QUEUE_FULL

Validation and admission happen *before* any planning work, so a denied
or over-quota statement costs the shared cluster nothing.  Statements
that pass are handed verbatim to the wrapped single-user
:class:`~repro.samzasql.shell.SamzaSQLShell`, which keeps front-door
results byte-identical to the legacy shell path.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import SqlParseError
from repro.metrics import state_bytes_by_job
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.serving.admission import AdmissionController, TenantQuota
from repro.serving.catalog import VirtualTableCatalog
from repro.serving.errors import (ErrorCode, PipelineError, from_parse_error)
from repro.serving.policy import PolicyValidator, TenantPolicy
from repro.serving.session import Session, SessionManager


class PendingQuery:
    """A streaming submission parked in the admission queue.

    ``handle`` flips from None to the live
    :class:`~repro.samzasql.shell.QueryHandle` when a slot frees and the
    queued submission is admitted.
    """

    def __init__(self, session: Session, sql: str):
        self.session = session
        self.sql = sql
        self.handle = None

    @property
    def admitted(self) -> bool:
        return self.handle is not None


class FrontDoor:
    """Sessions + virtual-table catalog + policy + admission over one shell."""

    def __init__(self, shell, default_quota: TenantQuota | None = None):
        self.shell = shell
        self.catalog = VirtualTableCatalog(shell)
        self.sessions = SessionManager()
        self.validator = PolicyValidator(self.catalog)
        self.admission = AdmissionController(
            default_quota, state_bytes_fn=self._tenant_state_bytes)
        self._policies: dict[str, TenantPolicy] = {}
        self._admission_tokens: dict[str, tuple[str, str]] = {}
        self._token_counter = 0
        self.error_counts: dict[str, int] = {}

    # -- tenants and sessions -------------------------------------------------

    def register_tenant(self, tenant: str,
                        policy: TenantPolicy | None = None,
                        quota: TenantQuota | None = None) -> TenantPolicy:
        """Register a tenant.  Without an explicit policy the tenant gets
        the legacy single-user powers (all tables, writes allowed) — the
        compatibility mode the CLI's implicit local tenant uses."""
        if policy is None:
            policy = TenantPolicy(tenant=tenant, allow_all=True,
                                  read_only=False)
        if policy.tenant != tenant:
            raise PipelineError(
                ErrorCode.TENANT_NOT_FOUND,
                f"policy is for tenant {policy.tenant!r}, not {tenant!r}")
        self._policies[tenant] = policy
        if quota is not None:
            self.admission.set_quota(tenant, quota)
        return policy

    def policy_for(self, tenant: str) -> TenantPolicy:
        policy = self._policies.get(tenant)
        if policy is None:
            raise PipelineError(
                ErrorCode.TENANT_NOT_FOUND,
                f"tenant {tenant!r} is not registered with the front door",
                details={"tenant": tenant,
                         "known": sorted(self._policies)})
        return policy

    def connect(self, tenant: str, session: str = "main") -> Session:
        """Open (or re-attach to) a persistent named session."""
        policy = self.policy_for(tenant)
        return self.sessions.connect(
            tenant, session, default_datasource=policy.default_datasource)

    # -- statement execution --------------------------------------------------

    def execute(self, session: Session, sql: str, **shell_kwargs: Any):
        """Validate, admit and execute one statement for a session.

        Returns whatever the legacy shell returns (row list, handle,
        None) — or a :class:`PendingQuery` when the statement was queued
        by admission control.  Raises :class:`PipelineError` with a
        structured code otherwise.
        """
        policy = self.policy_for(session.tenant)
        session.statements += 1
        try:
            statement = parse_statement(sql)
        except SqlParseError as exc:
            raise self._count(from_parse_error(exc))
        try:
            tables = self.validator.validate(statement, sql, policy)
        except PipelineError as exc:
            raise self._count(exc)
        if isinstance(statement, ast.ExplainStmt):
            # EXPLAIN is validated like the statement it wraps (above) but
            # submits nothing — it returns a report string from the shell.
            return self.shell.execute(sql, **shell_kwargs)
        query = (statement.query
                 if isinstance(statement, (ast.InsertInto, ast.CreateView))
                 else statement)
        streaming = isinstance(statement, (ast.SelectStmt, ast.InsertInto)) \
            and query.stream
        if not streaming:
            # Batch SELECTs and CREATE VIEW run synchronously and hold no
            # cluster resources; they bypass streaming admission.
            return self.shell.execute(sql, **shell_kwargs)
        return self._admit_and_submit(session, sql, tables, shell_kwargs)

    def _admit_and_submit(self, session: Session, sql: str,
                          tables: list[str], shell_kwargs: dict):
        tenant = session.tenant
        self._token_counter += 1
        token = f"admission-{self._token_counter}"
        try:
            admitted = self.admission.admit(tenant, token)
        except PipelineError as exc:
            raise self._count(exc)
        if not admitted:
            pending = PendingQuery(session, sql)

            def submit():
                pending.handle = self._admit_and_submit(
                    session, sql, tables, shell_kwargs)
                return pending.handle

            self.admission.enqueue(tenant, submit)
            return pending
        try:
            handle = self.shell.execute(sql, **shell_kwargs)
        except Exception:
            self.admission.release(tenant, token)
            raise
        self._admission_tokens[handle.query_id] = (tenant, token)
        self.catalog.pin(handle.query_id, tables)
        handle.add_stop_listener(self._on_query_stopped)
        session.handles.append(handle)
        return handle

    def _on_query_stopped(self, handle) -> None:
        self.catalog.unpin(handle.query_id)
        tenant_token = self._admission_tokens.pop(handle.query_id, None)
        if tenant_token is not None:
            tenant, token = tenant_token
            self.admission.release(tenant, token)

    def _count(self, exc: PipelineError) -> PipelineError:
        code = exc.code.value
        self.error_counts[code] = self.error_counts.get(code, 0) + 1
        return exc

    # -- budgets --------------------------------------------------------------

    def _tenant_state_bytes(self, tenant: str, tokens: list[str]) -> int:
        """Aggregate window-state bytes across the tenant's running
        queries, fed by the ``window-state-size`` gauges on ``__metrics``."""
        if not tokens:
            return 0
        query_ids = {query_id
                     for query_id, (t, token) in self._admission_tokens.items()
                     if t == tenant and token in tokens}
        if not query_ids:
            return 0
        totals = state_bytes_by_job(self.shell.latest_snapshots(force=False))
        return sum(totals.get(query_id, 0) for query_id in query_ids)

    # -- operator actions -----------------------------------------------------

    def evict_tenant(self, tenant: str) -> list[str]:
        """Stop every running query of one tenant (graceful: relies on
        idempotent ``QueryHandle.stop`` + stop listeners for cleanup)."""
        handles = [h for s in self.sessions.list_sessions(tenant)
                   for h in s.running_handles()]
        return self.admission.evict(tenant, handles)

    def running_queries(self, tenant: str | None = None) -> list:
        return [h for s in self.sessions.list_sessions(tenant)
                for h in s.running_handles()]
