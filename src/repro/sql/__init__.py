"""The SQL front-end — the Apache Calcite role in SamzaSQL.

Pipeline (paper Figure 3):

1. :mod:`repro.sql.lexer` / :mod:`repro.sql.parser` — streaming SQL text to
   AST, including the paper's extensions: the ``STREAM`` keyword,
   ``HOP``/``TUMBLE`` grouped windows, analytic functions with
   ``OVER (... RANGE INTERVAL ... PRECEDING)`` sliding windows, and
   interval-bounded join conditions.
2. :mod:`repro.sql.catalog` — stream/table schemas (fed from the schema
   registry and "Calcite model" style descriptions).
3. :mod:`repro.sql.converter` — validation + conversion to the logical
   relational algebra in :mod:`repro.sql.rel`.
4. :mod:`repro.sql.optimizer` — rule-based logical optimization
   (filter pushdown, projection pruning, constant folding, delta/stream
   conversion).
5. :mod:`repro.sql.codegen` — expression "code generation": row
   expressions are compiled to Python closures over array-tuples, the
   Janino/Linq4j role.

The physical layer (operators on Samza) lives in :mod:`repro.samzasql`.
"""

from repro.sql.types import SqlType, RelField, RowType
from repro.sql.catalog import Catalog, StreamDefinition, TableDefinition
from repro.sql.parser import parse_statement, parse_query
from repro.sql.planner import QueryPlanner

__all__ = [
    "SqlType",
    "RelField",
    "RowType",
    "Catalog",
    "StreamDefinition",
    "TableDefinition",
    "parse_statement",
    "parse_query",
    "QueryPlanner",
]
