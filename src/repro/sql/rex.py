"""Row expressions (Calcite's RexNode role).

A Rex tree is a *typed* expression over the fields of an input row,
produced by the converter and consumed by the optimizer (constant folding,
pushdown reasoning) and the code generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sql.types import SqlType


class RexNode:
    """Base class; every node carries its result type."""

    type: SqlType

    def accept_fields(self) -> set[int]:
        """The set of input field indexes this expression reads."""
        raise NotImplementedError


@dataclass(frozen=True)
class RexInputRef(RexNode):
    """Reference to input field ``index``."""

    index: int
    type: SqlType = SqlType.ANY

    def accept_fields(self) -> set[int]:
        return {self.index}

    def __str__(self) -> str:
        return f"$[{self.index}]"


@dataclass(frozen=True)
class RexLiteral(RexNode):
    value: object
    type: SqlType = SqlType.ANY

    def accept_fields(self) -> set[int]:
        return set()

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class RexCall(RexNode):
    """Operator or function application.

    ``op`` is an upper-case operator name: comparison (``=``, ``<`` ...),
    arithmetic (``+`` ...), logic (``AND``/``OR``/``NOT``), or a scalar
    function name from :mod:`repro.sql.functions` (``GREATEST``,
    ``FLOOR_TIME``, ``CASE``, ``IS_NULL`` ...).
    """

    op: str
    operands: tuple[RexNode, ...]
    type: SqlType = SqlType.ANY

    def accept_fields(self) -> set[int]:
        out: set[int] = set()
        for operand in self.operands:
            out |= operand.accept_fields()
        return out

    def __str__(self) -> str:
        args = ", ".join(str(o) for o in self.operands)
        return f"{self.op}({args})"


@dataclass(frozen=True)
class AggCall:
    """One aggregate in an Aggregate/WindowAgg node.

    ``arg`` is None for COUNT(*).  ``name`` is the output field name.
    """

    func: str  # COUNT / SUM / MIN / MAX / AVG
    arg: Optional[RexNode]
    type: SqlType
    name: str
    distinct: bool = False

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func}({prefix}{inner})"


def shift_input_refs(node: RexNode, offset: int) -> RexNode:
    """Return a copy with all input refs shifted by ``offset`` (join rewrites)."""
    if isinstance(node, RexInputRef):
        return RexInputRef(node.index + offset, node.type)
    if isinstance(node, RexCall):
        return RexCall(node.op,
                       tuple(shift_input_refs(o, offset) for o in node.operands),
                       node.type)
    return node


def remap_input_refs(node: RexNode, mapping: dict[int, int]) -> RexNode:
    """Return a copy with input refs renumbered through ``mapping``."""
    if isinstance(node, RexInputRef):
        return RexInputRef(mapping[node.index], node.type)
    if isinstance(node, RexCall):
        return RexCall(node.op,
                       tuple(remap_input_refs(o, mapping) for o in node.operands),
                       node.type)
    return node


def split_conjunction(node: RexNode) -> list[RexNode]:
    """Flatten nested ANDs into a conjunct list."""
    if isinstance(node, RexCall) and node.op == "AND":
        out: list[RexNode] = []
        for operand in node.operands:
            out.extend(split_conjunction(operand))
        return out
    return [node]


def make_conjunction(conjuncts: list[RexNode]) -> RexNode | None:
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return RexCall("AND", tuple(conjuncts), SqlType.BOOLEAN)
