"""Expression code generation — the Janino/Linq4j role (§4.2).

"We use code generation to generate filter conditions, projection
expressions, window operators and join operators."  Here Rex trees are
rendered to Python expression *source* and compiled once per operator, so
the per-row hot path is straight-line compiled bytecode with no tree
walking — the same motivation as Calcite's generated Java.

The rendered source is plain text, so it can travel inside the physical
plan JSON through ZooKeeper and be re-compiled inside the SamzaSQL task at
init time (the paper's two-step planning).

Rows are Python lists (the paper's array-tuple representation, Figure 4);
``r[i]`` reads field *i*.  Join predicates see two rows ``l`` and ``r``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable

from repro.common.errors import PlannerError
from repro.sql.rex import RexCall, RexInputRef, RexLiteral, RexNode
from repro.sql.types import SqlType

# -- runtime helpers available inside generated code -------------------------


def _int_div(a, b):
    """SQL integer division truncates toward zero."""
    q = a / b
    return int(q) if q >= 0 else -int(-q)


def _like(value, pattern):
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.fullmatch(regex, value) is not None


def _substring(value, start, length=None):
    """SQL SUBSTRING is 1-based; length optional."""
    begin = start - 1
    if length is None:
        return value[begin:]
    return value[begin:begin + length]


def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _cast_int(value):
    return None if value is None else int(value)


def _udf_call(name, *args):
    """Invoke a registered scalar UDF (resolved live, so deserialized plans
    work as long as the UDF is registered in this process)."""
    from repro.sql.udf import UDF_REGISTRY

    udf = UDF_REGISTRY.scalar(name)
    if udf is None:
        raise PlannerError(f"scalar UDF {name!r} is not registered in this process")
    return udf.fn(*args)


CODEGEN_NAMESPACE: dict[str, Any] = {
    "_int_div": _int_div,
    "_like": _like,
    "_substring": _substring,
    "_coalesce": _coalesce,
    "_cast_int": _cast_int,
    "_udf_call": _udf_call,
    "_floor": math.floor,
    "_ceil": math.ceil,
    "_sqrt": math.sqrt,
    "__builtins__": {"abs": abs, "max": max, "min": min, "len": len,
                     "str": str, "float": float, "bool": bool, "int": int,
                     "zip": zip},
}

_COMPARISON = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_ARITH = {"+": "+", "-": "-", "*": "*", "%": "%"}


def render(node: RexNode, var: str = "r", left_width: int | None = None,
           left_var: str = "l", right_var: str = "r",
           ref_names: list[str] | None = None,
           ref_sources: list[str] | None = None) -> str:
    """Render a Rex tree to Python expression source.

    With ``left_width`` set, input refs below it read ``left_var`` and the
    rest read ``right_var`` shifted — the join-predicate calling convention.
    With ``ref_names``, refs index the input by *field name* instead of
    position (``r['units']``) — the fused-scan convention, where ``r`` is
    the record dict and no array-tuple is materialized.
    With ``ref_sources``, ref *i* renders as the pre-built source
    ``ref_sources[i]`` verbatim — the multi-way join convention, where the
    condition spans K per-input rows ``p0..p{K-1}``.
    """

    def ref(index: int) -> str:
        if ref_sources is not None:
            return ref_sources[index]
        if ref_names is not None:
            return f"{var}[{ref_names[index]!r}]"
        if left_width is None:
            return f"{var}[{index}]"
        if index < left_width:
            return f"{left_var}[{index}]"
        return f"{right_var}[{index - left_width}]"

    def go(n: RexNode) -> str:
        if isinstance(n, RexInputRef):
            return ref(n.index)
        if isinstance(n, RexLiteral):
            return repr(n.value)
        if isinstance(n, RexCall):
            return call(n)
        raise PlannerError(f"cannot generate code for {n!r}")

    def call(n: RexCall) -> str:
        op = n.op
        args = [go(o) for o in n.operands]
        if op in _COMPARISON:
            return f"({args[0]} {_COMPARISON[op]} {args[1]})"
        if op in _ARITH:
            return f"({args[0]} {_ARITH[op]} {args[1]})"
        if op == "/":
            if n.type in (SqlType.INTEGER, SqlType.BIGINT):
                return f"_int_div({args[0]}, {args[1]})"
            return f"({args[0]} / {args[1]})"
        if op == "AND":
            return "(" + " and ".join(args) + ")"
        if op == "OR":
            return "(" + " or ".join(args) + ")"
        if op == "NOT":
            return f"(not {args[0]})"
        if op == "NEG":
            return f"(-{args[0]})"
        if op == "||":
            return f"({args[0]} + {args[1]})"
        if op == "LIKE":
            return f"_like({args[0]}, {args[1]})"
        if op == "IS_NULL":
            return f"({args[0]} is None)"
        if op == "IS_NOT_NULL":
            return f"({args[0]} is not None)"
        if op == "CASE":
            # operands: c1, r1, c2, r2, ..., else
            source = args[-1]
            pairs = list(zip(args[:-1:2], args[1:-1:2]))
            for condition, result in reversed(pairs):
                source = f"({result} if {condition} else {source})"
            return source
        if op == "CAST":
            target = n.type
            if target in (SqlType.INTEGER, SqlType.BIGINT, SqlType.TIMESTAMP):
                return f"_cast_int({args[0]})"
            if target is SqlType.DOUBLE:
                return f"float({args[0]})"
            if target is SqlType.VARCHAR:
                return f"str({args[0]})"
            if target is SqlType.BOOLEAN:
                return f"bool({args[0]})"
            raise PlannerError(f"unsupported CAST target {target}")
        if op == "FLOOR_TIME":
            return f"({args[0]} // {args[1]} * {args[1]})"
        if op == "FLOOR":
            return f"_floor({args[0]})"
        if op == "CEIL":
            return f"_ceil({args[0]})"
        if op == "GREATEST":
            return f"max({', '.join(args)})"
        if op == "LEAST":
            return f"min({', '.join(args)})"
        if op == "ABS":
            return f"abs({args[0]})"
        if op == "MOD":
            return f"({args[0]} % {args[1]})"
        if op == "POWER":
            return f"({args[0]} ** {args[1]})"
        if op == "SQRT":
            return f"_sqrt({args[0]})"
        if op == "UPPER":
            return f"({args[0]}).upper()"
        if op == "LOWER":
            return f"({args[0]}).lower()"
        if op == "TRIM":
            return f"({args[0]}).strip()"
        if op == "CHAR_LENGTH":
            return f"len({args[0]})"
        if op == "SUBSTRING":
            return f"_substring({', '.join(args)})"
        if op == "COALESCE":
            return f"_coalesce({', '.join(args)})"
        if op == "NULLIF":
            return f"(None if ({args[0]}) == ({args[1]}) else ({args[0]}))"
        if op.startswith("UDF:"):
            udf_args = ", ".join(args)
            separator = ", " if udf_args else ""
            return f"_udf_call({op[4:]!r}{separator}{udf_args})"
        raise PlannerError(f"no code generation rule for operator {op!r}")

    return go(node)


def compile_lambda(source: str, params: str = "r") -> Callable:
    """Compile rendered source into a callable; shared by planner and task."""
    code = compile(f"lambda {params}: {source}", "<samzasql-codegen>", "eval")
    return eval(code, dict(CODEGEN_NAMESPACE))  # noqa: S307 - trusted, self-generated


def compile_predicate(node: RexNode) -> Callable[[list], bool]:
    return compile_lambda(render(node))


def compile_scalar(node: RexNode) -> Callable[[list], Any]:
    return compile_lambda(render(node))


def compile_projection(exprs: list[RexNode]) -> Callable[[list], list]:
    inner = ", ".join(render(e) for e in exprs)
    return compile_lambda(f"[{inner}]")


def render_projection(exprs: list[RexNode]) -> str:
    return "[" + ", ".join(render(e) for e in exprs) + "]"


def compile_join_predicate(node: RexNode, left_width: int) -> Callable[[list, list], bool]:
    return compile_lambda(render(node, left_width=left_width), params="l, r")


# -- batch compilers ----------------------------------------------------------
#
# The batched execution path evaluates one compiled expression over a whole
# record batch: a single list comprehension with the rendered expression
# inlined in it, so the per-row cost is the expression itself — no lambda
# call, no operator dispatch.  Sources follow the same conventions as the
# single-row compilers (``r`` is one row/record, rendered by :func:`render`).


def compile_batch_predicate(source: str) -> Callable[[list, list], list]:
    """Filter a batch in one call: ``f(rows, timestamps)`` returns the
    surviving ``(row, timestamp)`` pairs, evaluating ``source`` once per
    row inside a single comprehension."""
    return compile_lambda(
        f"[(r, t) for r, t in zip(rows, timestamps) if ({source})]",
        params="rows, timestamps")


def compile_batch_projection(source: str) -> Callable[[list], list]:
    """Project a batch in one call: ``f(rows)`` maps the rendered
    row-expression ``source`` (e.g. ``[r[0], r[2]]``) over every row."""
    return compile_lambda(f"[{source} for r in rows]", params="rows")


def compile_batch_scan(field_names: list[str],
                       rowtime_index: int | None) -> Callable[[list, list], list]:
    """Batch AvroToArray: ``f(messages, timestamps)`` converts record dicts
    to array-tuples, pairing each with its rowtime (or the wire timestamp
    when the stream has no rowtime column)."""
    row_expr = "[" + ", ".join(f"r[{name!r}]" for name in field_names) + "]"
    ts_expr = ("t" if rowtime_index is None
               else f"r[{field_names[rowtime_index]!r}]")
    return compile_lambda(
        f"[({row_expr}, {ts_expr}) for r, t in zip(messages, timestamps)]",
        params="messages, timestamps")


def compile_batch_fused_scan(field_names: list[str],
                             rowtime_field: str | None,
                             predicate_source: str | None,
                             projection_source: str | None,
                             ) -> Callable[[list, list], list]:
    """Batch form of the fused scan: filter + project + rowtime extraction
    directly over the record dicts, all in one comprehension.  Returns
    surviving ``(row, timestamp)`` pairs."""
    row_expr = projection_source
    if row_expr is None:
        row_expr = "[" + ", ".join(f"r[{name!r}]" for name in field_names) + "]"
    ts_expr = "t" if rowtime_field is None else f"r[{rowtime_field!r}]"
    source = f"[({row_expr}, {ts_expr}) for r, t in zip(messages, timestamps)"
    if predicate_source is not None:
        source += f" if ({predicate_source})"
    source += "]"
    return compile_lambda(source, params="messages, timestamps")


def eval_constant(node: RexNode) -> Any:
    """Evaluate a reference-free expression (constant folding)."""
    if node.accept_fields():
        raise PlannerError("expression is not constant")
    return compile_lambda(render(node), params="")()
