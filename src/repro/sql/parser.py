"""Recursive-descent parser for streaming SQL.

Covers standard SQL SELECT (filter/project/aggregate/having/join,
sub-queries in FROM, views) plus the paper's streaming extensions:

* ``SELECT STREAM ...`` (§3.3)
* ``GROUP BY TUMBLE(rowtime, INTERVAL ...)`` / ``HOP(rowtime, emit,
  retain[, align])`` (§3.6) — parsed as ordinary function calls and
  recognized during planning
* analytic functions with ``OVER (PARTITION BY ... ORDER BY ... RANGE
  INTERVAL ... PRECEDING)`` (§3.7)
* interval-bounded join conditions (§3.8) — ordinary BETWEEN expressions
  over rowtime, recognized during planning
* ``CREATE VIEW`` and ``INSERT INTO <stream> SELECT ...``
"""

from __future__ import annotations

from repro.common.errors import SqlParseError
from repro.sql import ast
from repro.sql.interval import parse_interval, parse_time_literal
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISONS = ("=", "<>", "!=", "<", "<=", ">", ">=")
_TIME_UNITS = ("MILLISECOND", "SECOND", "MINUTE", "HOUR", "DAY")


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def error(self, message: str) -> SqlParseError:
        token = self.current
        found = token.value or "<end of input>"
        return SqlParseError(f"{message} (found {found!r})", token.line, token.column)

    def accept_keyword(self, *keywords: str) -> Token | None:
        if self.current.matches_keyword(*keywords):
            return self.advance()
        return None

    def expect_keyword(self, *keywords: str) -> Token:
        token = self.accept_keyword(*keywords)
        if token is None:
            raise self.error(f"expected {' or '.join(keywords)}")
        return token

    def accept_op(self, *ops: str) -> Token | None:
        if self.current.matches_op(*ops):
            return self.advance()
        return None

    def expect_op(self, *ops: str) -> Token:
        token = self.accept_op(*ops)
        if token is None:
            raise self.error(f"expected {' or '.join(repr(o) for o in ops)}")
        return token

    def expect_identifier(self, what: str = "identifier") -> str:
        if self.current.type is TokenType.IDENTIFIER:
            return self.advance().value
        raise self.error(f"expected {what}")

    # -- statements -------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self.current.matches_keyword("EXPLAIN"):
            stmt: ast.Statement = self.parse_explain()
        elif self.current.matches_keyword("CREATE"):
            stmt = self.parse_create_view()
        elif self.current.matches_keyword("INSERT"):
            stmt = self.parse_insert()
        else:
            stmt = self.parse_select()
        self.accept_op(";")
        if self.current.type is not TokenType.EOF:
            raise self.error("unexpected trailing input")
        return stmt

    def parse_explain(self) -> ast.ExplainStmt:
        self.expect_keyword("EXPLAIN")
        if self.current.matches_keyword("CREATE"):
            raise self.error("EXPLAIN supports SELECT and INSERT statements")
        if self.current.matches_keyword("INSERT"):
            inner: ast.SelectStmt | ast.InsertInto = self.parse_insert()
        else:
            inner = self.parse_select()
        return ast.ExplainStmt(statement=inner)

    def parse_create_view(self) -> ast.CreateView:
        self.expect_keyword("CREATE")
        self.expect_keyword("VIEW")
        name = self.expect_identifier("view name")
        columns: tuple[str, ...] | None = None
        if self.accept_op("("):
            cols = [self.expect_identifier("column name")]
            while self.accept_op(","):
                cols.append(self.expect_identifier("column name"))
            self.expect_op(")")
            columns = tuple(cols)
        self.expect_keyword("AS")
        return ast.CreateView(name=name, columns=columns, query=self.parse_select())

    def parse_insert(self) -> ast.InsertInto:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        target = self.expect_identifier("target stream")
        return ast.InsertInto(target=target, query=self.parse_select())

    # -- SELECT ---------------------------------------------------------------------

    def parse_select(self) -> ast.SelectStmt:
        self.expect_keyword("SELECT")
        stream = self.accept_keyword("STREAM") is not None
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        else:
            self.accept_keyword("ALL")
        items = [self.parse_select_item()]
        while self.accept_op(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        from_clause = self.parse_table_ref()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_expr()
        group_by: tuple[ast.Expr, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            keys = [self.parse_expr()]
            while self.accept_op(","):
                keys.append(self.parse_expr())
            group_by = tuple(keys)
        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_expr()
        order_by: list[tuple[ast.Expr, bool]] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.parse_expr()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                order_by.append((expr, ascending))
                if not self.accept_op(","):
                    break
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.current
            if token.type is not TokenType.NUMBER or "." in token.value:
                raise self.error("LIMIT expects an integer")
            self.advance()
            limit = int(token.value)
        return ast.SelectStmt(
            stream=stream, items=tuple(items), from_clause=from_clause,
            where=where, group_by=group_by, having=having, distinct=distinct,
            order_by=tuple(order_by), limit=limit,
        )

    def parse_select_item(self) -> ast.SelectItem:
        if self.accept_op("*"):
            return ast.SelectItem(expr=ast.Star())
        # qualified star: ident.*
        if (self.current.type is TokenType.IDENTIFIER
                and self.tokens[self.pos + 1].matches_op(".")
                and self.tokens[self.pos + 2].matches_op("*")):
            qualifier = self.advance().value
            self.advance()  # .
            self.advance()  # *
            return ast.SelectItem(expr=ast.Star(qualifier=qualifier))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return ast.SelectItem(expr=expr, alias=alias)

    # -- FROM -----------------------------------------------------------------------

    def parse_table_ref(self) -> ast.TableRef:
        left = self.parse_table_primary()
        while True:
            kind = None
            if self.accept_keyword("JOIN"):
                kind = "INNER"
            elif self.current.matches_keyword("INNER", "LEFT", "RIGHT", "FULL"):
                kind = self.advance().value
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
            else:
                break
            right = self.parse_table_primary()
            self.expect_keyword("ON")
            condition = self.parse_expr()
            left = ast.JoinRef(left=left, right=right, kind=kind, condition=condition)
        return left

    def parse_table_primary(self) -> ast.TableRef:
        if self.accept_op("("):
            inner = self.parse_select()
            self.expect_op(")")
            alias = None
            if self.accept_keyword("AS"):
                alias = self.expect_identifier("alias")
            elif self.current.type is TokenType.IDENTIFIER:
                alias = self.advance().value
            return ast.DerivedTable(query=inner, alias=alias)
        name = self.expect_identifier("table or stream name")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        elif self.current.type is TokenType.IDENTIFIER:
            alias = self.advance().value
        return ast.NamedTable(name=name, alias=alias)

    # -- expressions --------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> ast.Expr:
        left = self.parse_additive()
        negated = self.accept_keyword("NOT") is not None
        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return ast.Between(expr=left, low=low, high=high, negated=negated)
        if self.accept_keyword("IN"):
            self.expect_op("(")
            items = [self.parse_expr()]
            while self.accept_op(","):
                items.append(self.parse_expr())
            self.expect_op(")")
            return ast.InList(expr=left, items=tuple(items), negated=negated)
        if self.accept_keyword("LIKE"):
            node: ast.Expr = ast.BinaryOp("LIKE", left, self.parse_additive())
            return ast.UnaryOp("NOT", node) if negated else node
        if negated:
            raise self.error("expected BETWEEN, IN or LIKE after NOT")
        if self.accept_keyword("IS"):
            is_negated = self.accept_keyword("NOT") is not None
            self.expect_keyword("NULL")
            return ast.IsNull(expr=left, negated=is_negated)
        op_token = self.accept_op(*_COMPARISONS)
        if op_token is not None:
            op = "<>" if op_token.value == "!=" else op_token.value
            return ast.BinaryOp(op, left, self.parse_additive())
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            token = self.accept_op("+", "-", "||")
            if token is None:
                return left
            left = ast.BinaryOp(token.value, left, self.parse_multiplicative())

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while True:
            token = self.accept_op("*", "/", "%")
            if token is None:
                return left
            left = ast.BinaryOp(token.value, left, self.parse_unary())

    def parse_unary(self) -> ast.Expr:
        if self.accept_op("-"):
            return ast.UnaryOp("-", self.parse_unary())
        if self.accept_op("+"):
            return self.parse_unary()
        return self.parse_primary()

    # -- primaries ------------------------------------------------------------------------

    def parse_primary(self) -> ast.Expr:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return ast.Literal(value)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.matches_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.matches_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.matches_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.matches_keyword("INTERVAL"):
            return self.parse_interval_literal()
        if token.matches_keyword("TIME"):
            self.advance()
            if self.current.type is not TokenType.STRING:
                raise self.error("expected string after TIME")
            return ast.TimeLit(parse_time_literal(self.advance().value))
        if token.matches_keyword("CASE"):
            return self.parse_case()
        if token.matches_keyword("CAST"):
            return self.parse_cast()
        if self.accept_op("("):
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        # END(rowtime): END is a keyword (CASE) but also the paper's window-end
        # aggregate (§3.6); allow keyword-named function calls when followed
        # by '('.
        if (token.type is TokenType.KEYWORD and token.value == "END"
                and self.tokens[self.pos + 1].matches_op("(")):
            self.advance()
            return self.parse_function_call("END")
        if token.type is TokenType.IDENTIFIER:
            return self.parse_column_or_function()
        raise self.error("expected expression")

    def parse_interval_literal(self) -> ast.IntervalLit:
        self.expect_keyword("INTERVAL")
        if self.current.type is not TokenType.STRING:
            raise self.error("expected string after INTERVAL")
        value = self.advance().value
        start_unit = self.expect_keyword(*_TIME_UNITS).value
        end_unit = None
        if self.accept_keyword("TO"):
            end_unit = self.expect_keyword(*_TIME_UNITS).value
        return ast.IntervalLit(parse_interval(value, start_unit, end_unit))

    def parse_case(self) -> ast.Case:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            whens.append((condition, self.parse_expr()))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        else_result = None
        if self.accept_keyword("ELSE"):
            else_result = self.parse_expr()
        self.expect_keyword("END")
        return ast.Case(whens=tuple(whens), else_result=else_result)

    def parse_cast(self) -> ast.Cast:
        self.expect_keyword("CAST")
        self.expect_op("(")
        expr = self.parse_expr()
        self.expect_keyword("AS")
        type_name = self.expect_identifier("type name")
        self.expect_op(")")
        return ast.Cast(expr=expr, type_name=type_name.upper())

    def parse_column_or_function(self) -> ast.Expr:
        parts = [self.expect_identifier()]
        while (self.current.matches_op(".")
               and self.tokens[self.pos + 1].type is TokenType.IDENTIFIER):
            self.advance()
            parts.append(self.expect_identifier())
        if len(parts) == 1 and self.current.matches_op("("):
            return self.parse_function_call(parts[0].upper())
        return ast.ColumnRef(parts=tuple(parts))

    def parse_function_call(self, name: str) -> ast.Expr:
        self.expect_op("(")
        distinct = False
        is_star = False
        args: list[ast.Expr] = []
        if self.accept_op("*"):
            is_star = True
        elif not self.current.matches_op(")"):
            if self.accept_keyword("DISTINCT"):
                distinct = True
            args.append(self.parse_expr())
            # FLOOR(x TO HOUR)
            if name == "FLOOR" and self.accept_keyword("TO"):
                unit = self.expect_keyword(*_TIME_UNITS).value
                self.expect_op(")")
                return ast.FloorTo(arg=args[0], unit=unit)
            while self.accept_op(","):
                args.append(self.parse_expr())
        self.expect_op(")")
        call = ast.FuncCall(name=name, args=tuple(args), distinct=distinct,
                            is_star=is_star)
        if self.accept_keyword("OVER"):
            return self.parse_over(call)
        return call

    def parse_over(self, func: ast.FuncCall) -> ast.OverCall:
        self.expect_op("(")
        partition_by: list[ast.Expr] = []
        order_by: list[tuple[ast.Expr, bool]] = []
        frame: ast.WindowFrame | None = None
        if self.accept_keyword("PARTITION"):
            self.expect_keyword("BY")
            partition_by.append(self.parse_expr())
            while self.accept_op(","):
                partition_by.append(self.parse_expr())
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expr = self.parse_expr()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                order_by.append((expr, ascending))
                if not self.accept_op(","):
                    break
        mode_token = self.accept_keyword("RANGE", "ROWS")
        if mode_token is not None:
            if self.accept_keyword("UNBOUNDED"):
                self.expect_keyword("PRECEDING")
                frame = ast.WindowFrame(mode=mode_token.value, preceding="UNBOUNDED")
            elif self.accept_keyword("CURRENT"):
                self.expect_keyword("ROW")
                frame = ast.WindowFrame(mode=mode_token.value, preceding="CURRENT")
            else:
                bound = self.parse_additive()
                self.expect_keyword("PRECEDING")
                frame = ast.WindowFrame(mode=mode_token.value, preceding=bound)
        self.expect_op(")")
        return ast.OverCall(
            func=func, partition_by=tuple(partition_by),
            order_by=tuple(order_by), frame=frame,
        )


def parse_statement(text: str) -> ast.Statement:
    """Parse one SQL statement (SELECT, CREATE VIEW or INSERT INTO)."""
    return _Parser(text).parse_statement()


def parse_query(text: str) -> ast.SelectStmt:
    """Parse a statement that must be a SELECT."""
    stmt = parse_statement(text)
    if not isinstance(stmt, ast.SelectStmt):
        raise SqlParseError(f"expected a SELECT query, got {type(stmt).__name__}")
    return stmt
