"""Built-in scalar and aggregate function catalogue.

Scalar functions are described by their name, arity, and a result-type
rule; their runtime implementations live in :mod:`repro.sql.codegen`
(compiled inline) — the same division Calcite makes between the operator
table and generated code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import SqlValidationError
from repro.sql.types import SqlType, common_numeric_type


@dataclass(frozen=True)
class ScalarFunction:
    name: str
    min_args: int
    max_args: int  # -1 = varargs
    result_type: Callable[[list[SqlType]], SqlType]

    def check_arity(self, count: int) -> None:
        if count < self.min_args or (self.max_args != -1 and count > self.max_args):
            expected = (f"{self.min_args}" if self.min_args == self.max_args
                        else f"{self.min_args}..{'n' if self.max_args == -1 else self.max_args}")
            raise SqlValidationError(
                f"{self.name} expects {expected} arguments, got {count}")


def _same_as_first(arg_types: list[SqlType]) -> SqlType:
    return arg_types[0] if arg_types else SqlType.ANY


def _numeric_common(arg_types: list[SqlType]) -> SqlType:
    result = arg_types[0]
    for t in arg_types[1:]:
        result = common_numeric_type(result, t)
    return result


def _varchar(_: list[SqlType]) -> SqlType:
    return SqlType.VARCHAR

def _integer(_: list[SqlType]) -> SqlType:
    return SqlType.INTEGER

def _double(_: list[SqlType]) -> SqlType:
    return SqlType.DOUBLE


SCALAR_FUNCTIONS: dict[str, ScalarFunction] = {
    fn.name: fn
    for fn in [
        ScalarFunction("FLOOR", 1, 1, _same_as_first),
        ScalarFunction("CEIL", 1, 1, _same_as_first),
        ScalarFunction("GREATEST", 1, -1, _numeric_common),
        ScalarFunction("LEAST", 1, -1, _numeric_common),
        ScalarFunction("ABS", 1, 1, _same_as_first),
        ScalarFunction("MOD", 2, 2, _numeric_common),
        ScalarFunction("POWER", 2, 2, _double),
        ScalarFunction("SQRT", 1, 1, _double),
        ScalarFunction("UPPER", 1, 1, _varchar),
        ScalarFunction("LOWER", 1, 1, _varchar),
        ScalarFunction("TRIM", 1, 1, _varchar),
        ScalarFunction("CHAR_LENGTH", 1, 1, _integer),
        ScalarFunction("SUBSTRING", 2, 3, _varchar),
        ScalarFunction("COALESCE", 1, -1, _same_as_first),
        ScalarFunction("NULLIF", 2, 2, _same_as_first),
    ]
}

AGGREGATE_FUNCTIONS = {"COUNT", "SUM", "MIN", "MAX", "AVG"}

# Window bookkeeping pseudo-aggregates (§3.6: "aggregate functions START
# and END was introduced to capture start and end time of a window").
WINDOW_MARKER_FUNCTIONS = {"START", "END"}

# GROUP BY window functions (§3.6).
GROUP_WINDOW_FUNCTIONS = {"TUMBLE", "HOP"}


def is_aggregate_name(name: str) -> bool:
    if name.upper() in AGGREGATE_FUNCTIONS:
        return True
    from repro.sql.udf import UDF_REGISTRY

    return UDF_REGISTRY.udaf(name) is not None


def aggregate_result_type(func: str, arg_type: SqlType | None) -> SqlType:
    func = func.upper()
    from repro.sql.udf import UDF_REGISTRY

    udaf = UDF_REGISTRY.udaf(func)
    if udaf is not None:
        return udaf.result_type
    if func == "COUNT":
        return SqlType.BIGINT
    if arg_type is None:
        raise SqlValidationError(f"{func} requires an argument")
    if func in ("MIN", "MAX"):
        return arg_type
    if func == "AVG":
        return SqlType.DOUBLE
    if func == "SUM":
        if not (arg_type.is_numeric or arg_type is SqlType.ANY):
            raise SqlValidationError(f"SUM requires a numeric argument, got {arg_type}")
        return SqlType.BIGINT if arg_type is SqlType.INTEGER else arg_type
    raise SqlValidationError(f"unknown aggregate function {func!r}")


def lookup_scalar(name: str) -> ScalarFunction:
    upper = name.upper()
    builtin = SCALAR_FUNCTIONS.get(upper)
    if builtin is not None:
        return builtin
    from repro.sql.udf import UDF_REGISTRY

    udf = UDF_REGISTRY.scalar(upper)
    if udf is not None:
        return ScalarFunction(f"UDF:{udf.name}", udf.min_args, udf.max_args,
                              lambda _types, t=udf.result_type: t)
    raise SqlValidationError(
        f"unknown function {name!r}; known scalar functions: "
        f"{sorted(SCALAR_FUNCTIONS)} (plus registered UDFs)")
