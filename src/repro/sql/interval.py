"""INTERVAL and TIME literal parsing.

The grammar of §3.6–3.8 uses SQL interval literals to express window
widths and join bounds::

    INTERVAL '2' SECOND
    INTERVAL '1' HOUR
    INTERVAL '1:30' HOUR TO MINUTE
    TIME '0:30'

All intervals normalize to milliseconds (the unit of rowtime).
"""

from __future__ import annotations

from repro.common.errors import SqlParseError

MS = 1
SECOND_MS = 1000
MINUTE_MS = 60 * SECOND_MS
HOUR_MS = 60 * MINUTE_MS
DAY_MS = 24 * HOUR_MS

_UNIT_MS = {
    "MILLISECOND": MS,
    "SECOND": SECOND_MS,
    "MINUTE": MINUTE_MS,
    "HOUR": HOUR_MS,
    "DAY": DAY_MS,
}

# For compound intervals like HOUR TO MINUTE: the ':'-separated literal
# fields, most significant first.
_COMPOUND_FIELDS = ["DAY", "HOUR", "MINUTE", "SECOND"]


def unit_to_ms(unit: str) -> int:
    try:
        return _UNIT_MS[unit.upper()]
    except KeyError:
        raise SqlParseError(f"unknown interval unit {unit!r}") from None


def parse_interval(value: str, start_unit: str, end_unit: str | None = None) -> int:
    """Milliseconds for ``INTERVAL '<value>' <start> [TO <end>]``."""
    start_unit = start_unit.upper()
    if end_unit is None:
        try:
            magnitude = float(value) if "." in value else int(value)
        except ValueError:
            raise SqlParseError(
                f"single-unit interval needs a number, got {value!r}") from None
        return int(magnitude * unit_to_ms(start_unit))
    end_unit = end_unit.upper()
    for unit in (start_unit, end_unit):
        if unit not in _COMPOUND_FIELDS:
            raise SqlParseError(f"unsupported compound interval unit {unit!r}")
    start_index = _COMPOUND_FIELDS.index(start_unit)
    end_index = _COMPOUND_FIELDS.index(end_unit)
    if end_index <= start_index:
        raise SqlParseError(
            f"invalid interval qualifier {start_unit} TO {end_unit}")
    parts = value.split(":")
    expected = end_index - start_index + 1
    if len(parts) != expected:
        raise SqlParseError(
            f"interval literal {value!r} needs {expected} fields for "
            f"{start_unit} TO {end_unit}")
    total = 0
    for unit, part in zip(_COMPOUND_FIELDS[start_index:end_index + 1], parts):
        try:
            magnitude = int(part)
        except ValueError:
            raise SqlParseError(f"bad interval field {part!r} in {value!r}") from None
        total += magnitude * unit_to_ms(unit)
    return total


def parse_time_literal(value: str) -> int:
    """Milliseconds past midnight for ``TIME 'H:MM[:SS]'`` (HOP alignment)."""
    parts = value.split(":")
    if not 2 <= len(parts) <= 3:
        raise SqlParseError(f"TIME literal must be 'H:MM[:SS]', got {value!r}")
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise SqlParseError(f"bad TIME literal {value!r}") from None
    hours, minutes = numbers[0], numbers[1]
    seconds = numbers[2] if len(numbers) == 3 else 0
    if not (0 <= minutes < 60 and 0 <= seconds < 60 and hours >= 0):
        raise SqlParseError(f"TIME literal out of range: {value!r}")
    return hours * HOUR_MS + minutes * MINUTE_MS + seconds * SECOND_MS
