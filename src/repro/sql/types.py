"""SQL types and row types (Calcite's RelDataType role)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import SqlValidationError


class SqlType(enum.Enum):
    """The primitive column types SamzaSQL supports (§3.1)."""

    BOOLEAN = "BOOLEAN"
    INTEGER = "INTEGER"
    BIGINT = "BIGINT"
    DOUBLE = "DOUBLE"
    VARCHAR = "VARCHAR"
    TIMESTAMP = "TIMESTAMP"   # milliseconds since epoch (rowtime et al.)
    INTERVAL = "INTERVAL"     # milliseconds duration
    ANY = "ANY"

    @property
    def is_numeric(self) -> bool:
        return self in (SqlType.INTEGER, SqlType.BIGINT, SqlType.DOUBLE,
                        SqlType.TIMESTAMP, SqlType.INTERVAL)

    @property
    def is_time(self) -> bool:
        return self is SqlType.TIMESTAMP


def common_numeric_type(a: SqlType, b: SqlType) -> SqlType:
    """Result type for arithmetic between two numeric operands."""
    if not (a.is_numeric or a is SqlType.ANY) or not (b.is_numeric or b is SqlType.ANY):
        raise SqlValidationError(f"arithmetic requires numeric operands, got {a} and {b}")
    if SqlType.ANY in (a, b):
        return SqlType.ANY
    if SqlType.DOUBLE in (a, b):
        return SqlType.DOUBLE
    # timestamp +- interval stays timestamp; timestamp - timestamp is interval
    if a is SqlType.TIMESTAMP and b is SqlType.INTERVAL:
        return SqlType.TIMESTAMP
    if a is SqlType.INTERVAL and b is SqlType.TIMESTAMP:
        return SqlType.TIMESTAMP
    if a is SqlType.TIMESTAMP and b is SqlType.TIMESTAMP:
        return SqlType.INTERVAL
    if SqlType.TIMESTAMP in (a, b):
        return SqlType.TIMESTAMP
    if SqlType.BIGINT in (a, b) or SqlType.INTERVAL in (a, b):
        return SqlType.BIGINT
    return SqlType.INTEGER


@dataclass(frozen=True, slots=True)
class RelField:
    name: str
    type: SqlType


class RowType:
    """An ordered list of named, typed fields."""

    def __init__(self, fields: list[RelField] | list[tuple[str, SqlType]]):
        normalized: list[RelField] = []
        for f in fields:
            if isinstance(f, RelField):
                normalized.append(f)
            else:
                name, sql_type = f
                normalized.append(RelField(name, sql_type))
        self.fields: tuple[RelField, ...] = tuple(normalized)

    @property
    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    @property
    def field_types(self) -> list[SqlType]:
        return [f.type for f in self.fields]

    def index_of(self, name: str) -> int:
        """Case-insensitive field lookup; raises on unknown/ambiguous."""
        lowered = name.lower()
        matches = [i for i, f in enumerate(self.fields) if f.name.lower() == lowered]
        if not matches:
            raise SqlValidationError(f"unknown column {name!r}; available: {self.field_names}")
        if len(matches) > 1:
            raise SqlValidationError(f"ambiguous column {name!r}")
        return matches[0]

    def contains(self, name: str) -> bool:
        lowered = name.lower()
        return sum(1 for f in self.fields if f.name.lower() == lowered) == 1

    def field(self, index: int) -> RelField:
        return self.fields[index]

    def __len__(self) -> int:
        return len(self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RowType) and self.fields == other.fields

    def __hash__(self) -> int:
        return hash(self.fields)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name} {f.type.value}" for f in self.fields)
        return f"RowType({inner})"

    def concat(self, other: "RowType") -> "RowType":
        return RowType(list(self.fields) + list(other.fields))


def avro_type_to_sql(avro_type) -> SqlType:
    """Map an Avro field type to the SQL type system.

    Nullable unions ``["null", X]`` map to X's SQL type (SQL columns are
    nullable anyway), which keeps derived streams — whose synthesized
    output schemas make every field nullable — fully typed.
    """
    mapping = {
        "boolean": SqlType.BOOLEAN,
        "int": SqlType.INTEGER,
        "long": SqlType.BIGINT,
        "float": SqlType.DOUBLE,
        "double": SqlType.DOUBLE,
        "string": SqlType.VARCHAR,
    }
    if isinstance(avro_type, str) and avro_type in mapping:
        return mapping[avro_type]
    if isinstance(avro_type, list) and len(avro_type) == 2 and "null" in avro_type:
        other = avro_type[0] if avro_type[1] == "null" else avro_type[1]
        return avro_type_to_sql(other)
    return SqlType.ANY


def row_type_from_avro(schema, rowtime_fields: tuple[str, ...] = ("rowtime", "sourcetime")) -> RowType:
    """Derive a RowType from a mini-Avro record schema.

    Long fields named like event-time attributes become TIMESTAMP so
    time-based windows validate (§3: "SamzaSQL expects a timestamp field in
    the incoming message").
    """
    fields = []
    for name in schema.field_names:
        sql_type = avro_type_to_sql(schema.field_type(name))
        if name.lower() in rowtime_fields and sql_type in (SqlType.BIGINT, SqlType.ANY):
            sql_type = SqlType.TIMESTAMP
        fields.append(RelField(name, sql_type))
    return RowType(fields)
