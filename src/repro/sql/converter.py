"""Validation and AST → logical plan conversion (Calcite's SqlToRelConverter).

Name resolution, type checking, view inlining, star expansion, aggregate
classification, and the streaming-specific pieces: GROUP BY windows
(TUMBLE/HOP/FLOOR-TO), analytic-function sliding windows, and the Delta
node for the STREAM keyword.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import SqlValidationError
from repro.sql import ast
from repro.sql.catalog import Catalog, StreamDefinition, TableDefinition, ViewDefinition
from repro.sql.functions import (
    AGGREGATE_FUNCTIONS,
    GROUP_WINDOW_FUNCTIONS,
    WINDOW_MARKER_FUNCTIONS,
    aggregate_result_type,
    is_aggregate_name,
    lookup_scalar,
)
from repro.sql.interval import unit_to_ms
from repro.sql.rel.nodes import (
    GroupWindow,
    LogicalAggregate,
    LogicalDelta,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalWindowAgg,
    RelNode,
)
from repro.sql.rex import AggCall, RexCall, RexInputRef, RexLiteral, RexNode
from repro.sql.types import RowType, SqlType, common_numeric_type

_CAST_TYPES = {
    "INTEGER": SqlType.INTEGER, "INT": SqlType.INTEGER,
    "BIGINT": SqlType.BIGINT, "DOUBLE": SqlType.DOUBLE,
    "FLOAT": SqlType.DOUBLE, "VARCHAR": SqlType.VARCHAR,
    "CHAR": SqlType.VARCHAR, "BOOLEAN": SqlType.BOOLEAN,
    "TIMESTAMP": SqlType.TIMESTAMP,
}

_INT32_MAX = 2**31 - 1


@dataclass
class _Binding:
    name: str | None  # alias/table name, None for anonymous derived tables
    row_type: RowType
    offset: int


class Scope:
    """Column-name resolution over one or more input bindings."""

    def __init__(self, bindings: list[_Binding]):
        self.bindings = bindings

    @staticmethod
    def single(name: str | None, row_type: RowType) -> "Scope":
        return Scope([_Binding(name, row_type, 0)])

    def join(self, other: "Scope") -> "Scope":
        width = sum(len(b.row_type) for b in self.bindings)
        shifted = [
            _Binding(b.name, b.row_type, b.offset + width) for b in other.bindings
        ]
        return Scope(self.bindings + shifted)

    @property
    def row_type(self) -> RowType:
        fields = []
        for binding in self.bindings:
            fields.extend(binding.row_type.fields)
        return RowType(fields)

    def resolve(self, ref: ast.ColumnRef) -> tuple[int, SqlType]:
        if ref.qualifier is not None:
            for binding in self.bindings:
                if binding.name is not None and binding.name.lower() == ref.qualifier.lower():
                    index = binding.row_type.index_of(ref.name)
                    return binding.offset + index, binding.row_type.field(index).type
            raise SqlValidationError(
                f"unknown table alias {ref.qualifier!r} in {ref}")
        matches: list[tuple[int, SqlType]] = []
        for binding in self.bindings:
            if binding.row_type.contains(ref.name):
                index = binding.row_type.index_of(ref.name)
                matches.append((binding.offset + index, binding.row_type.field(index).type))
        if not matches:
            available = [f.name for b in self.bindings for f in b.row_type.fields]
            raise SqlValidationError(
                f"unknown column {ref.name!r}; available: {available}")
        if len(matches) > 1:
            raise SqlValidationError(f"ambiguous column {ref.name!r}")
        return matches[0]

    def fields_of(self, qualifier: str) -> tuple[int, RowType]:
        for binding in self.bindings:
            if binding.name is not None and binding.name.lower() == qualifier.lower():
                return binding.offset, binding.row_type
        raise SqlValidationError(f"unknown table alias {qualifier!r}")


class Converter:
    """One-shot converter; create per statement."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- entry points --------------------------------------------------------------

    def convert_query(self, select: ast.SelectStmt) -> RelNode:
        plan, _scope = self._convert_select(select, top_level=True)
        if select.stream:
            plan = LogicalDelta(plan)
        return plan

    # -- FROM clause ------------------------------------------------------------------

    def _convert_from(self, ref: ast.TableRef) -> tuple[RelNode, Scope]:
        if isinstance(ref, ast.NamedTable):
            return self._convert_named(ref)
        if isinstance(ref, ast.DerivedTable):
            plan, scope = self._convert_select(ref.query, top_level=False)
            return plan, Scope.single(ref.alias, plan.row_type)
        if isinstance(ref, ast.JoinRef):
            left_plan, left_scope = self._convert_from(ref.left)
            right_plan, right_scope = self._convert_from(ref.right)
            scope = left_scope.join(right_scope)
            condition = self._to_rex(ref.condition, scope)
            if condition.type not in (SqlType.BOOLEAN, SqlType.ANY):
                raise SqlValidationError(
                    f"join condition must be boolean, got {condition.type}")
            return LogicalJoin(left_plan, right_plan, ref.kind, condition), scope
        raise SqlValidationError(f"unsupported FROM clause element {ref!r}")

    def _convert_named(self, ref: ast.NamedTable) -> tuple[RelNode, Scope]:
        definition = self.catalog.resolve(ref.name)
        binding = ref.alias or ref.name
        if isinstance(definition, StreamDefinition):
            scan = LogicalScan(
                source=definition.name, row_type=definition.row_type,
                is_stream=True, rowtime_index=definition.rowtime_index)
            return scan, Scope.single(binding, scan.row_type)
        if isinstance(definition, TableDefinition):
            scan = LogicalScan(
                source=definition.name, row_type=definition.row_type,
                is_stream=False)
            return scan, Scope.single(binding, scan.row_type)
        if isinstance(definition, ViewDefinition):
            from repro.sql.parser import parse_query  # local import: no cycle at module load
            if definition.query_ast is not None:
                query = definition.query_ast
            else:
                query = parse_query(definition.query_text)
            # §3.3: "STREAM keyword in sub-queries or views has no effect".
            plan, _ = self._convert_select(query, top_level=False)
            if definition.columns is not None:
                if len(definition.columns) != len(plan.row_type):
                    raise SqlValidationError(
                        f"view {definition.name!r} declares {len(definition.columns)} "
                        f"columns but its query produces {len(plan.row_type)}")
                exprs = tuple(
                    RexInputRef(i, f.type) for i, f in enumerate(plan.row_type.fields))
                plan = LogicalProject(plan, exprs, tuple(definition.columns))
            return plan, Scope.single(binding, plan.row_type)
        raise SqlValidationError(f"cannot query object {ref.name!r}")

    # -- SELECT body --------------------------------------------------------------------

    def _convert_select(self, select: ast.SelectStmt,
                        top_level: bool) -> tuple[RelNode, Scope]:
        plan, scope = self._convert_from(select.from_clause)

        if select.where is not None:
            condition = self._to_rex(select.where, scope)
            if condition.type not in (SqlType.BOOLEAN, SqlType.ANY):
                raise SqlValidationError(
                    f"WHERE condition must be boolean, got {condition.type}")
            plan = LogicalFilter(plan, condition)

        is_aggregate = bool(select.group_by) or any(
            self._contains_aggregate(item.expr) for item in select.items
        ) or (select.having is not None)
        has_over = any(self._contains_over(item.expr) for item in select.items)
        if is_aggregate and has_over:
            raise SqlValidationError(
                "mixing GROUP BY aggregation and OVER windows in one SELECT "
                "is not supported")

        if is_aggregate:
            plan = self._convert_aggregate(select, plan, scope)
        elif has_over:
            plan = self._convert_window_agg(select, plan, scope)
        else:
            plan = self._convert_plain_project(select, plan, scope)

        if select.distinct:
            keys = tuple(RexInputRef(i, f.type)
                         for i, f in enumerate(plan.row_type.fields))
            plan = LogicalAggregate(
                plan, group_exprs=keys,
                group_names=tuple(plan.row_type.field_names),
                agg_calls=(), window=None)

        if select.order_by or select.limit is not None:
            plan = self._apply_sort(select, plan, scope)
        return plan, Scope.single(None, plan.row_type)

    def _apply_sort(self, select: ast.SelectStmt, plan: RelNode,
                    from_scope: Scope) -> RelNode:
        """ORDER BY resolves against output aliases first, then (for plain
        projections) against input columns via a hidden sort column that is
        projected away again after the sort."""
        output_scope = Scope.single(None, plan.row_type)
        resolved: list[tuple[RexNode | None, ast.Expr, bool]] = []
        needs_hidden = False
        for expr, ascending in select.order_by:
            try:
                resolved.append((self._to_rex(expr, output_scope), expr, ascending))
            except SqlValidationError:
                resolved.append((None, expr, ascending))
                needs_hidden = True
        if not needs_hidden:
            keys = tuple((rex, asc) for rex, _, asc in resolved)
            return LogicalSort(plan, keys, select.limit)
        if not isinstance(plan, LogicalProject):
            # aggregate/window outputs: input columns are out of scope anyway
            for rex, expr, _ in resolved:
                if rex is None:
                    self._to_rex(expr, output_scope)  # re-raise with context
        project = plan
        visible = len(project.exprs)
        hidden_exprs: list[RexNode] = []
        keys: list[tuple[RexNode, bool]] = []
        for rex, expr, ascending in resolved:
            if rex is None:
                input_rex = self._to_rex(expr, from_scope)
                keys.append((RexInputRef(visible + len(hidden_exprs),
                                         input_rex.type), ascending))
                hidden_exprs.append(input_rex)
            else:
                keys.append((rex, ascending))
        extended = LogicalProject(
            project.input,
            project.exprs + tuple(hidden_exprs),
            project.names + tuple(f"$sort{i}" for i in range(len(hidden_exprs))))
        sort = LogicalSort(extended, tuple(keys), select.limit)
        visible_refs = tuple(
            RexInputRef(i, f.type)
            for i, f in enumerate(project.row_type.fields))
        return LogicalProject(sort, visible_refs, project.names)

    # -- plain projection -------------------------------------------------------------------

    def _expand_items(self, items, scope: Scope) -> list[tuple[ast.Expr, str | None]]:
        expanded: list[tuple[ast.Expr, str | None]] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                if item.expr.qualifier is None:
                    for binding in scope.bindings:
                        for f in binding.row_type.fields:
                            parts = ((binding.name, f.name) if binding.name
                                     else (f.name,))
                            expanded.append((ast.ColumnRef(tuple(p for p in parts if p)),
                                             f.name))
                else:
                    _, row_type = scope.fields_of(item.expr.qualifier)
                    for f in row_type.fields:
                        expanded.append(
                            (ast.ColumnRef((item.expr.qualifier, f.name)), f.name))
            else:
                expanded.append((item.expr, item.alias))
        return expanded

    @staticmethod
    def _default_name(expr: ast.Expr, index: int) -> str:
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        return f"EXPR${index}"

    def _convert_plain_project(self, select: ast.SelectStmt, plan: RelNode,
                               scope: Scope) -> RelNode:
        items = self._expand_items(select.items, scope)
        # SELECT * with nothing else: skip the identity projection.
        if (len(select.items) == 1 and isinstance(select.items[0].expr, ast.Star)
                and select.items[0].expr.qualifier is None):
            return plan
        exprs: list[RexNode] = []
        names: list[str] = []
        for index, (expr, alias) in enumerate(items):
            rex = self._to_rex(expr, scope)
            exprs.append(rex)
            names.append(alias or self._default_name(expr, index))
        return LogicalProject(plan, tuple(exprs), tuple(names))

    # -- aggregates ----------------------------------------------------------------------------

    def _convert_aggregate(self, select: ast.SelectStmt, plan: RelNode,
                           scope: Scope) -> RelNode:
        window: GroupWindow | None = None
        window_ast: ast.Expr | None = None
        group_asts: list[ast.Expr] = []
        group_exprs: list[RexNode] = []
        group_names: list[str] = []

        for key in select.group_by:
            maybe_window = self._try_group_window(key, scope)
            if maybe_window is not None:
                if window is not None:
                    raise SqlValidationError("only one window per GROUP BY")
                window, window_ast = maybe_window
                continue
            rex = self._to_rex(key, scope)
            group_asts.append(key)
            group_exprs.append(rex)
            group_names.append(self._default_name(key, len(group_names)))

        # Collect aggregate calls from select items and HAVING.
        agg_calls: list[AggCall] = []
        agg_asts: list[ast.FuncCall] = []

        def ensure_agg(call: ast.FuncCall) -> int:
            for i, seen in enumerate(agg_asts):
                if seen == call:
                    return i
            arg_rex = None
            if not call.is_star:
                if len(call.args) != 1:
                    raise SqlValidationError(
                        f"{call.name} takes exactly one argument")
                arg_rex = self._to_rex(call.args[0], scope)
            result_type = aggregate_result_type(
                call.name, None if arg_rex is None else arg_rex.type)
            agg_asts.append(call)
            agg_calls.append(AggCall(
                func=call.name.upper(), arg=arg_rex, type=result_type,
                name=f"{call.name.lower()}${len(agg_calls)}",
                distinct=call.distinct))
            return len(agg_asts) - 1

        def collect(expr: ast.Expr) -> None:
            if isinstance(expr, ast.FuncCall) and is_aggregate_name(expr.name):
                ensure_agg(expr)
                return
            for child in self._ast_children(expr):
                collect(child)

        for item in select.items:
            if isinstance(item.expr, ast.Star):
                raise SqlValidationError("SELECT * is not allowed with GROUP BY")
            collect(item.expr)
        if select.having is not None:
            collect(select.having)

        aggregate = LogicalAggregate(
            plan, group_exprs=tuple(group_exprs), group_names=tuple(group_names),
            agg_calls=tuple(agg_calls), window=window)

        # Translation of post-aggregate expressions into refs over the
        # aggregate's output row.
        windowed = window is not None
        key_base = 2 if windowed else 0
        agg_base = key_base + len(group_exprs)
        out_type = aggregate.row_type

        def translate(expr: ast.Expr) -> RexNode:
            if windowed and window_ast is not None and expr == window_ast:
                return RexInputRef(0, SqlType.TIMESTAMP)  # wstart
            for i, key_ast in enumerate(group_asts):
                if expr == key_ast:
                    return RexInputRef(key_base + i, out_type.field(key_base + i).type)
            if isinstance(expr, ast.FuncCall):
                upper = expr.name.upper()
                if upper in WINDOW_MARKER_FUNCTIONS:
                    if not windowed:
                        raise SqlValidationError(
                            f"{upper}() requires a TUMBLE/HOP/FLOOR window in GROUP BY")
                    return RexInputRef(0 if upper == "START" else 1, SqlType.TIMESTAMP)
                if is_aggregate_name(expr.name):
                    index = ensure_agg(expr)
                    return RexInputRef(agg_base + index,
                                       out_type.field(agg_base + index).type)
            if isinstance(expr, ast.ColumnRef):
                raise SqlValidationError(
                    f"column {expr} must appear in GROUP BY or inside an aggregate")
            return self._rebuild_rex(expr, translate)

        exprs: list[RexNode] = []
        names: list[str] = []
        for index, item in enumerate(select.items):
            exprs.append(translate(item.expr))
            names.append(item.alias or self._default_name(item.expr, index))

        result: RelNode = aggregate
        if select.having is not None:
            having = translate(select.having)
            if having.type not in (SqlType.BOOLEAN, SqlType.ANY):
                raise SqlValidationError("HAVING condition must be boolean")
            result = LogicalFilter(result, having)
        return LogicalProject(result, tuple(exprs), tuple(names))

    def _try_group_window(self, key: ast.Expr,
                          scope: Scope) -> tuple[GroupWindow, ast.Expr] | None:
        """Recognize TUMBLE/HOP/FLOOR-TO group keys as window specs."""
        if isinstance(key, ast.FloorTo):
            time_rex = self._to_rex(key.arg, scope)
            if time_rex.type is not SqlType.TIMESTAMP:
                return None  # plain numeric FLOOR, treated as a regular key
            size = unit_to_ms(key.unit)
            return GroupWindow("TUMBLE", time_rex, size, size), key
        if isinstance(key, ast.FuncCall) and key.name.upper() in GROUP_WINDOW_FUNCTIONS:
            name = key.name.upper()
            args = key.args
            if name == "TUMBLE":
                if len(args) != 2 or not isinstance(args[1], ast.IntervalLit):
                    raise SqlValidationError(
                        "TUMBLE(time, INTERVAL ...) expects a time column and an interval")
                time_rex = self._require_timestamp(args[0], scope, "TUMBLE")
                size = args[1].millis
                return GroupWindow("TUMBLE", time_rex, size, size), key
            # HOP(t, emit, retain[, align])
            if not 3 <= len(args) <= 4:
                raise SqlValidationError(
                    "HOP(time, emit, retain[, align]) expects 3 or 4 arguments")
            time_rex = self._require_timestamp(args[0], scope, "HOP")
            if not isinstance(args[1], ast.IntervalLit) or not isinstance(
                    args[2], ast.IntervalLit):
                raise SqlValidationError("HOP emit/retain must be INTERVAL literals")
            align = 0
            if len(args) == 4:
                if not isinstance(args[3], (ast.TimeLit, ast.IntervalLit)):
                    raise SqlValidationError("HOP align must be a TIME literal")
                align = args[3].millis
            return GroupWindow("HOP", time_rex, args[1].millis, args[2].millis,
                               align), key
        return None

    def _require_timestamp(self, expr: ast.Expr, scope: Scope, where: str) -> RexNode:
        rex = self._to_rex(expr, scope)
        if rex.type not in (SqlType.TIMESTAMP, SqlType.ANY):
            raise SqlValidationError(
                f"{where} requires a TIMESTAMP expression, got {rex.type} "
                f"(did the query drop the rowtime field?)")
        return rex

    # -- analytic (OVER) windows -------------------------------------------------------------

    def _convert_window_agg(self, select: ast.SelectStmt, plan: RelNode,
                            scope: Scope) -> RelNode:
        over_calls: list[ast.OverCall] = []

        def find_overs(expr: ast.Expr) -> None:
            if isinstance(expr, ast.OverCall):
                over_calls.append(expr)
                return
            for child in self._ast_children(expr):
                find_overs(child)

        for item in select.items:
            if not isinstance(item.expr, ast.Star):
                find_overs(item.expr)
        if not over_calls:
            raise SqlValidationError("internal: no OVER calls found")

        first = over_calls[0]
        for other in over_calls[1:]:
            if (other.partition_by, other.order_by, other.frame) != (
                    first.partition_by, first.order_by, first.frame):
                raise SqlValidationError(
                    "all analytic functions in one SELECT must share the same "
                    "window specification")

        partition_exprs = tuple(self._to_rex(e, scope) for e in first.partition_by)
        if len(first.order_by) != 1:
            raise SqlValidationError("OVER requires exactly one ORDER BY expression")
        order_ast, ascending = first.order_by[0]
        if not ascending:
            raise SqlValidationError("OVER ... ORDER BY must be ascending (time order)")
        order_expr = self._to_rex(order_ast, scope)

        frame_mode = "RANGE"
        preceding_ms: int | None = None
        preceding_rows: int | None = None
        if first.frame is not None:
            frame_mode = first.frame.mode
            bound = first.frame.preceding
            if bound == "UNBOUNDED":
                pass
            elif bound == "CURRENT":
                preceding_ms, preceding_rows = 0, 0
            elif frame_mode == "RANGE":
                if not isinstance(bound, ast.IntervalLit):
                    raise SqlValidationError(
                        "RANGE frames need an INTERVAL bound over rowtime")
                preceding_ms = bound.millis
                if order_expr.type not in (SqlType.TIMESTAMP, SqlType.ANY):
                    raise SqlValidationError(
                        "RANGE INTERVAL frames require ORDER BY on a timestamp")
            else:  # ROWS
                if not isinstance(bound, ast.Literal) or not isinstance(bound.value, int):
                    raise SqlValidationError("ROWS frames need an integer bound")
                preceding_rows = bound.value

        agg_calls: list[AggCall] = []
        over_index: dict[ast.OverCall, int] = {}
        for call in over_calls:
            if call in over_index:
                continue
            func = call.func
            if not is_aggregate_name(func.name):
                raise SqlValidationError(
                    f"{func.name} is not a supported analytic aggregate")
            arg_rex = None
            if not func.is_star:
                if len(func.args) != 1:
                    raise SqlValidationError(f"{func.name} takes exactly one argument")
                arg_rex = self._to_rex(func.args[0], scope)
            result_type = aggregate_result_type(
                func.name, None if arg_rex is None else arg_rex.type)
            over_index[call] = len(agg_calls)
            agg_calls.append(AggCall(
                func=func.name.upper(), arg=arg_rex, type=result_type,
                name=f"w{func.name.lower()}${len(agg_calls)}"))

        window_node = LogicalWindowAgg(
            plan, partition_exprs=partition_exprs, order_expr=order_expr,
            agg_calls=tuple(agg_calls), frame_mode=frame_mode,
            preceding_ms=preceding_ms, preceding_rows=preceding_rows)

        input_width = len(plan.row_type)
        out_type = window_node.row_type

        def translate(expr: ast.Expr) -> RexNode:
            if isinstance(expr, ast.OverCall):
                index = input_width + over_index[expr]
                return RexInputRef(index, out_type.field(index).type)
            if isinstance(expr, ast.ColumnRef):
                index, sql_type = scope.resolve(expr)
                return RexInputRef(index, sql_type)
            return self._rebuild_rex(expr, translate)

        items = self._expand_items(select.items, scope)
        exprs: list[RexNode] = []
        names: list[str] = []
        for index, (expr, alias) in enumerate(items):
            exprs.append(translate(expr))
            names.append(alias or self._default_name(expr, index))
        return LogicalProject(window_node, tuple(exprs), tuple(names))

    # -- expression conversion -----------------------------------------------------------------

    def _to_rex(self, expr: ast.Expr, scope: Scope) -> RexNode:
        def convert(node: ast.Expr) -> RexNode:
            if isinstance(node, ast.ColumnRef):
                index, sql_type = scope.resolve(node)
                return RexInputRef(index, sql_type)
            if isinstance(node, ast.FuncCall) and is_aggregate_name(node.name):
                raise SqlValidationError(
                    f"aggregate {node.name} is not allowed here (only in SELECT "
                    f"items or HAVING of a GROUP BY query)")
            if isinstance(node, ast.OverCall):
                raise SqlValidationError(
                    "OVER windows are only allowed in SELECT items")
            if isinstance(node, ast.Star):
                raise SqlValidationError("'*' is not a valid expression here")
            return self._rebuild_rex(node, convert)

        return convert(expr)

    def _rebuild_rex(self, node: ast.Expr, convert) -> RexNode:
        """Convert non-reference AST nodes given a recursion callback."""
        if isinstance(node, ast.Literal):
            return self._literal_rex(node.value)
        if isinstance(node, (ast.IntervalLit, ast.TimeLit)):
            return RexLiteral(node.millis, SqlType.INTERVAL)
        if isinstance(node, ast.FloorTo):
            arg = convert(node.arg)
            if arg.type not in (SqlType.TIMESTAMP, SqlType.ANY):
                raise SqlValidationError(
                    f"FLOOR(... TO {node.unit}) requires a TIMESTAMP argument")
            return RexCall("FLOOR_TIME",
                           (arg, RexLiteral(unit_to_ms(node.unit), SqlType.INTERVAL)),
                           SqlType.TIMESTAMP)
        if isinstance(node, ast.FuncCall):
            function = lookup_scalar(node.name)
            function.check_arity(len(node.args))
            operands = tuple(convert(a) for a in node.args)
            return RexCall(function.name, operands,
                           function.result_type([o.type for o in operands]))
        if isinstance(node, ast.BinaryOp):
            return self._binary_rex(node, convert)
        if isinstance(node, ast.UnaryOp):
            operand = convert(node.operand)
            if node.op == "NOT":
                self._check_boolean(operand, "NOT")
                return RexCall("NOT", (operand,), SqlType.BOOLEAN)
            if node.op == "-":
                if not (operand.type.is_numeric or operand.type is SqlType.ANY):
                    raise SqlValidationError("unary minus requires a numeric operand")
                return RexCall("NEG", (operand,), operand.type)
            raise SqlValidationError(f"unknown unary operator {node.op!r}")
        if isinstance(node, ast.Between):
            low = RexCall(">=", (convert(node.expr), convert(node.low)), SqlType.BOOLEAN)
            high = RexCall("<=", (convert(node.expr), convert(node.high)), SqlType.BOOLEAN)
            combined: RexNode = RexCall("AND", (low, high), SqlType.BOOLEAN)
            if node.negated:
                combined = RexCall("NOT", (combined,), SqlType.BOOLEAN)
            return combined
        if isinstance(node, ast.IsNull):
            op = "IS_NOT_NULL" if node.negated else "IS_NULL"
            return RexCall(op, (convert(node.expr),), SqlType.BOOLEAN)
        if isinstance(node, ast.InList):
            target = convert(node.expr)
            comparisons = tuple(
                RexCall("=", (target, convert(item)), SqlType.BOOLEAN)
                for item in node.items)
            combined = (comparisons[0] if len(comparisons) == 1
                        else RexCall("OR", comparisons, SqlType.BOOLEAN))
            if node.negated:
                combined = RexCall("NOT", (combined,), SqlType.BOOLEAN)
            return combined
        if isinstance(node, ast.Case):
            operands: list[RexNode] = []
            result_type: SqlType | None = None
            for condition, result in node.whens:
                cond_rex = convert(condition)
                self._check_boolean(cond_rex, "CASE WHEN")
                result_rex = convert(result)
                result_type = (result_rex.type if result_type is None
                               else self._merge_types(result_type, result_rex.type))
                operands.extend((cond_rex, result_rex))
            else_rex = (convert(node.else_result) if node.else_result is not None
                        else RexLiteral(None, SqlType.ANY))
            operands.append(else_rex)
            return RexCall("CASE", tuple(operands), result_type or SqlType.ANY)
        if isinstance(node, ast.Cast):
            try:
                target = _CAST_TYPES[node.type_name]
            except KeyError:
                raise SqlValidationError(
                    f"unsupported CAST target {node.type_name!r}") from None
            return RexCall("CAST", (convert(node.expr),), target)
        raise SqlValidationError(f"unsupported expression {node!r}")

    def _binary_rex(self, node: ast.BinaryOp, convert) -> RexNode:
        left = convert(node.left)
        right = convert(node.right)
        op = node.op
        if op in ("AND", "OR"):
            self._check_boolean(left, op)
            self._check_boolean(right, op)
            return RexCall(op, (left, right), SqlType.BOOLEAN)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            self._check_comparable(left, right, op)
            return RexCall(op, (left, right), SqlType.BOOLEAN)
        if op in ("+", "-", "*", "/", "%"):
            return RexCall(op, (left, right), common_numeric_type(left.type, right.type))
        if op == "||":
            return RexCall("||", (left, right), SqlType.VARCHAR)
        if op == "LIKE":
            return RexCall("LIKE", (left, right), SqlType.BOOLEAN)
        raise SqlValidationError(f"unknown binary operator {op!r}")

    @staticmethod
    def _literal_rex(value: object) -> RexLiteral:
        if value is None:
            return RexLiteral(None, SqlType.ANY)
        if isinstance(value, bool):
            return RexLiteral(value, SqlType.BOOLEAN)
        if isinstance(value, int):
            return RexLiteral(value,
                              SqlType.INTEGER if abs(value) <= _INT32_MAX
                              else SqlType.BIGINT)
        if isinstance(value, float):
            return RexLiteral(value, SqlType.DOUBLE)
        if isinstance(value, str):
            return RexLiteral(value, SqlType.VARCHAR)
        raise SqlValidationError(f"unsupported literal {value!r}")

    @staticmethod
    def _check_boolean(rex: RexNode, where: str) -> None:
        if rex.type not in (SqlType.BOOLEAN, SqlType.ANY):
            raise SqlValidationError(f"{where} requires boolean operands, got {rex.type}")

    @staticmethod
    def _check_comparable(left: RexNode, right: RexNode, op: str) -> None:
        a, b = left.type, right.type
        if SqlType.ANY in (a, b) or a == b:
            return
        if a.is_numeric and b.is_numeric:
            return
        raise SqlValidationError(f"cannot compare {a} {op} {b}")

    @staticmethod
    def _merge_types(a: SqlType, b: SqlType) -> SqlType:
        if a == b:
            return a
        if SqlType.ANY in (a, b):
            return SqlType.ANY
        if a.is_numeric and b.is_numeric:
            return common_numeric_type(a, b)
        raise SqlValidationError(f"CASE branches have incompatible types {a} and {b}")

    # -- AST utilities --------------------------------------------------------------------------

    @staticmethod
    def _ast_children(expr: ast.Expr) -> list[ast.Expr]:
        if isinstance(expr, ast.BinaryOp):
            return [expr.left, expr.right]
        if isinstance(expr, ast.UnaryOp):
            return [expr.operand]
        if isinstance(expr, ast.FuncCall):
            return list(expr.args)
        if isinstance(expr, ast.FloorTo):
            return [expr.arg]
        if isinstance(expr, ast.Between):
            return [expr.expr, expr.low, expr.high]
        if isinstance(expr, ast.IsNull):
            return [expr.expr]
        if isinstance(expr, ast.InList):
            return [expr.expr, *expr.items]
        if isinstance(expr, ast.Case):
            out = []
            for condition, result in expr.whens:
                out.extend((condition, result))
            if expr.else_result is not None:
                out.append(expr.else_result)
            return out
        if isinstance(expr, ast.Cast):
            return [expr.expr]
        if isinstance(expr, ast.OverCall):
            return [expr.func, *expr.partition_by, *(e for e, _ in expr.order_by)]
        return []

    def _contains_aggregate(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.OverCall):
            return False  # analytic, not grouped
        if isinstance(expr, ast.FuncCall) and is_aggregate_name(expr.name):
            return True
        return any(self._contains_aggregate(c) for c in self._ast_children(expr))

    def _contains_over(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.OverCall):
            return True
        return any(self._contains_over(c) for c in self._ast_children(expr))
