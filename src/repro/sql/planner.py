"""QueryPlanner facade: text → validated, optimized logical plan.

The SamzaSQL shell drives this class; it also handles DDL-ish statements
(CREATE VIEW registers into the catalog, INSERT INTO names the output
stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.errors import PlannerError, SqlValidationError
from repro.sql import ast
from repro.sql.catalog import Catalog
from repro.sql.converter import Converter
from repro.sql.parser import parse_statement
from repro.sql.rel.nodes import LogicalDelta, LogicalScan, RelNode
from repro.sql.rel.optimizer import Optimizer


@dataclass
class PlannedStatement:
    kind: str  # "select" | "view" | "insert" | "explain"
    plan: Optional[RelNode] = None
    is_streaming: bool = False
    output_stream: Optional[str] = None
    view_name: Optional[str] = None
    statement: Optional[ast.Statement] = None
    warnings: list[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.warnings is None:
            self.warnings = []


def _check_no_stuck_delta(plan: RelNode) -> None:
    """A Delta left over a table scan means 'SELECT STREAM from a table'."""
    if isinstance(plan, LogicalDelta):
        child = plan.input
        if isinstance(child, LogicalScan) and not child.is_stream:
            raise PlannerError(
                f"cannot stream table {child.source!r}: the STREAM keyword "
                f"requires at least one stream input")
        raise PlannerError(
            f"STREAM conversion could not be pushed into: {child._describe()}")
    for child in plan.inputs:
        _check_no_stuck_delta(child)


def _plan_is_streaming(statement: ast.SelectStmt) -> bool:
    return statement.stream


class QueryPlanner:
    """Parse → validate/convert → optimize."""

    def __init__(self, catalog: Catalog, optimizer: Optimizer | None = None):
        self.catalog = catalog
        self.optimizer = optimizer or Optimizer()

    def plan_statement(self, text: str) -> PlannedStatement:
        statement = parse_statement(text)
        if isinstance(statement, ast.ExplainStmt):
            # Plan the wrapped statement exactly as if it were submitted —
            # same validation, same optimization — but mark it kind
            # "explain" so the shell reports instead of running a job.
            inner = statement.statement
            query = (inner.query if isinstance(inner, ast.InsertInto)
                     else inner)
            plan = self._plan_select(query)
            return PlannedStatement(
                kind="explain", plan=plan,
                is_streaming=_plan_is_streaming(query),
                output_stream=(inner.target
                               if isinstance(inner, ast.InsertInto) else None),
                statement=statement,
                warnings=self._collect_warnings(plan,
                                                _plan_is_streaming(query)))
        if isinstance(statement, ast.CreateView):
            # Validate the view body eagerly so errors surface at CREATE time.
            body = Converter(self.catalog).convert_query(statement.query)
            if (statement.columns is not None
                    and len(statement.columns) != len(body.row_type)):
                raise SqlValidationError(
                    f"view {statement.name!r} declares {len(statement.columns)} "
                    f"columns but its query produces {len(body.row_type)}")
            self.catalog.register_view(
                statement.name, columns=statement.columns,
                query_ast=statement.query)
            return PlannedStatement(kind="view", view_name=statement.name,
                                    statement=statement)
        if isinstance(statement, ast.InsertInto):
            plan = self._plan_select(statement.query)
            return PlannedStatement(
                kind="insert", plan=plan,
                is_streaming=_plan_is_streaming(statement.query),
                output_stream=statement.target, statement=statement,
                warnings=self._collect_warnings(plan,
                                                _plan_is_streaming(statement.query)))
        assert isinstance(statement, ast.SelectStmt)
        plan = self._plan_select(statement)
        return PlannedStatement(kind="select", plan=plan,
                                is_streaming=_plan_is_streaming(statement),
                                statement=statement,
                                warnings=self._collect_warnings(
                                    plan, _plan_is_streaming(statement)))

    @staticmethod
    def _collect_warnings(plan: RelNode, is_streaming: bool) -> list[str]:
        """Planner diagnostics (paper future-work item 2).

        §7: "If this timestamp property is dropped during a projection,
        SamzaSQL loses the ability to perform time-based window
        aggregations on the resulting stream.  The query planner should
        provide better warnings and error messages on such scenarios."
        """
        warnings: list[str] = []
        if not is_streaming:
            return warnings
        from repro.sql.types import SqlType

        has_rowtime = any(
            f.name.lower() == "rowtime" and f.type in (SqlType.TIMESTAMP, SqlType.ANY)
            for f in plan.row_type.fields)
        if not has_rowtime:
            warnings.append(
                "output drops the 'rowtime' timestamp field: time-based "
                "window aggregations will not be possible on the derived "
                "stream (include rowtime, or a timestamp derived from it, "
                "in the projection)")
        return warnings

    def plan_query(self, text: str) -> RelNode:
        planned = self.plan_statement(text)
        if planned.plan is None:
            raise PlannerError(f"statement is not a query: {text!r}")
        return planned.plan

    def explain(self, text: str) -> str:
        return self.plan_query(text).explain()

    def _plan_select(self, select: ast.SelectStmt) -> RelNode:
        logical = Converter(self.catalog).convert_query(select)
        optimized = self.optimizer.optimize(logical)
        _check_no_stuck_delta(optimized)
        return optimized


