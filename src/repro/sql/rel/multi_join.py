"""Multi-way stream-join analysis (arXiv 2411.15835's planning step).

A left-deep chain of windowed stream-stream joins is collapsible into one
N-way operator when every conjunct of the combined join condition is either

* an equi-join between two inputs' fields, with at least one equivalence
  class (key family) touching *every* input — the shared partition key the
  single state layout is bucketed by; or
* a rowtime-window comparison between two inputs' timestamps
  (``a.rowtime <= b.rowtime + c`` and friends).

The analysis computes the pairwise time-offset matrix ``upper[i][j]`` =
max allowed ``t_i - t_j`` and closes it transitively (Floyd–Warshall over
``upper[i][j] <= upper[i][k] + upper[k][j]``): a 3-way query typically
only states A–B and A–C windows, but the operator probes B from a C
arrival too, so the derived B–C bound is what makes every probe finite.
A chain whose closed matrix still has an unbounded pair would need
infinite state on some side and is left to the pairwise cascade (which
rejects it with the same planner error as before).

The same analysis runs twice by design: once inside the optimizer rule as
the collapse *decision* (returning ``None`` means "keep the cascade") and
once in the physical planner as the *extraction* of key/time metadata for
:class:`~repro.samzasql.physical.MultiWayStreamJoinNode`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.rel.nodes import LogicalScan, RelNode
from repro.sql.rex import (
    RexCall,
    RexInputRef,
    RexLiteral,
    RexNode,
    split_conjunction,
)

_COMPARISONS = ("<", "<=", ">", ">=")

#: sentinel for "no bound yet" in the offset matrix.
_INF = float("inf")


@dataclass(frozen=True)
class MultiJoinAnalysis:
    """Everything the planner needs to run K inputs as one join operator."""

    widths: tuple[int, ...]          # fields per input
    offsets: tuple[int, ...]         # global index of each input's field 0
    rowtime_indexes: tuple[int, ...]  # per-input local rowtime index
    key_indexes: tuple[int, ...]     # per-input local equi-key index
    upper_ms: tuple[tuple[int, ...], ...]  # max(t_i - t_j), closed matrix

    @property
    def k(self) -> int:
        return len(self.widths)

    def retention_ms(self, port: int) -> int:
        """How long a row buffered on ``port`` can still match a future
        arrival on any other port.  Symmetric (like the binary operator's
        ``max(lower, upper)``) so interleaved near-synchronous streams
        never drop a row one direction of the window still needs."""
        spans = [max(self.upper_ms[j][port], self.upper_ms[port][j])
                 for j in range(self.k) if j != port]
        return max(0, *spans) if spans else 0


def input_offsets(inputs: tuple[RelNode, ...]) -> tuple[int, ...]:
    offsets = []
    total = 0
    for node in inputs:
        offsets.append(total)
        total += len(node.row_type)
    return tuple(offsets)


def stream_scan_of(node: RelNode) -> LogicalScan | None:
    """The unique stream scan inside a join input, or None."""
    found: list[LogicalScan] = []

    def walk(current: RelNode) -> None:
        if isinstance(current, LogicalScan):
            if current.is_stream:
                found.append(current)
            return
        for child in current.inputs:
            walk(child)

    walk(node)
    return found[0] if len(found) == 1 else None


def _rowtime_global_indexes(inputs: tuple[RelNode, ...],
                            offsets: tuple[int, ...]) -> list[int] | None:
    out = []
    for node, offset in zip(inputs, offsets):
        local = None
        for i, f in enumerate(node.row_type.fields):
            if f.name.lower() == "rowtime":
                local = i
                break
        if local is None:
            return None
        out.append(offset + local)
    return out


def analyze_multi_join(inputs: tuple[RelNode, ...],
                       condition: RexNode) -> MultiJoinAnalysis | None:
    """Classify a combined join condition; None means "not collapsible"."""
    k = len(inputs)
    if k < 3:
        return None
    offsets = input_offsets(inputs)
    widths = tuple(len(node.row_type) for node in inputs)
    total = offsets[-1] + widths[-1]
    rowtimes = _rowtime_global_indexes(inputs, offsets)
    if rowtimes is None:
        return None

    def input_of(index: int) -> int:
        for i in range(k - 1, -1, -1):
            if index >= offsets[i]:
                return i
        return 0

    # Union-find over field indexes, fed by the equi conjuncts.
    parent = list(range(total))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    def shifted_time(rex: RexNode) -> tuple[int, int] | None:
        """Match ``t``, ``t + c``, ``t - c`` where t is an input's rowtime;
        returns (input index, constant shift)."""
        if isinstance(rex, RexInputRef) and rex.index in rowtimes:
            return rowtimes.index(rex.index), 0
        if (isinstance(rex, RexCall) and rex.op in ("+", "-")
                and len(rex.operands) == 2):
            base, delta = rex.operands
            if (isinstance(base, RexInputRef) and base.index in rowtimes
                    and isinstance(delta, RexLiteral)
                    and isinstance(delta.value, (int, float))):
                sign = 1 if rex.op == "+" else -1
                return rowtimes.index(base.index), sign * int(delta.value)
        return None

    # upper[i][j]: max allowed t_i - t_j (None yet = unbounded).
    upper = [[0 if i == j else _INF for j in range(k)] for i in range(k)]

    def note_bound(op: str, a: tuple[int, int], b: tuple[int, int]) -> None:
        (ia, ca), (ib, cb) = a, b
        if ia == ib:
            return
        # t_a + ca (op) t_b + cb
        if op in (">", ">="):
            (ia, ca), (ib, cb) = (ib, cb), (ia, ca)
        # now: t_a + ca <= t_b + cb  =>  t_a - t_b <= cb - ca
        bound = cb - ca
        upper[ia][ib] = min(upper[ia][ib], bound)

    has_equi = False
    for conjunct in split_conjunction(condition):
        if not isinstance(conjunct, RexCall):
            return None
        if conjunct.op == "=" and len(conjunct.operands) == 2:
            a, b = conjunct.operands
            if not (isinstance(a, RexInputRef) and isinstance(b, RexInputRef)):
                return None
            if input_of(a.index) == input_of(b.index):
                return None
            union(a.index, b.index)
            has_equi = True
            continue
        if conjunct.op in _COMPARISONS and len(conjunct.operands) == 2:
            a = shifted_time(conjunct.operands[0])
            b = shifted_time(conjunct.operands[1])
            if a is None or b is None or a[0] == b[0]:
                return None
            note_bound(conjunct.op, a, b)
            continue
        return None
    if not has_equi:
        return None

    # One key family must cover every input; pick the lowest field per input.
    by_root: dict[int, list[int]] = {}
    for index in range(total):
        by_root.setdefault(find(index), []).append(index)
    key_indexes: tuple[int, ...] | None = None
    for members in by_root.values():
        if len(members) < 2:
            continue
        per_input: dict[int, int] = {}
        for member in members:
            owner = input_of(member)
            per_input.setdefault(owner, member)
        if len(per_input) == k:
            key_indexes = tuple(per_input[i] - offsets[i] for i in range(k))
            break
    if key_indexes is None:
        return None

    # Transitive closure: a bound through k tightens (or creates) i->j.
    for mid in range(k):
        for i in range(k):
            for j in range(k):
                via = upper[i][mid] + upper[mid][j]
                if via < upper[i][j]:
                    upper[i][j] = via
    for i in range(k):
        for j in range(k):
            if upper[i][j] == _INF:
                return None

    return MultiJoinAnalysis(
        widths=widths,
        offsets=offsets,
        rowtime_indexes=tuple(rowtimes[i] - offsets[i] for i in range(k)),
        key_indexes=key_indexes,
        upper_ms=tuple(tuple(int(v) for v in row) for row in upper),
    )
