"""Logical optimization rules.

"SamzaSQL uses Apache Calcite to parse, validate, convert the query to a
logical plan and finally apply some generic optimizations bundled with
Apache Calcite" (§4.2).  The generic rules implemented here are the ones a
streaming filter/project/join/window workload actually exercises:

* constant folding over Rex trees,
* Filter merge, Project merge, identity-Project removal,
* Filter pushdown through Project and into Join inputs,
* Delta pushdown (the Calcite streaming rule set): the ``STREAM`` keyword
  introduces a Delta at the root which these rules push to the scans,
  where a Delta over a stream scan is absorbed.
"""

from __future__ import annotations

from repro.sql.codegen import eval_constant
from repro.sql.rel.multi_join import analyze_multi_join
from repro.sql.rel.nodes import (
    LogicalAggregate,
    LogicalDelta,
    LogicalFilter,
    LogicalJoin,
    LogicalMultiJoin,
    LogicalProject,
    LogicalScan,
    LogicalWindowAgg,
    RelNode,
)
from repro.sql.rex import (
    RexCall,
    RexInputRef,
    RexLiteral,
    RexNode,
    make_conjunction,
    split_conjunction,
)
from repro.sql.types import SqlType


class Rule:
    """A local rewrite: ``apply`` returns a replacement node or None."""

    name = "rule"

    def apply(self, node: RelNode) -> RelNode | None:
        raise NotImplementedError


# -- Rex utilities -----------------------------------------------------------


def substitute_refs(node: RexNode, exprs: tuple[RexNode, ...]) -> RexNode:
    """Replace every input ref with the corresponding expression."""
    if isinstance(node, RexInputRef):
        return exprs[node.index]
    if isinstance(node, RexCall):
        return RexCall(node.op,
                       tuple(substitute_refs(o, exprs) for o in node.operands),
                       node.type)
    return node


def fold_constants(node: RexNode) -> RexNode:
    """Bottom-up constant folding; keeps the node's declared type."""
    if not isinstance(node, RexCall):
        return node
    operands = tuple(fold_constants(o) for o in node.operands)
    folded = RexCall(node.op, operands, node.type)
    if node.op.startswith("UDF:"):
        return folded  # UDFs may be impure; never fold them at plan time
    if all(isinstance(o, RexLiteral) for o in operands):
        try:
            return RexLiteral(eval_constant(folded), node.type)
        except Exception:
            return folded  # division by zero etc.: leave for runtime
    # Boolean short-circuits with partial literals.
    if node.op == "AND":
        kept = []
        for operand in operands:
            if isinstance(operand, RexLiteral):
                if operand.value is False:
                    return RexLiteral(False, SqlType.BOOLEAN)
                continue  # TRUE conjunct drops out
            kept.append(operand)
        result = make_conjunction(kept)
        return result if result is not None else RexLiteral(True, SqlType.BOOLEAN)
    if node.op == "OR":
        kept = []
        for operand in operands:
            if isinstance(operand, RexLiteral):
                if operand.value is True:
                    return RexLiteral(True, SqlType.BOOLEAN)
                continue
            kept.append(operand)
        if not kept:
            return RexLiteral(False, SqlType.BOOLEAN)
        if len(kept) == 1:
            return kept[0]
        return RexCall("OR", tuple(kept), SqlType.BOOLEAN)
    return folded


# -- rules ---------------------------------------------------------------------


class ConstantFoldingRule(Rule):
    name = "ConstantFolding"

    def apply(self, node: RelNode) -> RelNode | None:
        if isinstance(node, LogicalFilter):
            folded = fold_constants(node.condition)
            if folded != node.condition:
                return LogicalFilter(node.input, folded)
        if isinstance(node, LogicalProject):
            folded_exprs = tuple(fold_constants(e) for e in node.exprs)
            if folded_exprs != node.exprs:
                return LogicalProject(node.input, folded_exprs, node.names)
        if isinstance(node, LogicalJoin):
            folded = fold_constants(node.condition)
            if folded != node.condition:
                return LogicalJoin(node.left, node.right, node.kind, folded)
        return None


class TrueFilterRemoveRule(Rule):
    name = "TrueFilterRemove"

    def apply(self, node: RelNode) -> RelNode | None:
        if (isinstance(node, LogicalFilter)
                and isinstance(node.condition, RexLiteral)
                and node.condition.value is True):
            return node.input
        return None


class FilterMergeRule(Rule):
    name = "FilterMerge"

    def apply(self, node: RelNode) -> RelNode | None:
        if isinstance(node, LogicalFilter) and isinstance(node.input, LogicalFilter):
            inner = node.input
            combined = make_conjunction(
                split_conjunction(inner.condition) + split_conjunction(node.condition))
            return LogicalFilter(inner.input, combined)
        return None


class ProjectMergeRule(Rule):
    name = "ProjectMerge"

    def apply(self, node: RelNode) -> RelNode | None:
        if isinstance(node, LogicalProject) and isinstance(node.input, LogicalProject):
            inner = node.input
            merged = tuple(substitute_refs(e, inner.exprs) for e in node.exprs)
            return LogicalProject(inner.input, merged, node.names)
        return None


class ProjectRemoveRule(Rule):
    name = "ProjectRemove"

    def apply(self, node: RelNode) -> RelNode | None:
        if isinstance(node, LogicalProject) and node.is_identity():
            return node.input
        return None


class FilterProjectTransposeRule(Rule):
    """Filter(Project(x)) -> Project(Filter'(x)): evaluate the predicate
    before materializing projections (cheaper rows sooner)."""

    name = "FilterProjectTranspose"

    def apply(self, node: RelNode) -> RelNode | None:
        if isinstance(node, LogicalFilter) and isinstance(node.input, LogicalProject):
            project = node.input
            pushed = substitute_refs(node.condition, project.exprs)
            return LogicalProject(
                LogicalFilter(project.input, pushed), project.exprs, project.names)
        return None


class FilterJoinPushRule(Rule):
    """Push single-side conjuncts of a filter above an inner join into the
    corresponding join input."""

    name = "FilterJoinPush"

    def apply(self, node: RelNode) -> RelNode | None:
        if not (isinstance(node, LogicalFilter) and isinstance(node.input, LogicalJoin)):
            return None
        join = node.input
        if join.kind != "INNER":
            return None
        left_width = len(join.left.row_type)
        total_width = left_width + len(join.right.row_type)
        left_pushed: list[RexNode] = []
        right_pushed: list[RexNode] = []
        remaining: list[RexNode] = []
        for conjunct in split_conjunction(node.condition):
            fields = conjunct.accept_fields()
            if fields and max(fields) < left_width:
                left_pushed.append(conjunct)
            elif fields and min(fields) >= left_width:
                mapping = {i: i - left_width for i in range(left_width, total_width)}
                from repro.sql.rex import remap_input_refs
                right_pushed.append(remap_input_refs(conjunct, mapping))
            else:
                remaining.append(conjunct)
        if not left_pushed and not right_pushed:
            return None
        left = join.left
        if left_pushed:
            left = LogicalFilter(left, make_conjunction(left_pushed))
        right = join.right
        if right_pushed:
            right = LogicalFilter(right, make_conjunction(right_pushed))
        new_join = LogicalJoin(left, right, join.kind, join.condition)
        rest = make_conjunction(remaining)
        return LogicalFilter(new_join, rest) if rest is not None else new_join


def _contains_stream_scan(node: RelNode) -> bool:
    if isinstance(node, LogicalScan):
        return node.is_stream
    return any(_contains_stream_scan(child) for child in node.inputs)


class MultiJoinCollapseRule(Rule):
    """Collapse a left-deep chain of windowed stream-stream INNER joins
    into one :class:`LogicalMultiJoin` (arXiv 2411.15835).

    Fires on a join whose left child is itself a join (or an already
    collapsed multi-join), when the *combined* condition decomposes into
    equi-key conjuncts sharing one key family across every input plus
    finite pairwise rowtime windows — the shapes the N-way operator's
    shared state layout can serve.  Everything else (stream-to-relation
    joins, non-equi residuals, unbounded windows, binary joins) is left
    alone and plans as the existing pairwise cascade.
    """

    name = "MultiJoinCollapse"

    def apply(self, node: RelNode) -> RelNode | None:
        if not (isinstance(node, LogicalJoin) and node.kind == "INNER"):
            return None
        left = node.left
        if isinstance(left, LogicalMultiJoin):
            inputs = left.join_inputs + (node.right,)
            inner_condition = left.condition
        elif isinstance(left, LogicalJoin) and left.kind == "INNER":
            inputs = (left.left, left.right, node.right)
            inner_condition = left.condition
        else:
            return None
        if not all(_contains_stream_scan(child) for child in inputs):
            return None  # a relation side: stays a stream-to-relation join
        condition = make_conjunction(
            split_conjunction(inner_condition) + split_conjunction(node.condition))
        if analyze_multi_join(inputs, condition) is None:
            return None
        return LogicalMultiJoin(inputs, condition)


class DeltaPushRule(Rule):
    """Push Delta toward the leaves; absorb it into stream scans.

    For joins, Delta goes only into stream-containing sides; a Delta over
    a table-only side would be empty (tables don't produce inserts during
    the query), which is exactly the stream-to-relation join shape.
    """

    name = "DeltaPush"

    def apply(self, node: RelNode) -> RelNode | None:
        if not isinstance(node, LogicalDelta):
            return None
        child = node.input
        if isinstance(child, LogicalScan):
            return child if child.is_stream else None  # absorbed / stuck
        if isinstance(child, LogicalDelta):
            return child  # Delta is idempotent
        if isinstance(child, LogicalFilter):
            return LogicalFilter(LogicalDelta(child.input), child.condition)
        if isinstance(child, LogicalProject):
            return LogicalProject(LogicalDelta(child.input), child.exprs, child.names)
        if isinstance(child, LogicalAggregate):
            return child.with_inputs([LogicalDelta(child.input)])
        if isinstance(child, LogicalWindowAgg):
            return child.with_inputs([LogicalDelta(child.input)])
        if isinstance(child, LogicalJoin):
            left_stream = _contains_stream_scan(child.left)
            right_stream = _contains_stream_scan(child.right)
            left = LogicalDelta(child.left) if left_stream else child.left
            right = LogicalDelta(child.right) if right_stream else child.right
            if not left_stream and not right_stream:
                return None  # fully relational join under a Delta: stuck
            return LogicalJoin(left, right, child.kind, child.condition)
        if isinstance(child, LogicalMultiJoin):
            # Every collapsed input is a stream side by construction.
            return LogicalMultiJoin(
                tuple(LogicalDelta(i) for i in child.join_inputs),
                child.condition)
        return None


def default_rules(multiway_joins: bool = True) -> list[Rule]:
    """The standard rule set; ``multiway_joins=False`` plans N-way join
    chains as the pairwise cascade (used for A/B benchmarking and as the
    ``execution.multiway.join=false`` escape hatch)."""
    rules: list[Rule] = [
        ConstantFoldingRule(),
        TrueFilterRemoveRule(),
        FilterMergeRule(),
        FilterProjectTransposeRule(),
        FilterJoinPushRule(),
        ProjectMergeRule(),
        ProjectRemoveRule(),
        DeltaPushRule(),
    ]
    if multiway_joins:
        rules.append(MultiJoinCollapseRule())
    return rules


DEFAULT_RULES: list[Rule] = default_rules()
