"""Fixed-point rule driver over the logical plan."""

from __future__ import annotations

from repro.common.errors import PlannerError
from repro.sql.rel.nodes import RelNode
from repro.sql.rel.rules import DEFAULT_RULES, Rule


class Optimizer:
    """Applies rules bottom-up until no rule fires (with an iteration cap)."""

    def __init__(self, rules: list[Rule] | None = None, max_passes: int = 50):
        self.rules = list(rules) if rules is not None else list(DEFAULT_RULES)
        self.max_passes = max_passes

    def optimize(self, plan: RelNode) -> RelNode:
        current = plan
        for _ in range(self.max_passes):
            rewritten = self._rewrite_once(current)
            if rewritten == current:
                return current
            current = rewritten
        raise PlannerError(
            f"optimizer did not reach a fixed point in {self.max_passes} passes "
            f"(rule set cycles?)")

    def _rewrite_once(self, node: RelNode) -> RelNode:
        new_inputs = [self._rewrite_once(child) for child in node.inputs]
        if list(node.inputs) != new_inputs:
            node = node.with_inputs(new_inputs)
        for rule in self.rules:
            replacement = rule.apply(node)
            if replacement is not None and replacement != node:
                return replacement
        return node
