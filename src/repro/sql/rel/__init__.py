"""Logical relational algebra (Calcite's RelNode role)."""

from repro.sql.rel.nodes import (
    GroupWindow,
    LogicalAggregate,
    LogicalDelta,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
    LogicalWindowAgg,
    RelNode,
)

__all__ = [
    "RelNode",
    "LogicalScan",
    "LogicalDelta",
    "LogicalFilter",
    "LogicalProject",
    "LogicalAggregate",
    "LogicalWindowAgg",
    "LogicalJoin",
    "GroupWindow",
]
