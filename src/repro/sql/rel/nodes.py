"""Logical plan nodes.

The physical plan is "a tree of relational algebra operators such as scan,
filter, project and join where scan operators are at the leaf nodes" (§4.2)
— these are the logical counterparts the optimizer works on before the
SamzaSQL physical planner lowers them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sql.rex import AggCall, RexNode
from repro.sql.types import RelField, RowType, SqlType


class RelNode:
    """Base class: every node knows its inputs and output row type."""

    inputs: tuple["RelNode", ...] = ()
    row_type: RowType

    def explain(self, indent: int = 0) -> str:
        """Human-readable plan tree (Calcite's EXPLAIN flavour)."""
        line = "  " * indent + self._describe()
        children = [child.explain(indent + 1) for child in self.inputs]
        return "\n".join([line, *children])

    def _describe(self) -> str:
        return type(self).__name__

    def with_inputs(self, inputs: list["RelNode"]) -> "RelNode":
        raise NotImplementedError


@dataclass(frozen=True)
class LogicalScan(RelNode):
    """Leaf: read a named stream or table from the catalog."""

    source: str
    row_type: RowType
    is_stream: bool
    rowtime_index: Optional[int] = None
    inputs: tuple[RelNode, ...] = ()

    def _describe(self) -> str:
        kind = "stream" if self.is_stream else "table"
        return f"LogicalScan({self.source}, {kind})"

    def with_inputs(self, inputs: list[RelNode]) -> "LogicalScan":
        assert not inputs
        return self


@dataclass(frozen=True)
class LogicalDelta(RelNode):
    """The STREAM keyword: convert a relation to its insert stream.

    Calcite's streaming model introduces Delta at the query root and
    pushes it to the leaves; a Delta directly over a stream scan is
    absorbed (the scan already produces a stream), over a table scan it
    is a validation error.
    """

    input: RelNode

    @property
    def inputs(self) -> tuple[RelNode, ...]:  # type: ignore[override]
        return (self.input,)

    @property
    def row_type(self) -> RowType:  # type: ignore[override]
        return self.input.row_type

    def _describe(self) -> str:
        return "LogicalDelta"

    def with_inputs(self, inputs: list[RelNode]) -> "LogicalDelta":
        (child,) = inputs
        return LogicalDelta(child)


@dataclass(frozen=True)
class LogicalFilter(RelNode):
    input: RelNode
    condition: RexNode

    @property
    def inputs(self) -> tuple[RelNode, ...]:  # type: ignore[override]
        return (self.input,)

    @property
    def row_type(self) -> RowType:  # type: ignore[override]
        return self.input.row_type

    def _describe(self) -> str:
        return f"LogicalFilter({self.condition})"

    def with_inputs(self, inputs: list[RelNode]) -> "LogicalFilter":
        (child,) = inputs
        return LogicalFilter(child, self.condition)


@dataclass(frozen=True)
class LogicalProject(RelNode):
    input: RelNode
    exprs: tuple[RexNode, ...]
    names: tuple[str, ...]

    @property
    def inputs(self) -> tuple[RelNode, ...]:  # type: ignore[override]
        return (self.input,)

    @property
    def row_type(self) -> RowType:  # type: ignore[override]
        return RowType([RelField(name, expr.type)
                        for name, expr in zip(self.names, self.exprs)])

    def _describe(self) -> str:
        cols = ", ".join(f"{n}={e}" for n, e in zip(self.names, self.exprs))
        return f"LogicalProject({cols})"

    def with_inputs(self, inputs: list[RelNode]) -> "LogicalProject":
        (child,) = inputs
        return LogicalProject(child, self.exprs, self.names)

    def is_identity(self) -> bool:
        """True if this project just forwards every input field unchanged."""
        from repro.sql.rex import RexInputRef
        if len(self.exprs) != len(self.input.row_type):
            return False
        for i, expr in enumerate(self.exprs):
            if not (isinstance(expr, RexInputRef) and expr.index == i):
                return False
        return list(self.names) == self.input.row_type.field_names


@dataclass(frozen=True)
class GroupWindow:
    """TUMBLE/HOP window in a GROUP BY (§3.6).

    ``time_expr`` evaluates the event timestamp; ``emit_ms`` is the
    emit/advance interval and ``retain_ms`` the window size (equal for
    tumbling).  ``align_ms`` shifts window boundaries (HOP's 4th argument).
    """

    kind: str  # TUMBLE or HOP
    time_expr: RexNode
    emit_ms: int
    retain_ms: int
    align_ms: int = 0


@dataclass(frozen=True)
class LogicalAggregate(RelNode):
    """GROUP BY aggregation, optionally windowed.

    Output row type: ``[wstart, wend]`` (when windowed) ++ group keys ++
    aggregate outputs.
    """

    input: RelNode
    group_exprs: tuple[RexNode, ...]
    group_names: tuple[str, ...]
    agg_calls: tuple[AggCall, ...]
    window: Optional[GroupWindow] = None

    @property
    def inputs(self) -> tuple[RelNode, ...]:  # type: ignore[override]
        return (self.input,)

    @property
    def row_type(self) -> RowType:  # type: ignore[override]
        fields: list[RelField] = []
        if self.window is not None:
            fields.append(RelField("wstart", SqlType.TIMESTAMP))
            fields.append(RelField("wend", SqlType.TIMESTAMP))
        for name, expr in zip(self.group_names, self.group_exprs):
            fields.append(RelField(name, expr.type))
        for call in self.agg_calls:
            fields.append(RelField(call.name, call.type))
        return RowType(fields)

    def _describe(self) -> str:
        window = f", window={self.window.kind}" if self.window else ""
        keys = ", ".join(str(e) for e in self.group_exprs)
        aggs = ", ".join(str(c) for c in self.agg_calls)
        return f"LogicalAggregate(keys=[{keys}], aggs=[{aggs}]{window})"

    def with_inputs(self, inputs: list[RelNode]) -> "LogicalAggregate":
        (child,) = inputs
        return LogicalAggregate(child, self.group_exprs, self.group_names,
                                self.agg_calls, self.window)


@dataclass(frozen=True)
class LogicalWindowAgg(RelNode):
    """Analytic (OVER) sliding-window aggregation (§3.7).

    One output row per input row: all input fields plus one field per
    aggregate.  ``preceding_ms`` for RANGE frames; ``preceding_rows`` for
    ROWS frames; both None means UNBOUNDED.
    """

    input: RelNode
    partition_exprs: tuple[RexNode, ...]
    order_expr: RexNode
    agg_calls: tuple[AggCall, ...]
    frame_mode: str = "RANGE"
    preceding_ms: Optional[int] = None
    preceding_rows: Optional[int] = None

    @property
    def inputs(self) -> tuple[RelNode, ...]:  # type: ignore[override]
        return (self.input,)

    @property
    def row_type(self) -> RowType:  # type: ignore[override]
        fields = list(self.input.row_type.fields)
        fields.extend(RelField(c.name, c.type) for c in self.agg_calls)
        return RowType(fields)

    def _describe(self) -> str:
        aggs = ", ".join(str(c) for c in self.agg_calls)
        bound = (f"{self.preceding_ms}ms" if self.preceding_ms is not None
                 else f"{self.preceding_rows}rows" if self.preceding_rows is not None
                 else "UNBOUNDED")
        return f"LogicalWindowAgg([{aggs}] {self.frame_mode} {bound} PRECEDING)"

    def with_inputs(self, inputs: list[RelNode]) -> "LogicalWindowAgg":
        (child,) = inputs
        return LogicalWindowAgg(child, self.partition_exprs, self.order_expr,
                                self.agg_calls, self.frame_mode,
                                self.preceding_ms, self.preceding_rows)


@dataclass(frozen=True)
class LogicalSort(RelNode):
    """ORDER BY [LIMIT] — meaningful for batch queries only (an unbounded
    stream has no total order to sort by)."""

    input: RelNode
    sort_keys: tuple[tuple[RexNode, bool], ...]  # (expr, ascending)
    limit: Optional[int] = None

    @property
    def inputs(self) -> tuple[RelNode, ...]:  # type: ignore[override]
        return (self.input,)

    @property
    def row_type(self) -> RowType:  # type: ignore[override]
        return self.input.row_type

    def _describe(self) -> str:
        keys = ", ".join(f"{e}{'' if asc else ' DESC'}" for e, asc in self.sort_keys)
        limit = f" LIMIT {self.limit}" if self.limit is not None else ""
        return f"LogicalSort({keys}{limit})"

    def with_inputs(self, inputs: list[RelNode]) -> "LogicalSort":
        (child,) = inputs
        return LogicalSort(child, self.sort_keys, self.limit)


@dataclass(frozen=True)
class LogicalJoin(RelNode):
    """Join; condition refs number left fields then right fields."""

    left: RelNode
    right: RelNode
    kind: str  # INNER / LEFT / RIGHT / FULL
    condition: RexNode

    @property
    def inputs(self) -> tuple[RelNode, ...]:  # type: ignore[override]
        return (self.left, self.right)

    @property
    def row_type(self) -> RowType:  # type: ignore[override]
        return self.left.row_type.concat(self.right.row_type)

    def _describe(self) -> str:
        return f"LogicalJoin({self.kind}, {self.condition})"

    def with_inputs(self, inputs: list[RelNode]) -> "LogicalJoin":
        left, right = inputs
        return LogicalJoin(left, right, self.kind, self.condition)


@dataclass(frozen=True)
class LogicalMultiJoin(RelNode):
    """A collapsed left-deep chain of INNER windowed stream joins.

    ``condition`` is the conjunction of every collapsed join's condition;
    its input refs number the concatenation of all inputs' fields in
    order, which is exactly the numbering the original nested joins used
    (each outer condition already saw its left subtree's concatenated
    row), so collapse requires no ref rewriting.  Produced only by
    ``MultiJoinCollapseRule`` after the analysis in
    :mod:`repro.sql.rel.multi_join` has proven the chain collapsible.
    """

    join_inputs: tuple[RelNode, ...]
    condition: RexNode

    @property
    def inputs(self) -> tuple[RelNode, ...]:  # type: ignore[override]
        return self.join_inputs

    @property
    def row_type(self) -> RowType:  # type: ignore[override]
        result = self.join_inputs[0].row_type
        for node in self.join_inputs[1:]:
            result = result.concat(node.row_type)
        return result

    def _describe(self) -> str:
        return f"LogicalMultiJoin(k={len(self.join_inputs)}, {self.condition})"

    def with_inputs(self, inputs: list[RelNode]) -> "LogicalMultiJoin":
        return LogicalMultiJoin(tuple(inputs), self.condition)
