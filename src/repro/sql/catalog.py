"""The catalog: stream/table/view metadata for validation and planning.

SamzaSQL "depends on both the Kafka schema registry and Calcite's built-in
JSON based schema descriptions to provide the query planner with the
metadata necessary for query planning" (§3.2).  The catalog here can be
populated directly, from mini-Avro schemas, or from a
:class:`~repro.serde.registry.SchemaRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import SqlValidationError
from repro.serde.avro import AvroSchema
from repro.sql.types import RowType, SqlType, row_type_from_avro


@dataclass
class StreamDefinition:
    """A stream: ordered partitions of timestamped tuples (§3.1).

    ``rate_per_sec`` is an optional declared/observed arrival-rate hint
    (rows per second across the stream); the multi-way join planner uses
    it to order join inputs by expected state size (window span × rate),
    falling back to window span alone when any input lacks a rate.
    """

    name: str
    row_type: RowType
    topic: str = ""
    rowtime_field: str = "rowtime"
    avro_schema: Optional[AvroSchema] = None
    rate_per_sec: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.topic:
            self.topic = self.name
        if not self.row_type.contains(self.rowtime_field):
            raise SqlValidationError(
                f"stream {self.name!r} lacks its timestamp field "
                f"{self.rowtime_field!r} (SamzaSQL requires an event timestamp)")

    @property
    def rowtime_index(self) -> int:
        return self.row_type.index_of(self.rowtime_field)


@dataclass
class TableDefinition:
    """A relation at rest; may be backed by a changelog stream (§4.4)."""

    name: str
    row_type: RowType
    changelog_topic: str = ""
    key_field: str = ""
    avro_schema: Optional[AvroSchema] = None

    def __post_init__(self) -> None:
        if not self.changelog_topic:
            self.changelog_topic = f"{self.name}-changelog"
        if self.key_field and not self.row_type.contains(self.key_field):
            raise SqlValidationError(
                f"table {self.name!r}: key field {self.key_field!r} not in schema")


@dataclass
class ViewDefinition:
    """A named query (§3.5); inlined during conversion.

    Holds either the raw query text or a pre-parsed SELECT AST (or both —
    the AST wins).
    """

    name: str
    query_text: str = ""
    columns: tuple[str, ...] | None = None
    query_ast: object | None = None

    def __post_init__(self) -> None:
        if not self.query_text and self.query_ast is None:
            raise SqlValidationError(f"view {self.name!r} has no body")


class Catalog:
    """Case-insensitive registry of streams, tables and views."""

    def __init__(self):
        self._streams: dict[str, StreamDefinition] = {}
        self._tables: dict[str, TableDefinition] = {}
        self._views: dict[str, ViewDefinition] = {}

    # -- registration -----------------------------------------------------------

    def _check_free(self, name: str) -> None:
        key = name.lower()
        if key in self._streams or key in self._tables or key in self._views:
            raise SqlValidationError(f"object {name!r} already defined in catalog")

    def register_stream(self, definition: StreamDefinition) -> StreamDefinition:
        self._check_free(definition.name)
        self._streams[definition.name.lower()] = definition
        return definition

    def register_table(self, definition: TableDefinition) -> TableDefinition:
        self._check_free(definition.name)
        self._tables[definition.name.lower()] = definition
        return definition

    def register_view(self, name: str, query_text: str = "",
                      columns: tuple[str, ...] | None = None,
                      query_ast: object | None = None) -> ViewDefinition:
        self._check_free(name)
        view = ViewDefinition(name=name, query_text=query_text, columns=columns,
                              query_ast=query_ast)
        self._views[name.lower()] = view
        return view

    def register_stream_from_avro(self, name: str, schema: AvroSchema,
                                  rowtime_field: str = "rowtime",
                                  rate_per_sec: float | None = None,
                                  ) -> StreamDefinition:
        return self.register_stream(StreamDefinition(
            name=name, row_type=row_type_from_avro(schema),
            rowtime_field=rowtime_field, avro_schema=schema,
            rate_per_sec=rate_per_sec))

    def register_table_from_avro(self, name: str, schema: AvroSchema,
                                 key_field: str = "",
                                 changelog_topic: str = "") -> TableDefinition:
        return self.register_table(TableDefinition(
            name=name, row_type=row_type_from_avro(schema),
            key_field=key_field, changelog_topic=changelog_topic,
            avro_schema=schema))

    # -- lookup ----------------------------------------------------------------------

    def stream(self, name: str) -> StreamDefinition | None:
        return self._streams.get(name.lower())

    def table(self, name: str) -> TableDefinition | None:
        return self._tables.get(name.lower())

    def view(self, name: str) -> ViewDefinition | None:
        return self._views.get(name.lower())

    def resolve(self, name: str):
        """Stream, table or view by name; raises if unknown."""
        for registry in (self._streams, self._tables, self._views):
            found = registry.get(name.lower())
            if found is not None:
                return found
        known = sorted([*self._streams, *self._tables, *self._views])
        raise SqlValidationError(f"unknown stream/table/view {name!r}; known: {known}")

    def resolvable(self, name: str) -> bool:
        """True when the name is bound to a stream, table or view."""
        key = name.lower()
        return key in self._streams or key in self._tables or key in self._views

    def unregister(self, name: str) -> bool:
        """Remove a stream/table/view binding (virtual-table DROP).

        Returns whether anything was removed.  Backing topics are left
        alone — the catalog owns metadata, not data.
        """
        key = name.lower()
        removed = False
        for registry in (self._streams, self._tables, self._views):
            if registry.pop(key, None) is not None:
                removed = True
        return removed

    def object_names(self) -> list[str]:
        return sorted([*self._streams, *self._tables, *self._views])
