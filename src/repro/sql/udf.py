"""User-defined functions and aggregates (paper future-work item 4).

§7: "the current implementation ... does not provide a concrete API to
define user defined aggregates even though it is theoretically possible."
This module provides that API:

* :func:`register_scalar_udf` — a named scalar function usable anywhere an
  expression is (SELECT items, WHERE, join conditions);
* :func:`register_udaf` — a user-defined aggregate usable in windowed
  GROUP BY aggregations and OVER sliding windows.

Like Java UDFs on Samza's classpath, implementations live in a
process-wide registry; the physical plan references them by name and the
task resolves them at operator-build time (they cannot travel through
ZooKeeper as JSON).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import SqlValidationError
from repro.sql.types import SqlType


@dataclass(frozen=True)
class ScalarUdf:
    name: str
    fn: Callable[..., Any]
    min_args: int
    max_args: int
    result_type: SqlType


class Udaf:
    """User-defined aggregate: subclass and register.

    ``create()`` returns a fresh accumulator state (must be a plain,
    serde-able value), ``add(state, value) -> state`` folds one input, and
    ``result(state)`` produces the output.  States are stored in the
    operator's changelog-backed store, so they must round-trip through the
    generic object serde (numbers, strings, lists, dicts).
    """

    name: str = ""
    result_type: SqlType = SqlType.ANY

    def create(self) -> Any:
        raise NotImplementedError

    def add(self, state: Any, value: Any) -> Any:
        raise NotImplementedError

    def result(self, state: Any) -> Any:
        raise NotImplementedError


class UdfRegistry:
    def __init__(self):
        self._scalars: dict[str, ScalarUdf] = {}
        self._udafs: dict[str, Udaf] = {}

    # -- scalar ------------------------------------------------------------

    def register_scalar(self, name: str, fn: Callable[..., Any],
                        min_args: int = 1, max_args: int | None = None,
                        result_type: SqlType = SqlType.ANY) -> ScalarUdf:
        key = name.upper()
        if key in self._scalars:
            raise SqlValidationError(f"scalar UDF {key!r} already registered")
        udf = ScalarUdf(key, fn, min_args,
                        max_args if max_args is not None else min_args,
                        result_type)
        self._scalars[key] = udf
        return udf

    def scalar(self, name: str) -> ScalarUdf | None:
        return self._scalars.get(name.upper())

    # -- aggregates -----------------------------------------------------------

    def register_udaf(self, udaf: Udaf) -> Udaf:
        key = udaf.name.upper()
        if not key:
            raise SqlValidationError("UDAF must define a name")
        if key in self._udafs:
            raise SqlValidationError(f"UDAF {key!r} already registered")
        self._udafs[key] = udaf
        return udaf

    def udaf(self, name: str) -> Udaf | None:
        return self._udafs.get(name.upper())

    def clear(self) -> None:
        self._scalars.clear()
        self._udafs.clear()


#: Process-wide registry (the "classpath" of this deployment).
UDF_REGISTRY = UdfRegistry()


def register_scalar_udf(name: str, fn: Callable[..., Any], min_args: int = 1,
                        max_args: int | None = None,
                        result_type: SqlType = SqlType.ANY) -> ScalarUdf:
    return UDF_REGISTRY.register_scalar(name, fn, min_args, max_args, result_type)


def register_udaf(udaf: Udaf) -> Udaf:
    return UDF_REGISTRY.register_udaf(udaf)
