"""SQL tokenizer.

Produces a flat token list with line/column positions for error messages.
Handles: keywords/identifiers (case-insensitive keywords, double-quoted
identifiers preserve case), string literals with ``''`` escaping, numeric
literals, multi-char operators, and both comment styles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import SqlParseError

KEYWORDS = {
    "SELECT", "STREAM", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AS",
    "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "ON", "AND", "OR",
    "NOT", "BETWEEN", "IN", "IS", "NULL", "TRUE", "FALSE", "CASE", "WHEN",
    "THEN", "ELSE", "END", "CAST", "INTERVAL", "TIME", "TO", "OVER",
    "PARTITION", "ORDER", "RANGE", "ROWS", "PRECEDING", "FOLLOWING",
    "CURRENT", "ROW", "UNBOUNDED", "CREATE", "VIEW", "INSERT", "INTO",
    "VALUES", "DISTINCT", "ALL", "LIKE", "ASC", "DESC", "LIMIT", "UNION",
    "EXISTS", "SECOND", "MINUTE", "HOUR", "DAY", "MILLISECOND", "EXPLAIN",
}

MULTI_CHAR_OPS = ("<>", "<=", ">=", "!=", "||")
SINGLE_CHAR_OPS = "+-*/%(),.<>=;"


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    STRING = "string"
    NUMBER = "number"
    OPERATOR = "operator"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in keywords

    def matches_op(self, *ops: str) -> bool:
        return self.type is TokenType.OPERATOR and self.value in ops


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(text)

    def column() -> int:
        return pos - line_start + 1

    while pos < n:
        ch = text[pos]
        # whitespace
        if ch in " \t\r":
            pos += 1
            continue
        if ch == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        # line comment
        if text.startswith("--", pos):
            end = text.find("\n", pos)
            pos = n if end == -1 else end
            continue
        # block comment
        if text.startswith("/*", pos):
            end = text.find("*/", pos + 2)
            if end == -1:
                raise SqlParseError("unterminated block comment", line, column())
            line += text.count("\n", pos, end)
            pos = end + 2
            continue
        # string literal
        if ch == "'":
            start_line, start_col = line, column()
            pos += 1
            out = []
            while True:
                if pos >= n:
                    raise SqlParseError("unterminated string literal", start_line, start_col)
                if text[pos] == "'":
                    if pos + 1 < n and text[pos + 1] == "'":  # escaped quote
                        out.append("'")
                        pos += 2
                        continue
                    pos += 1
                    break
                if text[pos] == "\n":
                    line += 1
                    line_start = pos + 1
                out.append(text[pos])
                pos += 1
            tokens.append(Token(TokenType.STRING, "".join(out), start_line, start_col))
            continue
        # quoted identifier
        if ch == '"':
            start_col = column()
            end = text.find('"', pos + 1)
            if end == -1:
                raise SqlParseError("unterminated quoted identifier", line, start_col)
            tokens.append(Token(TokenType.IDENTIFIER, text[pos + 1:end], line, start_col))
            pos = end + 1
            continue
        # number
        if ch.isdigit() or (ch == "." and pos + 1 < n and text[pos + 1].isdigit()):
            start = pos
            start_col = column()
            seen_dot = False
            while pos < n and (text[pos].isdigit() or (text[pos] == "." and not seen_dot)):
                if text[pos] == ".":
                    # don't treat 'a.1' style; only consume dot followed by digit
                    if pos + 1 >= n or not text[pos + 1].isdigit():
                        break
                    seen_dot = True
                pos += 1
            tokens.append(Token(TokenType.NUMBER, text[start:pos], line, start_col))
            continue
        # identifier / keyword
        if ch.isalpha() or ch == "_":
            start = pos
            start_col = column()
            while pos < n and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, line, start_col))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, line, start_col))
            continue
        # operators
        matched = False
        for op in MULTI_CHAR_OPS:
            if text.startswith(op, pos):
                tokens.append(Token(TokenType.OPERATOR, op, line, column()))
                pos += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in SINGLE_CHAR_OPS:
            tokens.append(Token(TokenType.OPERATOR, ch, line, column()))
            pos += 1
            continue
        raise SqlParseError(f"unexpected character {ch!r}", line, column())

    tokens.append(Token(TokenType.EOF, "", line, column()))
    return tokens
