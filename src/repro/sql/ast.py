"""Abstract syntax tree for streaming SQL.

Plain dataclasses, produced by :mod:`repro.sql.parser` and consumed by the
validator/converter.  Expression nodes are untyped here; typing happens
during conversion to the relational algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# --------------------------------------------------------------------------
# expressions
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object  # int | float | str | bool | None


@dataclass(frozen=True)
class IntervalLit:
    """Interval literal, normalized to milliseconds."""

    millis: int


@dataclass(frozen=True)
class TimeLit:
    """TIME literal (milliseconds past midnight) — HOP alignment."""

    millis: int


@dataclass(frozen=True)
class ColumnRef:
    """Possibly-qualified column reference: ``units`` or ``Orders.units``."""

    parts: tuple[str, ...]

    @property
    def qualifier(self) -> str | None:
        return self.parts[-2] if len(self.parts) > 1 else None

    @property
    def name(self) -> str:
        return self.parts[-1]

    def __str__(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class Star:
    """``*`` or ``alias.*``."""

    qualifier: str | None = None


@dataclass(frozen=True)
class FuncCall:
    name: str  # upper-cased
    args: tuple["Expr", ...]
    distinct: bool = False
    is_star: bool = False  # COUNT(*)


@dataclass(frozen=True)
class FloorTo:
    """``FLOOR(expr TO unit)`` — the implicit-tumble idiom of Listing 3."""

    arg: "Expr"
    unit: str  # SECOND / MINUTE / HOUR / DAY


@dataclass(frozen=True)
class BinaryOp:
    op: str  # = <> < <= > >= + - * / % AND OR LIKE ||
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    op: str  # NOT, -
    operand: "Expr"


@dataclass(frozen=True)
class Between:
    expr: "Expr"
    low: "Expr"
    high: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class IsNull:
    expr: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    expr: "Expr"
    items: tuple["Expr", ...]
    negated: bool = False


@dataclass(frozen=True)
class Case:
    whens: tuple[tuple["Expr", "Expr"], ...]
    else_result: Optional["Expr"]


@dataclass(frozen=True)
class Cast:
    expr: "Expr"
    type_name: str


@dataclass(frozen=True)
class WindowFrame:
    """``RANGE INTERVAL '5' MINUTE PRECEDING``-style frames."""

    mode: str  # RANGE or ROWS
    preceding: Union["Expr", str]  # expression or "UNBOUNDED" / "CURRENT"


@dataclass(frozen=True)
class OverCall:
    """Analytic function: ``agg(...) OVER (PARTITION BY ... ORDER BY ... frame)``."""

    func: FuncCall
    partition_by: tuple["Expr", ...]
    order_by: tuple[tuple["Expr", bool], ...]  # (expr, ascending)
    frame: WindowFrame | None


Expr = Union[Literal, IntervalLit, TimeLit, ColumnRef, Star, FuncCall, FloorTo,
             BinaryOp, UnaryOp, Between, IsNull, InList, Case, Cast, OverCall]


# --------------------------------------------------------------------------
# relations / statements
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class NamedTable:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable:
    query: "SelectStmt"
    alias: str | None = None


@dataclass(frozen=True)
class JoinRef:
    left: "TableRef"
    right: "TableRef"
    kind: str  # INNER / LEFT / RIGHT / FULL
    condition: Expr


TableRef = Union[NamedTable, DerivedTable, JoinRef]


@dataclass(frozen=True)
class SelectStmt:
    stream: bool
    items: tuple[SelectItem, ...]
    from_clause: TableRef
    where: Expr | None = None
    group_by: tuple[Expr, ...] = field(default=())
    having: Expr | None = None
    distinct: bool = False
    order_by: tuple[tuple[Expr, bool], ...] = field(default=())  # (expr, asc)
    limit: int | None = None


@dataclass(frozen=True)
class CreateView:
    name: str
    columns: tuple[str, ...] | None
    query: SelectStmt


@dataclass(frozen=True)
class InsertInto:
    target: str
    query: SelectStmt


@dataclass(frozen=True)
class ExplainStmt:
    """EXPLAIN <select | insert>: report plans without submitting a job."""

    statement: Union[SelectStmt, InsertInto]


Statement = Union[SelectStmt, CreateView, InsertInto, ExplainStmt]
