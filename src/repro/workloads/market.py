"""Bids/Asks market-data generator (§3.2's trading-flavoured streams)."""

from __future__ import annotations

import random
from typing import Iterator

from repro.kafka.cluster import KafkaCluster
from repro.kafka.producer import Producer
from repro.serde.avro import AvroSchema, AvroSerde

BIDS_SCHEMA = AvroSchema.record(
    "Bids",
    [("rowtime", "long"), ("bidId", "long"), ("ticker", "string"),
     ("shares", "int"), ("price", "double")],
)

ASKS_SCHEMA = AvroSchema.record(
    "Asks",
    [("rowtime", "long"), ("askId", "long"), ("ticker", "string"),
     ("shares", "int"), ("price", "double")],
)

TRADES_SCHEMA = AvroSchema.record(
    "Trades",
    [("rowtime", "long"), ("tradeId", "long"), ("ticker", "string"),
     ("shares", "int"), ("price", "double")],
)

_TICKERS = ["ACME", "GLOBX", "INIT", "UMBR", "WAYN", "STRK", "HOOLI", "PPER"]


def ticker_universe(count: int) -> list[str]:
    """A synthetic ticker list of arbitrary size (for fan-out control)."""
    if count <= len(_TICKERS):
        return _TICKERS[:count]
    return _TICKERS + [f"SYN{i:03d}" for i in range(count - len(_TICKERS))]


class MarketGenerator:
    """Interleaved bid/ask flow with a slowly drifting mid price per ticker."""

    def __init__(self, seed: int = 45, start_ts: int = 1_000_000,
                 interarrival_ms: int = 5, tickers: list[str] | None = None):
        self.rng = random.Random(seed)
        self.start_ts = start_ts
        self.interarrival_ms = interarrival_ms
        self.tickers = list(tickers) if tickers is not None else list(_TICKERS)
        self._mid = {t: 50.0 + 10 * i for i, t in enumerate(self.tickers)}
        self.bid_serde = AvroSerde(BIDS_SCHEMA)
        self.ask_serde = AvroSerde(ASKS_SCHEMA)

    def events(self, count: int) -> Iterator[tuple[str, dict]]:
        """('bid'|'ask', record) pairs in timestamp order."""
        for i in range(count):
            ts = self.start_ts + i * self.interarrival_ms
            ticker = self.rng.choice(self.tickers)
            self._mid[ticker] *= 1 + self.rng.uniform(-0.001, 0.001)
            mid = self._mid[ticker]
            side = "bid" if self.rng.random() < 0.5 else "ask"
            spread = mid * self.rng.uniform(0.0005, 0.005)
            price = mid - spread if side == "bid" else mid + spread
            record = {
                "rowtime": ts,
                ("bidId" if side == "bid" else "askId"): i,
                "ticker": ticker,
                "shares": self.rng.choice([100, 200, 500, 1000]),
                "price": round(price, 4),
            }
            yield side, record

    def produce(self, cluster: KafkaCluster, bids_topic: str, asks_topic: str,
                count: int, partitions: int = 8) -> tuple[int, int]:
        for topic in (bids_topic, asks_topic):
            cluster.create_topic(topic, partitions=partitions, if_not_exists=True)
        producer = Producer(cluster)
        bids = asks = 0
        for side, record in self.events(count):
            if side == "bid":
                producer.send(bids_topic, self.bid_serde.to_bytes(record),
                              key=record["ticker"].encode(),
                              timestamp_ms=record["rowtime"])
                bids += 1
            else:
                producer.send(asks_topic, self.ask_serde.to_bytes(record),
                              key=record["ticker"].encode(),
                              timestamp_ms=record["rowtime"])
                asks += 1
        return bids, asks


class TradesGenerator:
    """Sparse executed-trade prints over the same ticker universe.

    Trades arrive far less often than quotes (``interarrival_ms`` defaults
    to 60ms vs the quote flow's 5ms), which is what makes them the cheap
    side of a quotes-to-trades join.
    """

    def __init__(self, seed: int = 46, start_ts: int = 1_000_000,
                 interarrival_ms: int = 60, tickers: list[str] | None = None):
        self.rng = random.Random(seed)
        self.start_ts = start_ts
        self.interarrival_ms = interarrival_ms
        self.tickers = list(tickers) if tickers is not None else list(_TICKERS)
        self.serde = AvroSerde(TRADES_SCHEMA)

    def records(self, count: int) -> Iterator[dict]:
        for i in range(count):
            yield {
                "rowtime": self.start_ts + i * self.interarrival_ms,
                "tradeId": i,
                "ticker": self.rng.choice(self.tickers),
                "shares": self.rng.choice([100, 200, 500]),
                "price": round(50.0 + self.rng.uniform(-1.0, 1.0), 4),
            }

    def produce(self, cluster: KafkaCluster, topic: str, count: int,
                partitions: int = 8) -> int:
        cluster.create_topic(topic, partitions=partitions, if_not_exists=True)
        producer = Producer(cluster)
        for record in self.records(count):
            producer.send(topic, self.serde.to_bytes(record),
                          key=record["ticker"].encode(),
                          timestamp_ms=record["rowtime"])
        return count
