"""The Orders stream generator.

§5.1: "we choose 100 bytes messages for our benchmark by adding a random
string to each record from Orders stream."  ``padding`` is sized so the
Avro-encoded record lands at ~100 bytes.
"""

from __future__ import annotations

import random
import string
from typing import Iterator

from repro.kafka.cluster import KafkaCluster
from repro.kafka.producer import Producer
from repro.serde.avro import AvroSchema, AvroSerde

ORDERS_SCHEMA = AvroSchema.record(
    "Orders",
    [("rowtime", "long"), ("productId", "int"), ("orderId", "long"),
     ("units", "int")],
)


def padded_orders_schema() -> AvroSchema:
    """Orders plus the benchmark's random-string padding field."""
    return AvroSchema.record(
        "Orders",
        [("rowtime", "long"), ("productId", "int"), ("orderId", "long"),
         ("units", "int"), ("padding", "string")],
    )


def make_order(order_id: int, rowtime: int, product_count: int = 100,
               rng: random.Random | None = None,
               padding_bytes: int = 0) -> dict:
    rng = rng or random
    record = {
        "rowtime": rowtime,
        "productId": rng.randrange(product_count),
        "orderId": order_id,
        "units": rng.randrange(100),
    }
    if padding_bytes:
        record["padding"] = "".join(
            rng.choices(string.ascii_letters, k=padding_bytes))
    return record


class OrdersGenerator:
    """Deterministic (seeded) Orders workload.

    ``target_message_bytes`` pads records toward the paper's ~100-byte
    message size; set to 0 for unpadded records.
    """

    def __init__(self, product_count: int = 100, seed: int = 42,
                 start_ts: int = 1_000_000, interarrival_ms: int = 1,
                 target_message_bytes: int = 100):
        self.product_count = product_count
        self.rng = random.Random(seed)
        self.start_ts = start_ts
        self.interarrival_ms = interarrival_ms
        self.padded = target_message_bytes > 0
        self.schema = padded_orders_schema() if self.padded else ORDERS_SCHEMA
        self.serde = AvroSerde(self.schema)
        self._padding_bytes = 0
        if self.padded:
            self._padding_bytes = self._calibrate_padding(target_message_bytes)

    def _calibrate_padding(self, target: int) -> int:
        probe = make_order(10**6, self.start_ts, self.product_count,
                           random.Random(0), padding_bytes=0)
        probe["padding"] = ""
        base = len(self.serde.to_bytes(probe))
        return max(target - base, 0)

    def records(self, count: int, start_id: int = 0) -> Iterator[dict]:
        for i in range(count):
            yield make_order(
                start_id + i,
                self.start_ts + (start_id + i) * self.interarrival_ms,
                self.product_count, self.rng,
                padding_bytes=self._padding_bytes)

    def encoded(self, count: int, start_id: int = 0) -> Iterator[tuple[bytes, bytes, int]]:
        """(key, value, timestamp) triples ready to produce."""
        for record in self.records(count, start_id):
            yield (str(record["productId"]).encode(),
                   self.serde.to_bytes(record), record["rowtime"])

    def produce(self, cluster: KafkaCluster, topic: str, count: int,
                partitions: int = 32, start_id: int = 0) -> int:
        """Create the topic (if needed) and write ``count`` records."""
        cluster.create_topic(topic, partitions=partitions, if_not_exists=True)
        producer = Producer(cluster)
        written = 0
        for key, value, ts in self.encoded(count, start_id):
            producer.send(topic, value, key=key, timestamp_ms=ts)
            written += 1
        return written

    def average_message_bytes(self, sample: int = 200) -> float:
        total = sum(len(value) for _, value, _ in
                    OrdersGenerator(self.product_count, seed=7,
                                    target_message_bytes=self._padding_bytes and 100)
                    .encoded(sample))
        return total / sample


ORDER_STAGES = ("Fills", "Shipments", "Invoices")


def order_stage_schema(name: str) -> AvroSchema:
    """Schema of one fulfilment-stage stream (same key family as Orders)."""
    return AvroSchema.record(
        name, [("rowtime", "long"), ("orderId", "long"), ("units", "int")])


class OrderLifecycleGenerator:
    """Each order observed again on Fills, Shipments and Invoices.

    Every order is re-emitted on the downstream stage streams with a
    growing jittered delay, all keyed by ``orderId`` — the K-way join
    scenario: reassemble the fulfilment lifecycle inside a rowtime window
    anchored at the original order.  Unlike :meth:`OrdersGenerator.produce`
    (which keys by ``productId`` for the relation join), every topic here
    is keyed by ``orderId`` so the join sides are co-partitioned.
    """

    def __init__(self, seed: int = 46, start_ts: int = 1_000_000,
                 interarrival_ms: int = 5, product_count: int = 100,
                 stage_delays_ms: tuple[int, ...] = (600, 1_600, 2_600),
                 jitter_ms: int = 350):
        self.rng = random.Random(seed)
        self.start_ts = start_ts
        self.interarrival_ms = interarrival_ms
        self.product_count = product_count
        self.stage_delays_ms = stage_delays_ms
        self.jitter_ms = jitter_ms
        self.serdes = {"Orders": AvroSerde(ORDERS_SCHEMA)}
        for stage in ORDER_STAGES:
            self.serdes[stage] = AvroSerde(order_stage_schema(stage))

    def events(self, count: int) -> Iterator[tuple[str, dict]]:
        """(stream_name, record) pairs, one order plus its stages at a time."""
        for i in range(count):
            ts = self.start_ts + i * self.interarrival_ms
            order = make_order(i, ts, self.product_count, self.rng)
            yield "Orders", order
            for stage, delay in zip(ORDER_STAGES, self.stage_delays_ms):
                yield stage, {
                    "rowtime": ts + delay + self.rng.randrange(self.jitter_ms),
                    "orderId": i,
                    "units": order["units"],
                }

    def produce(self, cluster: KafkaCluster, count: int, partitions: int = 4,
                streams: tuple[str, ...] | None = None) -> dict[str, int]:
        """Write ``count`` orders (and their stage records) per stream.

        ``streams`` limits which lifecycle streams are produced (always
        includes Orders); topics are named after the streams.
        """
        wanted = set(streams) if streams is not None else (
            {"Orders"} | set(ORDER_STAGES))
        wanted.add("Orders")
        for name in wanted:
            cluster.create_topic(name, partitions=partitions,
                                 if_not_exists=True)
        producer = Producer(cluster)
        written = {name: 0 for name in wanted}
        for name, record in self.events(count):
            if name not in wanted:
                continue
            producer.send(name, self.serdes[name].to_bytes(record),
                          key=str(record["orderId"]).encode(),
                          timestamp_ms=record["rowtime"])
            written[name] += 1
        return written
