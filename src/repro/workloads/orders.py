"""The Orders stream generator.

§5.1: "we choose 100 bytes messages for our benchmark by adding a random
string to each record from Orders stream."  ``padding`` is sized so the
Avro-encoded record lands at ~100 bytes.
"""

from __future__ import annotations

import random
import string
from typing import Iterator

from repro.kafka.cluster import KafkaCluster
from repro.kafka.producer import Producer
from repro.serde.avro import AvroSchema, AvroSerde

ORDERS_SCHEMA = AvroSchema.record(
    "Orders",
    [("rowtime", "long"), ("productId", "int"), ("orderId", "long"),
     ("units", "int")],
)


def padded_orders_schema() -> AvroSchema:
    """Orders plus the benchmark's random-string padding field."""
    return AvroSchema.record(
        "Orders",
        [("rowtime", "long"), ("productId", "int"), ("orderId", "long"),
         ("units", "int"), ("padding", "string")],
    )


def make_order(order_id: int, rowtime: int, product_count: int = 100,
               rng: random.Random | None = None,
               padding_bytes: int = 0) -> dict:
    rng = rng or random
    record = {
        "rowtime": rowtime,
        "productId": rng.randrange(product_count),
        "orderId": order_id,
        "units": rng.randrange(100),
    }
    if padding_bytes:
        record["padding"] = "".join(
            rng.choices(string.ascii_letters, k=padding_bytes))
    return record


class OrdersGenerator:
    """Deterministic (seeded) Orders workload.

    ``target_message_bytes`` pads records toward the paper's ~100-byte
    message size; set to 0 for unpadded records.
    """

    def __init__(self, product_count: int = 100, seed: int = 42,
                 start_ts: int = 1_000_000, interarrival_ms: int = 1,
                 target_message_bytes: int = 100):
        self.product_count = product_count
        self.rng = random.Random(seed)
        self.start_ts = start_ts
        self.interarrival_ms = interarrival_ms
        self.padded = target_message_bytes > 0
        self.schema = padded_orders_schema() if self.padded else ORDERS_SCHEMA
        self.serde = AvroSerde(self.schema)
        self._padding_bytes = 0
        if self.padded:
            self._padding_bytes = self._calibrate_padding(target_message_bytes)

    def _calibrate_padding(self, target: int) -> int:
        probe = make_order(10**6, self.start_ts, self.product_count,
                           random.Random(0), padding_bytes=0)
        probe["padding"] = ""
        base = len(self.serde.to_bytes(probe))
        return max(target - base, 0)

    def records(self, count: int, start_id: int = 0) -> Iterator[dict]:
        for i in range(count):
            yield make_order(
                start_id + i,
                self.start_ts + (start_id + i) * self.interarrival_ms,
                self.product_count, self.rng,
                padding_bytes=self._padding_bytes)

    def encoded(self, count: int, start_id: int = 0) -> Iterator[tuple[bytes, bytes, int]]:
        """(key, value, timestamp) triples ready to produce."""
        for record in self.records(count, start_id):
            yield (str(record["productId"]).encode(),
                   self.serde.to_bytes(record), record["rowtime"])

    def produce(self, cluster: KafkaCluster, topic: str, count: int,
                partitions: int = 32, start_id: int = 0) -> int:
        """Create the topic (if needed) and write ``count`` records."""
        cluster.create_topic(topic, partitions=partitions, if_not_exists=True)
        producer = Producer(cluster)
        written = 0
        for key, value, ts in self.encoded(count, start_id):
            producer.send(topic, value, key=key, timestamp_ms=ts)
            written += 1
        return written

    def average_message_bytes(self, sample: int = 200) -> float:
        total = sum(len(value) for _, value, _ in
                    OrdersGenerator(self.product_count, seed=7,
                                    target_message_bytes=self._padding_bytes and 100)
                    .encoded(sample))
        return total / sample
