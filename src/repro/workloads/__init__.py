"""Synthetic workload generators for the paper's evaluation (§5.1).

The evaluation uses synthetic data for the ``Orders`` stream and
``Products`` relation, padded to ~100-byte messages (the sweet spot the
Kafka benchmark identifies), written to 32-partition topics.
"""

from repro.workloads.orders import (
    ORDERS_SCHEMA,
    OrdersGenerator,
    make_order,
    padded_orders_schema,
)
from repro.workloads.products import PRODUCTS_SCHEMA, ProductsGenerator
from repro.workloads.packets import PACKETS_SCHEMA, PacketsGenerator
from repro.workloads.market import ASKS_SCHEMA, BIDS_SCHEMA, MarketGenerator

__all__ = [
    "ORDERS_SCHEMA",
    "OrdersGenerator",
    "make_order",
    "padded_orders_schema",
    "PRODUCTS_SCHEMA",
    "ProductsGenerator",
    "PACKETS_SCHEMA",
    "PacketsGenerator",
    "ASKS_SCHEMA",
    "BIDS_SCHEMA",
    "MarketGenerator",
]
