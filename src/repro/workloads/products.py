"""The Products relation generator (changelog-stream form, §4.4)."""

from __future__ import annotations

import random
from typing import Iterator

from repro.kafka.cluster import KafkaCluster
from repro.kafka.producer import Producer
from repro.serde.avro import AvroSchema, AvroSerde

PRODUCTS_SCHEMA = AvroSchema.record(
    "Products",
    [("productId", "int"), ("name", "string"), ("supplierId", "int")],
)


class ProductsGenerator:
    """Products rows keyed by productId, produced as a compacted changelog."""

    def __init__(self, product_count: int = 100, supplier_count: int = 10,
                 seed: int = 43):
        self.product_count = product_count
        self.supplier_count = supplier_count
        self.rng = random.Random(seed)
        self.serde = AvroSerde(PRODUCTS_SCHEMA)

    def records(self) -> Iterator[dict]:
        for pid in range(self.product_count):
            yield {
                "productId": pid,
                "name": f"product-{pid}",
                "supplierId": self.rng.randrange(self.supplier_count),
            }

    def produce(self, cluster: KafkaCluster, topic: str,
                partitions: int = 32) -> int:
        cluster.create_topic(topic, partitions=partitions,
                             cleanup_policy="compact", if_not_exists=True)
        producer = Producer(cluster)
        written = 0
        for record in self.records():
            producer.send(topic, self.serde.to_bytes(record),
                          key=str(record["productId"]).encode())
            written += 1
        return written
