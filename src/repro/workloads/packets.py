"""PacketsR1/R2 generator — the §3.8.1 router-latency scenario."""

from __future__ import annotations

import random
from typing import Iterator

from repro.kafka.cluster import KafkaCluster
from repro.kafka.producer import Producer
from repro.serde.avro import AvroSchema, AvroSerde

PACKETS_SCHEMA = AvroSchema.record(
    "Packets",
    [("rowtime", "long"), ("sourcetime", "long"), ("packetId", "long")],
)


class PacketsGenerator:
    """Packets observed at router R1 then at R2 with a random transit delay."""

    def __init__(self, seed: int = 44, start_ts: int = 1_000_000,
                 interarrival_ms: int = 10, max_transit_ms: int = 1500,
                 loss_rate: float = 0.0):
        self.rng = random.Random(seed)
        self.start_ts = start_ts
        self.interarrival_ms = interarrival_ms
        self.max_transit_ms = max_transit_ms
        self.loss_rate = loss_rate
        self.serde = AvroSerde(PACKETS_SCHEMA)

    def pairs(self, count: int) -> Iterator[tuple[dict, dict | None]]:
        """(r1_record, r2_record_or_None) per packet; None = lost in transit."""
        for pid in range(count):
            t1 = self.start_ts + pid * self.interarrival_ms
            r1 = {"rowtime": t1, "sourcetime": t1 - self.rng.randrange(5),
                  "packetId": pid}
            if self.rng.random() < self.loss_rate:
                yield r1, None
                continue
            transit = self.rng.randrange(1, self.max_transit_ms)
            r2 = {"rowtime": t1 + transit, "sourcetime": r1["sourcetime"],
                  "packetId": pid}
            yield r1, r2

    def produce(self, cluster: KafkaCluster, topic_r1: str, topic_r2: str,
                count: int, partitions: int = 32) -> tuple[int, int]:
        for topic in (topic_r1, topic_r2):
            cluster.create_topic(topic, partitions=partitions, if_not_exists=True)
        producer = Producer(cluster)
        sent_r1 = sent_r2 = 0
        for r1, r2 in self.pairs(count):
            producer.send(topic_r1, self.serde.to_bytes(r1),
                          key=str(r1["packetId"]).encode(),
                          timestamp_ms=r1["rowtime"])
            sent_r1 += 1
            if r2 is not None:
                producer.send(topic_r2, self.serde.to_bytes(r2),
                              key=str(r2["packetId"]).encode(),
                              timestamp_ms=r2["rowtime"])
                sent_r2 += 1
        return sent_r1, sent_r2
