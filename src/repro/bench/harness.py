"""The figure harness: regenerate the paper's evaluation series.

For each figure, the harness (1) measures real per-message costs of the
native and SamzaSQL pipelines through the in-process runtime, then (2)
feeds those costs into the calibrated cluster model to produce the
throughput-vs-container-count series the paper plots.  ``print`` output
mirrors the figures: one row per container count, native and SamzaSQL
columns, plus the ratio — the number the paper's claims are about
(filter/project ≈30-40% slower, join ≈2x slower, sliding window ≈parity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.calibration import CalibrationResult, calibrate_pair
from repro.cluster.scaling import ClusterParameters, ScalingModel

# Figure id -> benchmark query (paper §5.1).
FIGURES = {
    "5a": "filter",
    "5b": "project",
    "5c": "join",
    "6": "window",
}

DEFAULT_CONTAINER_COUNTS = [1, 2, 4, 6, 8]


@dataclass
class BenchResult:
    """One figure's regenerated data."""

    figure: str
    query: str
    calibration: dict[str, CalibrationResult]
    native_series: list[tuple[int, float]]
    samzasql_series: list[tuple[int, float]]
    notes: list[str] = field(default_factory=list)

    @property
    def slowdown_percent(self) -> float:
        """SamzaSQL throughput deficit vs native at max containers."""
        native = self.native_series[-1][1]
        sql = self.samzasql_series[-1][1]
        return (1 - sql / native) * 100.0

    @property
    def native_over_sql_factor(self) -> float:
        return self.native_series[-1][1] / self.samzasql_series[-1][1]

    def scaling_factor(self, series: list[tuple[int, float]]) -> float:
        """Throughput gain from min to max container count (linear would
        equal the container ratio)."""
        return series[-1][1] / series[0][1]

    def format_table(self) -> str:
        lines = [
            f"Figure {self.figure} — {self.query} query throughput "
            f"(messages/second, simulated cluster, measured per-message costs)",
            f"  calibration: native {self.calibration['native'].per_message_ms:.4f} "
            f"ms/msg, samzasql {self.calibration['samzasql'].per_message_ms:.4f} ms/msg",
            f"  {'containers':>10} {'native':>12} {'samzasql':>12} {'sql/native':>10}",
        ]
        for (count, native), (_, sql) in zip(self.native_series,
                                             self.samzasql_series):
            lines.append(
                f"  {count:>10} {native:>12.0f} {sql:>12.0f} {sql / native:>10.2f}")
        lines.append(
            f"  SamzaSQL vs native at {self.native_series[-1][0]} containers: "
            f"{self.slowdown_percent:.0f}% slower "
            f"({self.native_over_sql_factor:.2f}x)")
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def run_figure(figure: str, container_counts: list[int] | None = None,
               messages: int = 4000, partitions: int = 32,
               params: ClusterParameters | None = None) -> BenchResult:
    """Regenerate one of the paper's figures."""
    try:
        query = FIGURES[figure]
    except KeyError:
        raise ValueError(f"unknown figure {figure!r}; known: {sorted(FIGURES)}") from None
    counts = container_counts or DEFAULT_CONTAINER_COUNTS
    calibration = calibrate_pair(query, messages=messages, partitions=partitions)
    model = ScalingModel(params or ClusterParameters(partitions=partitions))
    native_series = model.sweep(counts, calibration["native"].per_message_ms)
    sql_series = model.sweep(counts, calibration["samzasql"].per_message_ms)
    notes = []
    if query == "window":
        notes.append("paper ran sliding-window tests on a single machine "
                     "(EC2 I/O throttling); throughput is dominated by "
                     "KV-store access in both variants")
    return BenchResult(
        figure=figure, query=query, calibration=calibration,
        native_series=native_series, samzasql_series=sql_series, notes=notes)


def measure_query(query: str, variant: str, messages: int = 4000,
                  partitions: int = 32) -> CalibrationResult:
    """Convenience re-export for benchmark files."""
    from repro.bench.calibration import measure

    return measure(query, variant, messages=messages, partitions=partitions)


def run_all_figures(messages: int = 4000) -> dict[str, BenchResult]:
    return {figure: run_figure(figure, messages=messages) for figure in FIGURES}


def profile_operators(query: str, messages: int = 4000, partitions: int = 32,
                      containers: int = 1) -> list[dict]:
    """Per-operator profile of one benchmark query, read from the
    ``__metrics`` snapshot stream (not by reaching into registries).

    Returns one dict per operator: messages in/out summed over partitions,
    worst-partition p95 process time, and retained window state.
    """
    from repro.bench.calibration import (
        SQL_QUERIES,
        _build_runtime,
        _feed_workload,
    )
    from repro.workloads.orders import padded_orders_schema
    from repro.workloads.products import PRODUCTS_SCHEMA

    env = _build_runtime(partitions, metrics_interval_ms=1_000)
    _feed_workload(env.cluster, query, messages, partitions)
    env.shell.register_stream("Orders", padded_orders_schema(),
                              partitions=partitions)
    if query == "join":
        env.shell.register_table("Products", PRODUCTS_SCHEMA,
                                 key_field="productId", partitions=partitions)
    env.shell.execute(SQL_QUERIES[query], containers=containers)
    env.run_until_quiescent()

    ops: dict[str, dict] = {}
    for record in env.metrics(force=True):
        if not record["operator"]:
            continue
        entry = ops.setdefault(record["operator"], {
            "operator": record["operator"], "messages_in": 0.0,
            "messages_out": 0.0, "process_ns_p95": 0.0,
            "window_state_size": 0.0,
        })
        if record["metric"] == "messages-in":
            entry["messages_in"] += record["value"]
        elif record["metric"] == "messages-out":
            entry["messages_out"] += record["value"]
        elif record["metric"] == "process-ns.p95":
            entry["process_ns_p95"] = max(entry["process_ns_p95"],
                                          record["value"])
        elif record["metric"] == "window-state-size":
            entry["window_state_size"] += record["value"]
    return sorted(ops.values(), key=lambda e: e["operator"])
