"""Heavy-traffic load generator for the multi-tenant SQL front door.

Drives hundreds of concurrent named sessions — mixed query templates,
disjoint per-tenant ACLs, one deliberately over-quota tenant — through
:class:`repro.serving.FrontDoor` onto shared containers, and writes the
top-line "heavy traffic" numbers to ``BENCH_frontdoor.json``:

* admitted / queued / rejected streaming submissions (rejections by
  structured error code);
* per-statement front-door latency percentiles (parse + validate +
  admit + plan + submit, measured at the session);
* end-to-end throughput (messages processed per wall second) while all
  admitted queries share the cluster;
* the concurrent named-session count the process sustained.

Run:  python -m repro.bench.frontdoor [--sessions 240] [--smoke]

``--smoke`` shrinks the run for CI and *gates*: admission control must
reject the over-quota tenant with ``QUOTA_EXCEEDED``, ACLs must reject
denied tables with ``SECURITY_VIOLATION``, and admitted-query
throughput must stay above ``--min-throughput``.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.samzasql.environment import SamzaSqlEnvironment
from repro.serving import (FrontDoor, PendingQuery, PipelineError,
                           TenantPolicy, TenantQuota)
from repro.workloads.orders import OrdersGenerator, padded_orders_schema
from repro.workloads.products import PRODUCTS_SCHEMA, ProductsGenerator

DEFAULT_OUT = pathlib.Path(__file__).resolve().parents[3] / "BENCH_frontdoor.json"

#: Mixed statement templates, cycled per session.  ``{units}`` varies by
#: session so compiled-plan caching (if any) cannot collapse the mix.
STREAMING_TEMPLATES = (
    "SELECT STREAM rowtime, productId, units FROM Orders WHERE units > {units}",
    "SELECT STREAM rowtime, orderId FROM Orders",
    "SELECT STREAM rowtime, productId, units * 2 AS twice FROM Orders "
    "WHERE productId = {product}",
)
BATCH_TEMPLATES = (
    "SELECT productId, COUNT(*) AS c FROM Orders GROUP BY productId",
    "SELECT orderId, units FROM Orders WHERE units > {units}",
)
#: Probe a table only even-numbered tenants may read: odd tenants draw
#: SECURITY_VIOLATION rejections, the realistic "oops, wrong namespace"
#: traffic every shared deployment sees.
DENIED_PROBE = "SELECT name FROM Products"

#: The deliberately over-quota tenant: one slot, no queue.
HOG_QUOTA = TenantQuota(max_concurrent_queries=1, max_queue_depth=0)


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def build_environment(tenants: int, quota: TenantQuota,
                      messages: int) -> tuple[SamzaSqlEnvironment, FrontDoor]:
    """A shared cluster sized so *admitted* load fits: the admission
    quota, not YARN exhaustion, is what bounds each tenant."""
    slots = tenants * quota.max_concurrent_queries + 4
    node_count = max(2, (slots + 7) // 8)
    env = SamzaSqlEnvironment(broker_count=3, node_count=node_count,
                              node_mem_mb=16_384, node_cores=8,
                              metrics_interval_ms=1_000)
    front_door = env.front_door(default_quota=quota)
    catalog = front_door.catalog
    catalog.add_data_source("retail", "shared Kafka cluster, retail topics")
    catalog.create("Orders", "retail", padded_orders_schema(),
                   kind="stream", partitions=4)
    catalog.create("Products", "retail", PRODUCTS_SCHEMA, kind="table",
                   key_field="productId", partitions=4)
    OrdersGenerator(product_count=20).produce(
        env.cluster, "Orders", messages, partitions=4)
    ProductsGenerator(product_count=20).produce(
        env.cluster, "Products-changelog", partitions=4)
    return env, front_door


def register_tenants(front_door: FrontDoor, tenants: int,
                     quota: TenantQuota) -> list[str]:
    """Tenant 0 is the over-quota hog; even tenants read everything in
    ``retail``, odd tenants only ``retail.Orders`` (disjoint ACLs)."""
    names = []
    for i in range(tenants):
        tenant = f"tenant-{i:03d}"
        if i % 2 == 0:
            allowed = frozenset({"retail.*"})
        else:
            allowed = frozenset({"retail.Orders"})
        front_door.register_tenant(
            tenant, TenantPolicy(tenant, allowed),
            quota=HOG_QUOTA if i == 0 else quota)
        names.append(tenant)
    return names


def run(sessions: int = 240, tenants: int = 24, messages: int = 2000,
        statements_per_session: int = 2,
        quota: TenantQuota | None = None) -> dict:
    """Drive the whole scenario; returns the JSON payload."""
    quota = quota or TenantQuota(max_concurrent_queries=2, max_queue_depth=2,
                                 max_state_bytes=256 * 1024 * 1024)
    env, front_door = build_environment(tenants, quota, messages)
    tenant_names = register_tenants(front_door, tenants, quota)

    latencies: list[float] = []
    outcomes = {"streaming_started": 0, "streaming_queued": 0,
                "batch_rows": 0, "batch_statements": 0}
    rejected: dict[str, int] = {}
    opened: list = []

    def submit(session, sql: str):
        start = time.perf_counter()
        try:
            return front_door.execute(session, sql)
        except PipelineError as exc:
            rejected[exc.code.value] = rejected.get(exc.code.value, 0) + 1
            return exc
        finally:
            latencies.append((time.perf_counter() - start) * 1e3)

    for i in range(sessions):
        tenant = tenant_names[i % len(tenant_names)]
        session = front_door.connect(tenant, f"session-{i:04d}")
        session.set_variable("template_seed", str(i))
        opened.append(session)
        for statement_index in range(statements_per_session):
            if statement_index == 0:
                sql = STREAMING_TEMPLATES[i % len(STREAMING_TEMPLATES)].format(
                    units=30 + (i % 50), product=i % 20)
                result = submit(session, sql)
                if isinstance(result, PendingQuery):
                    outcomes["streaming_queued"] += 1
                elif not isinstance(result, PipelineError):
                    outcomes["streaming_started"] += 1
            else:
                sql = BATCH_TEMPLATES[i % len(BATCH_TEMPLATES)].format(
                    units=30 + (i % 50))
                result = submit(session, sql)
                if isinstance(result, list):
                    outcomes["batch_statements"] += 1
                    outcomes["batch_rows"] += len(result)
        # every session probes the namespaced table; odd tenants draw
        # SECURITY_VIOLATION before any planning happens, even tenants
        # read it legitimately
        result = submit(session, DENIED_PROBE)
        if isinstance(result, list):
            outcomes["batch_statements"] += 1
            outcomes["batch_rows"] += len(result)

    concurrent_sessions = len(front_door.sessions)
    running_peak = len(front_door.running_queries())

    # Drain: every admitted query processes the shared input.
    drive_start = time.perf_counter()
    processed = env.run_until_quiescent(max_iterations=100_000)
    drive_wall_s = time.perf_counter() - drive_start

    # Stop everything; queued submissions admit as slots free, so keep
    # stopping until the admission queues are dry.
    stopped = 0
    for _round in range(64):
        running = front_door.running_queries()
        if not running:
            break
        for handle in running:
            handle.stop()
            handle.stop()  # idempotence under eviction races, exercised
            stopped += 1
        env.run_until_quiescent(max_iterations=100_000)

    latencies.sort()
    stats = front_door.admission.stats
    payload = {
        "sessions": sessions,
        "concurrent_sessions": concurrent_sessions,
        "tenants": tenants,
        "messages": messages,
        "statements": sum(s.statements for s in opened),
        "admission": {
            "admitted": stats.admitted,
            "queued": stats.queued,
            "rejected": dict(sorted(stats.rejected.items())),
            "running_peak": running_peak,
        },
        "errors": dict(sorted(rejected.items())),
        "outcomes": outcomes,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50), 3),
            "p95": round(_percentile(latencies, 0.95), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "max": round(latencies[-1], 3) if latencies else 0.0,
            "statements_measured": len(latencies),
        },
        "throughput": {
            "processed_msgs": processed,
            "drive_wall_s": round(drive_wall_s, 3),
            "msgs_per_s": round(processed / drive_wall_s, 1)
            if drive_wall_s > 0 else 0.0,
        },
        "quota": {
            "max_concurrent_queries": quota.max_concurrent_queries,
            "max_queue_depth": quota.max_queue_depth,
            "max_state_bytes": quota.max_state_bytes,
        },
    }
    env.close()
    return payload


def check_gates(payload: dict, min_throughput: float) -> list[str]:
    """CI gates; returns human-readable failures (empty = pass)."""
    failures = []
    rejected = payload["admission"]["rejected"]
    if rejected.get("QUOTA_EXCEEDED", 0) < 1:
        failures.append(
            "admission control never rejected the over-quota tenant "
            "with QUOTA_EXCEEDED")
    if payload["errors"].get("SECURITY_VIOLATION", 0) < 1:
        failures.append(
            "ACL enforcement never rejected a denied-table probe "
            "with SECURITY_VIOLATION")
    if payload["admission"]["admitted"] < 1:
        failures.append("no streaming query was admitted at all")
    msgs_per_s = payload["throughput"]["msgs_per_s"]
    if msgs_per_s < min_throughput:
        failures.append(
            f"admitted-query throughput {msgs_per_s} msgs/s is below the "
            f"floor {min_throughput}")
    return failures


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=240)
    parser.add_argument("--tenants", type=int, default=24)
    parser.add_argument("--messages", type=int, default=2000)
    parser.add_argument("--statements-per-session", type=int, default=2)
    parser.add_argument("--smoke", action="store_true",
                        help="small run + hard gates (CI)")
    parser.add_argument("--min-throughput", type=float, default=200.0,
                        help="msgs/s floor the smoke gate enforces")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    if args.smoke:
        payload = run(sessions=24, tenants=4, messages=500,
                      statements_per_session=args.statements_per_session)
    else:
        payload = run(sessions=args.sessions, tenants=args.tenants,
                      messages=args.messages,
                      statements_per_session=args.statements_per_session)
    payload["mode"] = "smoke" if args.smoke else "full"
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))

    failures = check_gates(payload, args.min_throughput)
    for failure in failures:
        print(f"GATE FAILED: {failure}")
    if not failures:
        print(f"gates passed: QUOTA_EXCEEDED rejections="
              f"{payload['admission']['rejected'].get('QUOTA_EXCEEDED', 0)}, "
              f"SECURITY_VIOLATION={payload['errors'].get('SECURITY_VIOLATION', 0)}, "
              f"throughput={payload['throughput']['msgs_per_s']} msgs/s")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
