"""Measure real per-message costs of each query pipeline.

The scaling figures need a per-message CPU cost for the simulator; rather
than guessing, we run each variant (native Samza task vs SamzaSQL-compiled
query) through the *real* in-process runtime over a bounded workload and
time it.  This is the "shape comes from measurement" half of the
substitution documented in DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.kafka import KafkaCluster
from repro.samza import SamzaJob
from repro.samzasql import SamzaSqlEnvironment
from repro.bench.native_jobs import native_job_config
from repro.workloads.orders import OrdersGenerator, padded_orders_schema
from repro.workloads.products import PRODUCTS_SCHEMA, ProductsGenerator

# The four §5.1 benchmark queries, in SamzaSQL.
SQL_QUERIES = {
    "filter": "SELECT STREAM * FROM Orders WHERE units > 50",
    "project": "SELECT STREAM rowtime, productId, units FROM Orders",
    "window": ("SELECT STREAM rowtime, productId, units, SUM(units) OVER "
               "(PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' "
               "MINUTE PRECEDING) unitsLastFiveMinutes FROM Orders"),
    "join": ("SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, "
             "Orders.units, Products.supplierId FROM Orders JOIN Products "
             "ON Orders.productId = Products.productId"),
}

QUERIES = tuple(SQL_QUERIES)
VARIANTS = ("native", "samzasql")


@dataclass
class CalibrationResult:
    query: str
    variant: str
    messages: int
    elapsed_s: float

    @property
    def per_message_ms(self) -> float:
        return self.elapsed_s * 1000.0 / self.messages

    @property
    def throughput_msgs_per_s(self) -> float:
        return self.messages / self.elapsed_s


def _build_runtime(partitions: int,
                   metrics_interval_ms: int = 0) -> SamzaSqlEnvironment:
    return SamzaSqlEnvironment(
        broker_count=3, node_count=3, node_mem_mb=61_000, start_ms=0,
        metrics_interval_ms=metrics_interval_ms)


def _feed_workload(cluster: KafkaCluster, query: str, messages: int,
                   partitions: int, product_count: int = 100) -> None:
    orders = OrdersGenerator(product_count=product_count,
                             interarrival_ms=1000)
    orders.produce(cluster, "Orders", messages, partitions=partitions)
    if query == "join":
        ProductsGenerator(product_count=product_count).produce(
            cluster, "Products-changelog", partitions=partitions)


def _measure_once(query: str, variant: str, messages: int,
                  partitions: int, containers: int, warmup: int,
                  metrics_interval_ms: int = 0,
                  extra_config: dict | None = None) -> float:
    env = _build_runtime(partitions, metrics_interval_ms=metrics_interval_ms)
    cluster, runner = env.cluster, env.runner
    _feed_workload(cluster, query, messages, partitions)

    if variant == "native":
        config, serdes, factory = native_job_config(
            query, f"native-{query}", containers=containers)
        if metrics_interval_ms > 0:
            config = config.merge(
                {"metrics.reporter.interval.ms": metrics_interval_ms})
        if extra_config:
            config = config.merge(extra_config)
        job = SamzaJob(config=config, task_factory=factory, serdes=serdes)
        runner.submit(job)
    else:
        shell = env.shell
        shell.register_stream("Orders", padded_orders_schema(),
                              partitions=partitions)
        if query == "join":
            shell.register_table("Products", PRODUCTS_SCHEMA,
                                 key_field="productId", partitions=partitions)
        shell.execute(SQL_QUERIES[query], containers=containers,
                      config_overrides=extra_config)

    # Warm the pipeline (codegen, store setup) before timing.
    for _ in range(max(warmup // 200, 1)):
        runner.run_iteration()
    import gc

    gc.collect()
    # The run is single-threaded and CPU-bound, so CPU time is the right
    # measure of per-message cost — and unlike wall clock it is immune to
    # scheduler preemption, which on a busy host swamps a ~100ms run.  A
    # single GC pause inside the window is still several percent, so
    # collection is suspended for the measurement.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.process_time_ns()
        runner.run_until_quiescent(max_iterations=1_000_000)
        return (time.process_time_ns() - started) / 1e9
    finally:
        if gc_was_enabled:
            gc.enable()


def measure(query: str, variant: str, messages: int = 5000,
            partitions: int = 32, containers: int = 1,
            warmup: int = 200, repeats: int = 2,
            metrics_interval_ms: int = 0) -> CalibrationResult:
    """Run one (query, variant) to completion; best-of-``repeats`` timing.

    The minimum over repeats is the standard noise-robust estimator for
    CPU-bound work (GC pauses and scheduler noise only ever add time).
    """
    if query not in SQL_QUERIES:
        raise ValueError(f"unknown query {query!r}; known: {sorted(SQL_QUERIES)}")
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    elapsed = min(
        _measure_once(query, variant, messages, partitions, containers, warmup,
                      metrics_interval_ms=metrics_interval_ms)
        for _ in range(max(repeats, 1)))
    return CalibrationResult(query=query, variant=variant,
                             messages=messages, elapsed_s=max(elapsed, 1e-9))


def measure_metrics_overhead(query: str = "filter", messages: int = 4000,
                             partitions: int = 32, repeats: int = 3,
                             metrics_interval_ms: int = 1_000) -> dict[str, float]:
    """Instrumentation overhead of the metrics reporter on one query.

    Runs plain and instrumented rounds interleaved (like
    :func:`calibrate_pair`), alternating which mode goes first each round
    so anything that grows over the process lifetime (heap size, interned
    state) taxes both modes equally, and keeps the per-mode minimum —
    scheduler noise and GC only ever *add* time, so the minima are the
    cleanest estimate of each mode's true cost.  Serde fusion is pinned
    off in both modes: a sampled task always runs the full-decode path
    (the timing sampler needs decoded messages), so leaving fusion at its
    default would let the uninstrumented run take the fused fast path and
    the comparison would measure fusion loss, not instrumentation cost.
    Returns best elapsed seconds per mode, keyed
    ``{"off": ..., "on": ..., "overhead_percent": ...}``.
    """
    best: dict[str, float] = {}
    modes = [("off", 0), ("on", metrics_interval_ms)]
    for round_no in range(max(repeats, 1)):
        order = modes if round_no % 2 == 0 else modes[::-1]
        for mode, interval in order:
            elapsed = _measure_once(query, "samzasql", messages, partitions,
                                    containers=1, warmup=200,
                                    metrics_interval_ms=interval,
                                    extra_config={"task.serde.fusion": "false"})
            if mode not in best or elapsed < best[mode]:
                best[mode] = elapsed
    best["overhead_percent"] = (best["on"] / best["off"] - 1.0) * 100.0
    return best


def measure_batch_speedup(query: str = "filter", messages: int = 4000,
                          partitions: int = 32, repeats: int = 3,
                          containers: int = 1) -> dict[str, float]:
    """Throughput ratio of batched vs single-message execution on one query.

    Same methodology as :func:`measure_metrics_overhead`: GC-suspended
    process-time runs, modes interleaved with alternating order so process
    lifetime drift taxes both equally, per-mode minimum kept.  Returns best
    elapsed seconds per mode plus derived msgs/sec and the speedup factor,
    keyed ``{"single": ..., "batch": ..., "single_msgs_per_s": ...,
    "batch_msgs_per_s": ..., "speedup": ...}``.
    """
    best: dict[str, float] = {}
    modes = [("single", "false"), ("batch", "true")]
    for round_no in range(max(repeats, 1)):
        order = modes if round_no % 2 == 0 else modes[::-1]
        for mode, flag in order:
            elapsed = _measure_once(
                query, "samzasql", messages, partitions,
                containers=containers, warmup=200,
                extra_config={"task.batch.execution": flag})
            if mode not in best or elapsed < best[mode]:
                best[mode] = elapsed
    best["single_msgs_per_s"] = messages / max(best["single"], 1e-9)
    best["batch_msgs_per_s"] = messages / max(best["batch"], 1e-9)
    best["speedup"] = best["single"] / max(best["batch"], 1e-9)
    return best


def measure_serde_speedup(query: str = "filter", messages: int = 4000,
                          partitions: int = 32, repeats: int = 3,
                          containers: int = 1) -> dict[str, float]:
    """Throughput ratio of serde-fused vs full-decode batched execution.

    Both modes run batched + whole-plan-compiled; only ``task.serde.fusion``
    is toggled, so the ratio isolates the serde bound — column-pruned
    skip-scan decode, re-encode elision, and the fused decode→chain→encode
    function versus full per-record decode and re-encode.  Same noise
    discipline as :func:`measure_batch_speedup`: GC-suspended process-time
    runs, modes interleaved with alternating order, per-mode minimum.
    Returns ``{"plain": ..., "fused": ..., "plain_msgs_per_s": ...,
    "fused_msgs_per_s": ..., "speedup": ...}``.
    """
    best: dict[str, float] = {}
    modes = [("plain", "false"), ("fused", "true")]
    for round_no in range(max(repeats, 1)):
        order = modes if round_no % 2 == 0 else modes[::-1]
        for mode, flag in order:
            elapsed = _measure_once(
                query, "samzasql", messages, partitions,
                containers=containers, warmup=200,
                extra_config={"task.serde.fusion": flag})
            if mode not in best or elapsed < best[mode]:
                best[mode] = elapsed
    best["plain_msgs_per_s"] = messages / max(best["plain"], 1e-9)
    best["fused_msgs_per_s"] = messages / max(best["fused"], 1e-9)
    best["speedup"] = best["plain"] / max(best["fused"], 1e-9)
    return best


def measure_writebehind_speedup(query: str = "window", messages: int = 4000,
                                partitions: int = 32, repeats: int = 3,
                                containers: int = 1) -> dict[str, float]:
    """Throughput ratio of write-behind vs write-through state stores.

    Runs one stateful query (default the fig6 sliding window, the shape the
    paper shows "dominated by access to the key-value store") in batched
    execution with ``stores.write.behind`` toggled.  Same noise discipline
    as :func:`measure_batch_speedup`: GC-suspended process-time runs, modes
    interleaved with alternating order, per-mode minimum.  Returns
    ``{"writethrough": ..., "writebehind": ...,
    "writethrough_msgs_per_s": ..., "writebehind_msgs_per_s": ...,
    "speedup": ...}``.
    """
    best: dict[str, float] = {}
    modes = [("writethrough", "false"), ("writebehind", "true")]
    for round_no in range(max(repeats, 1)):
        order = modes if round_no % 2 == 0 else modes[::-1]
        for mode, flag in order:
            elapsed = _measure_once(
                query, "samzasql", messages, partitions,
                containers=containers, warmup=200,
                extra_config={"stores.write.behind": flag})
            if mode not in best or elapsed < best[mode]:
                best[mode] = elapsed
    best["writethrough_msgs_per_s"] = messages / max(best["writethrough"], 1e-9)
    best["writebehind_msgs_per_s"] = messages / max(best["writebehind"], 1e-9)
    best["speedup"] = best["writethrough"] / max(best["writebehind"], 1e-9)
    return best


def calibrate_pair(query: str, messages: int = 5000,
                   partitions: int = 32,
                   repeats: int = 3) -> dict[str, CalibrationResult]:
    """Both variants of one query: {'native': ..., 'samzasql': ...}.

    Measurement rounds are *interleaved* (native, sql, native, sql, ...)
    and the per-variant minimum is kept, so slow drifts in machine load
    bias both variants equally instead of whichever ran last.
    """
    best: dict[str, float] = {}
    for _ in range(max(repeats, 1)):
        for variant in VARIANTS:
            elapsed = _measure_once(query, variant, messages, partitions,
                                    containers=1, warmup=200)
            if variant not in best or elapsed < best[variant]:
                best[variant] = elapsed
    return {
        variant: CalibrationResult(query=query, variant=variant,
                                   messages=messages,
                                   elapsed_s=max(best[variant], 1e-9))
        for variant in VARIANTS
    }
