"""Measure real per-message costs of each query pipeline.

The scaling figures need a per-message CPU cost for the simulator; rather
than guessing, we run each variant (native Samza task vs SamzaSQL-compiled
query) through the *real* in-process runtime over a bounded workload and
time it.  This is the "shape comes from measurement" half of the
substitution documented in DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.common import Config, VirtualClock
from repro.kafka import KafkaCluster
from repro.samza import JobRunner, SamzaJob
from repro.samzasql import SamzaSQLShell
from repro.bench.native_jobs import native_job_config
from repro.workloads.orders import OrdersGenerator, padded_orders_schema
from repro.workloads.products import PRODUCTS_SCHEMA, ProductsGenerator
from repro.yarn import NodeManager, Resource, ResourceManager

# The four §5.1 benchmark queries, in SamzaSQL.
SQL_QUERIES = {
    "filter": "SELECT STREAM * FROM Orders WHERE units > 50",
    "project": "SELECT STREAM rowtime, productId, units FROM Orders",
    "window": ("SELECT STREAM rowtime, productId, units, SUM(units) OVER "
               "(PARTITION BY productId ORDER BY rowtime RANGE INTERVAL '5' "
               "MINUTE PRECEDING) unitsLastFiveMinutes FROM Orders"),
    "join": ("SELECT STREAM Orders.rowtime, Orders.orderId, Orders.productId, "
             "Orders.units, Products.supplierId FROM Orders JOIN Products "
             "ON Orders.productId = Products.productId"),
}

QUERIES = tuple(SQL_QUERIES)
VARIANTS = ("native", "samzasql")


@dataclass
class CalibrationResult:
    query: str
    variant: str
    messages: int
    elapsed_s: float

    @property
    def per_message_ms(self) -> float:
        return self.elapsed_s * 1000.0 / self.messages

    @property
    def throughput_msgs_per_s(self) -> float:
        return self.messages / self.elapsed_s


def _build_runtime(partitions: int) -> tuple[KafkaCluster, JobRunner, VirtualClock]:
    clock = VirtualClock(0)
    cluster = KafkaCluster(broker_count=3, clock=clock)
    rm = ResourceManager()
    for i in range(3):
        rm.add_node(NodeManager(f"node-{i}", Resource(61_000, 8)))
    return cluster, JobRunner(cluster, rm, clock), clock


def _feed_workload(cluster: KafkaCluster, query: str, messages: int,
                   partitions: int, product_count: int = 100) -> None:
    orders = OrdersGenerator(product_count=product_count,
                             interarrival_ms=1000)
    orders.produce(cluster, "Orders", messages, partitions=partitions)
    if query == "join":
        ProductsGenerator(product_count=product_count).produce(
            cluster, "Products-changelog", partitions=partitions)


def _measure_once(query: str, variant: str, messages: int,
                  partitions: int, containers: int, warmup: int) -> float:
    cluster, runner, clock = _build_runtime(partitions)
    _feed_workload(cluster, query, messages, partitions)

    if variant == "native":
        config, serdes, factory = native_job_config(
            query, f"native-{query}", containers=containers)
        job = SamzaJob(config=config, task_factory=factory, serdes=serdes)
        runner.submit(job)
    else:
        shell = SamzaSQLShell(cluster, runner)
        shell.register_stream("Orders", padded_orders_schema(),
                              partitions=partitions)
        if query == "join":
            shell.register_table("Products", PRODUCTS_SCHEMA,
                                 key_field="productId", partitions=partitions)
        shell.execute(SQL_QUERIES[query], containers=containers)

    # Warm the pipeline (codegen, store setup) before timing.
    for _ in range(max(warmup // 200, 1)):
        runner.run_iteration()
    import gc

    gc.collect()
    started = time.perf_counter()
    runner.run_until_quiescent(max_iterations=1_000_000)
    return time.perf_counter() - started


def measure(query: str, variant: str, messages: int = 5000,
            partitions: int = 32, containers: int = 1,
            warmup: int = 200, repeats: int = 2) -> CalibrationResult:
    """Run one (query, variant) to completion; best-of-``repeats`` timing.

    The minimum over repeats is the standard noise-robust estimator for
    CPU-bound work (GC pauses and scheduler noise only ever add time).
    """
    if query not in SQL_QUERIES:
        raise ValueError(f"unknown query {query!r}; known: {sorted(SQL_QUERIES)}")
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}")
    elapsed = min(
        _measure_once(query, variant, messages, partitions, containers, warmup)
        for _ in range(max(repeats, 1)))
    return CalibrationResult(query=query, variant=variant,
                             messages=messages, elapsed_s=max(elapsed, 1e-9))


def calibrate_pair(query: str, messages: int = 5000,
                   partitions: int = 32,
                   repeats: int = 3) -> dict[str, CalibrationResult]:
    """Both variants of one query: {'native': ..., 'samzasql': ...}.

    Measurement rounds are *interleaved* (native, sql, native, sql, ...)
    and the per-variant minimum is kept, so slow drifts in machine load
    bias both variants equally instead of whichever ran last.
    """
    best: dict[str, float] = {}
    for _ in range(max(repeats, 1)):
        for variant in VARIANTS:
            elapsed = _measure_once(query, variant, messages, partitions,
                                    containers=1, warmup=200)
            if variant not in best or elapsed < best[variant]:
                best[variant] = elapsed
    return {
        variant: CalibrationResult(query=query, variant=variant,
                                   messages=messages,
                                   elapsed_s=max(best[variant], 1e-9))
        for variant in VARIANTS
    }
