"""Machine-readable fig5/fig6 throughput snapshot.

Runs the four §5.1 benchmark queries — fig5a filter, fig5b project,
fig5c join, fig6 sliding window — through the full runtime in both
execution modes (``task.batch.execution`` off and on) and writes the
msgs/sec results to ``BENCH_fig5.json`` at the repo root, so tooling
(and the next session) can diff throughput without parsing prose.
For the stateless fig5a/b chains it also records the chain-isolated
whole-plan compilation numbers (``chain_*_msgs_per_s`` +
``compile_speedup``) from :func:`repro.bench.micro.measure_compile_speedup`
and the end-to-end serde-fusion numbers (``e2e_pruned_*`` +
``serde_fusion_speedup``) from
:func:`repro.bench.calibration.measure_serde_speedup` — the batched run
with column-pruned compiled decode and re-encode elision on vs off.

Run:  python -m repro.bench.fig5_json [--messages 4000] [--out PATH]
"""

from __future__ import annotations

import json
import pathlib

from repro.bench.calibration import measure_batch_speedup, measure_serde_speedup
from repro.bench.micro import measure_compile_speedup

#: figure label -> calibration query key
FIGURES = {
    "fig5a_filter": "filter",
    "fig5b_project": "project",
    "fig5c_join": "join",
    "fig6_sliding_window": "window",
}

#: figures whose stateless chains whole-plan compilation covers
COMPILED_FIGURES = ("fig5a_filter", "fig5b_project")

DEFAULT_OUT = pathlib.Path(__file__).resolve().parents[3] / "BENCH_fig5.json"


def collect(messages: int = 4000, repeats: int = 2) -> dict:
    """Measure every figure query in both modes; returns the JSON payload."""
    figures = {}
    for label, query in FIGURES.items():
        measured = measure_batch_speedup(query=query, messages=messages,
                                         repeats=repeats)
        figures[label] = {
            "single_msgs_per_s": round(measured["single_msgs_per_s"], 1),
            "batch_msgs_per_s": round(measured["batch_msgs_per_s"], 1),
            "batch_speedup": round(measured["speedup"], 3),
        }
        if label in COMPILED_FIGURES:
            # chain-isolated (pre-decoded records, discard sink): end-to-end
            # throughput is serde-bound, so the compiled-vs-interpreted
            # ratio is reported where dispatch elimination actually acts
            compiled = measure_compile_speedup(query=query, messages=messages,
                                               repeats=repeats)
            figures[label].update({
                "chain_interpreted_msgs_per_s":
                    round(compiled["interpreted_msgs_per_s"], 1),
                "chain_compiled_msgs_per_s":
                    round(compiled["compiled_msgs_per_s"], 1),
                "compile_speedup": round(compiled["speedup"], 3),
            })
            # end-to-end with serde fusion: pruned compiled decode +
            # re-encode elision vs the full decode/encode batched path
            fused = measure_serde_speedup(query=query, messages=messages,
                                          repeats=repeats)
            figures[label].update({
                "e2e_pruned_off_msgs_per_s":
                    round(fused["plain_msgs_per_s"], 1),
                "e2e_pruned_msgs_per_s":
                    round(fused["fused_msgs_per_s"], 1),
                "serde_fusion_speedup": round(fused["speedup"], 3),
            })
    return {
        "messages_per_run": messages,
        "repeats": repeats,
        "method": ("process-time, GC suspended, modes interleaved, "
                   "per-mode minimum over repeats"),
        "figures": figures,
    }


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--messages", type=int, default=4000)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    payload = collect(messages=args.messages, repeats=args.repeats)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for label, row in payload["figures"].items():
        line = (f"{label}: single {row['single_msgs_per_s']:,.0f} msgs/s, "
                f"batch {row['batch_msgs_per_s']:,.0f} msgs/s "
                f"({row['batch_speedup']:.2f}x)")
        if "compile_speedup" in row:
            line += (f", compiled chain "
                     f"{row['chain_compiled_msgs_per_s']:,.0f} msgs/s "
                     f"({row['compile_speedup']:.2f}x)")
        if "serde_fusion_speedup" in row:
            line += (f", serde-fused "
                     f"{row['e2e_pruned_msgs_per_s']:,.0f} msgs/s "
                     f"({row['serde_fusion_speedup']:.2f}x)")
        print(line)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
