"""Measured multi-core scaling of the process-backed execution mode.

The paper's fig5a scaling claim is modeled analytically in
:mod:`repro.cluster.scaling`; this module *measures* it: the same fig5a
filter query over a pre-produced Orders workload, run to quiescence at
increasing worker counts with ``cluster.parallel.execution=true``, timed
on the wall clock.  Workers are real OS processes, so on a multi-core
host the consume→DAG→produce loops genuinely overlap — this is the
throughput the in-process mode cannot reach no matter how cheap its
per-message path gets.

The input is fully produced before the query is submitted and the clock
starts before ``shell.execute``: planning, YARN scheduling, forking and
draining all count, exactly like a fig5a trial.
"""

from __future__ import annotations

import time

from repro.samzasql.environment import SamzaSqlEnvironment
from repro.workloads.orders import OrdersGenerator

#: The fig5a filter benchmark query.
SCALING_SQL = "SELECT STREAM * FROM Orders WHERE units > 50"


def measure_parallel_throughput(workers: int, messages: int = 20_000,
                                partitions: int = 8,
                                parallel: bool = True) -> float:
    """End-to-end throughput (msgs/s) of the fig5a filter at ``workers``
    containers; ``parallel=False`` measures the in-process loop instead
    (same wall clock, for a like-for-like baseline)."""
    generator = OrdersGenerator(interarrival_ms=1000)
    config = {"cluster.parallel.execution": "true" if parallel else "false"}
    env = SamzaSqlEnvironment(broker_count=3, node_count=2,
                              node_mem_mb=61_000, metrics_interval_ms=0,
                              config=config)
    try:
        env.shell.register_stream("Orders", generator.schema,
                                  partitions=partitions)
        from repro.kafka.producer import Producer

        producer = Producer(env.cluster)
        for key, value, ts in generator.encoded(messages):
            producer.send("Orders", value, key=key, timestamp_ms=ts)

        started = time.perf_counter()
        env.shell.execute(SCALING_SQL, containers=workers)
        env.run_until_quiescent(max_iterations=1_000_000)
        elapsed = time.perf_counter() - started
    finally:
        env.close()
    return messages / max(elapsed, 1e-9)


def measure_parallel_scaling(worker_counts: list[int] | None = None,
                             messages: int = 20_000,
                             partitions: int = 8) -> list[tuple[int, float]]:
    """Throughput sweep over ``worker_counts`` (default 1/2/4/8)."""
    counts = worker_counts or [1, 2, 4, 8]
    return [(count, measure_parallel_throughput(
        count, messages=messages, partitions=partitions))
        for count in counts]


def measure_scaling_speedup(workers: int = 2, messages: int = 20_000,
                            partitions: int = 8) -> dict[str, float]:
    """One gate measurement: parallel at ``workers`` vs parallel at 1.

    Both sides run the process-backed mode so the ratio isolates the
    multi-core win from per-process overheads (fork, pipes, mirroring) —
    a 1-worker parallel run pays all of those too.
    """
    base = measure_parallel_throughput(1, messages=messages,
                                       partitions=partitions)
    scaled = measure_parallel_throughput(workers, messages=messages,
                                         partitions=partitions)
    return {
        "workers": float(workers),
        "base_msgs_per_s": base,
        "scaled_msgs_per_s": scaled,
        "speedup": scaled / max(base, 1e-9),
    }
