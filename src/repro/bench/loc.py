"""Usability accounting: lines of code, SQL vs native (§5's prose table).

"Streaming SQL reduces development overheads by allowing users to express
streaming queries declaratively using a couple of lines where as streaming
jobs implemented using Samza's Java API will contain more than 100 lines
for sliding window queries, more than 50 lines for simple stream-to-
relation join and around 20 to 30 lines for filter and project queries.
In addition ... users needs to maintain stream job configuration for each
query".

We count the real artifacts in this repository: the SQL text of each
benchmark query, the source of the corresponding hand-written task class,
and the per-query configuration burden (config keys that SamzaSQL
generates automatically).  Python is terser than Java, so the absolute
native numbers sit below the paper's, but the ordering and ratios hold.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from repro.bench import native_jobs
from repro.bench.calibration import SQL_QUERIES
from repro.bench.native_jobs import native_job_config

_NATIVE_CLASSES = {
    "filter": native_jobs.NativeFilterTask,
    "project": native_jobs.NativeProjectTask,
    "join": native_jobs.NativeJoinTask,
    "window": native_jobs.NativeSlidingWindowTask,
}


def _count_code_lines(source: str) -> int:
    """Non-blank, non-comment, non-docstring-only lines."""
    lines = 0
    in_doc = False
    for raw in source.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith(('"""', "'''")):
            # toggles docstring state; single-line docstrings toggle twice
            quote = line[:3]
            if in_doc:
                in_doc = False
                continue
            if line.count(quote) >= 2 and len(line) > 3:
                continue
            in_doc = True
            continue
        if in_doc:
            continue
        lines += 1
    return lines


@dataclass
class UsabilityRow:
    query: str
    sql_lines: int
    native_lines: int
    native_config_keys: int

    @property
    def reduction_factor(self) -> float:
        return self.native_lines / self.sql_lines


def usability_table() -> list[UsabilityRow]:
    """One row per benchmark query."""
    rows = []
    for query, sql in SQL_QUERIES.items():
        sql_lines = max(len([l for l in sql.splitlines() if l.strip()]), 1)
        native_source = inspect.getsource(_NATIVE_CLASSES[query])
        native_lines = _count_code_lines(native_source)
        config, _serdes, _factory = native_job_config(query, "loc-probe")
        rows.append(UsabilityRow(
            query=query,
            sql_lines=sql_lines,
            native_lines=native_lines,
            native_config_keys=len(config),
        ))
    return rows


def format_usability_table() -> str:
    lines = [
        "Usability (paper §5 prose): query expression size, SQL vs native",
        f"  {'query':>8} {'SQL lines':>10} {'native lines':>13} "
        f"{'config keys':>12} {'reduction':>10}",
    ]
    for row in usability_table():
        lines.append(
            f"  {row.query:>8} {row.sql_lines:>10} {row.native_lines:>13} "
            f"{row.native_config_keys:>12} {row.reduction_factor:>9.1f}x")
    lines.append("  (SamzaSQL generates the job configuration automatically; "
                 "native jobs carry theirs by hand)")
    return "\n".join(lines)
