"""Per-message micro pipelines for pytest-benchmark.

Builds the *real* operator pipelines (same classes the runtime uses) with
a discard sink and in-memory serialized stores, plus the equivalent
hand-written native paths, so ``benchmarks/`` can measure the per-message
cost of each variant in isolation — no Kafka/YARN loop around it.
"""

from __future__ import annotations

from typing import Callable

from repro.samza.storage import (InMemoryKeyValueStore, LoggedKeyValueStore,
                                 SerializedKeyValueStore,
                                 WriteBehindKeyValueStore)
from repro.samzasql.operators.base import OperatorContext
from repro.samzasql.operators.router import MessageRouter, build_router
from repro.samzasql.plan_builder import PhysicalPlanBuilder
from repro.serde.avro import AvroSerde
from repro.serde.object_serde import ObjectSerde
from repro.bench.calibration import SQL_QUERIES, measure_serde_speedup
from repro.sql.catalog import Catalog
from repro.sql.planner import QueryPlanner
from repro.workloads.orders import OrdersGenerator, padded_orders_schema
from repro.workloads.products import PRODUCTS_SCHEMA, ProductsGenerator

_STORE_NAMES = (
    "sql-window-messages", "sql-window-state", "sql-group-windows",
    "sql-join-left", "sql-join-right", "sql-join-left-2", "sql-join-right-2",
    "sql-relation-products", "sql-mjoin-0", "sql-mjoin-1", "sql-mjoin-2",
)


def _make_stores() -> dict:
    return {
        name: SerializedKeyValueStore(InMemoryKeyValueStore(),
                                      ObjectSerde(), ObjectSerde())
        for name in _STORE_NAMES
    }


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_stream_from_avro("Orders", padded_orders_schema())
    catalog.register_table_from_avro("Products", PRODUCTS_SCHEMA,
                                     key_field="productId",
                                     changelog_topic="Products-changelog")
    return catalog


class MicroPipeline:
    """A feedable pipeline: ``step()`` processes the next encoded message."""

    def __init__(self, process: Callable[[bytes, int], None],
                 messages: list[tuple[bytes, bytes, int]],
                 reset: Callable[[], None] | None = None):
        self._process = process
        self._messages = messages
        self._index = 0
        self._reset = reset
        self.outputs = 0

    def step(self) -> None:
        value_bytes, _key, ts = self._messages[self._index]
        self._index += 1
        if self._index >= len(self._messages):
            self._index = 0
            if self._reset is not None:
                self._reset()
        self._process(value_bytes, ts)

    def run_batch(self, count: int) -> None:
        for _ in range(count):
            self.step()


class BatchMicroPipeline:
    """Batch-at-a-time twin of :class:`MicroPipeline`.

    ``step()`` hands the next ``batch_size`` encoded messages to the
    pipeline in a single call — the shape the batched container loop
    produces from ``Consumer.poll_batches`` — so benchmarks can compare
    per-message cost against the single-message ``MicroPipeline`` on
    identical workloads.  ``messages_per_step`` converts step timings to
    per-message figures.
    """

    def __init__(self, process_batch: Callable[[list, list], None],
                 messages: list[tuple[bytes, bytes, int]], batch_size: int,
                 reset: Callable[[], None] | None = None):
        self._process_batch = process_batch
        self._messages = messages
        self._batch_size = batch_size
        self._index = 0
        self._reset = reset
        self.messages_per_step = batch_size

    def step(self) -> None:
        start = self._index
        stop = start + self._batch_size
        chunk = self._messages[start:stop]
        self._index = stop
        if self._index >= len(self._messages):
            self._index = 0
            if self._reset is not None:
                self._reset()
        self._process_batch([value for value, _key, _ts in chunk],
                            [ts for _value, _key, ts in chunk])

    def run_batch(self, count: int) -> None:
        """Process at least ``count`` messages (whole steps)."""
        done = 0
        while done < count:
            self.step()
            done += self._batch_size


def _encoded_orders(count: int) -> list[tuple[bytes, bytes, int]]:
    generator = OrdersGenerator(interarrival_ms=1000)
    return [(value, key, ts) for key, value, ts in generator.encoded(count)]


def samzasql_pipeline(query: str, messages: int = 8192,
                      fuse_scans: bool = False,
                      batch_size: int = 0) -> MicroPipeline | BatchMicroPipeline:
    """The SamzaSQL-compiled pipeline: deserialize → operators → serialize.

    With ``batch_size > 0`` the returned pipeline runs the batched
    execution path instead — ``from_bytes_batch`` → ``route_batch`` →
    buffered insert sinks flushed through ``to_bytes_batch`` — mirroring
    what the container does per poll group when ``task.batch.execution``
    is on.
    """
    catalog = _catalog()
    planner = QueryPlanner(catalog)
    logical = planner.plan_query(SQL_QUERIES[query])
    builder = PhysicalPlanBuilder(catalog, fuse_scans=fuse_scans)
    plan = builder.build(logical, "bench-output")

    from repro.samzasql.operators.insert import InsertOperator
    from repro.samzasql.shell import sql_row_type_to_avro

    output_schema = sql_row_type_to_avro("BenchOut", logical.row_type)
    output_serde = AvroSerde(output_schema)
    sink_count = [0]

    def send(message: dict, _ts: int, _key=None) -> None:
        output_serde.to_bytes(message)  # ArrayToAvro + wire encoding
        sink_count[0] += 1

    def send_batch(entries: list) -> None:
        encoded = output_serde.to_bytes_batch(
            [message for message, _ts, _key in entries])
        sink_count[0] += len(encoded)

    def _build() -> MessageRouter:
        router = build_router(plan, OperatorContext(
            stores, send, send_batch=send_batch))
        if batch_size > 0:
            for operator in router.operators:
                if isinstance(operator, InsertOperator):
                    operator.set_buffering(True)
        return router

    stores = _make_stores()
    router_box: list[MessageRouter] = []

    def rebuild() -> None:
        fresh = _make_stores()
        stores.clear()
        stores.update(fresh)
        router_box[0] = _build()
        _load_relation(router_box[0], query)

    def _load_relation(router: MessageRouter, q: str) -> None:
        if q != "join":
            return
        serde = AvroSerde(PRODUCTS_SCHEMA)
        for record in ProductsGenerator().records():
            router.route("Products-changelog", record, 0)

    router_box.append(_build())
    _load_relation(router_box[0], query)
    input_serde = AvroSerde(padded_orders_schema())
    stream = plan.input_streams[0]
    workload = _encoded_orders(messages)

    if batch_size > 0:
        def process_batch(values: list, timestamps: list) -> None:
            records = input_serde.from_bytes_batch(values)
            router = router_box[0]
            router.route_batch(stream, records, timestamps)
            router.flush_sinks()

        batch_pipeline = BatchMicroPipeline(process_batch, workload,
                                            batch_size, reset=rebuild)
        batch_pipeline.sink_count = sink_count  # type: ignore[attr-defined]
        return batch_pipeline

    def process(value_bytes: bytes, ts: int) -> None:
        record = input_serde.from_bytes(value_bytes)
        router_box[0].route(stream, record, ts)

    pipeline = MicroPipeline(process, workload, reset=rebuild)
    pipeline.sink_count = sink_count  # type: ignore[attr-defined]
    return pipeline


def native_pipeline(query: str, messages: int = 8192) -> MicroPipeline:
    """The hand-written per-message path for each benchmark query."""
    input_serde = AvroSerde(padded_orders_schema())

    if query == "filter":
        def process(value_bytes: bytes, ts: int) -> None:
            record = input_serde.from_bytes(value_bytes)
            if record["units"] > 50:
                _ = value_bytes  # raw pass-through write

        return MicroPipeline(process, _encoded_orders(messages))

    if query == "project":
        from repro.bench.native_jobs import NativeProjectTask

        out_serde = NativeProjectTask.PROJECTED_SCHEMA

        def process(value_bytes: bytes, ts: int) -> None:
            record = input_serde.from_bytes(value_bytes)
            out_serde.to_bytes({"rowtime": record["rowtime"],
                                "productId": record["productId"],
                                "units": record["units"]})

        return MicroPipeline(process, _encoded_orders(messages))

    if query == "join":
        # Avro-serde state store: the native join's measured advantage.
        store = SerializedKeyValueStore(
            InMemoryKeyValueStore(), ObjectSerde(), AvroSerde(PRODUCTS_SCHEMA))
        for record in ProductsGenerator().records():
            store.put(str(record["productId"]), record)
        out_schema = AvroSerde(
            {"type": "record", "name": "JoinedOut", "fields": [
                {"name": "rowtime", "type": "long"},
                {"name": "orderId", "type": "long"},
                {"name": "productId", "type": "int"},
                {"name": "units", "type": "int"},
                {"name": "supplierId", "type": "int"}]})

        def process(value_bytes: bytes, ts: int) -> None:
            order = input_serde.from_bytes(value_bytes)
            product = store.get(str(order["productId"]))
            if product is None:
                return
            out_schema.to_bytes({
                "rowtime": order["rowtime"], "orderId": order["orderId"],
                "productId": order["productId"], "units": order["units"],
                "supplierId": product["supplierId"]})

        return MicroPipeline(process, _encoded_orders(messages))

    if query == "window":
        from repro.bench.native_jobs import NativeSlidingWindowTask

        state_box = {}

        def make_stores():
            return (SerializedKeyValueStore(InMemoryKeyValueStore(),
                                            ObjectSerde(), ObjectSerde()),
                    SerializedKeyValueStore(InMemoryKeyValueStore(),
                                            ObjectSerde(), ObjectSerde()))

        state_box["messages"], state_box["state"] = make_stores()
        window_ms = NativeSlidingWindowTask.WINDOW_MS

        def reset() -> None:
            state_box["messages"], state_box["state"] = make_stores()

        def process(value_bytes: bytes, ts_in: int) -> None:
            order = input_serde.from_bytes(value_bytes)
            key = str(order["productId"])
            ts = order["rowtime"]
            state = state_box["state"].get(key) or {"rows": [], "sum": 0, "seq": 0}
            seq = state["seq"]
            state["seq"] = seq + 1
            state_box["messages"].put((key, ts, seq), order["units"])
            cutoff = ts - window_ms
            rows = state["rows"]
            keep = 0
            for keep, entry in enumerate(rows):
                if entry[0] >= cutoff:
                    break
            else:
                keep = len(rows)
            for old_ts, old_seq, old_units in rows[:keep]:
                state["sum"] -= old_units
                state_box["messages"].delete((key, old_ts, old_seq))
            del rows[:keep]
            rows.append((ts, seq, order["units"]))
            state["sum"] += order["units"]
            state_box["state"].put(key, state)

        return MicroPipeline(process, _encoded_orders(messages), reset=reset)

    raise ValueError(f"unknown query {query!r}")


def measure_compile_speedup(query: str = "filter", messages: int = 4000,
                            repeats: int = 3,
                            batch_size: int = 256) -> dict[str, float]:
    """Operator-chain cost: whole-plan compiled vs interpreted dispatch.

    Both modes run the batched path over *pre-decoded* records with a
    discard insert sink, so the ratio isolates exactly what
    ``exec``-compiling the chain replaces — per-operator
    ``process_batch`` dispatch, the intermediate row/timestamp lists
    between operators, and the final ``dict(zip(...))`` record
    construction — from input/output serde and the container loop, which
    dominate end-to-end throughput and are identical in both modes.
    (Same isolation discipline as :func:`measure_window_state_speedup`
    for the write-behind state layout.)

    Methodology matches :func:`repro.bench.calibration.measure_batch_speedup`:
    GC-suspended process-time runs, modes interleaved with alternating
    order, per-mode minimum.  Returns ``{"interpreted": ...,
    "compiled": ..., "interpreted_msgs_per_s": ...,
    "compiled_msgs_per_s": ..., "speedup": ...}`` (elapsed seconds per
    mode plus derived rates).
    """
    import gc
    import time

    from repro.samzasql.compile import CompiledExecutor, analyze_plan
    from repro.samzasql.operators.insert import InsertOperator

    catalog = _catalog()
    logical = QueryPlanner(catalog).plan_query(SQL_QUERIES[query])
    plan = PhysicalPlanBuilder(catalog).build(logical, "bench-output")
    decision = analyze_plan(plan)
    if not decision.supported:
        raise ValueError(f"query {query!r} does not compile: {decision.reason}")
    stream = plan.input_streams[0]

    generator = OrdersGenerator(interarrival_ms=1000)
    records = [(record, record["rowtime"])
               for record in generator.records(messages)]
    chunks = [([record for record, _ts in records[i:i + batch_size]],
               [ts for _record, ts in records[i:i + batch_size]])
              for i in range(0, len(records), batch_size)]
    sink_count = [0]

    def send(_message: dict, _ts: int, _key=None) -> None:
        sink_count[0] += 1

    def send_batch(entries: list) -> None:
        sink_count[0] += len(entries)

    def make_router() -> MessageRouter:
        router = build_router(plan, OperatorContext(
            {}, send, send_batch=send_batch))
        for operator in router.operators:
            if isinstance(operator, InsertOperator):
                operator.set_buffering(True)
        return router

    def timed(route_batch, router) -> float:
        # one untimed pass warms allocators and any lazy setup
        for batch_records, timestamps in chunks[:2]:
            route_batch(stream, batch_records, timestamps)
        router.flush_sinks()
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.process_time_ns()
            for batch_records, timestamps in chunks:
                route_batch(stream, batch_records, timestamps)
                router.flush_sinks()
            return (time.process_time_ns() - started) / 1e9
        finally:
            if gc_was_enabled:
                gc.enable()

    def run_interpreted() -> float:
        router = make_router()
        return timed(router.route_batch, router)

    def run_compiled() -> float:
        router = make_router()
        executor = CompiledExecutor(plan, router)
        return timed(executor.route_batch, router)

    best = {"interpreted": float("inf"), "compiled": float("inf")}
    modes = [("interpreted", run_interpreted), ("compiled", run_compiled)]
    for round_no in range(max(repeats, 1)):
        order = modes if round_no % 2 == 0 else modes[::-1]
        for mode, run in order:
            best[mode] = min(best[mode], run())
    best["interpreted_msgs_per_s"] = messages / max(best["interpreted"], 1e-9)
    best["compiled_msgs_per_s"] = messages / max(best["compiled"], 1e-9)
    best["speedup"] = best["interpreted"] / max(best["compiled"], 1e-9)
    return best


# Runtime default of ``task.checkpoint.interval.messages`` — how often the
# container commits, i.e. how often write-behind state actually flushes.
COMMIT_INTERVAL = 500


def _changelogged_store(write_behind: bool) -> "SerializedKeyValueStore":
    """One store as the container stacks it: in-memory → changelog →
    serde, optionally topped with the write-behind dirty map."""
    changelog: list = []
    key_serde = ObjectSerde()
    store = SerializedKeyValueStore(
        LoggedKeyValueStore(InMemoryKeyValueStore(),
                            lambda k, v, log=changelog: log.append((k, v))),
        key_serde, ObjectSerde())
    if write_behind:
        store = WriteBehindKeyValueStore(store, key_serde)
    return store


def measure_window_state_speedup(messages: int = 15_000,
                                 repeats: int = 3) -> dict[str, float]:
    """Per-message state-maintenance cost: legacy vs write-behind window.

    The legacy side reconstructs how ``SlidingWindowOperator`` maintained
    state before the split-layout rewrite: the whole per-key window blob
    (all retained rows + accumulators) round-trips through the serialized,
    changelogged store on **every** message — O(window size) serde work per
    tuple.  The new side runs the *shipped* operator through the compiled
    fig6 DAG over write-behind stores, flushed every ``COMMIT_INTERVAL``
    messages like the container's commit loop does.  Both sides consume the
    same pre-decoded Orders workload so the ratio isolates state
    maintenance from input/output serde.

    Methodology matches :func:`repro.bench.calibration.measure_batch_speedup`:
    GC-suspended process-time runs, modes interleaved with alternating
    order, per-mode minimum.  Returns ``{"legacy_ms_per_msg": ...,
    "writebehind_ms_per_msg": ..., "speedup": ...}``.
    """
    import gc
    import time

    window_ms = 300_000  # the fig6 query's 5-minute RANGE frame
    generator = OrdersGenerator(interarrival_ms=1000)
    workload = [(record, record["rowtime"])
                for record in generator.records(max(messages + 2000, 4000))]
    warmup, body = workload[:2000], workload[2000:]

    def run_legacy() -> float:
        messages_store = _changelogged_store(write_behind=False)
        state_store = _changelogged_store(write_behind=False)

        def step(order: dict, _ts: int) -> None:
            key = repr(order["productId"])
            order_value = order["rowtime"]
            state = state_store.get(key)
            if state is None:
                state = {"rows": [], "accs": [[0, 0]],
                         "lower": order_value, "upper": order_value, "seq": 0}
            seq = state["seq"]
            state["seq"] = seq + 1
            messages_store.put((key, order_value, seq), list(order.values()))
            if order_value > state["upper"]:
                state["upper"] = order_value
            units = order["units"]
            rows = state["rows"]
            cutoff = order_value - window_ms
            keep_from = 0
            for keep_from, existing in enumerate(rows):
                if existing[0] >= cutoff:
                    break
            else:
                keep_from = len(rows)
            for purged in rows[:keep_from]:
                state["accs"][0][0] -= purged[2][0]
                state["accs"][0][1] -= 1
                messages_store.delete((key, purged[0], purged[1]))
            del rows[:keep_from]
            state["lower"] = cutoff
            rows.append((order_value, seq, [units]))
            state["accs"][0][0] += units
            state["accs"][0][1] += 1
            state_store.put(key, state)

        return _timed_steps(step, flush_stores=None)

    def run_writebehind() -> float:
        catalog = _catalog()
        logical = QueryPlanner(catalog).plan_query(SQL_QUERIES["window"])
        plan = PhysicalPlanBuilder(catalog).build(logical, "bench-output")
        stream = plan.input_streams[0]
        stores = {name: _changelogged_store(write_behind=True)
                  for name in _STORE_NAMES}
        router = build_router(plan, OperatorContext(
            stores, lambda _m, _ts, _key=None: None))

        def step(record: dict, ts: int) -> None:
            router.route(stream, record, ts)

        return _timed_steps(step, flush_stores=list(stores.values()))

    def _timed_steps(step, flush_stores) -> float:
        for record, ts in warmup:
            step(record, ts)
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.process_time_ns()
            done = 0
            index = 0
            while done < messages:
                for record, ts in body[index:index + COMMIT_INTERVAL]:
                    step(record, ts)
                index += COMMIT_INTERVAL
                if index + COMMIT_INTERVAL > len(body):
                    index = 0
                done += COMMIT_INTERVAL
                if flush_stores is not None:
                    for store in flush_stores:
                        store.flush()
            return (time.process_time_ns() - started) / 1e6 / messages
        finally:
            if gc_was_enabled:
                gc.enable()

    best = {"legacy": float("inf"), "writebehind": float("inf")}
    modes = [("legacy", run_legacy), ("writebehind", run_writebehind)]
    for round_no in range(max(repeats, 1)):
        order = modes if round_no % 2 == 0 else modes[::-1]
        for mode, run in order:
            best[mode] = min(best[mode], run())
    return {
        "legacy_ms_per_msg": best["legacy"],
        "writebehind_ms_per_msg": best["writebehind"],
        "speedup": best["legacy"] / max(best["writebehind"], 1e-9),
    }


def measure_join_probe(messages: int = 4000, repeats: int = 3,
                       keys: int = 256, window_ms: int = 2_000,
                       long_window_ms: int = 600_000) -> dict[str, float]:
    """Per-arrival probe cost: collapsed 3-way join vs the pairwise cascade.

    Feeds one interleaved 3-port workload (two dense quote-like ports
    joined within ±``window_ms``, one sparse port within the long
    ±``long_window_ms``, ``keys`` distinct join keys) straight into the
    operators — no router, serde, or container loop around them — so the
    ratio isolates exactly what the collapse changes: one shared-state
    probe sequence with cheapest-side short-circuiting versus two binary
    operators materializing and re-buffering every intermediate pair.
    The long third-side window keeps the two plans' output sets equal
    (nothing expires between an intermediate forming and its probe).

    Methodology matches :func:`measure_compile_speedup`: GC-suspended
    process-time runs, modes interleaved with alternating order, per-mode
    minimum.  Returns microseconds per arrival per mode, the speedup, and
    each mode's output-row count (they must agree).
    """
    import gc
    import random
    import time

    from repro.samzasql.operators.multi_way_join import MultiWayStreamJoinOperator
    from repro.samzasql.operators.stream_stream_join import StreamStreamJoinOperator

    rng = random.Random(7)
    key_names = [f"K{i:02d}" for i in range(keys)]
    events = []
    ts = 1_000_000
    for i in range(messages):
        ts += 5
        port = 2 if rng.random() < 1 / 16 else i % 2  # sparse third side
        events.append((port, [ts, key_names[rng.randrange(keys)]], ts))

    class _DiscardSink:
        def __init__(self):
            self.count = 0

        def receive(self, _port, _row, _ts):
            self.count += 1

        def receive_batch(self, _port, rows, _timestamps):
            self.count += len(rows)

    class _Port:
        """Feeds a parent operator's output into a fixed downstream port."""

        def __init__(self, operator, port):
            self._operator = operator
            self._port = port

        def receive(self, _port, row, ts):
            self._operator.process(self._port, row, ts)

        def receive_batch(self, _port, rows, timestamps):
            self._operator.process_batch(self._port, rows, timestamps)

    derived = long_window_ms + window_ms  # transitive B-C bound

    def build_multiway():
        operator = MultiWayStreamJoinOperator(
            widths=[2, 2, 2], time_indexes=[0, 0, 0],
            key_sources=["r[1]"] * 3,
            upper_bounds_ms=[[0, window_ms, long_window_ms],
                             [window_ms, 0, derived],
                             [long_window_ms, derived, 0]],
            probe_orders=[[2, 1], [2, 0], [0, 1]],
            # Like the planner's lowering, the residual condition carries
            # the time conjuncts too: candidate windows are relative to
            # the arriving row, so bounds between the two *other* ports
            # are only enforced here.
            condition_source=(
                "((p0[1] == p1[1]) and (p1[1] == p2[1])"
                f" and (p0[0] - p1[0] <= {window_ms})"
                f" and (p1[0] - p0[0] <= {window_ms})"
                f" and (p0[0] - p2[0] <= {long_window_ms})"
                f" and (p2[0] - p0[0] <= {long_window_ms}))"),
            bucket_ms=max(derived // 8, 1),
            field_names=["ts0", "k0", "ts1", "k1", "ts2", "k2"])
        sink = _DiscardSink()
        operator.downstream = sink
        operator.setup(OperatorContext(_make_stores(), lambda *_: None))

        def feed():
            for port, row, arrival in events:
                operator.process(port, row, arrival)
        return feed, sink

    def build_cascade():
        first = StreamStreamJoinOperator(
            2, 2, "(l[1] == r[1])", 0, 0, window_ms, window_ms,
            "r[1]", "r[1]", ["ts0", "k0", "ts1", "k1"])
        second = StreamStreamJoinOperator(
            4, 2, "(l[1] == r[1])", 0, 0, long_window_ms, long_window_ms,
            "r[1]", "r[1]", ["ts0", "k0", "ts1", "k1", "ts2", "k2"],
            left_store="sql-join-left-2", right_store="sql-join-right-2")
        sink = _DiscardSink()
        first.downstream = _Port(second, 0)
        second.downstream = sink
        stores = _make_stores()
        context = OperatorContext(stores, lambda *_: None)
        first.setup(context)
        second.setup(context)

        def feed():
            for port, row, arrival in events:
                if port == 2:
                    second.process(1, row, arrival)
                else:
                    first.process(port, row, arrival)
        return feed, sink

    def timed(build):
        feed, sink = build()
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.process_time_ns()
            feed()
            return (time.process_time_ns() - started) / 1e9, sink.count
        finally:
            if gc_was_enabled:
                gc.enable()

    best = {"multiway": (float("inf"), 0), "cascade": (float("inf"), 0)}
    modes = [("multiway", build_multiway), ("cascade", build_cascade)]
    for round_no in range(max(repeats, 1)):
        order = modes if round_no % 2 == 0 else modes[::-1]
        for mode, build in order:
            elapsed, outputs = timed(build)
            if elapsed < best[mode][0]:
                best[mode] = (elapsed, outputs)
    return {
        "multiway_us_per_msg": best["multiway"][0] / messages * 1e6,
        "cascade_us_per_msg": best["cascade"][0] / messages * 1e6,
        "speedup": best["cascade"][0] / max(best["multiway"][0], 1e-9),
        "multiway_outputs": best["multiway"][1],
        "cascade_outputs": best["cascade"][1],
    }


def measure_frame_codec(records: int = 20_000, record_bytes: int = 64,
                        groups: int = 8, repeats: int = 3) -> dict[str, float]:
    """Peer-mesh frame codec cost: encode/decode + the writev-style pack.

    Builds one pump's worth of intermediate traffic — ``records`` Avro-sized
    records spread over ``groups`` (topic, partition) groups, the shape
    :class:`repro.parallel.peer.PeerLink` flushes — and times, GC-suspended
    with per-mode minima over ``repeats``:

    * ``encode`` / ``decode`` — the varint record-frame codec every peer
      link, parent mirror, and forwarded-input frame runs through;
    * ``header`` — the mirror-frame watermark envelope
      (``encode_data_payload`` / ``decode_data_payload``) per frame;
    * ``pack`` — ``pack_msgs`` / ``unpack_msgs``, the MSG_MULTI batching
      that turns many small per-pump messages into one pipe write.

    Returns microseconds per record (codec), per frame (header), per
    message (pack), plus encode throughput in MB/s.
    """
    import gc
    import time

    from repro.parallel.frames import (decode_data_payload, decode_frame,
                                       encode_data_payload, encode_frame,
                                       pack_msgs, unpack_msgs)

    per_group = max(records // groups, 1)
    records = per_group * groups
    batch = [("__intermediate", g, groups,
              [(i, 1_000_000 + i, f"k{i % 251}".encode(), bytes(record_bytes))
               for i in range(per_group)])
             for g in range(groups)]
    frame = encode_frame(batch)
    header = {"ia": 7, "pa": {f"job:g{i}": [1, i * 100] for i in range(groups)}}
    mirror_frame = encode_data_payload(header, frame)
    # MSG_MULTI workload: the per-pump mix of many small control payloads
    # around one data frame, padded so packing cost is not all memcpy.
    msgs = [frame[:200] for _ in range(64)] + [frame]

    def timed(fn, iterations: int) -> float:
        fn()  # warm allocators / lazy setup
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.process_time_ns()
            for _ in range(iterations):
                fn()
            return (time.process_time_ns() - started) / 1e9 / iterations
        finally:
            if gc_was_enabled:
                gc.enable()

    best = {"encode": float("inf"), "decode": float("inf"),
            "header": float("inf"), "pack": float("inf")}
    modes = [
        ("encode", lambda: encode_frame(batch)),
        ("decode", lambda: decode_frame(frame)),
        ("header", lambda: decode_data_payload(
            encode_data_payload(header, frame))[1]),
        ("pack", lambda: unpack_msgs(pack_msgs(msgs))),
    ]
    for round_no in range(max(repeats, 1)):
        order = modes if round_no % 2 == 0 else modes[::-1]
        for mode, fn in order:
            best[mode] = min(best[mode], timed(fn, iterations=3))
    return {
        "records": records,
        "frame_bytes": len(frame),
        "encode_us_per_record": best["encode"] / records * 1e6,
        "decode_us_per_record": best["decode"] / records * 1e6,
        "encode_mb_per_s": len(frame) / max(best["encode"], 1e-9) / 1e6,
        "decode_mb_per_s": len(frame) / max(best["decode"], 1e-9) / 1e6,
        "header_us_per_frame": best["header"] * 1e6,
        "pack_us_per_msg": best["pack"] / len(msgs) * 1e6,
        "mirror_frame_bytes": len(mirror_frame),
    }


def main(argv: list[str] | None = None) -> int:
    """Perf gates over the fig5a filter query through the full runtime:

    * metrics overhead — snapshot reporter off vs on must cost no more
      than ``--threshold`` percent;
    * batch speedup — ``task.batch.execution=true`` must be at least
      ``--batch-threshold`` times the single-message path's throughput;
    * compile speedup — with ``--compile-threshold`` set, whole-plan
      ``exec``-compilation must be at least that multiple of the
      interpreted per-operator chain's throughput, measured on the
      chain in isolation (pre-decoded records, discard sink) where
      dispatch elimination actually acts;
    * serde fusion — with ``--serde-threshold`` set, the serde-fused
      path (column-pruned compiled decode, re-encode elision, one
      generated decode→chain→encode function per task) must be at
      least that multiple of the full decode/encode batched path's
      end-to-end throughput;
    * window state maintenance — the fig6 sliding window's split-layout
      write-behind state path must be at least ``--window-threshold``
      times faster per message than the legacy monolithic-blob
      write-through maintenance it replaced;
    * parallel scaling — with ``--scaling-threshold`` set, the
      process-backed mode (``cluster.parallel.execution=true``) at two
      workers must reach at least that multiple of its own 1-worker
      throughput; on hosts with >= 4 CPUs the gate additionally
      measures 4 workers and requires 4-worker throughput to be at
      least the 2-worker figure (the peer mesh must not bend the
      curve back down).  Wall-clock, real processes; skipped (with a
      loud warning, not a fake pass) when the host exposes a single
      CPU, where a multi-core speedup is not measurable.

    ``--frame-codec`` additionally prints the peer-mesh frame codec
    micro-costs (encode/decode, mirror header, MSG_MULTI pack) —
    informational, no threshold.

    All use GC-suspended process-time runs, interleaved modes, per-mode
    minima, and a best-of-``--attempts`` noise guard.  Exit 1 when any
    gate fails.

    Run:  python -m repro.bench.micro [--threshold 5] [--batch-threshold 1.5]
          [--compile-threshold 1.5] [--serde-threshold 1.5]
          [--window-threshold 2.0] [--scaling-threshold 1.4]
    """
    import argparse
    import os

    from repro.bench.calibration import (measure_batch_speedup,
                                         measure_metrics_overhead)

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="max tolerated metrics overhead, percent "
                             "(default 5)")
    parser.add_argument("--batch-threshold", type=float, default=1.5,
                        help="min batched/single throughput ratio "
                             "(default 1.5; 0 disables the gate)")
    parser.add_argument("--compile-threshold", type=float, default=0.0,
                        help="min compiled/interpreted operator-chain "
                             "throughput ratio (0, the default, disables "
                             "the gate)")
    parser.add_argument("--serde-threshold", type=float, default=0.0,
                        help="min serde-fused/full-serde end-to-end "
                             "throughput ratio (0, the default, disables "
                             "the gate)")
    parser.add_argument("--window-threshold", type=float, default=2.0,
                        help="min fig6 state-maintenance speedup of the "
                             "write-behind layout over the legacy blob "
                             "path (default 2.0; 0 disables the gate)")
    parser.add_argument("--scaling-threshold", type=float, default=0.0,
                        help="min parallel-mode 2-worker/1-worker "
                             "throughput ratio (0, the default, disables "
                             "the gate)")
    parser.add_argument("--frame-codec", action="store_true",
                        help="print peer-mesh frame codec micro-costs "
                             "(informational, no gate)")
    parser.add_argument("--join-probe", action="store_true",
                        help="print 3-way join probe micro-costs, collapsed "
                             "operator vs pairwise cascade (informational, "
                             "no gate; the gated comparison lives in "
                             "repro.bench.fig7_json --check)")
    parser.add_argument("--messages", type=int, default=4000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--attempts", type=int, default=3,
                        help="independent measurements before failing "
                             "(noise guard; a real regression fails all)")
    args = parser.parse_args(argv)

    # A real regression (say an allocation added to the per-message path)
    # shows up in every measurement; a noisy host phase does not.  So each
    # gate takes the best of up to --attempts measurements and only fails
    # when none of them comes in under (over) the threshold.
    result = None
    for attempt in range(max(args.attempts, 1)):
        measured = measure_metrics_overhead(
            query="filter", messages=args.messages, repeats=args.repeats)
        if (result is None
                or measured["overhead_percent"] < result["overhead_percent"]):
            result = measured
        if result["overhead_percent"] <= args.threshold:
            break
        print(f"attempt {attempt + 1}: overhead "
              f"{measured['overhead_percent']:+.2f}% over threshold; "
              f"re-measuring...")
    print(f"fig5a filter query, {args.messages} messages, "
          f"best of {args.repeats}:")
    print(f"  reporter off: {result['off'] * 1000:.1f} ms")
    print(f"  reporter on:  {result['on'] * 1000:.1f} ms")
    print(f"  overhead:     {result['overhead_percent']:+.2f}% "
          f"(threshold {args.threshold:.1f}%)")
    failed = False
    if result["overhead_percent"] > args.threshold:
        print("FAIL: metrics instrumentation overhead above threshold")
        failed = True

    if args.batch_threshold > 0:
        speedup = None
        for attempt in range(max(args.attempts, 1)):
            measured = measure_batch_speedup(
                query="filter", messages=args.messages,
                repeats=min(args.repeats, 3))
            if speedup is None or measured["speedup"] > speedup["speedup"]:
                speedup = measured
            if speedup["speedup"] >= args.batch_threshold:
                break
            print(f"attempt {attempt + 1}: batch speedup "
                  f"{measured['speedup']:.2f}x under threshold; "
                  f"re-measuring...")
        print("batched execution (task.batch.execution=true vs false):")
        print(f"  single-message: {speedup['single_msgs_per_s']:,.0f} msgs/s")
        print(f"  batched:        {speedup['batch_msgs_per_s']:,.0f} msgs/s")
        print(f"  speedup:        {speedup['speedup']:.2f}x "
              f"(threshold {args.batch_threshold:.1f}x)")
        if speedup["speedup"] < args.batch_threshold:
            print("FAIL: batched execution speedup below threshold")
            failed = True

    if args.compile_threshold > 0:
        compiled = None
        for attempt in range(max(args.attempts, 1)):
            measured = measure_compile_speedup(
                query="filter", messages=args.messages,
                repeats=min(args.repeats, 3))
            if compiled is None or measured["speedup"] > compiled["speedup"]:
                compiled = measured
            if compiled["speedup"] >= args.compile_threshold:
                break
            print(f"attempt {attempt + 1}: compile speedup "
                  f"{measured['speedup']:.2f}x under threshold; "
                  f"re-measuring...")
        print("whole-plan compilation (fig5a operator chain, compiled vs "
              "interpreted dispatch):")
        print(f"  interpreted: {compiled['interpreted_msgs_per_s']:,.0f} msgs/s")
        print(f"  compiled:    {compiled['compiled_msgs_per_s']:,.0f} msgs/s")
        print(f"  speedup:     {compiled['speedup']:.2f}x "
              f"(threshold {args.compile_threshold:.1f}x)")
        if compiled["speedup"] < args.compile_threshold:
            print("FAIL: whole-plan compilation speedup below threshold")
            failed = True

    if args.serde_threshold > 0:
        fused = None
        for attempt in range(max(args.attempts, 1)):
            measured = measure_serde_speedup(
                query="filter", messages=args.messages,
                repeats=min(args.repeats, 3))
            if fused is None or measured["speedup"] > fused["speedup"]:
                fused = measured
            if fused["speedup"] >= args.serde_threshold:
                break
            print(f"attempt {attempt + 1}: serde fusion speedup "
                  f"{measured['speedup']:.2f}x under threshold; "
                  f"re-measuring...")
        print("serde fusion (task.serde.fusion=true vs false, batched):")
        print(f"  full serde:  {fused['plain_msgs_per_s']:,.0f} msgs/s")
        print(f"  fused:       {fused['fused_msgs_per_s']:,.0f} msgs/s")
        print(f"  speedup:     {fused['speedup']:.2f}x "
              f"(threshold {args.serde_threshold:.1f}x)")
        if fused["speedup"] < args.serde_threshold:
            print("FAIL: serde fusion speedup below threshold")
            failed = True

    if args.window_threshold > 0:
        window = None
        for attempt in range(max(args.attempts, 1)):
            measured = measure_window_state_speedup(repeats=2)
            if window is None or measured["speedup"] > window["speedup"]:
                window = measured
            if window["speedup"] >= args.window_threshold:
                break
            print(f"attempt {attempt + 1}: window state speedup "
                  f"{measured['speedup']:.2f}x under threshold; "
                  f"re-measuring...")
        print("fig6 window state maintenance (write-behind split layout "
              "vs legacy blob):")
        print(f"  legacy blob:   {window['legacy_ms_per_msg']:.4f} ms/msg")
        print(f"  write-behind:  {window['writebehind_ms_per_msg']:.4f} ms/msg")
        print(f"  speedup:       {window['speedup']:.2f}x "
              f"(threshold {args.window_threshold:.1f}x)")
        if window["speedup"] < args.window_threshold:
            print("FAIL: window state-maintenance speedup below threshold")
            failed = True

    if args.frame_codec:
        codec = measure_frame_codec()
        print(f"peer-mesh frame codec ({codec['records']:,.0f} records, "
              f"{codec['frame_bytes']:,.0f} B frame):")
        print(f"  encode: {codec['encode_us_per_record']:.3f} us/record "
              f"({codec['encode_mb_per_s']:,.0f} MB/s)")
        print(f"  decode: {codec['decode_us_per_record']:.3f} us/record "
              f"({codec['decode_mb_per_s']:,.0f} MB/s)")
        print(f"  mirror header round trip: "
              f"{codec['header_us_per_frame']:.1f} us/frame")
        print(f"  MSG_MULTI pack+unpack: "
              f"{codec['pack_us_per_msg']:.3f} us/msg")

    if args.join_probe:
        probe = measure_join_probe(messages=args.messages)
        print("3-way join probe (collapsed operator vs pairwise cascade, "
              "operators in isolation):")
        print(f"  multiway: {probe['multiway_us_per_msg']:.2f} us/arrival "
              f"({probe['multiway_outputs']:,} output rows)")
        print(f"  cascade:  {probe['cascade_us_per_msg']:.2f} us/arrival "
              f"({probe['cascade_outputs']:,} output rows)")
        print(f"  speedup:  {probe['speedup']:.2f}x")
        if probe["multiway_outputs"] != probe["cascade_outputs"]:
            print("FAIL: probe output mismatch between the two plans")
            failed = True

    if args.scaling_threshold > 0:
        cores = os.cpu_count() or 1
        if cores < 2:
            print(f"parallel scaling gate SKIPPED: host exposes {cores} "
                  "CPU(s); a multi-core speedup cannot be measured here "
                  "(threshold not waived silently — run on a >=2 core "
                  "host to enforce it)")
        else:
            from repro.bench.parallel_scaling import (
                measure_parallel_throughput, measure_scaling_speedup)

            msgs = max(args.messages, 10_000)
            scaling = None
            for attempt in range(max(args.attempts, 1)):
                measured = measure_scaling_speedup(workers=2, messages=msgs)
                if cores >= 4:
                    measured["four_msgs_per_s"] = measure_parallel_throughput(
                        4, messages=msgs)
                ok = (measured["speedup"] >= args.scaling_threshold
                      and (cores < 4 or measured["four_msgs_per_s"]
                           >= measured["scaled_msgs_per_s"]))
                if scaling is None or measured["speedup"] > scaling["speedup"]:
                    scaling = measured
                if ok:
                    scaling = measured
                    break
                print(f"attempt {attempt + 1}: parallel scaling "
                      f"{measured['speedup']:.2f}x under threshold or "
                      f"4-worker regressed; re-measuring...")
            print(f"parallel execution scaling ({cores} CPUs):")
            print(f"  1 worker:  {scaling['base_msgs_per_s']:,.0f} msgs/s")
            print(f"  2 workers: {scaling['scaled_msgs_per_s']:,.0f} msgs/s")
            if "four_msgs_per_s" in scaling:
                print(f"  4 workers: {scaling['four_msgs_per_s']:,.0f} msgs/s")
            print(f"  speedup:   {scaling['speedup']:.2f}x "
                  f"(threshold {args.scaling_threshold:.1f}x)")
            if scaling["speedup"] < args.scaling_threshold:
                print("FAIL: parallel 2-worker scaling below threshold")
                failed = True
            if (cores >= 4 and scaling["four_msgs_per_s"]
                    < scaling["scaled_msgs_per_s"]):
                print("FAIL: 4-worker throughput below 2-worker — "
                      "scaling curve bends down inside the core budget")
                failed = True

    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
