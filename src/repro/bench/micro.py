"""Per-message micro pipelines for pytest-benchmark.

Builds the *real* operator pipelines (same classes the runtime uses) with
a discard sink and in-memory serialized stores, plus the equivalent
hand-written native paths, so ``benchmarks/`` can measure the per-message
cost of each variant in isolation — no Kafka/YARN loop around it.
"""

from __future__ import annotations

from typing import Callable

from repro.samza.storage import InMemoryKeyValueStore, SerializedKeyValueStore
from repro.samzasql.operators.base import OperatorContext
from repro.samzasql.operators.router import MessageRouter, build_router
from repro.samzasql.plan_builder import PhysicalPlanBuilder
from repro.serde.avro import AvroSerde
from repro.serde.object_serde import ObjectSerde
from repro.bench.calibration import SQL_QUERIES
from repro.sql.catalog import Catalog
from repro.sql.planner import QueryPlanner
from repro.workloads.orders import OrdersGenerator, padded_orders_schema
from repro.workloads.products import PRODUCTS_SCHEMA, ProductsGenerator

_STORE_NAMES = (
    "sql-window-messages", "sql-window-state", "sql-group-windows",
    "sql-join-left", "sql-join-right", "sql-relation-products",
)


def _make_stores() -> dict:
    return {
        name: SerializedKeyValueStore(InMemoryKeyValueStore(),
                                      ObjectSerde(), ObjectSerde())
        for name in _STORE_NAMES
    }


def _catalog() -> Catalog:
    catalog = Catalog()
    catalog.register_stream_from_avro("Orders", padded_orders_schema())
    catalog.register_table_from_avro("Products", PRODUCTS_SCHEMA,
                                     key_field="productId",
                                     changelog_topic="Products-changelog")
    return catalog


class MicroPipeline:
    """A feedable pipeline: ``step()`` processes the next encoded message."""

    def __init__(self, process: Callable[[bytes, int], None],
                 messages: list[tuple[bytes, bytes, int]],
                 reset: Callable[[], None] | None = None):
        self._process = process
        self._messages = messages
        self._index = 0
        self._reset = reset
        self.outputs = 0

    def step(self) -> None:
        value_bytes, _key, ts = self._messages[self._index]
        self._index += 1
        if self._index >= len(self._messages):
            self._index = 0
            if self._reset is not None:
                self._reset()
        self._process(value_bytes, ts)

    def run_batch(self, count: int) -> None:
        for _ in range(count):
            self.step()


class BatchMicroPipeline:
    """Batch-at-a-time twin of :class:`MicroPipeline`.

    ``step()`` hands the next ``batch_size`` encoded messages to the
    pipeline in a single call — the shape the batched container loop
    produces from ``Consumer.poll_batches`` — so benchmarks can compare
    per-message cost against the single-message ``MicroPipeline`` on
    identical workloads.  ``messages_per_step`` converts step timings to
    per-message figures.
    """

    def __init__(self, process_batch: Callable[[list, list], None],
                 messages: list[tuple[bytes, bytes, int]], batch_size: int,
                 reset: Callable[[], None] | None = None):
        self._process_batch = process_batch
        self._messages = messages
        self._batch_size = batch_size
        self._index = 0
        self._reset = reset
        self.messages_per_step = batch_size

    def step(self) -> None:
        start = self._index
        stop = start + self._batch_size
        chunk = self._messages[start:stop]
        self._index = stop
        if self._index >= len(self._messages):
            self._index = 0
            if self._reset is not None:
                self._reset()
        self._process_batch([value for value, _key, _ts in chunk],
                            [ts for _value, _key, ts in chunk])

    def run_batch(self, count: int) -> None:
        """Process at least ``count`` messages (whole steps)."""
        done = 0
        while done < count:
            self.step()
            done += self._batch_size


def _encoded_orders(count: int) -> list[tuple[bytes, bytes, int]]:
    generator = OrdersGenerator(interarrival_ms=1000)
    return [(value, key, ts) for key, value, ts in generator.encoded(count)]


def samzasql_pipeline(query: str, messages: int = 8192,
                      fuse_scans: bool = False,
                      batch_size: int = 0) -> MicroPipeline | BatchMicroPipeline:
    """The SamzaSQL-compiled pipeline: deserialize → operators → serialize.

    With ``batch_size > 0`` the returned pipeline runs the batched
    execution path instead — ``from_bytes_batch`` → ``route_batch`` →
    buffered insert sinks flushed through ``to_bytes_batch`` — mirroring
    what the container does per poll group when ``task.batch.execution``
    is on.
    """
    catalog = _catalog()
    planner = QueryPlanner(catalog)
    logical = planner.plan_query(SQL_QUERIES[query])
    builder = PhysicalPlanBuilder(catalog, fuse_scans=fuse_scans)
    plan = builder.build(logical, "bench-output")

    from repro.samzasql.operators.insert import InsertOperator
    from repro.samzasql.shell import sql_row_type_to_avro

    output_schema = sql_row_type_to_avro("BenchOut", logical.row_type)
    output_serde = AvroSerde(output_schema)
    sink_count = [0]

    def send(message: dict, _ts: int, _key=None) -> None:
        output_serde.to_bytes(message)  # ArrayToAvro + wire encoding
        sink_count[0] += 1

    def send_batch(entries: list) -> None:
        encoded = output_serde.to_bytes_batch(
            [message for message, _ts, _key in entries])
        sink_count[0] += len(encoded)

    def _build() -> MessageRouter:
        router = build_router(plan, OperatorContext(
            stores, send, send_batch=send_batch))
        if batch_size > 0:
            for operator in router.operators:
                if isinstance(operator, InsertOperator):
                    operator.set_buffering(True)
        return router

    stores = _make_stores()
    router_box: list[MessageRouter] = []

    def rebuild() -> None:
        fresh = _make_stores()
        stores.clear()
        stores.update(fresh)
        router_box[0] = _build()
        _load_relation(router_box[0], query)

    def _load_relation(router: MessageRouter, q: str) -> None:
        if q != "join":
            return
        serde = AvroSerde(PRODUCTS_SCHEMA)
        for record in ProductsGenerator().records():
            router.route("Products-changelog", record, 0)

    router_box.append(_build())
    _load_relation(router_box[0], query)
    input_serde = AvroSerde(padded_orders_schema())
    stream = plan.input_streams[0]
    workload = _encoded_orders(messages)

    if batch_size > 0:
        def process_batch(values: list, timestamps: list) -> None:
            records = input_serde.from_bytes_batch(values)
            router = router_box[0]
            router.route_batch(stream, records, timestamps)
            router.flush_sinks()

        batch_pipeline = BatchMicroPipeline(process_batch, workload,
                                            batch_size, reset=rebuild)
        batch_pipeline.sink_count = sink_count  # type: ignore[attr-defined]
        return batch_pipeline

    def process(value_bytes: bytes, ts: int) -> None:
        record = input_serde.from_bytes(value_bytes)
        router_box[0].route(stream, record, ts)

    pipeline = MicroPipeline(process, workload, reset=rebuild)
    pipeline.sink_count = sink_count  # type: ignore[attr-defined]
    return pipeline


def native_pipeline(query: str, messages: int = 8192) -> MicroPipeline:
    """The hand-written per-message path for each benchmark query."""
    input_serde = AvroSerde(padded_orders_schema())

    if query == "filter":
        def process(value_bytes: bytes, ts: int) -> None:
            record = input_serde.from_bytes(value_bytes)
            if record["units"] > 50:
                _ = value_bytes  # raw pass-through write

        return MicroPipeline(process, _encoded_orders(messages))

    if query == "project":
        from repro.bench.native_jobs import NativeProjectTask

        out_serde = NativeProjectTask.PROJECTED_SCHEMA

        def process(value_bytes: bytes, ts: int) -> None:
            record = input_serde.from_bytes(value_bytes)
            out_serde.to_bytes({"rowtime": record["rowtime"],
                                "productId": record["productId"],
                                "units": record["units"]})

        return MicroPipeline(process, _encoded_orders(messages))

    if query == "join":
        # Avro-serde state store: the native join's measured advantage.
        store = SerializedKeyValueStore(
            InMemoryKeyValueStore(), ObjectSerde(), AvroSerde(PRODUCTS_SCHEMA))
        for record in ProductsGenerator().records():
            store.put(str(record["productId"]), record)
        out_schema = AvroSerde(
            {"type": "record", "name": "JoinedOut", "fields": [
                {"name": "rowtime", "type": "long"},
                {"name": "orderId", "type": "long"},
                {"name": "productId", "type": "int"},
                {"name": "units", "type": "int"},
                {"name": "supplierId", "type": "int"}]})

        def process(value_bytes: bytes, ts: int) -> None:
            order = input_serde.from_bytes(value_bytes)
            product = store.get(str(order["productId"]))
            if product is None:
                return
            out_schema.to_bytes({
                "rowtime": order["rowtime"], "orderId": order["orderId"],
                "productId": order["productId"], "units": order["units"],
                "supplierId": product["supplierId"]})

        return MicroPipeline(process, _encoded_orders(messages))

    if query == "window":
        from repro.bench.native_jobs import NativeSlidingWindowTask

        state_box = {}

        def make_stores():
            return (SerializedKeyValueStore(InMemoryKeyValueStore(),
                                            ObjectSerde(), ObjectSerde()),
                    SerializedKeyValueStore(InMemoryKeyValueStore(),
                                            ObjectSerde(), ObjectSerde()))

        state_box["messages"], state_box["state"] = make_stores()
        window_ms = NativeSlidingWindowTask.WINDOW_MS

        def reset() -> None:
            state_box["messages"], state_box["state"] = make_stores()

        def process(value_bytes: bytes, ts_in: int) -> None:
            order = input_serde.from_bytes(value_bytes)
            key = str(order["productId"])
            ts = order["rowtime"]
            state = state_box["state"].get(key) or {"rows": [], "sum": 0, "seq": 0}
            seq = state["seq"]
            state["seq"] = seq + 1
            state_box["messages"].put((key, ts, seq), order["units"])
            cutoff = ts - window_ms
            rows = state["rows"]
            keep = 0
            for keep, entry in enumerate(rows):
                if entry[0] >= cutoff:
                    break
            else:
                keep = len(rows)
            for old_ts, old_seq, old_units in rows[:keep]:
                state["sum"] -= old_units
                state_box["messages"].delete((key, old_ts, old_seq))
            del rows[:keep]
            rows.append((ts, seq, order["units"]))
            state["sum"] += order["units"]
            state_box["state"].put(key, state)

        return MicroPipeline(process, _encoded_orders(messages), reset=reset)

    raise ValueError(f"unknown query {query!r}")


def main(argv: list[str] | None = None) -> int:
    """Perf gates over the fig5a filter query through the full runtime:

    * metrics overhead — snapshot reporter off vs on must cost no more
      than ``--threshold`` percent;
    * batch speedup — ``task.batch.execution=true`` must be at least
      ``--batch-threshold`` times the single-message path's throughput.

    Both use GC-suspended process-time runs, interleaved modes, per-mode
    minima, and a best-of-``--attempts`` noise guard.  Exit 1 when either
    gate fails.

    Run:  python -m repro.bench.micro [--threshold 5] [--batch-threshold 1.5]
    """
    import argparse

    from repro.bench.calibration import (measure_batch_speedup,
                                         measure_metrics_overhead)

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="max tolerated metrics overhead, percent "
                             "(default 5)")
    parser.add_argument("--batch-threshold", type=float, default=1.5,
                        help="min batched/single throughput ratio "
                             "(default 1.5; 0 disables the gate)")
    parser.add_argument("--messages", type=int, default=4000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--attempts", type=int, default=3,
                        help="independent measurements before failing "
                             "(noise guard; a real regression fails all)")
    args = parser.parse_args(argv)

    # A real regression (say an allocation added to the per-message path)
    # shows up in every measurement; a noisy host phase does not.  So each
    # gate takes the best of up to --attempts measurements and only fails
    # when none of them comes in under (over) the threshold.
    result = None
    for attempt in range(max(args.attempts, 1)):
        measured = measure_metrics_overhead(
            query="filter", messages=args.messages, repeats=args.repeats)
        if (result is None
                or measured["overhead_percent"] < result["overhead_percent"]):
            result = measured
        if result["overhead_percent"] <= args.threshold:
            break
        print(f"attempt {attempt + 1}: overhead "
              f"{measured['overhead_percent']:+.2f}% over threshold; "
              f"re-measuring...")
    print(f"fig5a filter query, {args.messages} messages, "
          f"best of {args.repeats}:")
    print(f"  reporter off: {result['off'] * 1000:.1f} ms")
    print(f"  reporter on:  {result['on'] * 1000:.1f} ms")
    print(f"  overhead:     {result['overhead_percent']:+.2f}% "
          f"(threshold {args.threshold:.1f}%)")
    failed = False
    if result["overhead_percent"] > args.threshold:
        print("FAIL: metrics instrumentation overhead above threshold")
        failed = True

    if args.batch_threshold > 0:
        speedup = None
        for attempt in range(max(args.attempts, 1)):
            measured = measure_batch_speedup(
                query="filter", messages=args.messages,
                repeats=min(args.repeats, 3))
            if speedup is None or measured["speedup"] > speedup["speedup"]:
                speedup = measured
            if speedup["speedup"] >= args.batch_threshold:
                break
            print(f"attempt {attempt + 1}: batch speedup "
                  f"{measured['speedup']:.2f}x under threshold; "
                  f"re-measuring...")
        print("batched execution (task.batch.execution=true vs false):")
        print(f"  single-message: {speedup['single_msgs_per_s']:,.0f} msgs/s")
        print(f"  batched:        {speedup['batch_msgs_per_s']:,.0f} msgs/s")
        print(f"  speedup:        {speedup['speedup']:.2f}x "
              f"(threshold {args.batch_threshold:.1f}x)")
        if speedup["speedup"] < args.batch_threshold:
            print("FAIL: batched execution speedup below threshold")
            failed = True

    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
