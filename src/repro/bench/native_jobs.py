"""Hand-written Samza jobs for the four benchmark queries (§5.1).

These mirror what the paper's authors wrote in the Samza Java API as the
comparison baseline, including each job's specific shortcut over the
SQL-generated pipeline:

* **filter** — checks the deserialized record but forwards the *raw
  message bytes* unchanged ("directly reads from incoming Avro message and
  writes back the message into the output stream without any
  modification");
* **project** — builds the output Avro record straight from the input
  record ("we create Avro messages directly from incoming Avro messages"),
  no array-tuple detour;
* **join** — caches the Products relation with an *Avro* value serde
  (SamzaSQL uses the generic object serde, its measured 2x handicap);
* **sliding window** — the same Algorithm-1 state layout as the SQL
  operator, on the same store stack (both implementations are dominated by
  KV-store access, Figure 6).
"""

from __future__ import annotations

from repro.common.config import Config
from repro.samza.serdes import SerdeRegistry
from repro.samza.system import OutgoingMessageEnvelope, SystemStream
from repro.samza.task import InitableTask, StreamTask
from repro.serde.avro import AvroSerde
from repro.workloads.orders import ORDERS_SCHEMA, padded_orders_schema
from repro.workloads.products import PRODUCTS_SCHEMA


class NativeFilterTask(StreamTask):
    """SELECT STREAM * FROM Orders WHERE units > 50 — by hand."""

    def __init__(self, output_stream: str = "NativeFilterOut", threshold: int = 50):
        self.output = SystemStream("kafka", output_stream)
        self.threshold = threshold

    def process(self, envelope, collector, coordinator):
        if envelope.message["units"] > self.threshold:
            # pass-through: the raw Avro bytes go out unmodified
            collector.send(OutgoingMessageEnvelope(
                system_stream=self.output,
                message=envelope.raw_message,
                key=envelope.raw_key,
                timestamp_ms=envelope.timestamp_ms,
                pre_serialized=True,
            ))


class NativeProjectTask(StreamTask):
    """SELECT STREAM rowtime, productId, units FROM Orders — by hand."""

    PROJECTED_SCHEMA = AvroSerde(
        {"type": "record", "name": "OrdersProjected",
         "fields": [{"name": "rowtime", "type": "long"},
                    {"name": "productId", "type": "int"},
                    {"name": "units", "type": "int"}]})

    def __init__(self, output_stream: str = "NativeProjectOut"):
        self.output = SystemStream("kafka", output_stream)

    def process(self, envelope, collector, coordinator):
        record = envelope.message
        projected = {"rowtime": record["rowtime"],
                     "productId": record["productId"],
                     "units": record["units"]}
        collector.send(OutgoingMessageEnvelope(
            system_stream=self.output,
            message=self.PROJECTED_SCHEMA.to_bytes(projected),
            key=envelope.raw_key,
            timestamp_ms=envelope.timestamp_ms,
            pre_serialized=True,
        ))


class NativeJoinTask(StreamTask, InitableTask):
    """Orders ⋈ Products through a bootstrapped local store — by hand.

    The store is configured with the Avro value serde (see
    ``native_job_config``), the faster schema-driven path the paper credits
    for native Samza's 2x join advantage.
    """

    JOINED_SCHEMA = AvroSerde(
        {"type": "record", "name": "JoinedOrder",
         "fields": [{"name": "rowtime", "type": "long"},
                    {"name": "orderId", "type": "long"},
                    {"name": "productId", "type": "int"},
                    {"name": "units", "type": "int"},
                    {"name": "supplierId", "type": "int"}]})

    def __init__(self, output_stream: str = "NativeJoinOut"):
        self.output = SystemStream("kafka", output_stream)
        self.store = None

    def init(self, config, context):
        self.store = context.get_store("products")

    def process(self, envelope, collector, coordinator):
        if envelope.stream.endswith("changelog") or envelope.stream == "Products":
            product = envelope.message
            self.store.put(str(product["productId"]), product)
            return
        order = envelope.message
        product = self.store.get(str(order["productId"]))
        if product is None:
            return
        joined = {"rowtime": order["rowtime"], "orderId": order["orderId"],
                  "productId": order["productId"], "units": order["units"],
                  "supplierId": product["supplierId"]}
        collector.send(OutgoingMessageEnvelope(
            system_stream=self.output,
            message=self.JOINED_SCHEMA.to_bytes(joined),
            key=envelope.raw_key,
            timestamp_ms=envelope.timestamp_ms,
            pre_serialized=True))


class NativeSlidingWindowTask(StreamTask, InitableTask):
    """5-minute sliding SUM(units) per productId — by hand (Algorithm 1)."""

    WINDOW_MS = 5 * 60 * 1000

    WINDOWED_SCHEMA = AvroSerde(
        {"type": "record", "name": "WindowedOrder",
         "fields": [{"name": "rowtime", "type": "long"},
                    {"name": "productId", "type": "int"},
                    {"name": "units", "type": "int"},
                    {"name": "unitsLastFiveMinutes", "type": "long"}]})

    def __init__(self, output_stream: str = "NativeWindowOut"):
        self.output = SystemStream("kafka", output_stream)
        self.messages = None
        self.state = None

    def init(self, config, context):
        self.messages = context.get_store("window-messages")
        self.state = context.get_store("window-state")

    def process(self, envelope, collector, coordinator):
        order = envelope.message
        key = str(order["productId"])
        ts = order["rowtime"]

        state = self.state.get(key)
        if state is None:
            state = {"rows": [], "sum": 0, "seq": 0}
        seq = state["seq"]
        state["seq"] = seq + 1
        self.messages.put((key, ts, seq), order["units"])

        cutoff = ts - self.WINDOW_MS
        rows = state["rows"]
        keep = 0
        for keep, (row_ts, row_seq, row_units) in enumerate(rows):
            if row_ts >= cutoff:
                break
        else:
            keep = len(rows)
        for row_ts, row_seq, row_units in rows[:keep]:
            state["sum"] -= row_units
            self.messages.delete((key, row_ts, row_seq))
        del rows[:keep]

        rows.append((ts, seq, order["units"]))
        state["sum"] += order["units"]
        self.state.put(key, state)

        collector.send(OutgoingMessageEnvelope(
            system_stream=self.output,
            message=self.WINDOWED_SCHEMA.to_bytes(
                {"rowtime": ts, "productId": order["productId"],
                 "units": order["units"],
                 "unitsLastFiveMinutes": state["sum"]}),
            key=envelope.raw_key, timestamp_ms=ts, pre_serialized=True))


def native_job_config(query: str, job_name: str, containers: int = 1,
                      orders_topic: str = "Orders",
                      products_topic: str = "Products-changelog",
                      padded: bool = True) -> tuple[Config, SerdeRegistry, type]:
    """(config, serdes, task factory) for one native benchmark job.

    This is the per-query configuration burden §5 mentions users carrying
    for every native job ("users needs to maintain stream job configuration
    for each query in case of Samza").
    """
    serdes = SerdeRegistry()
    orders_schema = padded_orders_schema() if padded else ORDERS_SCHEMA
    serdes.register("avro-orders", AvroSerde(orders_schema))
    serdes.register("avro-products", AvroSerde(PRODUCTS_SCHEMA))

    base = {
        "job.name": job_name,
        "job.container.count": containers,
        "task.inputs": f"kafka.{orders_topic}",
        f"systems.kafka.streams.{orders_topic}.samza.msg.serde": "avro-orders",
        f"systems.kafka.streams.{orders_topic}.samza.key.serde": "string",
    }
    if query == "filter":
        return Config(base), serdes, NativeFilterTask
    if query == "project":
        return Config(base), serdes, NativeProjectTask
    if query == "join":
        base.update({
            "task.inputs": f"kafka.{orders_topic},kafka.{products_topic}",
            f"systems.kafka.streams.{products_topic}.samza.bootstrap": "true",
            f"systems.kafka.streams.{products_topic}.samza.msg.serde": "avro-products",
            f"systems.kafka.streams.{products_topic}.samza.key.serde": "string",
            # Avro-schema state serde: the native job's join advantage.
            "stores.products.changelog": f"kafka.{job_name}-products-changelog",
            "stores.products.key.serde": "string",
            "stores.products.msg.serde": "avro-products",
        })
        return Config(base), serdes, NativeJoinTask
    if query == "window":
        base.update({
            "stores.window-messages.changelog": f"kafka.{job_name}-msgs-changelog",
            "stores.window-messages.key.serde": "object",
            "stores.window-messages.msg.serde": "object",
            "stores.window-state.changelog": f"kafka.{job_name}-state-changelog",
            "stores.window-state.key.serde": "object",
            "stores.window-state.msg.serde": "object",
        })
        return Config(base), serdes, NativeSlidingWindowTask
    raise ValueError(f"unknown benchmark query {query!r}")
