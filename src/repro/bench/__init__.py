"""Benchmark support: native baselines, measurement harness, usability data.

The paper's §5 compares SamzaSQL against the same four queries implemented
directly in Samza's Java API; :mod:`repro.bench.native_jobs` carries those
hand-written implementations (in Python, against this repo's Samza model),
including the tricks the paper describes — raw pass-through in the filter
job, direct Avro-record construction in the project job, Avro (not
generic/Kryo) state serdes in the join job.
"""

from repro.bench.native_jobs import (
    NativeFilterTask,
    NativeJoinTask,
    NativeProjectTask,
    NativeSlidingWindowTask,
    native_job_config,
)
from repro.bench.harness import (
    BenchResult,
    measure_query,
    run_figure,
    FIGURES,
)
from repro.bench.loc import usability_table

__all__ = [
    "NativeFilterTask",
    "NativeProjectTask",
    "NativeJoinTask",
    "NativeSlidingWindowTask",
    "native_job_config",
    "BenchResult",
    "measure_query",
    "run_figure",
    "FIGURES",
    "usability_table",
]
