"""Cascade vs multi-way stream join: the fig7 series (new to the repro).

Two long-window K-way join scenarios run through the full runtime:

* ``3way_market`` — Bids x Asks x Trades on ticker.  Quotes fan out
  (every bid matches many asks of its ticker inside the long window), so
  the pairwise cascade materializes every intermediate Bids-Asks pair
  into its second join's window store and pays serde + routing for each;
  trades are sparse, so the collapsed operator's cheapest-side-first
  probe order short-circuits most arrivals.
* ``4way_orders`` — Orders x Fills x Shipments x Invoices on orderId,
  reassembling the fulfilment lifecycle of each order inside windows
  anchored at the original order row.

Each scenario runs the same SQL twice — multi-way collapse enabled (the
default plan) and disabled (``execution.multiway.join=false``: the
pairwise cascade) — and reports:

* msgs/s over the input messages (process-time, GC suspended, variants
  interleaved, per-variant minimum over repeats — the fig5 methodology);
* peak retained join state, sampled from the ``window-state-size``
  gauges in the ``__metrics`` snapshots while the run drains (an
  untimed pass, so sampling never pollutes the throughput numbers);
* the output-row count per variant (the two plans must agree).

``--check`` gates the 3-way scenario: multi-way throughput >= 1.3x the
cascade and peak state <= 0.75x the cascade, plus output equality on
both scenarios.  CI runs this after the test suite.

Run:  python -m repro.bench.fig7_json [--messages N] [--out PATH] [--check]
"""

from __future__ import annotations

import gc
import json
import pathlib
import time
from dataclasses import dataclass
from typing import Callable

from repro.samzasql.environment import SamzaSqlEnvironment
from repro.workloads.market import (
    ASKS_SCHEMA,
    BIDS_SCHEMA,
    TRADES_SCHEMA,
    MarketGenerator,
    TradesGenerator,
    ticker_universe,
)
from repro.workloads.orders import (
    ORDER_STAGES,
    ORDERS_SCHEMA,
    OrderLifecycleGenerator,
    order_stage_schema,
)

DEFAULT_OUT = pathlib.Path(__file__).resolve().parents[3] / "BENCH_joins.json"

#: --check thresholds on the 3-way long-window scenario (ISSUE 9).
CHECK_MIN_THROUGHPUT_RATIO = 1.3
CHECK_MAX_STATE_RATIO = 0.75

_TICKER_COUNT = 64
_QUOTE_INTERARRIVAL_MS = 5
_TRADE_DIVISOR = 40  # one trade print per ~40 quotes

THREE_WAY_SQL = (
    "SELECT STREAM Bids.rowtime AS rowtime, Bids.ticker AS ticker, "
    "Bids.price AS bidPrice, Asks.price AS askPrice, "
    "Trades.price AS tradePrice FROM Bids "
    "JOIN Asks ON Bids.rowtime BETWEEN Asks.rowtime - INTERVAL '60' SECOND "
    "AND Asks.rowtime + INTERVAL '60' SECOND AND Bids.ticker = Asks.ticker "
    "JOIN Trades ON Bids.rowtime BETWEEN Trades.rowtime - INTERVAL '60' SECOND "
    "AND Trades.rowtime + INTERVAL '60' SECOND AND Asks.ticker = Trades.ticker"
)

FOUR_WAY_SQL = (
    "SELECT STREAM Orders.rowtime AS rowtime, Orders.orderId AS orderId, "
    "Invoices.rowtime - Orders.rowtime AS cycleMs FROM Orders "
    "JOIN Fills ON Orders.rowtime BETWEEN Fills.rowtime - INTERVAL '2' SECOND "
    "AND Fills.rowtime + INTERVAL '2' SECOND AND Orders.orderId = Fills.orderId "
    "JOIN Shipments ON Orders.rowtime BETWEEN Shipments.rowtime - "
    "INTERVAL '4' SECOND AND Shipments.rowtime + INTERVAL '4' SECOND "
    "AND Fills.orderId = Shipments.orderId "
    "JOIN Invoices ON Orders.rowtime BETWEEN Invoices.rowtime - "
    "INTERVAL '6' SECOND AND Invoices.rowtime + INTERVAL '6' SECOND "
    "AND Shipments.orderId = Invoices.orderId"
)


@dataclass
class Scenario:
    name: str
    sql: str
    setup: Callable[[SamzaSqlEnvironment, int, int], int]
    """Feed the workload + register the streams; returns messages fed."""


def _setup_market(env: SamzaSqlEnvironment, messages: int,
                  partitions: int) -> int:
    tickers = ticker_universe(_TICKER_COUNT)
    span_s = max(messages * _QUOTE_INTERARRIVAL_MS / 1000.0, 1e-3)
    trades = max(messages // _TRADE_DIVISOR, 8)
    quotes = MarketGenerator(interarrival_ms=_QUOTE_INTERARRIVAL_MS,
                             tickers=tickers)
    bids, asks = quotes.produce(env.cluster, "Bids", "Asks", messages,
                                partitions=partitions)
    prints = TradesGenerator(
        interarrival_ms=max(messages * _QUOTE_INTERARRIVAL_MS // trades, 1),
        tickers=tickers).produce(env.cluster, "Trades", trades,
                                 partitions=partitions)
    # Declared arrival rates drive the probe order: sparse trades are the
    # cheapest side, so they are probed (and short-circuited on) first.
    env.shell.register_stream("Bids", BIDS_SCHEMA, partitions=partitions,
                              rate_per_sec=bids / span_s)
    env.shell.register_stream("Asks", ASKS_SCHEMA, partitions=partitions,
                              rate_per_sec=asks / span_s)
    env.shell.register_stream("Trades", TRADES_SCHEMA, partitions=partitions,
                              rate_per_sec=prints / span_s)
    return bids + asks + prints


def _setup_orders(env: SamzaSqlEnvironment, messages: int,
                  partitions: int) -> int:
    orders = max(messages // 4, 100)
    span_s = max(orders * 5 / 1000.0, 1e-3)
    written = OrderLifecycleGenerator(interarrival_ms=5).produce(
        env.cluster, orders, partitions=partitions)
    env.shell.register_stream("Orders", ORDERS_SCHEMA, partitions=partitions,
                              rate_per_sec=written["Orders"] / span_s)
    for stage in ORDER_STAGES:
        env.shell.register_stream(stage, order_stage_schema(stage),
                                  partitions=partitions,
                                  rate_per_sec=written[stage] / span_s)
    return sum(written.values())


SCENARIOS = {
    "3way_market": Scenario("3way_market", THREE_WAY_SQL, _setup_market),
    "4way_orders": Scenario("4way_orders", FOUR_WAY_SQL, _setup_orders),
}

VARIANTS = (("cascade", "false"), ("multiway", "true"))


def _launch(scenario: Scenario, multiway_flag: str, messages: int,
            partitions: int, metrics_interval_ms: int = 0):
    env = SamzaSqlEnvironment(broker_count=3, node_count=3,
                              node_mem_mb=61_000, start_ms=0,
                              metrics_interval_ms=metrics_interval_ms)
    fed = scenario.setup(env, messages, partitions)
    handle = env.shell.execute(
        scenario.sql, containers=1,
        config_overrides={"execution.multiway.join": multiway_flag})
    return env, handle, fed


def _timed_run(scenario: Scenario, multiway_flag: str, messages: int,
               partitions: int) -> tuple[float, int]:
    """One throughput run: fig5 methodology (process time, GC suspended)."""
    env, _, fed = _launch(scenario, multiway_flag, messages, partitions)
    env.runner.run_iteration()  # warm codegen + store setup
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.process_time_ns()
        env.runner.run_until_quiescent(max_iterations=1_000_000)
        return (time.process_time_ns() - started) / 1e9, fed
    finally:
        if gc_was_enabled:
            gc.enable()


def _state_rows(env: SamzaSqlEnvironment) -> float:
    return sum(record["value"] for record in env.metrics(force=True)
               if record["metric"] == "window-state-size")


def _state_run(scenario: Scenario, multiway_flag: str, messages: int,
               partitions: int, sample_every: int = 8) -> tuple[float, int]:
    """Untimed pass: drive to quiescence while sampling peak join state."""
    env, handle, _ = _launch(scenario, multiway_flag, messages, partitions,
                             metrics_interval_ms=1_000)
    peak = 0.0
    idle = 0
    for iteration in range(1, 1_000_000):
        processed = env.runner.run_iteration()
        if iteration % sample_every == 0 or not processed:
            peak = max(peak, _state_rows(env))
        idle = idle + 1 if not processed else 0
        if idle >= 4:
            break
    env.run_until_quiescent()
    peak = max(peak, _state_rows(env))
    return peak, len(handle.results())


def measure_scenario(scenario: Scenario, messages: int, partitions: int = 2,
                     repeats: int = 2) -> dict:
    best: dict[str, tuple[float, int]] = {}
    for round_no in range(max(repeats, 1)):
        order = VARIANTS if round_no % 2 == 0 else VARIANTS[::-1]
        for variant, flag in order:
            elapsed, fed = _timed_run(scenario, flag, messages, partitions)
            if variant not in best or elapsed < best[variant][0]:
                best[variant] = (elapsed, fed)
    result: dict = {}
    for variant, flag in VARIANTS:
        elapsed, fed = best[variant]
        peak, outputs = _state_run(scenario, flag, messages, partitions)
        result[variant] = {
            "input_messages": fed,
            "elapsed_s": round(elapsed, 4),
            "msgs_per_s": round(fed / max(elapsed, 1e-9), 1),
            "peak_state_rows": peak,
            "output_rows": outputs,
        }
    result["throughput_ratio"] = round(
        result["multiway"]["msgs_per_s"]
        / max(result["cascade"]["msgs_per_s"], 1e-9), 3)
    result["state_ratio"] = round(
        result["multiway"]["peak_state_rows"]
        / max(result["cascade"]["peak_state_rows"], 1e-9), 3)
    return result


def collect(messages: int = 1200, repeats: int = 2,
            partitions: int = 2) -> dict:
    scenarios = {
        name: measure_scenario(scenario, messages=messages,
                               partitions=partitions, repeats=repeats)
        for name, scenario in SCENARIOS.items()
    }
    return {
        "messages_per_run": messages,
        "repeats": repeats,
        "method": ("throughput: process-time over input msgs, GC suspended, "
                   "variants interleaved, per-variant minimum over repeats; "
                   "peak_state_rows: retained rows summed over all join "
                   "stores (window-state-size gauges), sampled on a "
                   "separate untimed pass"),
        "scenarios": scenarios,
    }


def check(payload: dict) -> list[str]:
    """Gate failures (empty list = pass)."""
    errors = []
    row = payload["scenarios"]["3way_market"]
    if row["throughput_ratio"] < CHECK_MIN_THROUGHPUT_RATIO:
        errors.append(
            f"3way_market throughput_ratio {row['throughput_ratio']} < "
            f"{CHECK_MIN_THROUGHPUT_RATIO} (multi-way must beat the cascade)")
    if row["state_ratio"] > CHECK_MAX_STATE_RATIO:
        errors.append(
            f"3way_market state_ratio {row['state_ratio']} > "
            f"{CHECK_MAX_STATE_RATIO} (multi-way must retain less state)")
    for name, scenario in payload["scenarios"].items():
        cascade = scenario["cascade"]["output_rows"]
        multiway = scenario["multiway"]["output_rows"]
        if cascade != multiway:
            errors.append(f"{name} output mismatch: cascade {cascade} rows, "
                          f"multiway {multiway} rows")
    return errors


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--messages", type=int, default=1200)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--partitions", type=int, default=2)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--check", action="store_true",
                        help="fail unless the 3-way gate thresholds hold")
    args = parser.parse_args(argv)

    payload = collect(messages=args.messages, repeats=args.repeats,
                      partitions=args.partitions)
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for name, row in payload["scenarios"].items():
        print(f"{name}: cascade {row['cascade']['msgs_per_s']:,.0f} msgs/s "
              f"(peak state {row['cascade']['peak_state_rows']:,.0f} rows), "
              f"multiway {row['multiway']['msgs_per_s']:,.0f} msgs/s "
              f"(peak state {row['multiway']['peak_state_rows']:,.0f} rows) "
              f"-> {row['throughput_ratio']:.2f}x throughput, "
              f"{row['state_ratio']:.2f}x state")
    print(f"wrote {args.out}")
    if args.check:
        failures = check(payload)
        for failure in failures:
            print(f"CHECK FAILED: {failure}")
        if failures:
            return 1
        print("check passed: multi-way beats the cascade on both axes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
