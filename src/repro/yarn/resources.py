"""Resource vectors (memory + vcores), the unit of YARN accounting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import YarnError


@dataclass(frozen=True, slots=True)
class Resource:
    """An (memory_mb, vcores) request or capacity."""

    memory_mb: int
    vcores: int

    def __post_init__(self) -> None:
        if self.memory_mb < 0 or self.vcores < 0:
            raise YarnError(f"negative resource: {self}")

    def fits_in(self, other: "Resource") -> bool:
        return self.memory_mb <= other.memory_mb and self.vcores <= other.vcores

    def __add__(self, other: "Resource") -> "Resource":
        return Resource(self.memory_mb + other.memory_mb, self.vcores + other.vcores)

    def __sub__(self, other: "Resource") -> "Resource":
        return Resource(self.memory_mb - other.memory_mb, self.vcores - other.vcores)

    @staticmethod
    def zero() -> "Resource":
        return Resource(0, 0)


# EC2 instance shapes from the paper's §5.1 test setup.
R3_XLARGE = Resource(memory_mb=30_500, vcores=4)
R3_2XLARGE = Resource(memory_mb=61_000, vcores=8)
