"""YARN model: resource management, scheduling, and container fault handling.

Samza's deployment unit is a YARN application: a per-job ApplicationMaster
(the paper's "masterless design" — each job has its *own* master) asks the
ResourceManager for containers, launches its processing in them, and
reacts to container failures by requesting replacements.  This package
models exactly that control plane:

* :class:`~repro.yarn.resources.Resource` — memory/vcore vectors,
* :class:`~repro.yarn.node.NodeManager` — per-node capacity accounting,
* :class:`~repro.yarn.rm.ResourceManager` — application registry and the
  first-fit scheduler,
* :class:`~repro.yarn.app.ApplicationMaster` — the callback protocol job
  masters implement (Samza's AM lives in ``repro.samza.job``).

Execution is cooperative (no threads): container payloads expose a
``run_some()`` step method and the driver loop in ``repro.samza.runner``
advances them, which keeps the whole distributed system deterministic and
testable in-process.
"""

from repro.yarn.resources import Resource
from repro.yarn.node import NodeManager
from repro.yarn.container import Container, ContainerState
from repro.yarn.launcher import ProcessLauncher
from repro.yarn.rm import ApplicationReport, ResourceManager
from repro.yarn.app import ApplicationMaster

__all__ = [
    "Resource",
    "NodeManager",
    "Container",
    "ContainerState",
    "ResourceManager",
    "ApplicationReport",
    "ApplicationMaster",
    "ProcessLauncher",
]
