"""OS-process launcher: maps YARN container ids to worker processes.

Under ``cluster.parallel.execution=true`` every Samza container is backed
by a real forked process.  The resource manager cannot know that — it
schedules logical containers — so the launcher is the bridge: the
parallel coordinator registers each worker process under its YARN
container id, and when the RM kills a container (failure injection, app
teardown, ``fail_node``) it tells the launcher, which delivers a real
SIGKILL.  That is what lets :class:`~repro.chaos.supervisor.ChaosSupervisor`
and :meth:`~repro.samza.job.JobRunner.kill_container` treat process-backed
containers exactly like in-process ones.
"""

from __future__ import annotations

import os
import signal


class ProcessLauncher:
    """Registry of live worker processes keyed by YARN container id."""

    def __init__(self):
        self._processes: dict[str, object] = {}

    def register(self, container_id: str, process) -> None:
        self._processes[container_id] = process

    def unregister(self, container_id: str) -> None:
        self._processes.pop(container_id, None)

    def live_container_ids(self) -> list[str]:
        return sorted(
            cid for cid, proc in self._processes.items() if proc.is_alive())

    def kill(self, container_id: str) -> bool:
        """SIGKILL the process backing ``container_id``; True if one died."""
        process = self._processes.get(container_id)
        if process is None or not process.is_alive():
            return False
        try:
            os.kill(process.pid, signal.SIGKILL)
        except ProcessLookupError:  # pragma: no cover - raced its exit
            return False
        process.join(timeout=5)
        return True

    def on_container_killed(self, container_id: str) -> None:
        """RM notification: the logical container is gone, reap the process."""
        self.kill(container_id)
        self.unregister(container_id)
