"""Containers: the unit of execution YARN hands to an application."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.yarn.resources import Resource


class ContainerState(enum.Enum):
    NEW = "new"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    KILLED = "killed"


@dataclass
class Container:
    """An allocated slice of a node, optionally carrying a payload.

    The payload is whatever the application launches inside the container —
    for Samza jobs it is a :class:`repro.samza.container.SamzaContainer`.
    """

    container_id: str
    application_id: str
    node_id: str
    resource: Resource
    state: ContainerState = ContainerState.NEW
    payload: Any = None
    exit_message: str = ""

    @property
    def is_terminal(self) -> bool:
        return self.state in (
            ContainerState.COMPLETED,
            ContainerState.FAILED,
            ContainerState.KILLED,
        )
