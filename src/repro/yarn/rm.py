"""ResourceManager: application registry + first-fit container scheduler."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.common.errors import YarnError
from repro.yarn.app import ApplicationMaster, ResourceManagerProtocol
from repro.yarn.container import Container, ContainerState
from repro.yarn.node import NodeManager
from repro.yarn.resources import Resource


class ApplicationState(enum.Enum):
    SUBMITTED = "submitted"
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"
    KILLED = "killed"


@dataclass
class ApplicationReport:
    application_id: str
    name: str
    state: ApplicationState
    containers: dict[str, Container] = field(default_factory=dict)


@dataclass
class _PendingRequest:
    app_id: str
    resource: Resource
    count: int


class ResourceManager(ResourceManagerProtocol):
    """Cluster-wide scheduler.

    Scheduling is least-loaded-first-fit: each pending request is placed on
    the healthy node with the most available memory that fits it, which
    spreads a job's containers across nodes like YARN's default behaviour
    in a lightly-loaded cluster (the paper's test setup).
    """

    def __init__(self):
        self._nodes: dict[str, NodeManager] = {}
        self._apps: dict[str, ApplicationReport] = {}
        self._masters: dict[str, ApplicationMaster] = {}
        self._pending: list[_PendingRequest] = []
        self._next_app = 1
        self._next_container = 1
        # Under parallel execution, containers are backed by OS processes;
        # the launcher (repro.yarn.launcher) turns logical kills into real
        # SIGKILLs.  None in the default in-process mode.
        self.process_launcher = None

    # -- cluster membership ----------------------------------------------------

    def add_node(self, node: NodeManager) -> None:
        if node.node_id in self._nodes:
            raise YarnError(f"node {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: str) -> NodeManager:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise YarnError(f"unknown node {node_id}") from None

    def nodes(self) -> list[NodeManager]:
        return list(self._nodes.values())

    def cluster_capacity(self) -> Resource:
        return sum((n.capacity for n in self._nodes.values()), Resource.zero())

    def cluster_available(self) -> Resource:
        return sum(
            (n.available for n in self._nodes.values() if n.healthy), Resource.zero()
        )

    # -- application lifecycle ------------------------------------------------------

    def submit_application(self, name: str, master: ApplicationMaster) -> str:
        app_id = f"application_{self._next_app:04d}"
        self._next_app += 1
        master.application_id = app_id
        self._apps[app_id] = ApplicationReport(
            application_id=app_id, name=name, state=ApplicationState.RUNNING
        )
        self._masters[app_id] = master
        master.on_start(self)
        self._schedule()
        return app_id

    def application(self, app_id: str) -> ApplicationReport:
        try:
            return self._apps[app_id]
        except KeyError:
            raise YarnError(f"unknown application {app_id}") from None

    def finish_application(self, app_id: str, succeeded: bool = True) -> None:
        report = self.application(app_id)
        for container in list(report.containers.values()):
            if not container.is_terminal:
                self._kill_container(container, ContainerState.COMPLETED, "app finished")
        report.state = ApplicationState.FINISHED if succeeded else ApplicationState.FAILED
        self._pending = [p for p in self._pending if p.app_id != app_id]

    def kill_application(self, app_id: str) -> None:
        report = self.application(app_id)
        for container in list(report.containers.values()):
            if not container.is_terminal:
                self._kill_container(container, ContainerState.KILLED, "app killed")
        report.state = ApplicationState.KILLED
        self._pending = [p for p in self._pending if p.app_id != app_id]

    # -- container requests ------------------------------------------------------------

    def request_containers(self, app_id: str, count: int, resource: Resource) -> None:
        self.application(app_id)  # validates
        if count < 1:
            raise YarnError(f"container count must be positive, got {count}")
        self._pending.append(_PendingRequest(app_id, resource, count))
        self._schedule()

    def release_container(self, container_id: str) -> None:
        container = self._find_container(container_id)
        if not container.is_terminal:
            self._kill_container(container, ContainerState.COMPLETED, "released")

    def pending_request_count(self) -> int:
        return sum(p.count for p in self._pending)

    def can_allocate(self, resource: Resource, count: int = 1) -> bool:
        """Whether ``count`` containers of ``resource`` would place *right
        now*, honouring per-node bin packing (aggregate headroom alone can
        lie when no single node fits the request).  Coordinators use this
        to tell 'replacement is coming' from 'cluster is full' before
        waiting out a rebalance."""
        remaining = {node.node_id: node.available
                     for node in self._nodes.values() if node.healthy}
        for _ in range(count):
            fits = [node_id for node_id, avail in remaining.items()
                    if resource.fits_in(avail)]
            if not fits:
                return False
            best = max(fits, key=lambda node_id: (
                remaining[node_id].memory_mb, remaining[node_id].vcores))
            remaining[best] = remaining[best] - resource
        return True

    def _find_container(self, container_id: str) -> Container:
        for report in self._apps.values():
            if container_id in report.containers:
                return report.containers[container_id]
        raise YarnError(f"unknown container {container_id}")

    # -- scheduling -------------------------------------------------------------------------

    def _schedule(self) -> None:
        """Place as many pending requests as capacity allows."""
        progressed = True
        while progressed and self._pending:
            progressed = False
            request = self._pending[0]
            allocated: list[Container] = []
            while request.count > 0:
                node = self._pick_node(request.resource)
                if node is None:
                    break
                container = Container(
                    container_id=f"container_{self._next_container:06d}",
                    application_id=request.app_id,
                    node_id=node.node_id,
                    resource=request.resource,
                )
                self._next_container += 1
                node.launch(container)
                self._apps[request.app_id].containers[container.container_id] = container
                allocated.append(container)
                request.count -= 1
                progressed = True
            if request.count == 0:
                self._pending.pop(0)
            if allocated:
                self._masters[request.app_id].on_containers_allocated(allocated)

    def _pick_node(self, resource: Resource) -> NodeManager | None:
        candidates = [n for n in self._nodes.values() if n.can_fit(resource)]
        if not candidates:
            return None
        return max(candidates, key=lambda n: (n.available.memory_mb, n.available.vcores))

    # -- failure handling ----------------------------------------------------------------------

    def _kill_container(self, container: Container, state: ContainerState,
                        message: str) -> None:
        self._nodes[container.node_id].kill(container.container_id, state, message)
        if self.process_launcher is not None:
            self.process_launcher.on_container_killed(container.container_id)

    def fail_container(self, container_id: str, message: str = "container crashed") -> None:
        """Mark one container FAILED and notify its application master."""
        container = self._find_container(container_id)
        if container.is_terminal:
            return
        self._kill_container(container, ContainerState.FAILED, message)
        self._masters[container.application_id].on_container_completed(container)
        self._schedule()

    def fail_node(self, node_id: str) -> None:
        """Node loss: fail every container on it and notify the owning AMs."""
        failed = self.node(node_id).mark_unhealthy()
        for container in failed:
            self._masters[container.application_id].on_container_completed(container)
        self._schedule()
