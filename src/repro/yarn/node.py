"""NodeManager: per-node capacity accounting and container hosting."""

from __future__ import annotations

from repro.common.errors import YarnError
from repro.yarn.container import Container, ContainerState
from repro.yarn.resources import Resource


class NodeManager:
    """One cluster node: fixed capacity, running containers."""

    def __init__(self, node_id: str, capacity: Resource):
        self.node_id = node_id
        self.capacity = capacity
        self.healthy = True
        self._containers: dict[str, Container] = {}

    @property
    def allocated(self) -> Resource:
        return sum(
            (c.resource for c in self._containers.values() if not c.is_terminal),
            Resource.zero(),
        )

    @property
    def available(self) -> Resource:
        return self.capacity - self.allocated

    def can_fit(self, resource: Resource) -> bool:
        return self.healthy and resource.fits_in(self.available)

    def launch(self, container: Container) -> None:
        if not self.healthy:
            raise YarnError(f"node {self.node_id} is unhealthy")
        if not container.resource.fits_in(self.available):
            raise YarnError(
                f"node {self.node_id} cannot fit {container.resource} "
                f"(available {self.available})"
            )
        container.state = ContainerState.RUNNING
        self._containers[container.container_id] = container

    def kill(self, container_id: str, state: ContainerState = ContainerState.KILLED,
             message: str = "") -> Container:
        try:
            container = self._containers[container_id]
        except KeyError:
            raise YarnError(f"node {self.node_id} has no container {container_id}") from None
        container.state = state
        container.exit_message = message
        return container

    def running_containers(self) -> list[Container]:
        return [c for c in self._containers.values() if c.state is ContainerState.RUNNING]

    def mark_unhealthy(self) -> list[Container]:
        """Simulate node failure: every running container fails."""
        self.healthy = False
        failed = []
        for container in self.running_containers():
            container.state = ContainerState.FAILED
            container.exit_message = f"node {self.node_id} lost"
            failed.append(container)
        return failed
