"""The ApplicationMaster protocol.

Each YARN application runs its own master (per the paper: "Samza has no
master. Instead each job has a master ... which makes scheduling and
resource management decisions on behalf of its job").  The RM calls back
into the AM when containers are allocated or complete; the AM drives its
own logic through ``request_containers`` and ``finish``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.yarn.container import Container


class ApplicationMaster(ABC):
    """Callback interface implemented by per-job masters."""

    application_id: str = ""  # assigned by the RM at submission

    @abstractmethod
    def on_start(self, rm: "ResourceManagerProtocol") -> None:
        """Called once after registration; request initial containers here."""

    @abstractmethod
    def on_containers_allocated(self, containers: list[Container]) -> None:
        """Allocated containers are now RUNNING; launch payloads."""

    @abstractmethod
    def on_container_completed(self, container: Container) -> None:
        """A container reached a terminal state (failure handling hook)."""


class ResourceManagerProtocol:
    """The slice of the RM interface exposed to application masters."""

    def request_containers(self, app_id: str, count: int, resource) -> None:
        raise NotImplementedError

    def release_container(self, container_id: str) -> None:
        raise NotImplementedError

    def finish_application(self, app_id: str, succeeded: bool = True) -> None:
        raise NotImplementedError
