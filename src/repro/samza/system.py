"""System streams and message envelopes (Samza's system layer).

A *system* is a messaging backend (here always the in-process Kafka
model, but the indirection is kept for fidelity — the paper notes Samza
"provides a separate Java API to plug in different input and output
systems").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.kafka.message import TopicPartition


@dataclass(frozen=True, slots=True)
class SystemStream:
    """(system, stream) pair, e.g. ``kafka.Orders``."""

    system: str
    stream: str

    def __str__(self) -> str:
        return f"{self.system}.{self.stream}"

    @staticmethod
    def parse(text: str) -> "SystemStream":
        system, _, stream = text.partition(".")
        if not system or not stream:
            raise ValueError(f"expected '<system>.<stream>', got {text!r}")
        return SystemStream(system, stream)


@dataclass(frozen=True, slots=True)
class SystemStreamPartition:
    """(system, stream, partition) — the unit of task input assignment."""

    system: str
    stream: str
    partition: int

    @property
    def system_stream(self) -> SystemStream:
        return SystemStream(self.system, self.stream)

    @property
    def topic_partition(self) -> TopicPartition:
        return TopicPartition(self.stream, self.partition)

    def __str__(self) -> str:
        return f"{self.system}.{self.stream}-{self.partition}"


@dataclass(frozen=True, slots=True)
class IncomingMessageEnvelope:
    """A deserialized input record handed to ``StreamTask.process``.

    ``raw_key``/``raw_message`` expose the wire bytes so native tasks can
    forward messages without re-serializing — the pass-through trick the
    paper's hand-written filter job uses ("directly reads from incoming
    Avro message and writes back the message into the output stream
    without any modification").
    """

    system_stream_partition: SystemStreamPartition
    offset: int
    key: Any
    message: Any
    timestamp_ms: int = 0
    raw_key: bytes | None = None
    raw_message: bytes | None = None

    @property
    def stream(self) -> str:
        return self.system_stream_partition.stream


@dataclass(frozen=True, slots=True)
class OutgoingMessageEnvelope:
    """A record a task emits through the :class:`MessageCollector`.

    ``partition_key`` (when set) drives the partitioner; otherwise ``key``
    is used; unkeyed messages go round-robin.  With ``pre_serialized`` the
    message (and key) are already bytes and bypass the output serde.
    """

    system_stream: SystemStream
    message: Any
    key: Any = None
    partition_key: Any = None
    timestamp_ms: int | None = None
    pre_serialized: bool = False
