"""Samza jobs: partition assignment, the per-job YARN master, the runner.

A :class:`SamzaJob` describes what to run (config + task factory + serde
registry); the :class:`SamzaApplicationMaster` is the job's own YARN
master — it requests one YARN container per ``job.container.count``,
launches a :class:`SamzaContainer` in each, and replaces failed
containers, re-attaching their task groups so state restores from the
changelog and input resumes from the last checkpoint.

Partition assignment follows Samza's *GroupByPartitionId*: task *i*
consumes partition *i* of every input stream (streams are assumed
co-partitioned, as the paper assumes for joins), and tasks are dealt
round-robin to containers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.retry import RetryPolicy
from repro.common.clock import Clock, SystemClock, VirtualClock
from repro.common.config import Config
from repro.common.errors import ConfigError
from repro.common.execution import ExecutionConfig
from repro.kafka.cluster import KafkaCluster
from repro.samza.checkpoint import CheckpointManager
from repro.samza.container import SamzaContainer, TaskModel
from repro.samza.serdes import SerdeRegistry
from repro.samza.system import SystemStream, SystemStreamPartition
from repro.yarn.app import ApplicationMaster
from repro.yarn.container import Container, ContainerState
from repro.yarn.resources import Resource
from repro.yarn.rm import ResourceManager


@dataclass
class SamzaJob:
    """A deployable streaming job."""

    config: Config
    task_factory: object  # zero-arg callable returning a StreamTask
    serdes: SerdeRegistry = field(default_factory=SerdeRegistry)

    @property
    def name(self) -> str:
        return self.config.get_str("job.name")

    @property
    def container_count(self) -> int:
        return self.config.get_int("job.container.count", 1)

    def input_streams(self) -> list[SystemStream]:
        return [SystemStream.parse(text) for text in self.config.get_list("task.inputs")]

    def container_resource(self) -> Resource:
        return Resource(
            memory_mb=self.config.get_int("cluster.container.memory.mb", 1024),
            vcores=self.config.get_int("cluster.container.cpu.cores", 1),
        )

    # -- partition assignment --------------------------------------------------------

    def build_task_models(self, cluster: KafkaCluster) -> list[TaskModel]:
        """GroupByPartitionId: task i <- partition i of each input stream."""
        inputs = self.input_streams()
        if not inputs:
            raise ConfigError(f"job {self.name!r} has no task.inputs")
        partition_counts = {
            ss: cluster.topic(ss.stream).partition_count for ss in inputs
        }
        task_count = max(partition_counts.values())
        models: list[TaskModel] = []
        for i in range(task_count):
            ssps = frozenset(
                SystemStreamPartition(ss.system, ss.stream, i)
                for ss in inputs
                if i < partition_counts[ss]
            )
            models.append(TaskModel(task_name=f"Partition {i}", partition_id=i, ssps=ssps))
        return models

    def group_tasks(self, models: list[TaskModel]) -> list[list[TaskModel]]:
        """Deal tasks round-robin into ``job.container.count`` groups."""
        count = min(self.container_count, len(models)) or 1
        groups: list[list[TaskModel]] = [[] for _ in range(count)]
        for index, model in enumerate(models):
            groups[index % count].append(model)
        return groups

    def changelog_topics(self) -> list[str]:
        """Topics declared as store changelogs in the job config."""
        topics = []
        for key in self.config:
            if key.startswith("stores.") and key.endswith(".changelog"):
                value = self.config[key]
                topics.append(value.split(".", 1)[1] if "." in value else value)
        return sorted(set(topics))


class SamzaApplicationMaster(ApplicationMaster):
    """The job's own master: container requests + failure recovery."""

    def __init__(self, job: SamzaJob, cluster: KafkaCluster,
                 checkpoint_manager: CheckpointManager, clock: Clock,
                 fault_injector=None):
        self.job = job
        self.cluster = cluster
        self.checkpoints = checkpoint_manager
        self.clock = clock
        self.fault_injector = fault_injector
        self.container_restarts = 0
        self.samza_containers: dict[str, SamzaContainer] = {}
        self._unassigned_groups: list[list[TaskModel]] = []
        self._group_by_container: dict[str, list[TaskModel]] = {}
        self._rm = None
        self._next_samza_container = 0
        self.finished = False
        # Set by JobRunner.submit under cluster.parallel.execution=true:
        # a repro.parallel.ParallelJobCoordinator that runs this job's
        # containers in forked worker processes.  When present, driving,
        # lag accounting and shutdown delegate to it.
        self.parallel_coordinator = None

    # -- ApplicationMaster protocol --------------------------------------------------

    def on_start(self, rm) -> None:
        self._rm = rm
        models = self.job.build_task_models(self.cluster)
        # Pre-create changelog topics, partitioned per task, compacted.
        for topic in self.job.changelog_topics():
            self.cluster.create_topic(
                topic, partitions=len(models), cleanup_policy="compact",
                if_not_exists=True,
            )
        self._unassigned_groups = self.job.group_tasks(models)
        rm.request_containers(
            self.application_id, len(self._unassigned_groups),
            self.job.container_resource(),
        )

    def on_containers_allocated(self, containers: list[Container]) -> None:
        for yarn_container in containers:
            if not self._unassigned_groups:
                self._rm.release_container(yarn_container.container_id)
                continue
            group = self._unassigned_groups.pop(0)
            samza_container = SamzaContainer(
                container_id=f"{self.application_id}-samza-{self._next_samza_container}",
                config=self.job.config,
                cluster=self.cluster,
                serdes=self.job.serdes,
                task_models=group,
                task_factory=self.job.task_factory,
                checkpoint_manager=self.checkpoints,
                clock=self.clock,
                fault_injector=self.fault_injector,
            )
            self._next_samza_container += 1
            samza_container.start()
            yarn_container.payload = samza_container
            self.samza_containers[yarn_container.container_id] = samza_container
            self._group_by_container[yarn_container.container_id] = group

    def on_container_completed(self, container: Container) -> None:
        group = self._group_by_container.pop(container.container_id, None)
        self.samza_containers.pop(container.container_id, None)
        if (container.state is ContainerState.FAILED and group is not None
                and not self.finished):
            # Re-request a replacement; its tasks restore state from the
            # changelog and resume input from the last checkpoint.
            self.container_restarts += 1
            self._unassigned_groups.append(group)
            self._rm.request_containers(
                self.application_id, 1, self.job.container_resource())

    # -- driving -------------------------------------------------------------------------

    def run_iteration(self) -> int:
        if self.parallel_coordinator is not None:
            return self.parallel_coordinator.pump()
        processed = 0
        for samza_container in list(self.samza_containers.values()):
            if not samza_container.shutdown_requested:
                processed += samza_container.run_iteration()
        return processed

    def total_lag(self) -> int:
        if self.parallel_coordinator is not None:
            return self.parallel_coordinator.total_lag()
        return sum(c.total_lag() for c in self.samza_containers.values())

    def all_shutdown(self) -> bool:
        if self.parallel_coordinator is not None:
            return self.parallel_coordinator.all_shutdown()
        return bool(self.samza_containers) and all(
            c.shutdown_requested for c in self.samza_containers.values())

    def finish(self, succeeded: bool = True) -> None:
        if self.finished:
            return
        self.finished = True
        if self.parallel_coordinator is not None:
            # Workers own the real state: stop them gracefully (final
            # commit + metrics mirrored to the parent cluster).  The
            # parent-side containers never initialized their tasks and
            # must NOT commit — a parent-side checkpoint would append
            # stale offsets after the workers' final checkpoints.
            self.parallel_coordinator.shutdown_all()
            for samza_container in self.samza_containers.values():
                samza_container.shutdown_requested = True
        else:
            for samza_container in self.samza_containers.values():
                if not samza_container.shutdown_requested:
                    samza_container.stop()
        self._rm.finish_application(self.application_id, succeeded)


class JobRunner:
    """Submits jobs to YARN and cooperatively drives their containers.

    This is the in-process equivalent of Samza's YARN client plus the
    cluster actually executing: ``run_until_quiescent`` advances every
    running job until all input is drained, which tests and benchmarks use
    to run a bounded workload to completion.
    """

    def __init__(self, cluster: KafkaCluster, rm: ResourceManager,
                 clock: Clock | None = None, fault_injector=None):
        self.cluster = cluster
        self.rm = rm
        self.clock = clock or SystemClock()
        self.fault_injector = fault_injector
        self._masters: dict[str, SamzaApplicationMaster] = {}

    def submit(self, job: SamzaJob) -> SamzaApplicationMaster:
        parallel = ExecutionConfig.from_config(job.config).parallel
        if parallel and isinstance(self.clock, VirtualClock):
            raise ConfigError(
                "cluster.parallel.execution=true cannot share a VirtualClock "
                "across worker processes (each fork would advance its own "
                "copy); construct the runtime with a SystemClock — "
                "SamzaSqlEnvironment selects one automatically when no "
                "clock is passed")
        # Checkpoint IO rides the same transient-error retry as the data
        # plane — a dropped checkpoint write must not widen the replay
        # window, and a dropped read must not fail a container restart.
        checkpoint_manager = CheckpointManager(
            self.cluster, job.name,
            retry_policy=RetryPolicy(clock=self.clock))
        master = SamzaApplicationMaster(job, self.cluster, checkpoint_manager,
                                        self.clock, self.fault_injector)
        app_id = self.rm.submit_application(job.name, master)
        self._masters[app_id] = master
        if parallel:
            # Imported lazily: repro.parallel sits above the samza layer.
            from repro.parallel.coordinator import ParallelJobCoordinator

            master.parallel_coordinator = ParallelJobCoordinator(master, self)
        return master

    def masters(self) -> list[SamzaApplicationMaster]:
        return list(self._masters.values())

    def run_iteration(self) -> int:
        processed = 0
        for master in self._masters.values():
            if not master.finished:
                processed += master.run_iteration()
        return processed

    def run_until_quiescent(self, max_iterations: int = 10_000,
                            settle_rounds: int = 2) -> int:
        """Drive all jobs until no progress and no lag; returns total processed.

        ``settle_rounds`` consecutive empty rounds with zero lag are required
        before declaring quiescence (an iteration can legitimately process
        nothing while a bootstrap phase flips over).
        """
        total = 0
        idle = 0
        for _ in range(max_iterations):
            processed = self.run_iteration()
            total += processed
            if processed == 0 and all(
                    m.total_lag() == 0 for m in self._masters.values() if not m.finished):
                idle += 1
                if idle >= settle_rounds:
                    self.finalize_parallel_jobs()
                    return total
            else:
                idle = 0
        raise RuntimeError(
            f"jobs did not quiesce within {max_iterations} iterations")

    def finalize_parallel_jobs(self) -> None:
        """Commit barrier on every process-backed job: quiescence must
        leave worker state durable in the parent's mirrored topics (the
        in-process path commits inside run_iteration; workers only commit
        on their own interval unless told)."""
        for master in self._masters.values():
            coordinator = master.parallel_coordinator
            if coordinator is not None and not master.finished:
                coordinator.commit_barrier()

    def kill_container(self, master: SamzaApplicationMaster, index: int = 0) -> str:
        """Fail the index-th live container of a job (fault injection)."""
        container_ids = sorted(master.samza_containers)
        victim = container_ids[index]
        self.rm.fail_container(victim, "injected failure")
        return victim
