"""Fault-tolerant local state: the layered key-value store stack.

§2 of the paper: "Each streaming task in a Samza job has managed local
storage ... The state is modeled as a stream and Samza manages the
snapshotting and restoration by replaying the state stream in case of a
task failure."

The stack, bottom to top:

* :class:`InMemoryKeyValueStore` — bytes→bytes sorted store (the RocksDB
  role). Range scans are needed by the sliding-window operator, which keys
  messages by big-endian timestamps so byte order equals time order.
* :class:`LoggedKeyValueStore` — mirrors every write to a compacted
  changelog topic partition; restoration replays that partition.
* :class:`SerializedKeyValueStore` — object API on top of a bytes store;
  every access pays the serde cost.  The paper's Figure 6 finding — sliding
  window throughput "is dominated by access to the key-value store" — falls
  out of this layer, and the Kryo-vs-Avro join gap comes from which serde
  is plugged in here.
* :class:`WriteBehindKeyValueStore` — object-level dirty map that defers
  the serde *and* the changelog write of every mutation until ``flush()``.
  The container flushes stores immediately before writing the checkpoint,
  so the changelog is exactly as current as the checkpoint it accompanies:
  a crash between commits loses only the uncommitted suffix, which
  at-least-once replay regenerates deterministically.  This is what takes
  stateful-operator state maintenance from O(state) serde per message to
  O(1) — the cure for the Figure 6 bottleneck.
* :class:`CachedKeyValueStore` — optional object cache that absorbs
  repeated reads (Samza's cached store layer); the kv-cache ablation bench
  toggles it.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import OrderedDict
from typing import Any, Callable, Iterator

from repro.common.errors import StateStoreError
from repro.serde.base import Serde


class KeyValueStore:
    """Interface: get/put/delete/range/all/flush over ordered keys."""

    def get(self, key: Any) -> Any:
        raise NotImplementedError

    def put(self, key: Any, value: Any) -> None:
        raise NotImplementedError

    def delete(self, key: Any) -> None:
        raise NotImplementedError

    def range(self, from_key: Any, to_key: Any) -> Iterator[tuple[Any, Any]]:
        """Entries with ``from_key <= key < to_key`` in key order."""
        raise NotImplementedError

    def all(self) -> Iterator[tuple[Any, Any]]:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered writes down the stack (cache -> log -> memory)."""

    def __len__(self) -> int:
        raise NotImplementedError


class InMemoryKeyValueStore(KeyValueStore):
    """Sorted bytes→bytes store (dict + sorted key list)."""

    def __init__(self):
        self._data: dict[bytes, bytes] = {}
        self._sorted_keys: list[bytes] = []

    @staticmethod
    def _check_key(key: Any) -> bytes:
        if not isinstance(key, (bytes, bytearray)):
            raise StateStoreError(f"store keys must be bytes, got {type(key).__name__}")
        return bytes(key)

    def get(self, key: bytes) -> bytes | None:
        return self._data.get(self._check_key(key))

    def put(self, key: bytes, value: bytes) -> None:
        key = self._check_key(key)
        if not isinstance(value, (bytes, bytearray)):
            raise StateStoreError(f"store values must be bytes, got {type(value).__name__}")
        if key not in self._data:
            insort(self._sorted_keys, key)
        self._data[key] = bytes(value)

    def delete(self, key: bytes) -> None:
        key = self._check_key(key)
        if key in self._data:
            del self._data[key]
            index = bisect_left(self._sorted_keys, key)
            del self._sorted_keys[index]

    def range(self, from_key: bytes, to_key: bytes) -> Iterator[tuple[bytes, bytes]]:
        from_key = self._check_key(from_key)
        to_key = self._check_key(to_key)
        if from_key > to_key:
            raise StateStoreError("range requires from_key <= to_key")
        start = bisect_left(self._sorted_keys, from_key)
        for index in range(start, len(self._sorted_keys)):
            key = self._sorted_keys[index]
            if key >= to_key:
                return
            yield key, self._data[key]

    def all(self) -> Iterator[tuple[bytes, bytes]]:
        for key in self._sorted_keys:
            yield key, self._data[key]

    def __len__(self) -> int:
        return len(self._data)


class LoggedKeyValueStore(KeyValueStore):
    """Write-ahead mirror to a changelog sink.

    ``log_fn(key, value_or_None)`` is called for every mutation; the
    container wires it to a producer on the store's compacted changelog
    topic partition.
    """

    def __init__(self, backing: KeyValueStore, log_fn: Callable[[bytes, bytes | None], None]):
        self._backing = backing
        self._log = log_fn

    def get(self, key: bytes) -> bytes | None:
        return self._backing.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        self._backing.put(key, value)
        self._log(key, value)

    def delete(self, key: bytes) -> None:
        self._backing.delete(key)
        self._log(key, None)  # changelog tombstone

    def range(self, from_key: bytes, to_key: bytes) -> Iterator[tuple[bytes, bytes]]:
        return self._backing.range(from_key, to_key)

    def all(self) -> Iterator[tuple[bytes, bytes]]:
        return self._backing.all()

    def flush(self) -> None:
        self._backing.flush()

    def __len__(self) -> int:
        return len(self._backing)


class SerializedKeyValueStore(KeyValueStore):
    """Object-level API over a bytes store; serdes run on every access."""

    def __init__(self, backing: KeyValueStore, key_serde: Serde, value_serde: Serde):
        self._backing = backing
        self._key_serde = key_serde
        self._value_serde = value_serde

    def get(self, key: Any) -> Any:
        raw = self._backing.get(self._key_serde.to_bytes(key))
        return None if raw is None else self._value_serde.from_bytes(raw)

    def put(self, key: Any, value: Any) -> None:
        self._backing.put(self._key_serde.to_bytes(key), self._value_serde.to_bytes(value))

    def delete(self, key: Any) -> None:
        self._backing.delete(self._key_serde.to_bytes(key))

    def range(self, from_key: Any, to_key: Any) -> Iterator[tuple[Any, Any]]:
        raw_from = self._key_serde.to_bytes(from_key)
        raw_to = self._key_serde.to_bytes(to_key)
        for raw_key, raw_value in self._backing.range(raw_from, raw_to):
            yield self._key_serde.from_bytes(raw_key), self._value_serde.from_bytes(raw_value)

    def all(self) -> Iterator[tuple[Any, Any]]:
        for raw_key, raw_value in self._backing.all():
            yield self._key_serde.from_bytes(raw_key), self._value_serde.from_bytes(raw_value)

    def flush(self) -> None:
        self._backing.flush()

    def __len__(self) -> int:
        return len(self._backing)


class _Tombstone:
    """Sentinel marking a deferred delete in the write-behind dirty map."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<tombstone>"


TOMBSTONE = _Tombstone()
_MISSING = object()


class WriteBehindKeyValueStore(KeyValueStore):
    """Object-level dirty map deferring serde + changelog writes to flush.

    ``put``/``delete`` record the *intention* in an insertion-ordered dict
    (deletes as :data:`TOMBSTONE`); nothing below this layer — serde,
    changelog produce, memtable — runs until ``flush()``, which the task
    instance calls at commit time immediately before checkpointing input
    offsets.  Per-message state maintenance therefore costs one dict write
    instead of an O(value) serde round-trip plus a changelog produce.

    Semantics:

    * **Values are captured by reference.**  The bytes written at flush
      reflect the object's state *at flush time*, i.e. exactly the state
      the accompanying checkpoint describes.  (Operators that mutate a
      record in place after ``put`` get commit-consistent snapshots for
      free; this is intentional.)
    * **Reads see writes.**  ``get`` consults the dirty map first — a
      dirty key costs a dict lookup, zero serde.  ``range``/``all`` merge
      the dirty map with the backing scan in serialized-key order (the
      order the backing store sorts by), skipping tombstoned keys, without
      spilling anything down — scans never cause early changelog writes,
      preserving "no changelog entries between commits".
    * **Crash window.**  Unflushed mutations simply vanish with the
      process; the changelog equals the last commit, the checkpoint equals
      the last commit, and replay regenerates the lost suffix — producing
      byte-identical state because the replayed inputs start from exactly
      the state they originally started from.

    Unhashable keys (none of the runtime's stores use any) fall back to
    immediate write-through.
    """

    def __init__(self, backing: KeyValueStore, key_serde: Serde):
        self._backing = backing
        self._key_serde = key_serde
        # key -> object value, or TOMBSTONE for a deferred delete;
        # insertion-ordered (first dirtying wins) so flush order — and with
        # it the changelog byte stream — is deterministic under replay.
        self._dirty: dict[Any, Any] = {}

    @property
    def dirty_count(self) -> int:
        """Deferred mutations awaiting flush (backs a metrics gauge)."""
        return len(self._dirty)

    def get(self, key: Any) -> Any:
        try:
            value = self._dirty.get(key, _MISSING)
        except TypeError:
            return self._backing.get(key)
        if value is _MISSING:
            return self._backing.get(key)
        return None if value is TOMBSTONE else value

    def put(self, key: Any, value: Any) -> None:
        try:
            self._dirty[key] = value
        except TypeError:  # unhashable key: write through immediately
            self._backing.put(key, value)

    def delete(self, key: Any) -> None:
        try:
            self._dirty[key] = TOMBSTONE
        except TypeError:
            self._backing.delete(key)

    # -- merged scans ---------------------------------------------------------

    def _dirty_sorted(self) -> list[tuple[bytes, Any, Any]]:
        """Dirty entries as (serialized_key, key, value), in byte order —
        the order the backing store's scans yield keys in."""
        to_bytes = self._key_serde.to_bytes
        return sorted(((to_bytes(key), key, value)
                       for key, value in self._dirty.items()),
                      key=lambda entry: entry[0])

    def _merge(self, backing_iter: Iterator[tuple[Any, Any]],
               dirty: list[tuple[bytes, Any, Any]]) -> Iterator[tuple[Any, Any]]:
        to_bytes = self._key_serde.to_bytes
        index, count = 0, len(dirty)
        for backing_key, backing_value in backing_iter:
            raw = to_bytes(backing_key)
            while index < count and dirty[index][0] < raw:
                _, key, value = dirty[index]
                index += 1
                if value is not TOMBSTONE:
                    yield key, value
            if index < count and dirty[index][0] == raw:
                _, key, value = dirty[index]  # dirty entry shadows backing
                index += 1
                if value is not TOMBSTONE:
                    yield key, value
                continue
            yield backing_key, backing_value
        while index < count:
            _, key, value = dirty[index]
            index += 1
            if value is not TOMBSTONE:
                yield key, value

    def range(self, from_key: Any, to_key: Any) -> Iterator[tuple[Any, Any]]:
        if not self._dirty:
            return self._backing.range(from_key, to_key)
        raw_from = self._key_serde.to_bytes(from_key)
        raw_to = self._key_serde.to_bytes(to_key)
        dirty = [entry for entry in self._dirty_sorted()
                 if raw_from <= entry[0] < raw_to]
        return self._merge(self._backing.range(from_key, to_key), dirty)

    def all(self) -> Iterator[tuple[Any, Any]]:
        if not self._dirty:
            return self._backing.all()
        return self._merge(self._backing.all(), self._dirty_sorted())

    def flush(self) -> None:
        """Push every deferred mutation down (serde + changelog run here),
        then flush the backing stack."""
        backing = self._backing
        for key, value in self._dirty.items():
            if value is TOMBSTONE:
                backing.delete(key)
            else:
                backing.put(key, value)
        self._dirty.clear()
        backing.flush()

    def __len__(self) -> int:
        count = len(self._backing)
        for key, value in self._dirty.items():
            exists = self._backing.get(key) is not None
            if value is TOMBSTONE:
                count -= 1 if exists else 0
            elif not exists:
                count += 1
        return count


class CachedKeyValueStore(KeyValueStore):
    """Read/write-through object LRU cache over a (typically serialized)
    store.

    A bounded LRU cache absorbs repeated get()s of hot keys without paying
    the serde round-trip: hits refresh recency (``move_to_end``), eviction
    removes the least recently used entry, so a hot key is never displaced
    by a scan of cold ones.  Writes go through immediately (no dirty
    buffering) so the layer below stays consistent; the cache only
    short-circuits reads.  ``hits``/``misses`` are exported as metrics
    gauges by the hosting container.
    """

    def __init__(self, backing: KeyValueStore, capacity: int = 1024):
        if capacity < 1:
            raise StateStoreError("cache capacity must be positive")
        self._backing = backing
        self._capacity = capacity
        self._cache: OrderedDict[Any, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _remember(self, key: Any, value: Any) -> None:
        if key in self._cache:
            self._cache.move_to_end(key)
        elif len(self._cache) >= self._capacity:
            self._cache.popitem(last=False)  # true LRU eviction
        self._cache[key] = value

    def get(self, key: Any) -> Any:
        hashable = bytes(key) if isinstance(key, bytearray) else key
        try:
            value = self._cache[hashable]
            self._cache.move_to_end(hashable)  # refresh recency on hit
            self.hits += 1
            return value
        except (KeyError, TypeError):
            pass
        self.misses += 1
        value = self._backing.get(key)
        try:
            self._remember(hashable, value)
        except TypeError:
            pass  # unhashable keys are simply not cached
        return value

    def put(self, key: Any, value: Any) -> None:
        self._backing.put(key, value)
        try:
            self._remember(key, value)
        except TypeError:
            pass

    def delete(self, key: Any) -> None:
        self._backing.delete(key)
        self._cache.pop(key, None)

    def range(self, from_key: Any, to_key: Any) -> Iterator[tuple[Any, Any]]:
        return self._backing.range(from_key, to_key)

    def all(self) -> Iterator[tuple[Any, Any]]:
        return self._backing.all()

    def flush(self) -> None:
        self._backing.flush()

    def __len__(self) -> int:
        return len(self._backing)
