"""Samza model: partitioned stateful stream processing on Kafka + YARN.

This package re-implements the Samza features §2 of the paper enumerates,
because the SamzaSQL operator layer is built directly on them:

* **StreamTask API** (:mod:`repro.samza.task`) — ``init``/``process``/
  ``window`` callbacks, the Map/Reduce-like Java API the paper compares
  SamzaSQL against;
* **Fault-tolerant local state** (:mod:`repro.samza.storage`) — per-task
  key-value stores backed by compacted changelog streams, restored by
  replay on failure;
* **Durability / checkpointing** (:mod:`repro.samza.checkpoint`) —
  per-task input offsets written to a compacted checkpoint topic, so a
  restarted task resumes "from the last known checkpointed partition
  offset";
* **Masterless design** (:mod:`repro.samza.job`) — each job runs its own
  YARN application master which requests containers and replaces failed
  ones;
* **Bootstrap streams** (:mod:`repro.samza.container`) — inputs marked
  bootstrap are fully consumed before any other input is delivered, the
  mechanism behind SamzaSQL's stream-to-relation join.

Execution is cooperative and deterministic: containers expose
``run_iteration`` and the :class:`~repro.samza.job.JobRunner` interleaves
them, so tests can drive a whole multi-container job step by step.
"""

from repro.samza.system import (
    IncomingMessageEnvelope,
    OutgoingMessageEnvelope,
    SystemStream,
    SystemStreamPartition,
)
from repro.samza.task import (
    ClosableTask,
    InitableTask,
    MessageCollector,
    StreamTask,
    TaskContext,
    TaskCoordinator,
    WindowableTask,
)
from repro.samza.storage import (
    CachedKeyValueStore,
    InMemoryKeyValueStore,
    KeyValueStore,
    LoggedKeyValueStore,
    SerializedKeyValueStore,
    WriteBehindKeyValueStore,
)
from repro.samza.checkpoint import Checkpoint, CheckpointManager
from repro.samza.container import SamzaContainer
from repro.samza.job import JobRunner, SamzaJob

__all__ = [
    "SystemStream",
    "SystemStreamPartition",
    "IncomingMessageEnvelope",
    "OutgoingMessageEnvelope",
    "StreamTask",
    "InitableTask",
    "WindowableTask",
    "ClosableTask",
    "TaskContext",
    "TaskCoordinator",
    "MessageCollector",
    "KeyValueStore",
    "InMemoryKeyValueStore",
    "SerializedKeyValueStore",
    "LoggedKeyValueStore",
    "WriteBehindKeyValueStore",
    "CachedKeyValueStore",
    "Checkpoint",
    "CheckpointManager",
    "SamzaContainer",
    "SamzaJob",
    "JobRunner",
]
