"""Serde registry and per-stream serde resolution.

Samza instantiates serdes from ``serializers.registry.<name>.class``
config; in-process we register :class:`~repro.serde.base.Serde` instances
under names and let stream/store config reference them:

* ``systems.<system>.streams.<stream>.samza.key.serde`` / ``.msg.serde``
* ``stores.<store>.key.serde`` / ``stores.<store>.msg.serde``

Built-in names ``string``, ``bytes``, ``long``, ``integer``, ``json`` and
``object`` are always available; Avro serdes are registered per schema by
the job author (or by the SamzaSQL planner).
"""

from __future__ import annotations

from repro.common.config import Config
from repro.common.errors import ConfigError
from repro.serde.base import BytesSerde, IntegerSerde, LongSerde, Serde, StringSerde
from repro.serde.json_serde import JsonSerde
from repro.serde.object_serde import ObjectSerde


class SerdeRegistry:
    """Name → Serde instance mapping with the standard serdes built in."""

    def __init__(self):
        self._serdes: dict[str, Serde] = {
            "string": StringSerde(),
            "bytes": BytesSerde(),
            "integer": IntegerSerde(),
            "long": LongSerde(),
            "json": JsonSerde(),
            "object": ObjectSerde(),
        }

    def register(self, name: str, serde: Serde) -> None:
        self._serdes[name] = serde

    def get(self, name: str) -> Serde:
        try:
            return self._serdes[name]
        except KeyError:
            raise ConfigError(
                f"no serde registered under {name!r}; known: {sorted(self._serdes)}"
            ) from None

    def resolve_stream_serdes(self, config: Config, system: str,
                              stream: str) -> tuple[Serde, Serde]:
        """(key_serde, msg_serde) for a stream, falling back to system defaults."""
        prefix = f"systems.{system}.streams.{stream}.samza."
        system_prefix = f"systems.{system}.samza."
        key_name = config.get(prefix + "key.serde") or config.get(
            system_prefix + "key.serde", "string")
        msg_name = config.get(prefix + "msg.serde") or config.get(
            system_prefix + "msg.serde", "json")
        return self.get(key_name), self.get(msg_name)
