"""Checkpointing: durable per-task input offsets.

Checkpoints are written to a compacted Kafka topic keyed by task name,
exactly like Samza's KafkaCheckpointManager.  On restart, the latest
checkpoint per task is read back and the container seeks its consumers
there — the paper's durability story: "ensures streams will be replayed
from the last known checkpointed partition offset".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CheckpointError, OffsetOutOfRangeError
from repro.kafka.cluster import KafkaCluster
from repro.kafka.message import TopicPartition
from repro.samza.system import SystemStreamPartition
from repro.serde.json_serde import JsonSerde
from repro.serde.base import StringSerde


@dataclass
class Checkpoint:
    """Next-offset-to-read per input SSP for one task."""

    offsets: dict[SystemStreamPartition, int] = field(default_factory=dict)

    def to_payload(self) -> dict[str, int]:
        return {str(ssp): offset for ssp, offset in self.offsets.items()}

    @staticmethod
    def from_payload(payload: dict[str, int]) -> "Checkpoint":
        offsets: dict[SystemStreamPartition, int] = {}
        for text, offset in payload.items():
            system, _, rest = text.partition(".")
            stream, _, partition = rest.rpartition("-")
            if not system or not stream:
                raise CheckpointError(f"malformed checkpoint key {text!r}")
            offsets[SystemStreamPartition(system, stream, int(partition))] = offset
        return Checkpoint(offsets)


class CheckpointManager:
    """Reads/writes per-task checkpoints on a compacted topic.

    ``retry_policy`` (a :class:`repro.chaos.retry.RetryPolicy`) makes
    checkpoint IO survive transient broker errors — losing a checkpoint
    write to a recoverable hiccup would silently widen the replay window
    after the next crash.
    """

    def __init__(self, cluster: KafkaCluster, job_name: str, retry_policy=None):
        self._cluster = cluster
        self._topic = f"__checkpoint_{job_name}"
        self._key_serde = StringSerde()
        self._value_serde = JsonSerde()
        self._retry = retry_policy
        cluster.create_topic(
            self._topic, partitions=1, cleanup_policy="compact", if_not_exists=True
        )
        self._tp = TopicPartition(self._topic, 0)

    @property
    def topic(self) -> str:
        return self._topic

    def _call(self, fn):
        return fn() if self._retry is None else self._retry.call(fn)

    def write_checkpoint(self, task_name: str, checkpoint: Checkpoint) -> None:
        key = self._key_serde.to_bytes(task_name)
        value = self._value_serde.to_bytes(checkpoint.to_payload())
        self._call(lambda: self._cluster.produce(self._tp, key, value))

    def read_last_checkpoint(self, task_name: str) -> Checkpoint | None:
        """Scan the checkpoint partition for the task's latest entry.

        A stale start offset (the scan raced retention/compaction) is not
        fatal: the scan restarts once from the current earliest offset.
        """
        latest: Checkpoint | None = None
        start = self._call(lambda: self._cluster.earliest_offset(self._tp))
        try:
            messages = self._call(lambda: self._cluster.fetch(self._tp, start))
        except OffsetOutOfRangeError:
            fresh = self._cluster.earliest_offset(self._tp)
            messages = self._call(lambda: self._cluster.fetch(self._tp, fresh))
        for message in messages:
            if message.key is None or message.value is None:
                continue
            if self._key_serde.from_bytes(message.key) == task_name:
                latest = Checkpoint.from_payload(self._value_serde.from_bytes(message.value))
        return latest
