"""Checkpointing: durable per-task input offsets.

Checkpoints are written to a compacted Kafka topic keyed by task name,
exactly like Samza's KafkaCheckpointManager.  On restart, the latest
checkpoint per task is read back and the container seeks its consumers
there — the paper's durability story: "ensures streams will be replayed
from the last known checkpointed partition offset".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import CheckpointError
from repro.kafka.cluster import KafkaCluster
from repro.kafka.message import TopicPartition
from repro.samza.system import SystemStreamPartition
from repro.serde.json_serde import JsonSerde
from repro.serde.base import StringSerde


@dataclass
class Checkpoint:
    """Next-offset-to-read per input SSP for one task."""

    offsets: dict[SystemStreamPartition, int] = field(default_factory=dict)

    def to_payload(self) -> dict[str, int]:
        return {str(ssp): offset for ssp, offset in self.offsets.items()}

    @staticmethod
    def from_payload(payload: dict[str, int]) -> "Checkpoint":
        offsets: dict[SystemStreamPartition, int] = {}
        for text, offset in payload.items():
            system, _, rest = text.partition(".")
            stream, _, partition = rest.rpartition("-")
            if not system or not stream:
                raise CheckpointError(f"malformed checkpoint key {text!r}")
            offsets[SystemStreamPartition(system, stream, int(partition))] = offset
        return Checkpoint(offsets)


class CheckpointManager:
    """Reads/writes per-task checkpoints on a compacted topic."""

    def __init__(self, cluster: KafkaCluster, job_name: str):
        self._cluster = cluster
        self._topic = f"__checkpoint_{job_name}"
        self._key_serde = StringSerde()
        self._value_serde = JsonSerde()
        cluster.create_topic(
            self._topic, partitions=1, cleanup_policy="compact", if_not_exists=True
        )
        self._tp = TopicPartition(self._topic, 0)

    @property
    def topic(self) -> str:
        return self._topic

    def write_checkpoint(self, task_name: str, checkpoint: Checkpoint) -> None:
        self._cluster.produce(
            self._tp,
            self._key_serde.to_bytes(task_name),
            self._value_serde.to_bytes(checkpoint.to_payload()),
        )

    def read_last_checkpoint(self, task_name: str) -> Checkpoint | None:
        """Scan the checkpoint partition for the task's latest entry."""
        latest: Checkpoint | None = None
        start = self._cluster.earliest_offset(self._tp)
        for message in self._cluster.fetch(self._tp, start):
            if message.key is None or message.value is None:
                continue
            if self._key_serde.from_bytes(message.key) == task_name:
                latest = Checkpoint.from_payload(self._value_serde.from_bytes(message.value))
        return latest
