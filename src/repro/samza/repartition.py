"""Stream repartitioning (paper future-work item 1).

§7: "Samza achieves scalability through pre-partitioned streams.  If a
certain query such as join requires a different partitioning scheme (based
on different set of message fields), SamzaSQL must to repartition the
stream.  Re-partitioning may change the original ordering of messages and
this can effect order sensitive queries such as sliding window
aggregates."

:func:`repartition_stream` deploys a single-purpose Samza job that reads a
topic and rewrites every record into a new topic, keyed (and therefore
hash-partitioned) by a different message field.  The returned report
carries the ordering diagnostics the paper warns about: within the *new*
key, order is preserved (records with equal new keys come from one source
partition in order only if they shared a source partition), but global
rowtime order across a destination partition is generally not — callers
running order-sensitive queries downstream should check
``report.reordered_partitions``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import Config
from repro.kafka.cluster import KafkaCluster
from repro.samza.job import JobRunner, SamzaJob
from repro.samza.serdes import SerdeRegistry
from repro.samza.system import OutgoingMessageEnvelope, SystemStream
from repro.samza.task import StreamTask
from repro.serde.base import Serde


class RepartitionTask(StreamTask):
    """Forward every record, re-keyed by ``key_field`` of the message."""

    def __init__(self, target_stream: str, key_field: str):
        self.target = SystemStream("kafka", target_stream)
        self.key_field = key_field

    def process(self, envelope, collector, coordinator):
        record = envelope.message
        new_key = str(record[self.key_field])
        collector.send(OutgoingMessageEnvelope(
            system_stream=self.target,
            message=record,
            key=new_key,
            partition_key=new_key,
            timestamp_ms=envelope.timestamp_ms,
        ))


@dataclass
class RepartitionReport:
    source_topic: str
    target_topic: str
    key_field: str
    records: int
    partitions: int
    #: destination partitions whose record timestamps are not monotone —
    #: the ordering hazard the paper's future-work item 1 calls out
    reordered_partitions: list[int] = field(default_factory=list)

    @property
    def preserved_time_order(self) -> bool:
        return not self.reordered_partitions


def repartition_stream(cluster: KafkaCluster, runner: JobRunner,
                       source_topic: str, target_topic: str, key_field: str,
                       serde: Serde, serde_name: str = "repartition-serde",
                       partitions: int | None = None,
                       containers: int = 1) -> RepartitionReport:
    """Rewrite ``source_topic`` into ``target_topic`` keyed by ``key_field``."""
    if partitions is None:
        partitions = cluster.topic(source_topic).partition_count
    cluster.create_topic(target_topic, partitions=partitions, if_not_exists=True)

    serdes = SerdeRegistry()
    serdes.register(serde_name, serde)
    config = Config({
        "job.name": f"repartition-{source_topic}-to-{target_topic}",
        "job.container.count": containers,
        "task.inputs": f"kafka.{source_topic}",
        "task.outputs": f"kafka.{target_topic}",
        f"systems.kafka.streams.{source_topic}.samza.msg.serde": serde_name,
        f"systems.kafka.streams.{source_topic}.samza.key.serde": "string",
        f"systems.kafka.streams.{target_topic}.samza.msg.serde": serde_name,
        f"systems.kafka.streams.{target_topic}.samza.key.serde": "string",
    })
    job = SamzaJob(config=config,
                   task_factory=lambda: RepartitionTask(target_topic, key_field),
                   serdes=serdes)
    master = runner.submit(job)
    runner.run_until_quiescent()
    master.finish()

    # Ordering diagnostics over the destination.
    records = 0
    reordered: list[int] = []
    for tp in cluster.partitions_for(target_topic):
        last_ts = None
        monotone = True
        for message in cluster.fetch(tp, cluster.earliest_offset(tp)):
            records += 1
            if last_ts is not None and message.timestamp_ms < last_ts:
                monotone = False
            last_ts = message.timestamp_ms
        if not monotone:
            reordered.append(tp.partition)
    return RepartitionReport(
        source_topic=source_topic, target_topic=target_topic,
        key_field=key_field, records=records, partitions=partitions,
        reordered_partitions=reordered)
