"""SamzaContainer: the per-container run loop.

A container hosts a set of task instances, one consumer over all their
input partitions, and one producer for outputs and changelogs.  The run
loop is cooperative — ``run_iteration`` polls a batch, dispatches each
record to the owning task, fires the window timer, and commits on the
configured interval — so a whole multi-container job can be driven
deterministically from a single thread (tests) or from the discrete-event
cluster simulator (benchmarks).

Bootstrap streams (§2): when any input stream is configured with
``systems.<sys>.streams.<stream>.samza.bootstrap = true``, all
non-bootstrap inputs are paused until every bootstrap partition has been
read up to its high watermark.  This is the substrate for SamzaSQL's
stream-to-relation join (§4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos.retry import RetryPolicy
from repro.common.clock import Clock, SystemClock
from repro.common.config import Config
from repro.common.errors import ConfigError
from repro.common.execution import ExecutionConfig
from repro.common.metrics import MetricsRegistry
from repro.kafka.cluster import KafkaCluster
from repro.kafka.consumer import Consumer
from repro.kafka.message import TopicPartition
from repro.kafka.producer import Producer, hash_partitioner
from repro.samza.checkpoint import CheckpointManager
from repro.samza.serdes import SerdeRegistry
from repro.samza.storage import (
    CachedKeyValueStore,
    InMemoryKeyValueStore,
    KeyValueStore,
    LoggedKeyValueStore,
    SerializedKeyValueStore,
    WriteBehindKeyValueStore,
)
from repro.samza.system import (
    IncomingMessageEnvelope,
    OutgoingMessageEnvelope,
    SystemStreamPartition,
)
from repro.samza.task import MessageCollector, StreamTask, TaskCoordinator
from repro.samza.task_instance import TaskInstance
from repro.serde.object_serde import ObjectSerde

_PARTITION_KEY_SERDE = ObjectSerde()


@dataclass(frozen=True)
class TaskModel:
    """Assignment of one task: its name, id, and input partitions."""

    task_name: str
    partition_id: int
    ssps: frozenset[SystemStreamPartition]


@dataclass
class _StoreSpec:
    name: str
    changelog_stream: str | None
    key_serde: str
    msg_serde: str
    cached: bool
    cache_size: int
    write_behind: bool


class _Coordinator(TaskCoordinator):
    def __init__(self):
        self.commit_requested = False
        self.shutdown_requested = False

    def commit(self) -> None:
        self.commit_requested = True

    def shutdown(self) -> None:
        self.shutdown_requested = True


class _Collector(MessageCollector):
    """Serializes outgoing envelopes and produces them to Kafka."""

    def __init__(self, container: "SamzaContainer"):
        self._container = container

    def send(self, envelope: OutgoingMessageEnvelope) -> None:
        self._container._send(envelope)

    def send_batch(self, envelopes: list[OutgoingMessageEnvelope]) -> None:
        self._container._send_batch(envelopes)

    def send_pre_serialized_batch(self, stream: str, entries: list) -> None:
        self._container._send_pre_serialized_batch(stream, entries)


class SamzaContainer:
    """Hosts task instances and drives their processing loop."""

    def __init__(self, container_id: str, config: Config, cluster: KafkaCluster,
                 serdes: SerdeRegistry, task_models: list[TaskModel],
                 task_factory, checkpoint_manager: CheckpointManager | None = None,
                 clock: Clock | None = None, metrics: MetricsRegistry | None = None,
                 fault_injector=None):
        self.container_id = container_id
        self.config = config
        self.cluster = cluster
        self.serdes = serdes
        self.clock = clock or SystemClock()
        self.metrics = metrics or MetricsRegistry()
        self._task_factory = task_factory
        self._task_models = task_models
        self._checkpoints = checkpoint_manager
        self._fault_injector = fault_injector

        # Transient broker errors are survived by backing off and retrying
        # (tunable via task.retry.*); only exhaustion fails the container.
        self._retry = RetryPolicy.from_config(
            config, clock=self.clock, metrics=self.metrics,
            group=f"container-{container_id}-retry")
        self._consumer = Consumer(
            cluster,
            fetch_max_records_per_partition=config.get_int(
                "systems.kafka.consumer.fetch.max.records", 100),
            retry_policy=self._retry,
        )
        self._producer = Producer(cluster, retry_policy=self._retry)
        self._collector = _Collector(self)
        # stream -> {key -> (key_bytes, partition)} for the pre-serialized
        # output lane; see _send_pre_serialized_batch.
        self._key_route_memo: dict[str, dict] = {}
        self._coordinator = _Coordinator()

        self.tasks: dict[str, TaskInstance] = {}
        self._task_by_ssp: dict[SystemStreamPartition, TaskInstance] = {}
        self._input_serdes: dict[str, tuple] = {}  # stream -> (key_serde, msg_serde)
        self._output_serdes: dict[str, tuple] = {}
        self._store_specs = self._parse_store_specs(config)

        self._window_ms = config.get_int("task.window.ms", -1)
        self._commit_interval = config.get_int("task.checkpoint.interval.messages", 500)
        self._batch_size = config.get_int("task.poll.batch.size", 200)
        execution = ExecutionConfig.from_config(config)
        # Batch-at-a-time execution (default): decode, dispatch and process
        # whole per-partition record batches.  execution.batch=false (legacy
        # task.batch.execution) selects the per-message loop for A/B
        # comparison.
        self._batch_execution = execution.batch
        # Under parallel execution, task init (and with it the SQL task's
        # plan fetch + operator codegen) is deferred to the worker process
        # so compilation happens per-process from the shared plan JSON.
        self._parallel_execution = execution.parallel
        self._tasks_initialized = False
        self._messages_since_commit = 0
        self._last_window_ms = 0
        self._started = False
        self.shutdown_requested = False
        # Invoked at the top of every commit().  Process-backed execution
        # installs a gate here: a checkpoint must not be written while
        # records this container produced are still in flight on peer
        # links — a crash after the checkpoint would orphan them.
        self.pre_commit_hook = None

        self._bootstrap_ssps: set[SystemStreamPartition] = set()
        self._bootstrap_active = False

        self._processed = self.metrics.counter(f"container-{container_id}", "processed")
        self._sent = self.metrics.counter(f"container-{container_id}", "sent")
        self._commits = self.metrics.counter(f"container-{container_id}", "commits")
        self._checkpoint_resets = self.metrics.counter(
            f"container-{container_id}", "checkpoint.reset")

        # Metrics snapshot reporter (opt-in): serializes this container's
        # registry to the __metrics stream every interval of virtual time.
        self.metrics_reporter = None
        interval_ms = config.get_int("metrics.reporter.interval.ms", 0)
        if interval_ms > 0:
            from repro.metrics.reporter import MetricsSnapshotReporter

            self.metrics_reporter = MetricsSnapshotReporter(
                job=config.get("job.name", "job"),
                container=container_id,
                registry=self.metrics,
                cluster=cluster,
                clock=self.clock,
                interval_ms=interval_ms,
                producer=self._producer,
            )

    # -- configuration parsing ---------------------------------------------------

    @staticmethod
    def _parse_store_specs(config: Config) -> list[_StoreSpec]:
        specs: list[_StoreSpec] = []
        # "stores.write.behind" is the job-wide write-behind default, not a
        # store named "write".
        names = {
            key.split(".")[1]
            for key in config
            if key.startswith("stores.") and len(key.split(".")) >= 3
            and key != "stores.write.behind"
        }
        write_behind_default = ExecutionConfig.from_config(config).write_behind
        for name in sorted(names):
            prefix = f"stores.{name}."
            changelog = config.get(prefix + "changelog")
            if changelog is not None and "." in changelog:
                changelog = changelog.split(".", 1)[1]  # strip system name
            specs.append(_StoreSpec(
                name=name,
                changelog_stream=changelog,
                key_serde=config.get(prefix + "key.serde", "object"),
                msg_serde=config.get(prefix + "msg.serde", "object"),
                cached=config.get_bool(prefix + "cache.enabled", False),
                cache_size=config.get_int(prefix + "cache.size", 1024),
                write_behind=config.get_bool(
                    prefix + "write.behind", write_behind_default),
            ))
        return specs

    def _is_bootstrap(self, ssp: SystemStreamPartition) -> bool:
        key = f"systems.{ssp.system}.streams.{ssp.stream}.samza.bootstrap"
        return self.config.get_bool(key, False)

    # -- startup ---------------------------------------------------------------------

    def start(self) -> None:
        """Build tasks, restore state and offsets, begin consuming."""
        if self._started:
            raise ConfigError(f"container {self.container_id} already started")
        all_ssps: set[SystemStreamPartition] = set()
        for model in self._task_models:
            stores = self._build_stores(model)
            task: StreamTask = self._task_factory()
            instance = TaskInstance(
                model.task_name, model.partition_id, task, set(model.ssps),
                stores, self._checkpoints, metrics=self.metrics,
                serdes=self.serdes,
            )
            self.tasks[model.task_name] = instance
            for ssp in model.ssps:
                self._task_by_ssp[ssp] = instance
                all_ssps.add(ssp)

        self._consumer.assign([ssp.topic_partition for ssp in sorted(
            all_ssps, key=lambda s: (s.stream, s.partition))])

        # Restore offsets (checkpoint wins, else earliest) and seek.  A
        # checkpointed offset can be stale: retention may have evicted it
        # (offset below log start) or the topic may have been recreated
        # (offset beyond the high watermark).  Either way the replay
        # contract is "resume from what still exists" — clamp into the
        # valid range and count the reset rather than crash on restore.
        tp_to_ssp = {ssp.topic_partition: ssp for ssp in all_ssps}
        for instance in self.tasks.values():
            earliest = {
                ssp: self.cluster.earliest_offset(ssp.topic_partition)
                for ssp in instance.ssps
            }
            instance.restore_offsets(earliest)
            for ssp, offset in list(instance.offsets.items()):
                low = earliest[ssp]
                high = self.cluster.latest_offset(ssp.topic_partition)
                if offset < low or offset > high:
                    offset = low if offset < low else high
                    instance.offsets[ssp] = offset
                    self._checkpoint_resets.inc()
                self._consumer.seek(ssp.topic_partition, offset)

        # Resolve input serdes per stream.
        for ssp in all_ssps:
            if ssp.stream not in self._input_serdes:
                self._input_serdes[ssp.stream] = self.serdes.resolve_stream_serdes(
                    self.config, ssp.system, ssp.stream)

        # Bootstrap handling: pause everything that is not a bootstrap input.
        # Bootstrap streams also keep *poll priority* permanently (as in
        # Samza): after catch-up, a changelog record already in the log is
        # always consumed before stream records fetched in the same poll, so
        # relation-cache updates are never reordered behind the round-robin
        # cursor.
        self._bootstrap_ssps = {ssp for ssp in all_ssps if self._is_bootstrap(ssp)}
        if self._bootstrap_ssps:
            self._bootstrap_active = True
            self._consumer.set_priority(
                {ssp.topic_partition for ssp in self._bootstrap_ssps})
            for ssp in all_ssps - self._bootstrap_ssps:
                self._consumer.pause(ssp.topic_partition)

        if not self._parallel_execution:
            for instance in self.tasks.values():
                instance.init(self.config)
            self._tasks_initialized = True

        self._last_window_ms = self.clock.now_ms()
        self._started = True
        del tp_to_ssp  # documentation of intent only

    def finish_task_init(self) -> None:
        """Second half of startup under parallel execution, run inside the
        forked worker: initialize every task there, so the SQL task reads
        the plan from the (forked) ZooKeeper and compiles its operators in
        the process that will run them."""
        if self._tasks_initialized:
            return
        for instance in self.tasks.values():
            instance.init(self.config)
        self._tasks_initialized = True

    def _build_stores(self, model: TaskModel) -> dict[str, KeyValueStore]:
        stores: dict[str, KeyValueStore] = {}
        for spec in self._store_specs:
            memory = InMemoryKeyValueStore()
            bytes_store: KeyValueStore = memory
            if spec.changelog_stream is not None:
                topic = spec.changelog_stream
                self._restore_store(memory, topic, model.partition_id)
                tp = TopicPartition(topic, model.partition_id)

                def log_fn(key: bytes, value: bytes | None, _tp=tp) -> None:
                    self._retry.call(lambda: self.cluster.produce(
                        _tp, key, value, self.clock.now_ms()))

                bytes_store = LoggedKeyValueStore(memory, log_fn)
            key_serde = self.serdes.get(spec.key_serde)
            store: KeyValueStore = SerializedKeyValueStore(
                bytes_store, key_serde, self.serdes.get(spec.msg_serde))
            group = f"store.{spec.name}.p{model.partition_id}"
            if spec.write_behind:
                store = WriteBehindKeyValueStore(store, key_serde)
                self.metrics.gauge(group, "dirty-entries",
                                   fn=lambda s=store: s.dirty_count)
            if spec.cached:
                store = CachedKeyValueStore(store, spec.cache_size)
                self.metrics.gauge(group, "cache-hits",
                                   fn=lambda s=store: s.hits)
                self.metrics.gauge(group, "cache-misses",
                                   fn=lambda s=store: s.misses)
            stores[spec.name] = store
        return stores

    def _restore_store(self, memory: InMemoryKeyValueStore, topic: str,
                       partition: int) -> None:
        """Replay the changelog partition into the store (state restore)."""
        if not self.cluster.has_topic(topic):
            return
        tp = TopicPartition(topic, partition)
        start = self.cluster.earliest_offset(tp)
        for message in self._retry.call(lambda: self.cluster.fetch(tp, start)):
            if message.key is None:
                continue
            if message.value is None:
                memory.delete(message.key)
            else:
                memory.put(message.key, message.value)

    # -- output path ------------------------------------------------------------------

    def _send(self, envelope: OutgoingMessageEnvelope) -> None:
        stream = envelope.system_stream.stream
        if not self.cluster.has_topic(stream):
            # Auto-create intermediate/output topics, co-partitioned with inputs.
            partitions = max(
                (self.cluster.topic(ssp.stream).partition_count
                 for ssp in self._task_by_ssp), default=1)
            self.cluster.create_topic(stream, partitions=partitions, if_not_exists=True)
        if envelope.pre_serialized:
            key_bytes = envelope.key
            value_bytes = envelope.message
        else:
            if stream not in self._output_serdes:
                self._output_serdes[stream] = self.serdes.resolve_stream_serdes(
                    self.config, envelope.system_stream.system, stream)
            key_serde, msg_serde = self._output_serdes[stream]
            key_bytes = None if envelope.key is None else key_serde.to_bytes(envelope.key)
            value_bytes = (
                None if envelope.message is None else msg_serde.to_bytes(envelope.message))
        partition = None
        if envelope.partition_key is not None:
            count = self.cluster.topic(stream).partition_count
            partition = hash_partitioner(
                _PARTITION_KEY_SERDE.to_bytes(envelope.partition_key), count)
        timestamp = (envelope.timestamp_ms if envelope.timestamp_ms is not None
                     else self.clock.now_ms())
        self._producer.send(stream, value_bytes, key=key_bytes,
                            partition=partition, timestamp_ms=timestamp)
        self._sent.inc()

    def _send_batch(self, envelopes: list[OutgoingMessageEnvelope]) -> None:
        """Batched output path: per stream, resolve the serdes and the
        partition count once, encode with the serdes' batch forms, and hand
        the whole batch to ``Producer.send_batch``.

        Pre-serialized envelopes (the serde-fused fast path) carry bytes
        already; they skip encoding entirely — when a whole group is
        pre-serialized no serde is even resolved — while send order within
        the stream is preserved for mixed groups."""
        by_stream: dict[str, list[OutgoingMessageEnvelope]] = {}
        for envelope in envelopes:
            by_stream.setdefault(envelope.system_stream.stream, []).append(envelope)
        for stream, group in by_stream.items():
            if not self.cluster.has_topic(stream):
                partitions = max(
                    (self.cluster.topic(ssp.stream).partition_count
                     for ssp in self._task_by_ssp), default=1)
                self.cluster.create_topic(stream, partitions=partitions,
                                          if_not_exists=True)
            plain = [e for e in group if not e.pre_serialized]
            if plain:
                if stream not in self._output_serdes:
                    self._output_serdes[stream] = self.serdes.resolve_stream_serdes(
                        self.config, group[0].system_stream.system, stream)
                key_serde, msg_serde = self._output_serdes[stream]
                plain_keys = iter(key_serde.to_bytes_batch([e.key for e in plain]))
                plain_values = iter(msg_serde.to_bytes_batch(
                    [e.message for e in plain]))
            count = self.cluster.topic(stream).partition_count
            to_partition_key = _PARTITION_KEY_SERDE.to_bytes
            now_ms = None
            entries = []
            for envelope in group:
                if envelope.pre_serialized:
                    kb = envelope.key
                    vb = envelope.message
                else:
                    kb = next(plain_keys)
                    vb = next(plain_values)
                partition = None
                if envelope.partition_key is not None:
                    partition = hash_partitioner(
                        to_partition_key(envelope.partition_key), count)
                timestamp = envelope.timestamp_ms
                if timestamp is None:
                    if now_ms is None:
                        now_ms = self.clock.now_ms()
                    timestamp = now_ms
                entries.append((vb, kb, partition, timestamp))
            self._producer.send_batch(stream, entries)
            self._sent.inc(len(entries))

    def _send_pre_serialized_batch(self, stream: str, entries: list) -> None:
        """Fast lane for serde-fused output: each entry is
        ``(message_bytes, timestamp_ms, key)`` straight from the sink's
        buffer, so no :class:`OutgoingMessageEnvelope` is ever built or
        unpacked.  Keys are string-serde encoded and partitions are chosen
        by hashing the object-serde encoding of the key — byte-for-byte
        the routing the envelope path performs.  Both encodings are
        memoized per key: output keys are grouping/join keys, whose
        cardinality is far below the record count.
        """
        if not self.cluster.has_topic(stream):
            partitions = max(
                (self.cluster.topic(ssp.stream).partition_count
                 for ssp in self._task_by_ssp), default=1)
            self.cluster.create_topic(stream, partitions=partitions,
                                      if_not_exists=True)
        count = self.cluster.topic(stream).partition_count
        memo = self._key_route_memo.get(stream)
        if memo is None:
            memo = self._key_route_memo[stream] = {}
        to_partition_key = _PARTITION_KEY_SERDE.to_bytes
        now_ms = None
        out = []
        append = out.append
        for message, timestamp_ms, key in entries:
            if key is None:
                kb = partition = None
            else:
                route = memo.get(key)
                if route is None:
                    if len(memo) >= 65536:  # bound unkeyed-cardinality blowup
                        memo.clear()
                    route = memo[key] = (
                        key.encode("utf-8"),
                        hash_partitioner(to_partition_key(key), count))
                kb, partition = route
            if timestamp_ms is None:
                if now_ms is None:
                    now_ms = self.clock.now_ms()
                timestamp_ms = now_ms
            append((message, kb, partition, timestamp_ms))
        self._producer.send_batch(stream, out)
        self._sent.inc(len(out))

    # -- the run loop --------------------------------------------------------------------

    def run_iteration(self) -> int:
        """Process one poll batch; returns the number of records handled."""
        if not self._started:
            raise ConfigError(f"container {self.container_id} not started")
        if not self._tasks_initialized:
            raise ConfigError(
                f"container {self.container_id} tasks not initialized — "
                f"parallel containers must run inside a worker process "
                f"(finish_task_init)")
        if self.shutdown_requested:
            return 0

        if self._bootstrap_active:
            self._maybe_finish_bootstrap()

        if self._batch_execution:
            handled = self._process_poll_batched()
        else:
            handled = self._process_poll_single()

        self._maybe_fire_window()

        if self.metrics_reporter is not None:
            self.metrics_reporter.maybe_report()

        if (self._coordinator.commit_requested
                or self._messages_since_commit >= self._commit_interval):
            self.commit()

        if self._coordinator.shutdown_requested:
            self.stop()
        return handled

    def _process_poll_single(self) -> int:
        """The per-message loop (task.batch.execution=false)."""
        records = self._consumer.poll(max_records=self._batch_size)
        for record in records:
            ssp = SystemStreamPartition("kafka", record.topic, record.partition)
            instance = self._task_by_ssp[ssp]
            key_serde, msg_serde = self._input_serdes[record.topic]
            key = None if record.key is None else key_serde.from_bytes(record.key)
            message = None if record.value is None else msg_serde.from_bytes(record.value)
            envelope = IncomingMessageEnvelope(
                system_stream_partition=ssp, offset=record.offset,
                key=key, message=message, timestamp_ms=record.timestamp_ms,
                raw_key=record.key, raw_message=record.value,
            )
            instance.process(envelope, self._collector, self._coordinator)
            self._processed.inc()
            self._messages_since_commit += 1
            if self._fault_injector is not None:
                # May raise ContainerCrashError: the exception must escape
                # WITHOUT committing, so work since the last checkpoint is
                # genuinely lost and the replacement container replays it.
                self._fault_injector.on_processed(self.container_id)
            if self._coordinator.shutdown_requested:
                break
        return len(records)

    def _process_poll_batched(self) -> int:
        """Batch-at-a-time loop: task, serdes and decode are resolved once
        per (topic, partition) group, the whole group flows through
        ``TaskInstance.process_batch``, and only then does the per-message
        bookkeeping (counters, fault injection) run for each record.

        Per-message crash semantics are preserved by capping each chunk at
        the fault injector's next crash point: every message before the
        point is fully processed (output flushed by the task) and nothing
        past it is touched, so the crash loses exactly the uncommitted
        suffix — the same replay window as the single-message loop.
        """
        groups = self._consumer.poll_batches(max_records=self._batch_size)
        injector = self._fault_injector
        coordinator = self._coordinator
        handled = 0
        for tp, records in groups:
            ssp = SystemStreamPartition("kafka", tp.topic, tp.partition)
            instance = self._task_by_ssp[ssp]
            raw = tp.topic in instance.raw_streams
            key_serde, msg_serde = self._input_serdes[tp.topic]
            start, total = 0, len(records)
            while start < total:
                limit = total - start
                if injector is not None:
                    until = injector.messages_until_crash()
                    if until is not None and until < limit:
                        limit = until
                chunk = records if limit == total else records[start:start + limit]
                if raw:
                    # Serde-fused task: the generated plan function decodes
                    # (only the columns it needs) — skip both batch decodes.
                    done = instance.process_batch_raw(
                        ssp, chunk, self._collector, coordinator)
                else:
                    keys = key_serde.from_bytes_batch([r.key for r in chunk])
                    messages = msg_serde.from_bytes_batch(
                        [r.value for r in chunk])
                    done = instance.process_batch(
                        ssp, chunk, keys, messages, self._collector, coordinator)
                handled += done
                self._processed.inc(done)
                self._messages_since_commit += done
                if injector is not None:
                    on_processed = injector.on_processed
                    for _ in range(done):
                        # May raise ContainerCrashError — see the single
                        # loop; the chunk cap above guarantees no message
                        # past the crash point has been processed.
                        on_processed(self.container_id)
                if done < len(chunk) or coordinator.shutdown_requested:
                    return handled
                start += limit
        return handled

    def _maybe_finish_bootstrap(self) -> None:
        caught_up = all(
            self._consumer.lag(ssp.topic_partition) == 0
            for ssp in self._bootstrap_ssps
        )
        if caught_up:
            self._bootstrap_active = False
            for tp in list(self._consumer.paused()):
                self._consumer.resume(tp)

    def _maybe_fire_window(self) -> None:
        if self._window_ms < 0:
            return
        now = self.clock.now_ms()
        if now - self._last_window_ms >= self._window_ms:
            for instance in self.tasks.values():
                instance.window(self._collector, self._coordinator)
            self._last_window_ms = now

    # -- durability / lifecycle --------------------------------------------------------------

    def commit(self) -> None:
        if self.pre_commit_hook is not None:
            self.pre_commit_hook()
        for instance in self.tasks.values():
            instance.commit()
        self._messages_since_commit = 0
        self._coordinator.commit_requested = False
        self._commits.inc()

    def stop(self) -> None:
        if not self._started or self.shutdown_requested:
            self.shutdown_requested = True
            return
        self.commit()
        for instance in self.tasks.values():
            instance.close()
        if self.metrics_reporter is not None:
            # Final snapshot so post-shutdown counters are observable.
            self.metrics_reporter.report()
        self.shutdown_requested = True

    # -- introspection ---------------------------------------------------------------------------

    @property
    def processed_count(self) -> int:
        return self._processed.count

    @property
    def checkpoint_reset_count(self) -> int:
        return self._checkpoint_resets.count

    @property
    def retry_count(self) -> int:
        return self._retry.retry_count

    @property
    def is_bootstrapping(self) -> bool:
        return self._bootstrap_active

    def total_lag(self) -> int:
        return self._consumer.total_lag()
