"""The StreamTask API — Samza's Map/Reduce-like programming model.

Native Samza applications (the paper's comparison baseline, implemented in
:mod:`repro.bench.native_jobs`) and the SamzaSQL operator task
(:mod:`repro.samzasql.task`) both implement these interfaces.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

from repro.common.config import Config
from repro.samza.system import IncomingMessageEnvelope, OutgoingMessageEnvelope

if TYPE_CHECKING:  # pragma: no cover
    from repro.samza.storage import KeyValueStore


class MessageCollector(ABC):
    """Sink handed to ``process``/``window`` for emitting output messages."""

    @abstractmethod
    def send(self, envelope: OutgoingMessageEnvelope) -> None: ...


class TaskCoordinator(ABC):
    """Lets a task request commits or job shutdown from inside a callback."""

    @abstractmethod
    def commit(self) -> None:
        """Request an offset/state checkpoint at the next safe point."""

    @abstractmethod
    def shutdown(self) -> None:
        """Request cooperative shutdown of the whole job."""


class TaskContext:
    """Per-task runtime context: identity, stores, metrics."""

    def __init__(self, task_name: str, partition_id: int, stores: dict[str, "KeyValueStore"],
                 metrics=None, serdes=None):
        self.task_name = task_name
        self.partition_id = partition_id
        self._stores = stores
        self.metrics = metrics
        # The container's SerdeRegistry, when it has one.  Plan-aware
        # tasks use it to resolve their streams' Avro schemas for the
        # serde-fusion fast path.
        self.serdes = serdes

    def get_store(self, name: str) -> "KeyValueStore":
        try:
            return self._stores[name]
        except KeyError:
            raise KeyError(
                f"task {self.task_name!r} has no store {name!r}; configured "
                f"stores: {sorted(self._stores)}"
            ) from None


class StreamTask(ABC):
    """Processes one input message at a time."""

    @abstractmethod
    def process(self, envelope: IncomingMessageEnvelope,
                collector: MessageCollector, coordinator: TaskCoordinator) -> None: ...


class InitableTask(ABC):
    """Optional: receive config and context before the first message."""

    @abstractmethod
    def init(self, config: Config, context: TaskContext) -> None: ...


class WindowableTask(ABC):
    """Optional: called on a timer (``task.window.ms``) between messages."""

    @abstractmethod
    def window(self, collector: MessageCollector, coordinator: TaskCoordinator) -> None: ...


class ClosableTask(ABC):
    """Optional: cleanup hook on shutdown."""

    @abstractmethod
    def close(self) -> None: ...


class ListCollector(MessageCollector):
    """Test helper: collects outgoing envelopes in a list."""

    def __init__(self):
        self.envelopes: list[OutgoingMessageEnvelope] = []

    def send(self, envelope: OutgoingMessageEnvelope) -> None:
        self.envelopes.append(envelope)

    def messages(self) -> list[Any]:
        return [e.message for e in self.envelopes]
