"""TaskInstance: one task's runtime wrapper inside a container.

Owns the task object, its input SSP offsets, its stores, and the commit
path (flush stores, write checkpoint).
"""

from __future__ import annotations

from typing import Any

from repro.common.config import Config
from repro.samza.checkpoint import Checkpoint, CheckpointManager
from repro.samza.storage import KeyValueStore
from repro.samza.system import IncomingMessageEnvelope, SystemStreamPartition
from repro.samza.task import (
    ClosableTask,
    InitableTask,
    MessageCollector,
    StreamTask,
    TaskContext,
    TaskCoordinator,
    WindowableTask,
)


class TaskInstance:
    """Runtime state for one task (one partition group)."""

    def __init__(self, task_name: str, partition_id: int, task: StreamTask,
                 ssps: set[SystemStreamPartition],
                 stores: dict[str, KeyValueStore],
                 checkpoint_manager: CheckpointManager | None,
                 metrics=None, serdes=None):
        self.task_name = task_name
        self.partition_id = partition_id
        self.task = task
        self.ssps = set(ssps)
        self.stores = stores
        self._checkpoints = checkpoint_manager
        # next offset to process per SSP; filled by the container at startup
        self.offsets: dict[SystemStreamPartition, int] = {}
        self.messages_processed = 0
        # Streams whose batches the task wants *undecoded* (serde-fused
        # tasks); published by init() from the task's raw_input_streams.
        self.raw_streams: frozenset[str] = frozenset()
        self.context = TaskContext(task_name, partition_id, stores,
                                   metrics=metrics, serdes=serdes)

    # -- lifecycle -------------------------------------------------------------

    def init(self, config: Config) -> None:
        if isinstance(self.task, InitableTask):
            self.task.init(config, self.context)
        self.raw_streams = frozenset(
            getattr(self.task, "raw_input_streams", ()) or ())

    def close(self) -> None:
        if isinstance(self.task, ClosableTask):
            self.task.close()

    # -- processing ------------------------------------------------------------

    def process(self, envelope: IncomingMessageEnvelope, collector: MessageCollector,
                coordinator: TaskCoordinator) -> None:
        self.task.process(envelope, collector, coordinator)
        self.offsets[envelope.system_stream_partition] = envelope.offset + 1
        self.messages_processed += 1

    def process_batch(self, ssp: SystemStreamPartition, records: list,
                      keys: list, messages: list, collector: MessageCollector,
                      coordinator: TaskCoordinator) -> int:
        """Process one partition's decoded record batch; returns how many
        records were actually processed (all of them unless the task
        requested shutdown mid-batch).

        Batch-aware tasks get the whole batch in one call; other tasks fall
        back to a per-record loop with per-record offset tracking, exactly
        matching the single-message path.  Offsets only ever cover records
        whose processing completed, so a checkpoint taken afterwards is
        identical to one the single-message path would have written.
        """
        task_batch = getattr(self.task, "process_batch", None)
        if task_batch is not None:
            task_batch(ssp, records, keys, messages, collector, coordinator)
            done = len(records)
            self.offsets[ssp] = records[-1].offset + 1
            self.messages_processed += done
            return done
        return self._process_record_loop(ssp, records, keys, messages,
                                         collector, coordinator)

    def process_batch_raw(self, ssp: SystemStreamPartition, records: list,
                          collector: MessageCollector,
                          coordinator: TaskCoordinator) -> int:
        """Serde-fused path: hand one partition's *undecoded* record batch
        to the task.  Offset/commit semantics are identical to
        :meth:`process_batch` — the whole batch completes (or raises), so
        a checkpoint taken afterwards matches the decoded path's exactly.
        """
        self.task.process_batch_raw(ssp, records, collector, coordinator)
        done = len(records)
        self.offsets[ssp] = records[-1].offset + 1
        self.messages_processed += done
        return done

    def _process_record_loop(self, ssp, records, keys, messages, collector,
                             coordinator) -> int:
        process = self.task.process
        offsets = self.offsets
        done = 0
        for record, key, message in zip(records, keys, messages):
            process(IncomingMessageEnvelope(
                system_stream_partition=ssp, offset=record.offset,
                key=key, message=message, timestamp_ms=record.timestamp_ms,
                raw_key=record.key, raw_message=record.value,
            ), collector, coordinator)
            offsets[ssp] = record.offset + 1
            done += 1
            if getattr(coordinator, "shutdown_requested", False):
                break
        self.messages_processed += done
        return done

    def window(self, collector: MessageCollector, coordinator: TaskCoordinator) -> None:
        if isinstance(self.task, WindowableTask):
            self.task.window(collector, coordinator)

    # -- durability ----------------------------------------------------------------

    def commit(self) -> None:
        """Flush state then checkpoint offsets (state-first, like Samza:
        replay after a crash between the two steps reprocesses messages
        rather than losing them).

        With write-behind stores this flush is where the interval's
        deferred mutations are serialized and mirrored to the changelog —
        the changelog therefore describes exactly the state the checkpoint
        written next accompanies, never a partially-applied interval.
        """
        for store in self.stores.values():
            store.flush()
        if self._checkpoints is not None:
            self._checkpoints.write_checkpoint(self.task_name, Checkpoint(dict(self.offsets)))

    def restore_offsets(self, default_offsets: dict[SystemStreamPartition, int]) -> None:
        """Initialise offsets from the last checkpoint, else the defaults."""
        checkpoint = (
            self._checkpoints.read_last_checkpoint(self.task_name)
            if self._checkpoints is not None else None
        )
        for ssp in self.ssps:
            if checkpoint is not None and ssp in checkpoint.offsets:
                self.offsets[ssp] = checkpoint.offsets[ssp]
            else:
                self.offsets[ssp] = default_offsets.get(ssp, 0)

    def store_snapshot(self) -> dict[str, dict[Any, Any]]:
        """Debug/test helper: materialize store contents."""
        return {name: dict(store.all()) for name, store in self.stores.items()}
