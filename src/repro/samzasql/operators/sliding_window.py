"""Sliding-window operator — Algorithm 1 of the paper (§4.3).

Per incoming tuple::

    save message in the message store
    if uninitialized window state: initialize window state
    get tuple timestamp; update window bounds
    add a reference to the tuple into the window store
    purge messages and adjust aggregate values
    compute new aggregate values adding current tuple
    send latest aggregate values downstream

State lives in two task-local key-value stores, exactly as described:

* ``sql-window-messages`` — every message this task instance has seen,
  keyed ``(partition_key, timestamp, seq)``;
* ``sql-window-state`` — per partition-key window state: the references
  (timestamp, seq, agg argument values) of the rows in the current window,
  the running accumulators, and the window bounds.

Because Samza snapshots these stores through their changelog and replays
input from the last checkpoint after a failure, the operator "provides
timely and deterministic window output under ... node failures and message
re-delivery": re-processing a message upserts the same keyed entries and
recomputes the same aggregates.  Every access pays the store's serde
round-trip — the cost the paper's Figure 6 shows dominating this operator.
"""

from __future__ import annotations

from repro.samzasql.operators.base import Operator, OperatorContext
from repro.samzasql.physical import AggSpec
from repro.sql.codegen import compile_lambda

MESSAGES_STORE = "sql-window-messages"
STATE_STORE = "sql-window-state"


class _Accumulators:
    """Incrementally maintained aggregate values over the window rows.

    SUM/AVG/COUNT keep running [sum, count] pairs; MIN/MAX and UDAFs are
    recomputed from the retained rows at emit time (``_summing`` masks the
    slots whose values are safe to add/subtract).
    """

    __slots__ = ("specs", "_summing")

    def __init__(self, specs: list[AggSpec]):
        self.specs = specs
        self._summing = [spec.func in ("SUM", "AVG") for spec in specs]

    def fresh(self) -> list:
        return [[0, 0] for _ in self.specs]  # [running_sum, count] per agg

    def add(self, state: list, values: list) -> None:
        for summing, acc, value in zip(self._summing, state, values):
            if summing and value is not None:
                acc[0] += value
            acc[1] += 1

    def remove(self, state: list, values: list) -> None:
        for summing, acc, value in zip(self._summing, state, values):
            if summing and value is not None:
                acc[0] -= value
            acc[1] -= 1

    def results(self, state: list, rows: list) -> list:
        """Aggregate outputs; MIN/MAX and UDAFs recompute from retained rows
        (no retraction API needed — windows purge, then we re-fold)."""
        out = []
        for index, (spec, acc) in enumerate(zip(self.specs, state)):
            func = spec.func
            if func == "COUNT":
                out.append(acc[1])
            elif func == "SUM":
                out.append(acc[0] if acc[1] else None)
            elif func == "AVG":
                out.append(acc[0] / acc[1] if acc[1] else None)
            elif func in ("MIN", "MAX"):
                values = [entry[2][index] for entry in rows
                          if entry[2][index] is not None]
                if not values:
                    out.append(None)
                else:
                    out.append(min(values) if func == "MIN" else max(values))
            else:
                out.append(self._udaf_result(func, index, rows))
        return out

    @staticmethod
    def _udaf_result(func: str, index: int, rows: list):
        from repro.sql.udf import UDF_REGISTRY

        udaf = UDF_REGISTRY.udaf(func)
        if udaf is None:
            raise ValueError(f"unsupported window aggregate {func}")
        state = udaf.create()
        for entry in rows:
            state = udaf.add(state, entry[2][index])
        return udaf.result(state)


class SlidingWindowOperator(Operator):
    METRIC_KIND = "sliding-window"

    def __init__(self, partition_key_source: str, order_source: str,
                 frame_mode: str, preceding_ms: int | None,
                 preceding_rows: int | None, aggs: list[AggSpec],
                 field_names: list[str]):
        super().__init__()
        self.partition_key_source = partition_key_source
        self.order_source = order_source
        self.frame_mode = frame_mode
        self.preceding_ms = preceding_ms
        self.preceding_rows = preceding_rows
        self.aggs = list(aggs)
        self.field_names = list(field_names)
        self._key_fn = compile_lambda(partition_key_source)
        self._order_fn = compile_lambda(order_source)
        self._arg_fns = [
            (None if spec.arg_source is None else compile_lambda(spec.arg_source))
            for spec in self.aggs
        ]
        self._accumulators = _Accumulators(self.aggs)
        self._messages = None
        self._state = None

    def setup(self, context: OperatorContext) -> None:
        self._messages = context.get_store(MESSAGES_STORE)
        self._state = context.get_store(STATE_STORE)

    def process(self, port: int, row: list, timestamp_ms: int) -> None:
        self.processed += 1
        key = repr(self._key_fn(row))
        order_value = self._order_fn(row)

        # -- Algorithm 1, step by step ------------------------------------
        # window state: {"rows": [(ts, seq, arg_values)], "accs": [...],
        #                "lower": ts, "upper": ts, "seq": n}
        state = self._state.get(key)
        if state is None:
            state = {"rows": [], "accs": self._accumulators.fresh(),
                     "lower": order_value, "upper": order_value, "seq": 0}

        seq = state["seq"]
        state["seq"] = seq + 1

        # save message in message store
        self._messages.put((key, order_value, seq), row)

        # update window bounds
        if order_value > state["upper"]:
            state["upper"] = order_value

        # add a reference to the tuple into the window store
        arg_values = [None if fn is None else fn(row) for fn in self._arg_fns]
        entry = (order_value, seq, arg_values)

        # purge messages and adjust aggregate values
        rows = state["rows"]
        if self.frame_mode == "RANGE" and self.preceding_ms is not None:
            cutoff = order_value - self.preceding_ms
            keep_from = 0
            for keep_from, existing in enumerate(rows):
                if existing[0] >= cutoff:
                    break
            else:
                keep_from = len(rows)
            for purged in rows[:keep_from]:
                self._accumulators.remove(state["accs"], purged[2])
                self._messages.delete((key, purged[0], purged[1]))
            del rows[:keep_from]
            state["lower"] = cutoff

        # compute new aggregate values adding current tuple
        rows.append(entry)
        self._accumulators.add(state["accs"], arg_values)

        if self.frame_mode == "ROWS" and self.preceding_rows is not None:
            limit = self.preceding_rows + 1  # frame includes the current row
            while len(rows) > limit:
                purged = rows.pop(0)
                self._accumulators.remove(state["accs"], purged[2])
                self._messages.delete((key, purged[0], purged[1]))

        results = self._accumulators.results(state["accs"], rows)
        self._state.put(key, state)

        # send latest aggregate values downstream
        self.emit(row + results, timestamp_ms)

    def state_size(self) -> int:
        """Messages currently retained in open windows (snapshot-time walk,
        backs the ``window-state-size`` gauge)."""
        if self._messages is None:
            return 0
        return sum(1 for _ in self._messages.all())

    def describe(self) -> str:
        bound = (f"{self.preceding_ms}ms" if self.preceding_ms is not None
                 else f"{self.preceding_rows}rows" if self.preceding_rows is not None
                 else "UNBOUNDED")
        return f"SlidingWindow({self.frame_mode} {bound})"
