"""Sliding-window operator — Algorithm 1 of the paper (§4.3).

Per incoming tuple::

    save message in the message store
    if uninitialized window state: initialize window state
    get tuple timestamp; update window bounds
    add a reference to the tuple into the window store
    purge messages and adjust aggregate values
    compute new aggregate values adding current tuple
    send latest aggregate values downstream

State lives in two task-local key-value stores, exactly as described:

* ``sql-window-messages`` — every retained message, keyed
  ``(partition_key, timestamp, seq)`` (purged rows are deleted);
* ``sql-window-state`` — per partition-key bounds record:
  ``{"seq", "lower", "upper"}``.

The paper's Figure 6 finding — sliding-window throughput "is dominated by
access to the key-value store" — came from round-tripping the *entire*
window (all retained row references plus accumulators) through the store's
serde on every message.  This implementation keeps the live window in
operator memory (a deque of row references, running accumulators, and
monotonic MIN/MAX deques) and persists only the two O(1)-sized pieces per
message: the row itself under its own key, and the small bounds record.
Under the write-behind store layer both are dict writes until commit, so
per-message state maintenance is O(1) serde (amortised to the commit
interval) instead of O(window).

Durability is unchanged: the retained-row entries and the bounds record
fully determine the in-memory window, so :meth:`setup` rebuilds it
deterministically from the stores after a changelog restore — re-pushing
the retained rows in seq order reproduces the accumulators and the
monotonic deques exactly (a monotonic deque is a pure function of the
retained-row sequence).  Rows found without a covering bounds record
(flushed ahead of a crash) are ignored; at-least-once replay regenerates
them with the same keys and values.
"""

from __future__ import annotations

from collections import deque

from repro.samzasql.operators.base import Operator, OperatorContext
from repro.samzasql.physical import AggSpec
from repro.sql.codegen import compile_lambda

MESSAGES_STORE = "sql-window-messages"
STATE_STORE = "sql-window-state"


class _WindowState:
    """One partition key's live window.

    ``rows`` holds ``(order_value, seq, arg_values)`` references in arrival
    order; ``accs`` the running ``[sum, count]`` pairs; ``minmax`` one
    monotonic deque per MIN/MAX aggregate (else ``None``); ``record`` the
    small persisted dict (``{"seq", "lower", "upper"}``) — mutated in place
    and re-put per message, so the write-behind layer serializes only its
    commit-time value.
    """

    __slots__ = ("rows", "accs", "minmax", "record")

    def __init__(self, accs: list, minmax: list, record: dict):
        self.rows: deque = deque()
        self.accs = accs
        self.minmax = minmax
        self.record = record


class _Accumulators:
    """Incrementally maintained aggregate values over the window rows.

    SUM/AVG/COUNT keep running [sum, count] pairs; MIN/MAX keep monotonic
    deques of ``(order_value, seq, value)`` so the current extreme is the
    deque front — add pops dominated tail entries, purge pops the front
    when it is the purged row, and emit is O(1) with no re-fold.  UDAFs
    (no retraction API) still re-fold the retained rows at emit.
    """

    __slots__ = ("specs", "_summing", "_minmax")

    def __init__(self, specs: list[AggSpec]):
        self.specs = specs
        self._summing = [spec.func in ("SUM", "AVG") for spec in specs]
        self._minmax = [spec.func if spec.func in ("MIN", "MAX") else None
                        for spec in specs]

    def fresh(self) -> list:
        return [[0, 0] for _ in self.specs]  # [running_sum, count] per agg

    def minmax_fresh(self) -> list:
        return [None if func is None else deque() for func in self._minmax]

    def add(self, window: _WindowState, order_value, seq: int,
            values: list) -> None:
        for index, (summing, func) in enumerate(zip(self._summing,
                                                    self._minmax)):
            value = values[index]
            acc = window.accs[index]
            if summing and value is not None:
                acc[0] += value
            acc[1] += 1
            if func is not None and value is not None:
                dq = window.minmax[index]
                if func == "MIN":
                    while dq and dq[-1][2] >= value:
                        dq.pop()
                else:
                    while dq and dq[-1][2] <= value:
                        dq.pop()
                dq.append((order_value, seq, value))

    def remove(self, window: _WindowState, entry: tuple) -> None:
        order_value, seq, values = entry
        for index, (summing, func) in enumerate(zip(self._summing,
                                                    self._minmax)):
            value = values[index]
            acc = window.accs[index]
            if summing and value is not None:
                acc[0] -= value
            acc[1] -= 1
            if func is not None:
                dq = window.minmax[index]
                if dq and dq[0][0] == order_value and dq[0][1] == seq:
                    dq.popleft()

    def results(self, window: _WindowState) -> list:
        out = []
        for index, (spec, acc) in enumerate(zip(self.specs, window.accs)):
            func = spec.func
            if func == "COUNT":
                out.append(acc[1])
            elif func == "SUM":
                out.append(acc[0] if acc[1] else None)
            elif func == "AVG":
                out.append(acc[0] / acc[1] if acc[1] else None)
            elif func in ("MIN", "MAX"):
                dq = window.minmax[index]
                out.append(dq[0][2] if dq else None)
            else:
                out.append(self._udaf_result(func, index, window.rows))
        return out

    @staticmethod
    def _udaf_result(func: str, index: int, rows):
        from repro.sql.udf import UDF_REGISTRY

        udaf = UDF_REGISTRY.udaf(func)
        if udaf is None:
            raise ValueError(f"unsupported window aggregate {func}")
        state = udaf.create()
        for entry in rows:
            state = udaf.add(state, entry[2][index])
        return udaf.result(state)


class SlidingWindowOperator(Operator):
    METRIC_KIND = "sliding-window"

    def __init__(self, partition_key_source: str, order_source: str,
                 frame_mode: str, preceding_ms: int | None,
                 preceding_rows: int | None, aggs: list[AggSpec],
                 field_names: list[str]):
        super().__init__()
        self.partition_key_source = partition_key_source
        self.order_source = order_source
        self.frame_mode = frame_mode
        self.preceding_ms = preceding_ms
        self.preceding_rows = preceding_rows
        self.aggs = list(aggs)
        self.field_names = list(field_names)
        self._key_fn = compile_lambda(partition_key_source)
        self._order_fn = compile_lambda(order_source)
        self._arg_fns = [
            (None if spec.arg_source is None else compile_lambda(spec.arg_source))
            for spec in self.aggs
        ]
        self._accumulators = _Accumulators(self.aggs)
        self._range_ms = preceding_ms if frame_mode == "RANGE" else None
        # ROWS frame includes the current row
        self._rows_limit = (preceding_rows + 1
                            if frame_mode == "ROWS" and preceding_rows is not None
                            else None)
        self._messages = None
        self._state = None
        self._windows: dict[str, _WindowState] = {}
        self._retained = 0

    def setup(self, context: OperatorContext) -> None:
        self._messages = context.get_store(MESSAGES_STORE)
        self._state = context.get_store(STATE_STORE)
        self._windows = {}
        self._retained = 0
        self._rebuild()

    def _rebuild(self) -> None:
        """Reconstruct every live window from the (restored) stores.

        One full walk of the messages store groups retained rows by
        partition key (the object serde is not byte-order-preserving, so
        there is no per-key range scan to lean on); re-adding them in seq
        order replays exactly the add sequence that produced the committed
        accumulators and monotonic deques.  Rows with ``seq >= record.seq``
        were flushed ahead of a bounds record that never made it — they are
        skipped here and regenerated identically by at-least-once replay.
        """
        by_key: dict[str, list] = {}
        for (key, order_value, seq), row in self._messages.all():
            by_key.setdefault(key, []).append((seq, order_value, row))
        for key, record in self._state.all():
            window = _WindowState(self._accumulators.fresh(),
                                  self._accumulators.minmax_fresh(), record)
            self._windows[key] = window
            entries = sorted(entry for entry in by_key.get(key, [])
                             if entry[0] < record["seq"])
            for seq, order_value, row in entries:
                arg_values = [None if fn is None else fn(row)
                              for fn in self._arg_fns]
                window.rows.append((order_value, seq, arg_values))
                self._accumulators.add(window, order_value, seq, arg_values)
            self._retained += len(entries)

    # -- Algorithm 1, step by step ----------------------------------------

    def _advance(self, key: str, order_value, row: list) -> list:
        """Admit one row into its window; returns the new aggregate values.

        Callers are responsible for persisting ``window.record`` (process
        does it per message, process_batch once per touched key)."""
        window = self._windows.get(key)
        if window is None:
            window = _WindowState(
                self._accumulators.fresh(), self._accumulators.minmax_fresh(),
                {"seq": 0, "lower": order_value, "upper": order_value})
            self._windows[key] = window
        record = window.record
        seq = record["seq"]
        record["seq"] = seq + 1

        # save message in message store
        self._messages.put((key, order_value, seq), row)

        # update window bounds
        if order_value > record["upper"]:
            record["upper"] = order_value

        arg_values = [None if fn is None else fn(row) for fn in self._arg_fns]
        rows = window.rows

        # purge messages and adjust aggregate values
        if self._range_ms is not None:
            cutoff = order_value - self._range_ms
            while rows and rows[0][0] < cutoff:
                self._purge(key, window, rows.popleft())
            record["lower"] = cutoff

        # compute new aggregate values adding current tuple
        rows.append((order_value, seq, arg_values))
        self._retained += 1
        self._accumulators.add(window, order_value, seq, arg_values)

        if self._rows_limit is not None:
            while len(rows) > self._rows_limit:
                self._purge(key, window, rows.popleft())

        return self._accumulators.results(window)

    def _purge(self, key: str, window: _WindowState, entry: tuple) -> None:
        self._accumulators.remove(window, entry)
        self._messages.delete((key, entry[0], entry[1]))
        self._retained -= 1

    def process(self, port: int, row: list, timestamp_ms: int) -> None:
        self.processed += 1
        key = repr(self._key_fn(row))
        results = self._advance(key, self._order_fn(row), row)
        self._state.put(key, self._windows[key].record)

        # send latest aggregate values downstream
        self.emit(row + results, timestamp_ms)

    def process_batch(self, port: int, rows: list, timestamps: list) -> None:
        """Batch path: per-row window maintenance in input order (emission
        order and results are identical to the single-message path), with
        the bounds-record put deferred to once per (key, batch)."""
        self.processed += len(rows)
        key_fn = self._key_fn
        order_fn = self._order_fn
        advance = self._advance
        touched: dict[str, None] = {}
        out = []
        for row in rows:
            key = repr(key_fn(row))
            out.append(row + advance(key, order_fn(row), row))
            touched[key] = None
        state_put = self._state.put
        windows = self._windows
        for key in touched:
            state_put(key, windows[key].record)
        self.emit_batch(out, list(timestamps))

    def state_size(self) -> int:
        """Messages currently retained in open windows — an O(1) counter
        maintained on add/purge (backs the ``window-state-size`` gauge)."""
        return self._retained

    def describe(self) -> str:
        bound = (f"{self.preceding_ms}ms" if self.preceding_ms is not None
                 else f"{self.preceding_rows}rows" if self.preceding_rows is not None
                 else "UNBOUNDED")
        return f"SlidingWindow({self.frame_mode} {bound})"
