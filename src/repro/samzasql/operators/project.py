"""Project operator: generated projection producing a new array-tuple."""

from __future__ import annotations

from repro.samzasql.operators.base import Operator
from repro.sql.codegen import compile_batch_projection, compile_lambda


class ProjectOperator(Operator):
    METRIC_KIND = "project"

    def __init__(self, projection_source: str, field_names: list[str]):
        super().__init__()
        self.projection_source = projection_source
        self.field_names = list(field_names)
        self._project = compile_lambda(projection_source)
        self._batch_project = compile_batch_projection(projection_source)

    def process(self, port: int, row: list, timestamp_ms: int) -> None:
        self.processed += 1
        self.emit(self._project(row), timestamp_ms)

    def process_batch(self, port: int, rows: list, timestamps: list) -> None:
        self.processed += len(rows)
        self.emit_batch(self._batch_project(rows), timestamps)

    def describe(self) -> str:
        return f"Project({', '.join(self.field_names)})"
