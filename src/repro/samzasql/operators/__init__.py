"""The SamzaSQL operator layer (§4.3–4.4).

Operators process array-tuples one at a time and forward results to their
downstream operator; the :class:`~repro.samzasql.operators.router.MessageRouter`
is "a DAG of streaming SQL operators responsible for flowing messages
through query operators" (§4.2).
"""

from repro.samzasql.operators.base import Operator, OperatorContext
from repro.samzasql.operators.scan import ScanOperator
from repro.samzasql.operators.filter import FilterOperator
from repro.samzasql.operators.project import ProjectOperator
from repro.samzasql.operators.sliding_window import SlidingWindowOperator
from repro.samzasql.operators.group_window import GroupWindowAggOperator
from repro.samzasql.operators.multi_way_join import MultiWayStreamJoinOperator
from repro.samzasql.operators.stream_relation_join import StreamRelationJoinOperator
from repro.samzasql.operators.stream_stream_join import StreamStreamJoinOperator
from repro.samzasql.operators.insert import InsertOperator
from repro.samzasql.operators.router import MessageRouter, build_router

__all__ = [
    "Operator",
    "OperatorContext",
    "ScanOperator",
    "FilterOperator",
    "ProjectOperator",
    "SlidingWindowOperator",
    "GroupWindowAggOperator",
    "MultiWayStreamJoinOperator",
    "StreamRelationJoinOperator",
    "StreamStreamJoinOperator",
    "InsertOperator",
    "MessageRouter",
    "build_router",
]
