"""Filter operator: generated predicate over the array-tuple."""

from __future__ import annotations

from repro.samzasql.operators.base import Operator
from repro.sql.codegen import compile_batch_predicate, compile_lambda


class FilterOperator(Operator):
    METRIC_KIND = "filter"

    def __init__(self, predicate_source: str):
        super().__init__()
        self.predicate_source = predicate_source
        self._predicate = compile_lambda(predicate_source)
        self._batch_predicate = compile_batch_predicate(predicate_source)

    def process(self, port: int, row: list, timestamp_ms: int) -> None:
        self.processed += 1
        if self._predicate(row):
            self.emit(row, timestamp_ms)

    def process_batch(self, port: int, rows: list, timestamps: list) -> None:
        self.processed += len(rows)
        pairs = self._batch_predicate(rows, timestamps)
        if pairs:
            self.emit_batch([row for row, _ in pairs], [ts for _, ts in pairs])

    def describe(self) -> str:
        return f"Filter({self.predicate_source})"
