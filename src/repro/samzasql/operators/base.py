"""Operator base class and shared context."""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.samza.storage import KeyValueStore


class OperatorContext:
    """What operators get at setup: stores, an output sink, metrics."""

    def __init__(self, stores: dict[str, KeyValueStore],
                 send: Callable[..., None], partition_id: int = 0,
                 metrics=None, send_batch: Callable[[list], None] | None = None):
        self._stores = stores
        # send(message_dict, timestamp_ms, key=None); key set for
        # relation-stream outputs (compacted/upserting output topics)
        self.send = send
        # send_batch(entries) with entries of (message, timestamp_ms, key);
        # None when the hosting environment has no batched output path.
        self.send_batch = send_batch
        self.partition_id = partition_id
        # MetricsRegistry of the hosting container, or None when the job
        # runs without metrics reporting.
        self.metrics = metrics

    def get_store(self, name: str) -> KeyValueStore:
        try:
            return self._stores[name]
        except KeyError:
            raise KeyError(
                f"operator needs store {name!r}; configured: "
                f"{sorted(self._stores)}") from None


class Operator:
    """One node of the router DAG.

    ``process(port, row, timestamp)`` receives an array-tuple on an input
    port (port 0 for single-input operators; joins use 0/1 plus a relation
    port) and forwards zero or more tuples downstream via ``emit``.

    Message delivery goes through ``receive`` — normally just a bound
    alias of ``process``.  When the job's metrics reporter is enabled, a
    :class:`~repro.metrics.instrument.TimingSampler` at the task entry
    point flips ``receive`` to :meth:`_timed_process` for sampled
    messages, so unsampled traffic crosses no wrapper at all.  Each
    operator carries a stable ``op_id`` (assigned by the router in plan
    order) under which its metrics appear in snapshots.
    """

    #: Stable path segment for metrics (``<METRIC_KIND>-<index>``);
    #: overridden by every concrete operator.
    METRIC_KIND = "operator"

    def __init__(self):
        self.downstream: Operator | None = None
        self.processed = 0
        self.emitted = 0
        self.op_id = ""
        self.receive: Callable[[int, Any, int], None] = self.process
        # Batch delivery entry point: always the plain bound method — the
        # TimingSampler routes sampled messages through the single-message
        # path, so batch deliveries are never rebound.
        self.receive_batch: Callable[[int, list, list], None] = self.process_batch
        self._process_timer = None

    def setup(self, context: OperatorContext) -> None:
        """Bind stores / compile state; called once at task init."""

    def process(self, port: int, row: list, timestamp_ms: int) -> None:
        raise NotImplementedError

    def process_batch(self, port: int, rows: list, timestamps: list) -> None:
        """Process a whole batch delivered on one port.

        The default loops over :meth:`process`, preserving single-message
        semantics exactly; stateless operators override it with a
        vectorized (codegen'd comprehension) implementation.
        """
        process = self.process
        for row, ts in zip(rows, timestamps):
            process(port, row, ts)

    def emit(self, row: list, timestamp_ms: int) -> None:
        self.emitted += 1
        if self.downstream is not None:
            self.downstream.receive(0, row, timestamp_ms)

    def emit_batch(self, rows: list, timestamps: list) -> None:
        self.emitted += len(rows)
        if rows and self.downstream is not None:
            self.downstream.receive_batch(0, rows, timestamps)

    def on_timer(self, now_ms: int) -> None:
        """Wall-clock hook (Samza window() tick); default no-op."""

    # -- instrumentation ------------------------------------------------------

    def enable_timing(self, timer) -> None:
        """Attach a ``process-ns`` timer; deliveries are NOT rerouted here.

        The :class:`~repro.metrics.instrument.TimingSampler` binds
        ``receive`` to :meth:`_timed_process` only for the messages it
        samples, so a plain (unsampled) delivery costs nothing extra.
        """
        self._process_timer = timer

    def _timed_process(self, port: int, row: list, timestamp_ms: int) -> None:
        """Timed delivery path; bound to ``receive`` during a sample.

        The timer measures *inclusive* time: an operator's sample covers
        its own work plus everything it forwards downstream synchronously
        (the DAG executes depth-first in-process).
        """
        start = time.perf_counter_ns()
        self.process(port, row, timestamp_ms)
        self._process_timer.update(time.perf_counter_ns() - start)

    # debugging helper used by the shell's EXPLAIN and by tests
    def describe(self) -> str:
        return type(self).__name__
