"""Operator base class and shared context."""

from __future__ import annotations

from typing import Any, Callable

from repro.samza.storage import KeyValueStore


class OperatorContext:
    """What operators get at setup: stores, an output sink, metrics."""

    def __init__(self, stores: dict[str, KeyValueStore],
                 send: Callable[..., None], partition_id: int = 0):
        self._stores = stores
        # send(message_dict, timestamp_ms, key=None); key set for
        # relation-stream outputs (compacted/upserting output topics)
        self.send = send
        self.partition_id = partition_id

    def get_store(self, name: str) -> KeyValueStore:
        try:
            return self._stores[name]
        except KeyError:
            raise KeyError(
                f"operator needs store {name!r}; configured: "
                f"{sorted(self._stores)}") from None


class Operator:
    """One node of the router DAG.

    ``process(port, row, timestamp)`` receives an array-tuple on an input
    port (port 0 for single-input operators; joins use 0/1 plus a relation
    port) and forwards zero or more tuples downstream via ``emit``.
    """

    def __init__(self):
        self.downstream: Operator | None = None
        self.processed = 0
        self.emitted = 0

    def setup(self, context: OperatorContext) -> None:
        """Bind stores / compile state; called once at task init."""

    def process(self, port: int, row: list, timestamp_ms: int) -> None:
        raise NotImplementedError

    def emit(self, row: list, timestamp_ms: int) -> None:
        self.emitted += 1
        if self.downstream is not None:
            self.downstream.process(0, row, timestamp_ms)

    def on_timer(self, now_ms: int) -> None:
        """Wall-clock hook (Samza window() tick); default no-op."""

    # debugging helper used by the shell's EXPLAIN and by tests
    def describe(self) -> str:
        return type(self).__name__
