"""Windowed stream-to-stream join (§3.8.1).

"Sliding window join queries uses additional join condition on the tuple's
timestamp (rowtime) to specify the window over the stream.  SamzaSQL
assumes that the tuple's timestamp monotonically increases."

Both sides buffer their recent tuples in task-local stores, bucketed by
the equi-join key.  On an arrival from one side, the other side's bucket
is scanned for rows whose timestamp satisfies the window bounds
(``left.rowtime - right.rowtime ∈ [-lower, upper]``), the full generated
join condition is applied as a residual predicate, and matches are
emitted.  Buffered rows older than the window (relative to the joint
watermark) are purged — monotonic timestamps make this safe.
"""

from __future__ import annotations

from repro.samzasql.operators.base import Operator, OperatorContext
from repro.sql.codegen import compile_lambda

LEFT_PORT = 0
RIGHT_PORT = 1

LEFT_STORE = "sql-join-left"
RIGHT_STORE = "sql-join-right"


class StreamStreamJoinOperator(Operator):
    METRIC_KIND = "stream-join"

    def __init__(self, left_width: int, right_width: int, condition_source: str,
                 left_time_index: int, right_time_index: int,
                 lower_bound_ms: int, upper_bound_ms: int,
                 left_key_source: str | None, right_key_source: str | None,
                 field_names: list[str],
                 left_store: str = LEFT_STORE, right_store: str = RIGHT_STORE):
        super().__init__()
        self.store_names = [left_store, right_store]
        self.left_width = left_width
        self.right_width = right_width
        self.condition_source = condition_source
        self.left_time_index = left_time_index
        self.right_time_index = right_time_index
        self.lower_bound_ms = lower_bound_ms
        self.upper_bound_ms = upper_bound_ms
        self.field_names = list(field_names)
        self._condition = compile_lambda(condition_source, params="l, r")
        self._left_key = (None if left_key_source is None
                          else compile_lambda(left_key_source))
        self._right_key = (None if right_key_source is None
                           else compile_lambda(right_key_source))
        self._stores = [None, None]
        self._seq = 0
        self._retained = 0

    def setup(self, context: OperatorContext) -> None:
        self._stores = [context.get_store(name) for name in self.store_names]
        # One walk at (re)start seeds the O(1) retained-row counter from
        # the restored stores; buffer/purge maintain it from here on.
        self._retained = sum(
            len(bucket["rows"])
            for store in self._stores for _key, bucket in store.all())

    def state_size(self) -> int:
        """Rows buffered on both sides — an O(1) counter maintained on
        buffer/purge (backs the sampled ``window-state-size`` gauge)."""
        return self._retained

    # -- helpers ----------------------------------------------------------------

    def _key_of(self, port: int, row: list) -> str:
        key_fn = self._left_key if port == LEFT_PORT else self._right_key
        return repr(key_fn(row)) if key_fn is not None else ""

    def _time_of(self, port: int, row: list) -> int:
        index = self.left_time_index if port == LEFT_PORT else self.right_time_index
        return row[index]

    def _retention_ms(self) -> int:
        return max(self.lower_bound_ms, self.upper_bound_ms)

    # -- processing -----------------------------------------------------------------

    def process(self, port: int, row: list, timestamp_ms: int) -> None:
        self.processed += 1
        ts = self._time_of(port, row)
        key = self._key_of(port, row)
        other_port = RIGHT_PORT if port == LEFT_PORT else LEFT_PORT

        # probe the other side's buffer for rows inside the window
        other_bucket = self._stores[other_port].get(key) or {"rows": []}
        if port == LEFT_PORT:
            # need: ts - other_ts in [-lower, upper]
            low, high = ts - self.upper_bound_ms, ts + self.lower_bound_ms
        else:
            # other row is the left side: other_ts - ts in [-lower, upper]
            low, high = ts - self.lower_bound_ms, ts + self.upper_bound_ms
        for other_ts, _other_seq, other_row in other_bucket["rows"]:
            if not low <= other_ts <= high:
                continue
            if port == LEFT_PORT:
                left, right = row, other_row
            else:
                left, right = other_row, row
            if self._condition(left, right):
                self.emit(list(left) + list(right),
                          max(self._time_of(LEFT_PORT, left),
                              self._time_of(RIGHT_PORT, right)))

        # buffer this row on its own side
        bucket = self._stores[port].get(key) or {"rows": []}
        self._seq += 1
        bucket["rows"].append((ts, self._seq, row))
        self._retained += 1
        # Purge rows that can no longer match: the list is time-ordered
        # (monotonic timestamps), so scan from the front and stop at the
        # first survivor instead of rebuilding the whole list per message.
        self._purge_front(bucket["rows"], ts - self._retention_ms())
        self._stores[port].put(key, bucket)

    def _purge_front(self, entries: list, horizon: int) -> None:
        drop = 0
        for entry in entries:
            if entry[0] >= horizon:
                break
            drop += 1
        if drop:
            del entries[:drop]
            self._retained -= drop

    def process_batch(self, port: int, rows: list, timestamps: list) -> None:
        """Batch path: rows are probed/buffered in input order (matches and
        final buffer contents are identical to the single-message path),
        but each touched bucket is fetched from the store once per batch
        and written back once per batch instead of once per row."""
        self.processed += len(rows)
        own_store = self._stores[port]
        other_port = RIGHT_PORT if port == LEFT_PORT else LEFT_PORT
        other_store = self._stores[other_port]
        own_buckets: dict[str, dict] = {}
        other_buckets: dict[str, dict] = {}
        out_rows: list = []
        out_ts: list = []
        condition = self._condition
        retention = self._retention_ms()
        for row in rows:
            ts = self._time_of(port, row)
            key = self._key_of(port, row)

            other_bucket = other_buckets.get(key)
            if other_bucket is None:
                other_bucket = other_store.get(key) or {"rows": []}
                other_buckets[key] = other_bucket
            if port == LEFT_PORT:
                low, high = ts - self.upper_bound_ms, ts + self.lower_bound_ms
            else:
                low, high = ts - self.lower_bound_ms, ts + self.upper_bound_ms
            for other_ts, _other_seq, other_row in other_bucket["rows"]:
                if not low <= other_ts <= high:
                    continue
                if port == LEFT_PORT:
                    left, right = row, other_row
                else:
                    left, right = other_row, row
                if condition(left, right):
                    out_rows.append(list(left) + list(right))
                    out_ts.append(max(self._time_of(LEFT_PORT, left),
                                      self._time_of(RIGHT_PORT, right)))

            bucket = own_buckets.get(key)
            if bucket is None:
                bucket = own_store.get(key) or {"rows": []}
                own_buckets[key] = bucket
            self._seq += 1
            bucket["rows"].append((ts, self._seq, row))
            self._retained += 1
            self._purge_front(bucket["rows"], ts - retention)
        for key, bucket in own_buckets.items():
            own_store.put(key, bucket)
        self.emit_batch(out_rows, out_ts)

    def describe(self) -> str:
        return (f"StreamStreamJoin(window=[-{self.lower_bound_ms}ms, "
                f"+{self.upper_bound_ms}ms])")
